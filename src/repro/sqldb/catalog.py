"""System catalog: table schemas, constraints, indexes, and statistics.

The catalog is the metadata layer SQLBarber's schema-summary step reads
(Section 4, Step 1 of the paper): table names and row counts, column names,
types and distinct counts, primary/foreign keys, and index metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import CatalogError
from .stats import ColumnStats, analyze_column
from .storage import Column, Table
from .types import ColumnType, SqlType

PAGE_SIZE_BYTES = 8192


class PhysicalIndex:
    """An equality-lookup structure over one column: value -> row positions.

    The executor's DML operators keep these consistent with the table data
    (see :meth:`Catalog.note_mutation`): INSERT appends positions
    incrementally, UPDATE drops only the indexes of assigned columns, and
    DELETE — which renumbers rows — drops every index of the table for a
    lazy rebuild on the next lookup.  Values are stored in their *storage*
    representation (e.g. DATE as int days since the epoch), matching what a
    scan of the column would compare against.
    """

    def __init__(self, column: Column):
        self.entries: dict[object, list[int]] = {}
        self.null_positions: list[int] = []
        self.append_rows(column, 0)

    def append_rows(self, column: Column, start: int) -> None:
        """Index rows ``start..len(column)-1`` (incremental INSERT path)."""
        data = column.data
        null_mask = column.null_mask
        for position in range(start, len(data)):
            if null_mask is not None and null_mask[position]:
                self.null_positions.append(position)
                continue
            value = data[position]
            key = value.item() if hasattr(value, "item") else value
            self.entries.setdefault(key, []).append(position)

    def lookup(self, value: object) -> list[int]:
        """Row positions holding *value* (ascending); NULL finds nothing."""
        if value is None:
            return []
        if hasattr(value, "item"):
            value = value.item()
        return list(self.entries.get(value, []))


@dataclass(frozen=True)
class ForeignKey:
    """A single-column foreign-key constraint."""

    table: str
    column: str
    ref_table: str
    ref_column: str

    def __str__(self) -> str:
        return (
            f"{self.table}.{self.column} -> {self.ref_table}.{self.ref_column}"
        )


@dataclass(frozen=True)
class IndexMeta:
    """Metadata for a (single-column) index."""

    name: str
    table: str
    column: str
    unique: bool = False


@dataclass
class ColumnMeta:
    """Schema + statistics for one column."""

    name: str
    column_type: ColumnType
    stats: ColumnStats | None = None

    @property
    def sql_type(self) -> SqlType:
        return self.column_type.sql_type

    @property
    def distinct_count(self) -> float:
        return self.stats.distinct_count if self.stats else 0.0


@dataclass
class TableMeta:
    """Schema + statistics for one table."""

    name: str
    columns: list[ColumnMeta]
    primary_key: list[str] = field(default_factory=list)
    row_count: int = 0
    row_width: int = 0

    def __post_init__(self) -> None:
        self._by_name = {c.name: c for c in self.columns}
        if len(self._by_name) != len(self.columns):
            raise CatalogError(f"duplicate column in table {self.name}")
        if not self.row_width:
            self.row_width = sum(c.sql_type.byte_width for c in self.columns) + 24

    def column(self, name: str) -> ColumnMeta:
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(f"no column {name!r} in {self.name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def page_count(self) -> int:
        """Heap pages, as the cost model sees them."""
        if self.row_count == 0:
            return 1
        rows_per_page = max(PAGE_SIZE_BYTES // max(self.row_width, 1), 1)
        return max(-(-self.row_count // rows_per_page), 1)


class Catalog:
    """Registry of tables, foreign keys, and indexes for one database.

    Every mutation that can change plans or estimates — registering a table,
    adding an index or foreign key, re-analyzing statistics — bumps the
    :attr:`statistics_epoch`.  Plan and EXPLAIN caches key their entries to
    the epoch and drop everything when it moves, so a DDL or data load can
    never serve stale costs.
    """

    def __init__(self) -> None:
        self._tables: dict[str, TableMeta] = {}
        self._data: dict[str, Table] = {}
        self._foreign_keys: list[ForeignKey] = []
        self._indexes: dict[str, list[IndexMeta]] = {}
        self._statistics_epoch = 0
        # Per-table DML mutation counters (the cheap invalidation signal)
        # and the lazily-built physical index structures they govern.
        self._mutation_counts: dict[str, int] = {}
        self._physical_indexes: dict[tuple[str, str], PhysicalIndex] = {}

    @property
    def statistics_epoch(self) -> int:
        """Monotonic counter of schema/statistics changes."""
        return self._statistics_epoch

    def bump_statistics_epoch(self) -> None:
        """Invalidate every epoch-keyed cache derived from this catalog."""
        self._statistics_epoch += 1

    # -- registration --------------------------------------------------------

    def register_table(
        self,
        data: Table,
        column_types: dict[str, ColumnType] | None = None,
        primary_key: list[str] | None = None,
        analyze: bool = True,
    ) -> TableMeta:
        """Add *data* to the catalog and (by default) analyze its columns."""
        if data.name in self._tables:
            raise CatalogError(f"table {data.name!r} already exists")
        columns = []
        for col in data.columns:
            ctype = (
                column_types[col.name]
                if column_types and col.name in column_types
                else ColumnType(col.sql_type)
            )
            stats = analyze_column(col) if analyze else None
            columns.append(ColumnMeta(col.name, ctype, stats))
        meta = TableMeta(
            name=data.name,
            columns=columns,
            primary_key=list(primary_key or []),
            row_count=data.row_count,
        )
        self._tables[data.name] = meta
        self._data[data.name] = data
        self._indexes.setdefault(data.name, [])
        # Primary keys implicitly carry a unique index, like real systems.
        for pk_col in meta.primary_key:
            self.add_index(
                IndexMeta(f"{data.name}_pkey_{pk_col}", data.name, pk_col, True)
            )
        self.bump_statistics_epoch()
        return meta

    def add_foreign_key(self, fk: ForeignKey) -> None:
        self.table(fk.table).column(fk.column)  # validates both ends
        self.table(fk.ref_table).column(fk.ref_column)
        self._foreign_keys.append(fk)
        # FK columns get an index by default (join-friendly, like many DDLs).
        if not self.index_on(fk.table, fk.column):
            self.add_index(
                IndexMeta(f"{fk.table}_{fk.column}_idx", fk.table, fk.column)
            )
        self.bump_statistics_epoch()

    def add_index(self, index: IndexMeta) -> None:
        self.table(index.table).column(index.column)
        existing = self._indexes.setdefault(index.table, [])
        if any(i.name == index.name for i in existing):
            raise CatalogError(f"index {index.name!r} already exists")
        existing.append(index)
        self.bump_statistics_epoch()

    def note_mutation(
        self,
        name: str,
        data: Table,
        *,
        appended: int | None = None,
        changed_columns: list[str] | None = None,
    ) -> None:
        """Publish *data* as the committed contents of *name* after DML.

        This is the single commit point of the write path: the executor
        materializes a statement's full result first and hands it over here,
        so a failure anywhere earlier (constraint violation, governor budget
        trip) leaves the old table untouched — statement-level rollback.

        Bookkeeping on commit:

        * ``row_count`` is refreshed (page counts follow), but column
          statistics are *not* recomputed — like a real system, stale stats
          persist until ``reanalyze``; what matters is that they are served
          consistently, which the epoch bump below guarantees.
        * The per-table mutation counter advances and the physical indexes
          are maintained: ``appended=k`` (INSERT) extends built indexes with
          the last *k* row positions; ``changed_columns`` (UPDATE — row
          positions stable) drops only the affected columns' indexes; plain
          calls (DELETE — rows renumbered) drop every index of the table.
        * The statistics epoch bumps, so the EXPLAIN cache and every
          ``CompiledTemplate`` re-cost instead of serving stale estimates.
        """
        meta = self.table(name)
        self._data[name] = data
        meta.row_count = data.row_count
        self._mutation_counts[name] = self._mutation_counts.get(name, 0) + 1
        if appended is not None and appended >= 0:
            start = data.row_count - appended
            for (table, column), index in self._physical_indexes.items():
                if table == name:
                    index.append_rows(data.column(column), start)
        elif changed_columns is not None:
            for column in changed_columns:
                self._physical_indexes.pop((name, column), None)
        else:
            for key in [k for k in self._physical_indexes if k[0] == name]:
                del self._physical_indexes[key]
        self.bump_statistics_epoch()

    def mutation_count(self, name: str) -> int:
        """How many committed DML statements have touched *name*."""
        self.table(name)
        return self._mutation_counts.get(name, 0)

    def index_lookup(self, table: str, column: str, value: object) -> list[int]:
        """Equality lookup through the physical index on (table, column).

        Builds the index lazily from the current data on first use; DML
        maintenance keeps it consistent afterwards (see
        :meth:`note_mutation`).  *value* must be in storage representation
        (DATE as int days).  ``None`` returns the NULL row positions.
        """
        self.table(table).column(column)
        key = (table, column)
        index = self._physical_indexes.get(key)
        if index is None:
            index = PhysicalIndex(self.data(table).column(column))
            self._physical_indexes[key] = index
        if value is None:
            return list(index.null_positions)
        return index.lookup(value)

    def reanalyze(self, name: str) -> TableMeta:
        """Recompute row count and column statistics of *name* from its data.

        The equivalent of PostgreSQL's ``ANALYZE <table>``: callers that
        mutate a registered table's column arrays in place run this to make
        the optimizer see the new value distribution.  Bumps the statistics
        epoch so cached estimates are invalidated.
        """
        meta = self.table(name)
        data = self.data(name)
        for column_meta in meta.columns:
            column_meta.stats = analyze_column(data.column(column_meta.name))
        meta.row_count = data.row_count
        self.bump_statistics_epoch()
        return meta

    # -- lookups ---------------------------------------------------------------

    def table(self, name: str) -> TableMeta:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f'relation "{name}" does not exist') from None

    def data(self, name: str) -> Table:
        self.table(name)
        return self._data[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    @property
    def foreign_keys(self) -> list[ForeignKey]:
        return list(self._foreign_keys)

    def foreign_keys_of(self, table: str) -> list[ForeignKey]:
        return [fk for fk in self._foreign_keys if fk.table == table]

    def indexes_of(self, table: str) -> list[IndexMeta]:
        return list(self._indexes.get(table, []))

    def index_on(self, table: str, column: str) -> IndexMeta | None:
        for index in self._indexes.get(table, []):
            if index.column == column:
                return index
        return None

    def column_stats(self, table: str, column: str) -> ColumnStats | None:
        return self.table(table).column(column).stats
