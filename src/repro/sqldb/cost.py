"""PostgreSQL-flavoured cost model.

The constants match PostgreSQL's documented defaults, and the formulas are
simplified but monotone versions of the planner's: more pages cost more I/O,
more tuples cost more CPU, random index probes are 4x dearer than sequential
pages.  SQLBarber optimizes against *this* surface, so what matters is that
cost responds smoothly and monotonically to cardinality — which it does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

SEQ_PAGE_COST = 1.0
RANDOM_PAGE_COST = 4.0
CPU_TUPLE_COST = 0.01
CPU_INDEX_TUPLE_COST = 0.005
CPU_OPERATOR_COST = 0.0025
HASH_ENTRY_COST = 1.5 * CPU_OPERATOR_COST
SORT_COMPARE_COST = 2.0 * CPU_OPERATOR_COST
#: Per-row cost of a storage mutation (heap write), on top of the cost of
#: producing the row.  Twice CPU_TUPLE_COST: a write touches the page twice
#: (copy-out + publish) in the copy-on-write storage layer.
WRITE_TUPLE_COST = 2.0 * CPU_TUPLE_COST


@dataclass(frozen=True)
class Cost:
    """A (startup, total) cost pair, PostgreSQL-style."""

    startup: float
    total: float

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.startup + other.startup, self.total + other.total)

    def plus(self, amount: float) -> "Cost":
        return Cost(self.startup, self.total + amount)


def seq_scan_cost(pages: int, rows: float, qual_ops: int) -> Cost:
    """Full heap scan with *qual_ops* predicate operators applied per row."""
    io = pages * SEQ_PAGE_COST
    cpu = rows * (CPU_TUPLE_COST + qual_ops * CPU_OPERATOR_COST)
    return Cost(0.0, io + cpu)


def index_scan_cost(
    pages: int,
    rows: float,
    selectivity: float,
    qual_ops: int,
) -> Cost:
    """B-tree index scan fetching ``selectivity`` of the heap.

    Models the descent (log2 of the index) as startup, then one random heap
    page per qualifying correlation-adjusted page plus per-tuple CPU.
    """
    selectivity = min(max(selectivity, 0.0), 1.0)
    matched = rows * selectivity
    descent = math.log2(max(rows, 2.0)) * CPU_OPERATOR_COST * 50
    index_pages = max(pages // 10, 1)
    index_io = max(selectivity * index_pages, 1.0) * RANDOM_PAGE_COST
    # Assume partially-correlated heap access: between 1 page and one random
    # page per matched tuple, interpolated by selectivity.
    heap_pages = min(matched, selectivity * pages * 2.0 + 1.0)
    heap_io = heap_pages * RANDOM_PAGE_COST
    cpu = matched * (CPU_INDEX_TUPLE_COST + CPU_TUPLE_COST + qual_ops * CPU_OPERATOR_COST)
    return Cost(descent, descent + index_io + heap_io + cpu)


def hash_join_cost(
    outer: Cost, inner: Cost, outer_rows: float, inner_rows: float, out_rows: float
) -> Cost:
    """Build a hash on the inner side, probe with the outer."""
    build = inner_rows * HASH_ENTRY_COST + inner_rows * CPU_TUPLE_COST * 0.5
    probe = outer_rows * HASH_ENTRY_COST
    emit = out_rows * CPU_TUPLE_COST
    startup = inner.total + build
    total = startup + outer.total + probe + emit
    return Cost(startup, total)


def nested_loop_cost(
    outer: Cost, inner: Cost, outer_rows: float, inner_rows: float, out_rows: float
) -> Cost:
    """Materialized nested loop: rescan the inner result per outer row."""
    rescan = outer_rows * inner_rows * CPU_OPERATOR_COST
    emit = out_rows * CPU_TUPLE_COST
    total = outer.total + inner.total + rescan + emit
    return Cost(outer.startup, total)


def sort_cost(child: Cost, rows: float, width: int = 0) -> Cost:
    rows = max(rows, 1.0)
    compare = rows * math.log2(max(rows, 2.0)) * SORT_COMPARE_COST
    startup = child.total + compare
    return Cost(startup, startup + rows * CPU_OPERATOR_COST)


def aggregate_cost(
    child: Cost, input_rows: float, groups: float, num_aggregates: int
) -> Cost:
    transition = input_rows * CPU_OPERATOR_COST * max(num_aggregates, 1)
    hashing = input_rows * HASH_ENTRY_COST
    startup = child.total + transition + hashing
    return Cost(startup, startup + groups * CPU_TUPLE_COST)


def project_cost(child: Cost, rows: float, expr_ops: int) -> Cost:
    return Cost(child.startup, child.total + rows * expr_ops * CPU_OPERATOR_COST)


def dml_cost(child: Cost, rows_written: float, index_count: int) -> Cost:
    """INSERT/UPDATE/DELETE: child produces the rows, the write applies them.

    The whole input must be materialized before the commit publishes, so
    startup is the child's total; each written row then pays the heap write
    plus one index-entry maintenance charge per affected index.
    """
    rows_written = max(rows_written, 0.0)
    write = rows_written * (
        WRITE_TUPLE_COST + index_count * CPU_INDEX_TUPLE_COST
    )
    return Cost(child.total, child.total + write)


def limit_cost(child: Cost, child_rows: float, limit_rows: float) -> Cost:
    """LIMIT stops early: scale the run cost by the fetched fraction."""
    if child_rows <= 0:
        return child
    fraction = min(limit_rows / child_rows, 1.0)
    run = child.total - child.startup
    return Cost(child.startup, child.startup + run * fraction)
