"""Public facade over the embedded engine.

:class:`Database` is the object every other subsystem talks to.  It exposes
the same three verbs SQLBarber needs from PostgreSQL:

* :meth:`Database.execute` — run a query, get rows;
* :meth:`Database.explain` — get the optimizer's estimated cardinality and
  plan cost without running the query;
* :attr:`Database.catalog` — schema and statistics metadata.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.fastpath.cache import DEFAULT_CACHE_SIZE, ExplainCache, normalize_sql
from repro.obs import current as current_telemetry

from .binder import Binder
from .catalog import Catalog, ForeignKey, IndexMeta
from .errors import SqlError
from .executor import Executor
from .explain import ExplainResult, explain_plan
from .parser import parse_sql
from .plan_nodes import Plan
from .planner import Planner
from .storage import Table
from .vec import DEFAULT_BATCH_SIZE, VecExecutor
from .vec import supports as vec_supports


@dataclass(frozen=True)
class ExecutionResult:
    """Rows plus basic runtime measurements for one executed query."""

    table: Table
    elapsed_seconds: float

    @property
    def row_count(self) -> int:
        return self.table.row_count


class Database:
    """An embedded, in-memory SQL database."""

    def __init__(self, name: str = "db", explain_cache_size: int = DEFAULT_CACHE_SIZE):
        self.name = name
        self._catalog = Catalog()
        self._binder = Binder(self._catalog)
        self._planner = Planner(self._catalog)
        self._executor = Executor(self._catalog)
        self._vec_executor = VecExecutor(self._catalog, DEFAULT_BATCH_SIZE)
        self._use_vectorized = True
        self._explain_cache = ExplainCache(maxsize=explain_cache_size)
        self._explain_cache_enabled = True

    # -- executor selection ----------------------------------------------------

    @property
    def use_vectorized(self) -> bool:
        return self._use_vectorized

    @property
    def vec_batch_size(self) -> int:
        return self._vec_executor._batch_size

    def set_vectorized(self, enabled: bool, batch_size: int | None = None) -> None:
        """Toggle the vectorized executor (the ``use_vectorized`` knob).

        *batch_size* resizes the columnar batches; ``None`` keeps the
        current size.  The row executor remains the fallback for plans the
        vectorized path does not support (subqueries, UNION, nested-loop
        joins), and the differential battery guarantees the two agree.
        """
        self._use_vectorized = enabled
        if batch_size is not None:
            if batch_size < 1:
                raise ValueError("batch_size must be positive")
            self._vec_executor = VecExecutor(self._catalog, batch_size)

    def _executor_for(self, plan: Plan):
        if (
            self._use_vectorized
            and plan.use_vectorized
            and vec_supports(plan)
        ):
            return self._vec_executor
        return self._executor

    # -- schema management ---------------------------------------------------

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    @property
    def explain_cache(self) -> ExplainCache:
        return self._explain_cache

    @property
    def explain_cache_enabled(self) -> bool:
        return self._explain_cache_enabled

    def set_explain_cache(self, enabled: bool) -> None:
        """Toggle EXPLAIN result caching (the ``--no-explain-cache`` hatch).

        Disabling also clears the cache so a later re-enable starts cold.
        """
        self._explain_cache_enabled = enabled
        if not enabled:
            self._explain_cache.clear()

    def analyze(self, table: str | None = None) -> None:
        """Refresh optimizer statistics (``ANALYZE [table]``).

        Recomputes row counts and column statistics from the stored data and
        bumps the statistics epoch, invalidating cached EXPLAIN results.
        """
        names = [table] if table is not None else self._catalog.table_names
        for name in names:
            self._catalog.reanalyze(name)

    def create_table(
        self,
        data: Table,
        primary_key: list[str] | None = None,
        column_types=None,
    ) -> None:
        """Register *data* as a base table (statistics are gathered eagerly).

        *column_types* optionally maps column names to
        :class:`~repro.sqldb.types.ColumnType` so NOT NULL constraints are
        recorded in the catalog — the DML path enforces them at runtime.
        """
        self._catalog.register_table(
            data, column_types=column_types, primary_key=primary_key
        )

    def add_foreign_key(
        self, table: str, column: str, ref_table: str, ref_column: str
    ) -> None:
        self._catalog.add_foreign_key(ForeignKey(table, column, ref_table, ref_column))

    def add_index(self, table: str, column: str, unique: bool = False) -> None:
        self._catalog.add_index(
            IndexMeta(f"{table}_{column}_idx", table, column, unique)
        )

    # -- query processing ------------------------------------------------------

    def plan(self, sql: str) -> Plan:
        """Parse, bind, and plan *sql* without executing it.

        Errors leave with the statement text attached, so callers (the LLM
        repair loop, the fuzz shrinker) can render a line/column snippet via
        :meth:`~repro.sqldb.errors.SqlError.context_snippet`.
        """
        try:
            statement = parse_sql(sql)
            bound = self._binder.bind(statement)
            return self._planner.plan(bound)
        except SqlError as exc:
            raise exc.attach_source(sql)

    def explain(self, sql: str) -> ExplainResult:
        """The equivalent of ``EXPLAIN <sql>``: estimates only, no execution.

        Raises :class:`~repro.sqldb.errors.SqlError` subclasses exactly as a
        real server would reject the statement, which is what SQLBarber's
        template validation relies on.
        """
        return self.explain_estimates(sql)

    def explain_estimates(self, sql: str, compute=None) -> ExplainResult:
        """The single cache-aware entry point for optimizer estimates.

        Every path that produces an :class:`ExplainResult` — ``explain``,
        ``explain_analyze``, compiled-template re-costing — funnels through
        here so the ``sqldb.explain.*`` and ``sqldb.explain.cache.*``
        counters stay mutually consistent.  ``sqldb.explain.calls`` /
        ``.seconds`` record *computed* estimates (cache misses and uncached
        calls); cache hits are counted under ``sqldb.explain.cache.hits``
        and skip the histogram, so its count always equals the calls total.

        *compute* overrides the cold pipeline (parse → bind → plan) with a
        cheaper equivalent producer of the same result; callers guarantee
        byte-identical output (the differential suite enforces this).
        """
        if compute is None:
            compute = lambda: explain_plan(self.plan(sql))  # noqa: E731
        if not self._explain_cache_enabled:
            return self._record_explain(compute)
        return self._explain_cache.get_or_compute(
            normalize_sql(sql),
            self._catalog.statistics_epoch,
            lambda: self._record_explain(compute),
        )

    def _record_explain(self, compute) -> ExplainResult:
        telemetry = current_telemetry()
        if not telemetry.enabled:
            return compute()
        started = time.perf_counter()
        try:
            result = compute()
        except SqlError:
            telemetry.count("sqldb.explain.errors")
            raise
        finally:
            telemetry.count("sqldb.explain.calls")
            telemetry.observe(
                "sqldb.explain.seconds", time.perf_counter() - started
            )
        return result

    def execute(self, sql: str) -> ExecutionResult:
        """Run *sql* and return its result rows with wall-clock timing."""
        telemetry = current_telemetry()
        started = time.perf_counter()
        try:
            plan = self.plan(sql)
            table = self._executor_for(plan).execute(plan)
        except SqlError as exc:
            if telemetry.enabled:
                telemetry.count("sqldb.execute.errors")
                telemetry.count("sqldb.execute.calls")
                telemetry.observe(
                    "sqldb.execute.seconds", time.perf_counter() - started
                )
            # Execution-phase errors (including governor ResourceExceeded)
            # leave positioned, like plan-phase ones; attach_source is
            # idempotent, so already-attached errors pass through untouched.
            raise exc.attach_source(sql)
        elapsed = time.perf_counter() - started
        if telemetry.enabled:
            telemetry.count("sqldb.execute.calls")
            telemetry.observe("sqldb.execute.seconds", elapsed)
        return ExecutionResult(table=table, elapsed_seconds=elapsed)

    def execute_profiled(self, sql: str):
        """Run *sql* with operator profiling and return (result, profile).

        *profile* is the statement's :class:`~repro.obs.OperatorProfile`
        tree — per-operator rows out, batches, and self/cumulative time —
        regardless of whether ambient telemetry is armed.
        """
        from repro.obs import capture_profile

        with capture_profile() as capture:
            result = self.execute(sql)
        return result, capture.profile

    def explain_profile(self, sql: str) -> str:
        """``EXPLAIN PROFILE <sql>``: execute and render the measured
        operator tree (rows, batches, self/total time per operator)."""
        from repro.obs import capture_profile

        with capture_profile() as capture:
            self.execute(sql)
        return capture.render()

    def explain_analyze(self, sql: str) -> tuple[ExplainResult, ExecutionResult]:
        """``EXPLAIN ANALYZE``: the optimizer's estimates plus actual
        execution, in one call — the optimizer-regression-hunting primitive.
        """
        plan = self.plan(sql)
        # Route estimates through the cache-aware entry point (reusing the
        # plan we already built on a miss) so explain_calls and cache
        # hit/miss counters agree with plain ``explain``.
        estimates = self.explain_estimates(sql, compute=lambda: explain_plan(plan))
        started = time.perf_counter()
        try:
            table = self._executor_for(plan).execute(plan)
        except SqlError as exc:
            raise exc.attach_source(sql)
        elapsed = time.perf_counter() - started
        return estimates, ExecutionResult(table=table, elapsed_seconds=elapsed)

    def validate(self, sql: str) -> tuple[bool, str | None]:
        """Check that *sql* parses, binds, and plans; return (ok, error)."""
        try:
            self.plan(sql)
            return True, None
        except SqlError as exc:
            return False, str(exc)
