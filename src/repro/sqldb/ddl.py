"""DDL and DML statements: CREATE TABLE, INSERT INTO, CREATE INDEX.

The query engine's SELECT grammar lives in :mod:`repro.sqldb.parser`; this
module adds the statements needed to build a database from a plain SQL
script, so users can load their own schemas instead of the built-in
generators::

    db = Database("mine")
    run_script(db, '''
        CREATE TABLE users (
            id integer PRIMARY KEY,
            name text NOT NULL
        );
        CREATE TABLE orders (
            oid integer PRIMARY KEY,
            uid integer REFERENCES users(id),
            amount double precision
        );
        INSERT INTO users VALUES (1, 'ann'), (2, 'bob');
    ''')

Statistics are analyzed lazily: tables register un-analyzed while INSERTs
accumulate rows and :func:`run_script` finalizes each table once the script
ends (re-registering with statistics).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .database import Database
from .errors import SqlSyntaxError, UnsupportedSqlError
from .lexer import Token, TokenType, tokenize
from .storage import Table
from .types import ColumnType, SqlType, date_to_days, parse_type_name


@dataclass
class ColumnDef:
    """One column in a CREATE TABLE statement."""

    name: str
    sql_type: SqlType
    not_null: bool = False
    primary_key: bool = False
    references: tuple[str, str] | None = None  # (table, column)


@dataclass
class CreateTable:
    """A parsed CREATE TABLE statement."""

    name: str
    columns: list[ColumnDef] = field(default_factory=list)
    primary_key: list[str] = field(default_factory=list)
    foreign_keys: list[tuple[str, str, str]] = field(default_factory=list)
    # (column, ref_table, ref_column)


@dataclass
class Insert:
    """A parsed INSERT INTO ... VALUES statement."""

    table: str
    columns: list[str] | None
    rows: list[list[object]] = field(default_factory=list)


@dataclass
class CreateIndex:
    """A parsed CREATE [UNIQUE] INDEX statement."""

    table: str
    column: str
    unique: bool = False


Statement = CreateTable | Insert | CreateIndex


def split_statements(script: str) -> list[str]:
    """Split a SQL script on top-level semicolons (strings respected)."""
    statements: list[str] = []
    depth = 0
    current: list[str] = []
    in_string = False
    i = 0
    while i < len(script):
        ch = script[i]
        if in_string:
            current.append(ch)
            if ch == "'":
                if i + 1 < len(script) and script[i + 1] == "'":
                    current.append("'")
                    i += 1
                else:
                    in_string = False
        elif ch == "'":
            in_string = True
            current.append(ch)
        elif ch == "(":
            depth += 1
            current.append(ch)
        elif ch == ")":
            depth -= 1
            current.append(ch)
        elif ch == ";" and depth == 0:
            text = "".join(current).strip()
            if text:
                statements.append(text)
            current = []
        else:
            current.append(ch)
        i += 1
    tail = "".join(current).strip()
    if tail:
        statements.append(tail)
    return statements


class _DdlParser:
    """A small recursive-descent parser over the shared lexer's tokens."""

    def __init__(self, sql: str):
        self._tokens = tokenize(sql)
        self._pos = 0

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _accept_word(self, *words: str) -> bool:
        token = self._current
        if (
            token.type in (TokenType.KEYWORD, TokenType.IDENTIFIER)
            and token.value in words
        ):
            self._advance()
            return True
        return False

    def _expect_word(self, word: str) -> None:
        if not self._accept_word(word):
            self._error(f'expected "{word.upper()}"')

    def _expect_identifier(self, what: str) -> str:
        token = self._current
        if token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            self._error(f"expected {what}")
        self._advance()
        return token.value

    def _accept_punct(self, value: str) -> bool:
        token = self._current
        if token.type is TokenType.PUNCTUATION and token.value == value:
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        if not self._accept_punct(value):
            self._error(f'expected "{value}"')

    def _error(self, message: str) -> None:
        token = self._current
        near = token.value or "end of input"
        raise SqlSyntaxError(
            f'{message}, at or near "{near}"', position=token.position
        )

    # -- statements --------------------------------------------------------------

    def parse(self) -> Statement:
        if self._accept_word("create"):
            unique = self._accept_word("unique")
            if self._accept_word("index"):
                return self._parse_create_index(unique)
            if unique:
                self._error("expected INDEX after UNIQUE")
            self._expect_word("table")
            return self._parse_create_table()
        if self._accept_word("insert"):
            self._expect_word("into")
            return self._parse_insert()
        raise UnsupportedSqlError(
            "only CREATE TABLE / CREATE INDEX / INSERT INTO are supported here"
        )

    def _parse_create_table(self) -> CreateTable:
        statement = CreateTable(name=self._expect_identifier("table name"))
        self._expect_punct("(")
        while True:
            if self._accept_word("primary"):
                self._expect_word("key")
                self._expect_punct("(")
                statement.primary_key.append(
                    self._expect_identifier("primary key column")
                )
                while self._accept_punct(","):
                    statement.primary_key.append(
                        self._expect_identifier("primary key column")
                    )
                self._expect_punct(")")
            elif self._accept_word("foreign"):
                self._expect_word("key")
                self._expect_punct("(")
                column = self._expect_identifier("foreign key column")
                self._expect_punct(")")
                self._expect_word("references")
                ref_table = self._expect_identifier("referenced table")
                self._expect_punct("(")
                ref_column = self._expect_identifier("referenced column")
                self._expect_punct(")")
                statement.foreign_keys.append((column, ref_table, ref_column))
            else:
                statement.columns.append(self._parse_column_def())
            if self._accept_punct(","):
                continue
            self._expect_punct(")")
            break
        for column in statement.columns:
            if column.primary_key and column.name not in statement.primary_key:
                statement.primary_key.append(column.name)
            if column.references is not None:
                statement.foreign_keys.append(
                    (column.name, column.references[0], column.references[1])
                )
        return statement

    def _parse_column_def(self) -> ColumnDef:
        name = self._expect_identifier("column name")
        type_words = [self._expect_identifier("type name")]
        # Multi-word types: "double precision"; skip length suffix "(25)".
        if type_words[0] == "double" and self._accept_word("precision"):
            type_words.append("precision")
        if self._accept_punct("("):
            while not self._accept_punct(")"):
                self._advance()
        try:
            sql_type = parse_type_name(" ".join(type_words))
        except ValueError as exc:
            raise SqlSyntaxError(str(exc)) from None
        column = ColumnDef(name=name, sql_type=sql_type)
        while True:
            if self._accept_word("not"):
                self._expect_word("null")
                column.not_null = True
            elif self._accept_word("primary"):
                self._expect_word("key")
                column.primary_key = True
            elif self._accept_word("references"):
                ref_table = self._expect_identifier("referenced table")
                self._expect_punct("(")
                ref_column = self._expect_identifier("referenced column")
                self._expect_punct(")")
                column.references = (ref_table, ref_column)
            elif self._accept_word("unique"):
                pass  # accepted and ignored (single-column indexes cover it)
            else:
                return column

    def _parse_insert(self) -> Insert:
        table = self._expect_identifier("table name")
        columns: list[str] | None = None
        if self._accept_punct("("):
            columns = [self._expect_identifier("column name")]
            while self._accept_punct(","):
                columns.append(self._expect_identifier("column name"))
            self._expect_punct(")")
        self._expect_word("values")
        insert = Insert(table=table, columns=columns)
        while True:
            self._expect_punct("(")
            row: list[object] = [self._parse_literal()]
            while self._accept_punct(","):
                row.append(self._parse_literal())
            self._expect_punct(")")
            insert.rows.append(row)
            if not self._accept_punct(","):
                break
        return insert

    def _parse_literal(self):
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            return float(token.value) if "." in token.value else int(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return token.value
        if token.matches_keyword("null"):
            self._advance()
            return None
        if token.matches_keyword("true"):
            self._advance()
            return True
        if token.matches_keyword("false"):
            self._advance()
            return False
        if token.type is TokenType.OPERATOR and token.value == "-":
            self._advance()
            value = self._parse_literal()
            if not isinstance(value, (int, float)):
                self._error("expected a number after '-'")
            return -value
        self._error("expected a literal value")

    def _parse_create_index(self, unique: bool) -> CreateIndex:
        self._expect_identifier("index name")  # name accepted, derived anyway
        self._expect_word("on")
        table = self._expect_identifier("table name")
        self._expect_punct("(")
        column = self._expect_identifier("column name")
        self._expect_punct(")")
        return CreateIndex(table=table, column=column, unique=unique)


def parse_ddl(sql: str) -> Statement:
    """Parse one CREATE TABLE / CREATE INDEX / INSERT statement."""
    parser = _DdlParser(sql.strip().rstrip(";"))
    statement = parser.parse()
    return statement


def run_script(db: Database, script: str) -> Database:
    """Execute a DDL/DML script against *db* and analyze the new tables.

    Rows from all INSERTs into a table are buffered and the table is
    registered once, with statistics, after the whole script is processed.
    """
    pending: dict[str, CreateTable] = {}
    rows: dict[str, list[list[object]]] = {}
    indexes: list[CreateIndex] = []
    for text in split_statements(script):
        statement = parse_ddl(text)
        if isinstance(statement, CreateTable):
            if statement.name in pending or db.catalog.has_table(statement.name):
                raise SqlSyntaxError(f"table {statement.name!r} already exists")
            pending[statement.name] = statement
            rows[statement.name] = []
        elif isinstance(statement, Insert):
            if statement.table not in pending:
                raise SqlSyntaxError(
                    f"INSERT into unknown table {statement.table!r} "
                    "(CREATE TABLE must appear in the same script)"
                )
            definition = pending[statement.table]
            for row in statement.rows:
                rows[statement.table].append(
                    _reorder(row, statement.columns, definition)
                )
        else:
            indexes.append(statement)
    for name, definition in pending.items():
        _materialize(db, definition, rows[name])
    for index in indexes:
        db.add_index(index.table, index.column, unique=index.unique)
    return db


def _reorder(
    row: list[object], columns: list[str] | None, definition: CreateTable
) -> list[object]:
    names = [c.name for c in definition.columns]
    if columns is None:
        if len(row) != len(names):
            raise SqlSyntaxError(
                f"INSERT into {definition.name!r}: expected {len(names)} "
                f"values, got {len(row)}"
            )
        return list(row)
    if len(row) != len(columns):
        raise SqlSyntaxError(
            f"INSERT into {definition.name!r}: {len(columns)} columns "
            f"but {len(row)} values"
        )
    by_name = dict(zip(columns, row))
    unknown = set(columns) - set(names)
    if unknown:
        raise SqlSyntaxError(
            f"INSERT into {definition.name!r}: unknown columns {sorted(unknown)}"
        )
    return [by_name.get(name) for name in names]


def _coerce(value, sql_type: SqlType):
    if value is None:
        return None
    if sql_type is SqlType.DATE and isinstance(value, str):
        return date_to_days(value)
    if sql_type in (SqlType.INTEGER, SqlType.BIGINT) and isinstance(value, float):
        return int(value)
    if sql_type is SqlType.DOUBLE and isinstance(value, int):
        return float(value)
    return value


def _materialize(db: Database, definition: CreateTable, rows: list[list[object]]):
    for column in definition.columns:
        if column.not_null:
            index = [c.name for c in definition.columns].index(column.name)
            for row in rows:
                if row[index] is None:
                    raise SqlSyntaxError(
                        f"NULL in NOT NULL column {definition.name}.{column.name}"
                    )
    data = {
        column.name: [
            _coerce(row[i], column.sql_type) for row in rows
        ]
        for i, column in enumerate(definition.columns)
    }
    types = {c.name: c.sql_type for c in definition.columns}
    # Record nullability in the catalog so the DML engine can enforce NOT
    # NULL at runtime (the load-time check above only covers script rows).
    column_types = {
        c.name: ColumnType(c.sql_type, nullable=not c.not_null)
        for c in definition.columns
    }
    db.create_table(
        Table.from_dict(definition.name, data, types),
        primary_key=definition.primary_key or None,
        column_types=column_types,
    )
    for column, ref_table, ref_column in definition.foreign_keys:
        db.add_foreign_key(definition.name, column, ref_table, ref_column)
