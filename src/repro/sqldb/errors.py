"""Error hierarchy for the embedded SQL engine.

The error classes mirror the categories a client sees from a real DBMS:
lexing/parsing problems surface as :class:`SqlSyntaxError`, name-resolution
and type problems as :class:`BindError`, and problems found while running a
plan as :class:`ExecutionError`.  SQLBarber's check-and-rewrite loop relies on
the distinction: syntax and binder errors are fed back to the LLM verbatim.
"""

from __future__ import annotations


class SqlError(Exception):
    """Base class for every error raised by :mod:`repro.sqldb`."""


class SqlSyntaxError(SqlError):
    """The statement could not be tokenized or parsed.

    Carries an optional source position so error messages can point at the
    offending token, e.g. ``syntax error at or near "FORM" (position 8)``.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (position {position})"
        super().__init__(message)
        self.position = position


class BindError(SqlError):
    """Name resolution or type checking failed (unknown table/column, etc.)."""


class CatalogError(SqlError):
    """Catalog manipulation failed (duplicate table, unknown constraint...)."""


class ExecutionError(SqlError):
    """A runtime failure while executing a plan (division by zero, etc.)."""


class UnsupportedSqlError(SqlError):
    """The statement is valid SQL but outside the supported dialect subset."""
