"""Error hierarchy for the embedded SQL engine.

The error classes mirror the categories a client sees from a real DBMS:
lexing/parsing problems surface as :class:`SqlSyntaxError`, name-resolution
and type problems as :class:`BindError`, and problems found while running a
plan as :class:`ExecutionError`.  SQLBarber's check-and-rewrite loop relies on
the distinction: syntax and binder errors are fed back to the LLM verbatim.

Every error can carry the character offset of the offending token
(``position``), and — once :meth:`SqlError.attach_source` has run, which
:func:`repro.sqldb.parser.parse_select` and ``Database.plan`` do
automatically — the 1-based ``line``/``column`` pair plus a caret snippet
(:meth:`SqlError.context_snippet`).  The fuzz shrinker and the LLM repair
prompts use the snippet to point at the exact token that broke.
"""

from __future__ import annotations


def line_column(sql: str, position: int) -> tuple[int, int]:
    """1-based (line, column) of character offset *position* in *sql*."""
    position = max(min(position, len(sql)), 0)
    prefix = sql[:position]
    line = prefix.count("\n") + 1
    column = position - (prefix.rfind("\n") + 1) + 1
    return line, column


class SqlError(Exception):
    """Base class for every error raised by :mod:`repro.sqldb`.

    ``position`` is the character offset of the offending token in the
    statement text (None when unknown); ``line``/``column`` are filled in by
    :meth:`attach_source` once the raising layer knows the source text.
    """

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position
        self.line: int | None = None
        self.column: int | None = None
        self.source: str | None = None

    def attach_source(self, sql: str) -> "SqlError":
        """Record the statement text and derive line/column from position."""
        if self.source is None and sql is not None:
            self.source = sql
            if self.position is not None:
                self.line, self.column = line_column(sql, self.position)
        return self

    def context_snippet(self) -> str | None:
        """A PostgreSQL-style ``LINE n: ...`` excerpt with a caret marker.

        Returns None until both a source and a position are known.
        """
        if self.source is None or self.position is None or self.line is None:
            return None
        text = self.source.split("\n")[self.line - 1]
        caret_indent = " " * (len(f"LINE {self.line}: ") + self.column - 1)
        return f"LINE {self.line}: {text}\n{caret_indent}^"


class SqlSyntaxError(SqlError):
    """The statement could not be tokenized or parsed.

    Carries an optional source position so error messages can point at the
    offending token, e.g. ``syntax error at or near "FORM" (position 8)``.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (position {position})"
        super().__init__(message, position)


class BindError(SqlError):
    """Name resolution or type checking failed (unknown table/column, etc.)."""


class CatalogError(SqlError):
    """Catalog manipulation failed (duplicate table, unknown constraint...)."""


class ExecutionError(SqlError):
    """A runtime failure while executing a plan (division by zero, etc.)."""


class ConstraintError(ExecutionError):
    """A DML statement violated a table constraint (NOT NULL, arity/type).

    Raised before the statement's result is published, so the table is
    left exactly as it was (statement-level rollback).
    """


class UnsupportedSqlError(SqlError):
    """The statement is valid SQL but outside the supported dialect subset."""


class ResourceExceeded(ExecutionError):
    """A query ran into a governor limit (PostgreSQL's ``statement_timeout``
    / ``work_mem`` analogues for the embedded engine).

    Raised cooperatively at operator boundaries by the executor when a
    :class:`~repro.governor.QueryGovernor` is installed.  The taxonomy below
    lets the profiler distinguish a *pathological template* (strike →
    quarantine) from an ordinary SQL error (count and move on).  The
    position defaults to 0 so :meth:`SqlError.attach_source` can still
    render a ``LINE 1: ...`` snippet pointing at the statement.
    """

    def __init__(self, message: str, position: int | None = 0):
        super().__init__(message, position)


class QueryTimeout(ResourceExceeded):
    """The query exceeded its deadline (wall-clock or charged virtual time)."""


class MemoryBudgetExceeded(ResourceExceeded):
    """An operator's estimated materialized size exceeded the memory budget."""


class RowBudgetExceeded(ResourceExceeded):
    """The query processed (or would materialize) more rows than allowed."""


class QueryCancelled(ResourceExceeded):
    """The query was cancelled cooperatively (watchdog, injected fault)."""


class TransientStorageError(ExecutionError):
    """A retryable storage-layer hiccup (only ever raised by the seeded
    :class:`~repro.governor.EngineFaultModel`; the in-memory store itself
    cannot fail).  Callers retry a bounded number of times before treating
    it as an ordinary execution error."""
