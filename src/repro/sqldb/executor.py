"""Plan execution over columnar batches.

The executor is materializing: every operator consumes and produces a whole
:class:`~repro.sqldb.storage.Table` whose columns are keyed
``binding.column`` until projection gives them their output names.  Aggregate
results ride alongside the representative-row table so HAVING, ORDER BY, and
the projection can all reference them by AST node identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

# Module-object import (not a name import): repro.governor.context and
# repro.sqldb import each other, and either may begin initializing first.
# Binding the module keeps the import cycle-safe in both directions; the
# attribute is resolved at call time, when both modules are fully loaded.
import repro.governor.context as _governor_context

# Same pattern for the operator profiler: the arming state is ambient
# (contextvars set by repro.obs), read once per statement in execute() and
# once per operator boundary in _run() — never inside a row loop.
import repro.obs.profile as _obs_profile

from . import ast_nodes as ast
from .errors import ConstraintError, ExecutionError
from .expr_eval import EvalContext, SubqueryValue, Vec, evaluate, truthy
from .catalog import Catalog
from .plan_nodes import (
    AggregateNode,
    AppendNode,
    DeleteNode,
    DistinctNode,
    FilterNode,
    HashJoinNode,
    IndexScanNode,
    InsertNode,
    LimitNode,
    NestedLoopJoinNode,
    Plan,
    PlanNode,
    ProjectNode,
    ResultNode,
    SeqScanNode,
    SortNode,
    SubqueryScanNode,
    UpdateNode,
)
from .storage import Column, Table
from .types import SqlType, date_to_days, days_to_date


@dataclass
class _Frame:
    """An intermediate result: qualified columns plus aggregate side-band."""

    columns: dict[str, Column]
    row_count: int
    aggregate_values: dict[int, Vec] = field(default_factory=dict)

    def context(self, subquery_values: dict[int, SubqueryValue]) -> EvalContext:
        vectors = {name: Vec.from_column(col) for name, col in self.columns.items()}
        return EvalContext(
            vectors, self.row_count, self.aggregate_values, subquery_values
        )

    def filter(self, keep: np.ndarray) -> "_Frame":
        columns = {name: col.filter(keep) for name, col in self.columns.items()}
        aggregates = {
            key: Vec(
                vec.data[keep],
                None if vec.mask is None else vec.mask[keep],
                vec.sql_type,
            )
            for key, vec in self.aggregate_values.items()
        }
        return _Frame(columns, int(keep.sum()), aggregates)

    def take(self, indices: np.ndarray) -> "_Frame":
        columns = {name: col.take(indices) for name, col in self.columns.items()}
        aggregates = {
            key: Vec(
                vec.data[indices],
                None if vec.mask is None else vec.mask[indices],
                vec.sql_type,
            )
            for key, vec in self.aggregate_values.items()
        }
        return _Frame(columns, len(indices), aggregates)


class Executor:
    """Executes physical plans against the catalog's stored tables."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog

    def execute(self, plan: Plan) -> Table:
        """Run *plan* and return the result with its output column names.

        When operator profiling is armed (ambient telemetry with
        ``profile=True``, or a :func:`~repro.obs.profile.capture_profile`
        block), the outermost execute() of a statement opens a
        :class:`~repro.obs.profile.ProfileRun`; nested execute() calls
        (subquery scans, UNION branches) join the in-flight run so their
        operators land under the enclosing operator's subtree.
        """
        if _obs_profile.ACTIVE_RUN.get() is None:
            target = _obs_profile.capture_target()
            if target is not None:
                run = _obs_profile.ProfileRun()
                token = _obs_profile.ACTIVE_RUN.set(run)
                try:
                    result = self._execute(plan)
                finally:
                    _obs_profile.ACTIVE_RUN.reset(token)
                target.record(run.finalize())
                return result
        return self._execute(plan)

    def _execute(self, plan: Plan) -> Table:
        subquery_values = {
            node_id: self._run_subplan(subplan.kind, subplan.plan)
            for node_id, subplan in plan.subplans.items()
        }
        frame = self._run(plan.root, subquery_values)
        columns = list(frame.columns.values())
        # Projection already renamed columns; assert the schema lines up.
        if plan.output_names and len(columns) == len(plan.output_names):
            columns = [
                Column(name, col.sql_type, col.data, col.null_mask)
                for name, col in zip(plan.output_names, columns)
            ]
        return Table("result", columns)

    def _run_subplan(self, kind: str, plan: Plan) -> SubqueryValue:
        result = self.execute(plan)
        if kind == "exists":
            return SubqueryValue(kind="exists", exists=result.row_count > 0)
        if not result.columns:
            raise ExecutionError("subquery returned no columns")
        first = result.columns[0]
        if kind == "in":
            values = first.non_null_values()
            return SubqueryValue(kind="in", values=values, had_null=first.has_nulls)
        # scalar
        if result.row_count == 0:
            return SubqueryValue(kind="scalar", scalar=None, scalar_type=first.sql_type)
        if result.row_count > 1:
            raise ExecutionError("more than one row returned by a scalar subquery")
        is_null = first.null_mask is not None and bool(first.null_mask[0])
        scalar = None if is_null else _to_python(first.data[0])
        return SubqueryValue(kind="scalar", scalar=scalar, scalar_type=first.sql_type)

    # -- dispatch ---------------------------------------------------------------

    def _run(
        self, node: PlanNode, subquery_values: dict[int, SubqueryValue]
    ) -> _Frame:
        """One operator boundary — where the governor gets its say.

        The materializing executor's analogue of a volcano ``next()`` call:
        before an operator runs, the ambient governor (if any) checks the
        deadline and injects engine faults; after it materializes, its
        output frame is charged against the row and memory budgets and (when
        profiling is armed) recorded into the statement's profile tree.
        """
        governor = _governor_context.current_governor()
        run = _obs_profile.ACTIVE_RUN.get()
        if governor is None and run is None:
            return self._dispatch(node, subquery_values)
        if run is None:
            return self._run_governed(governor, node, subquery_values)
        profile, started = run.enter(node)
        rows = 0
        try:
            if governor is None:
                frame = self._dispatch(node, subquery_values)
            else:
                frame = self._run_governed(governor, node, subquery_values)
            rows = frame.row_count
            return frame
        finally:
            run.exit(profile, started, rows)

    def _run_governed(
        self, governor, node: PlanNode, subquery_values: dict[int, SubqueryValue]
    ) -> _Frame:
        name = type(node).__name__
        governor.begin_operator(name)
        frame = self._dispatch(node, subquery_values)
        governor.charge_frame(name, frame.row_count, _frame_bytes(frame))
        return frame

    def _dispatch(
        self, node: PlanNode, subquery_values: dict[int, SubqueryValue]
    ) -> _Frame:
        if isinstance(node, (SeqScanNode, IndexScanNode)):
            return self._run_scan(node, subquery_values)
        if isinstance(node, SubqueryScanNode):
            return self._run_subquery_scan(node, subquery_values)
        if isinstance(node, HashJoinNode):
            return self._run_hash_join(node, subquery_values)
        if isinstance(node, NestedLoopJoinNode):
            return self._run_nested_loop(node, subquery_values)
        if isinstance(node, FilterNode):
            frame = self._run(node.child, subquery_values)
            return self._apply_filter(frame, node.condition, subquery_values)
        if isinstance(node, AggregateNode):
            return self._run_aggregate(node, subquery_values)
        if isinstance(node, SortNode):
            return self._run_sort(node, subquery_values)
        if isinstance(node, ProjectNode):
            return self._run_project(node, subquery_values)
        if isinstance(node, DistinctNode):
            return self._run_distinct(node, subquery_values)
        if isinstance(node, LimitNode):
            return self._run_limit(node, subquery_values)
        if isinstance(node, ResultNode):
            return self._run_result(node, subquery_values)
        if isinstance(node, AppendNode):
            return self._run_append(node)
        if isinstance(node, InsertNode):
            return self._run_insert(node, subquery_values)
        if isinstance(node, UpdateNode):
            return self._run_update(node, subquery_values)
        if isinstance(node, DeleteNode):
            return self._run_delete(node, subquery_values)
        raise ExecutionError(f"cannot execute node {type(node).__name__}")

    # -- scans --------------------------------------------------------------------

    def _run_scan(
        self,
        node: SeqScanNode | IndexScanNode,
        subquery_values: dict[int, SubqueryValue],
    ) -> _Frame:
        data = self._catalog.data(node.table_name)
        columns = {
            f"{node.binding}.{col.name}": col for col in data.columns
        }
        frame = _Frame(columns, data.row_count)
        return self._apply_filter(frame, node.filter, subquery_values)

    def _run_subquery_scan(
        self, node: SubqueryScanNode, subquery_values: dict[int, SubqueryValue]
    ) -> _Frame:
        result = self.execute(node.subplan)
        columns = {f"{node.alias}.{col.name}": col for col in result.columns}
        frame = _Frame(columns, result.row_count)
        return self._apply_filter(frame, node.filter, subquery_values)

    def _apply_filter(
        self,
        frame: _Frame,
        condition: ast.Expression | None,
        subquery_values: dict[int, SubqueryValue],
    ) -> _Frame:
        if condition is None:
            return frame
        keep = truthy(evaluate(condition, frame.context(subquery_values)))
        return frame.filter(keep)

    # -- joins ---------------------------------------------------------------------

    def _run_hash_join(
        self, node: HashJoinNode, subquery_values: dict[int, SubqueryValue]
    ) -> _Frame:
        left = self._run(node.left, subquery_values)
        right = self._run(node.right, subquery_values)
        left_codes, left_valid = _join_key_codes(
            node.left_keys, left, right, subquery_values, prefer=left
        )
        right_codes, right_valid = _join_key_codes(
            node.right_keys, left, right, subquery_values, prefer=right
        )
        # Build hash table on the right side.
        governor = _governor_context.current_governor()
        table: dict[object, list[int]] = {}
        for i in np.flatnonzero(right_valid):
            table.setdefault(right_codes[i], []).append(int(i))
        left_idx: list[int] = []
        right_idx: list[int] = []
        matched_left = np.zeros(left.row_count, dtype=bool)
        matched_right = np.zeros(right.row_count, dtype=bool)
        for i in np.flatnonzero(left_valid):
            bucket = table.get(left_codes[i])
            if bucket:
                for j in bucket:
                    left_idx.append(int(i))
                    right_idx.append(j)
                # A skewed key can explode the output quadratically; check
                # the budgets periodically while the match list grows.
                if governor is not None and len(left_idx) & 0x1FFF == 0:
                    governor.admit(len(left_idx), 0, "HashJoinNode")
        li = np.array(left_idx, dtype=np.int64)
        ri = np.array(right_idx, dtype=np.int64)
        joined = _combine_frames(left.take(li), right.take(ri))
        if node.residual is not None:
            keep = truthy(
                evaluate(node.residual, joined.context(subquery_values))
            )
            joined = joined.filter(keep)
            li, ri = li[keep], ri[keep]
        matched_left[li] = True
        matched_right[ri] = True
        if node.join_type in ("left", "full"):
            joined = _append_outer_rows(joined, left, right, ~matched_left, side="left")
        if node.join_type in ("right", "full"):
            joined = _append_outer_rows(joined, left, right, ~matched_right, side="right")
        return joined

    def _run_nested_loop(
        self, node: NestedLoopJoinNode, subquery_values: dict[int, SubqueryValue]
    ) -> _Frame:
        left = self._run(node.left, subquery_values)
        right = self._run(node.right, subquery_values)
        governor = _governor_context.current_governor()
        if governor is not None:
            # Pre-admit the cross product before np.repeat materializes it —
            # this is the operator that turns a hallucinated comma join into
            # an allocation the process may not survive.
            product = left.row_count * right.row_count
            governor.admit(
                product,
                product * (_row_bytes(left) + _row_bytes(right)),
                "NestedLoopJoinNode",
            )
        li = np.repeat(np.arange(left.row_count), right.row_count)
        ri = np.tile(np.arange(right.row_count), left.row_count)
        joined = _combine_frames(left.take(li), right.take(ri))
        if node.condition is not None:
            keep = truthy(
                evaluate(node.condition, joined.context(subquery_values))
            )
            if node.join_type == "left":
                matched = np.zeros(left.row_count, dtype=bool)
                matched[li[keep]] = True
                joined = joined.filter(keep)
                joined = _append_outer_rows(joined, left, right, ~matched, side="left")
                return joined
            joined = joined.filter(keep)
        return joined

    # -- aggregation -----------------------------------------------------------------

    def _run_aggregate(
        self, node: AggregateNode, subquery_values: dict[int, SubqueryValue]
    ) -> _Frame:
        child = self._run(node.child, subquery_values)
        context = child.context(subquery_values)
        if node.group_exprs:
            key_vecs = [evaluate(g, context) for g in node.group_exprs]
            codes, num_groups = _factorize_many(key_vecs, child.row_count)
        else:
            codes = np.zeros(child.row_count, dtype=np.int64)
            num_groups = 1  # global aggregate: one group even over zero rows
        representatives = _first_index_per_group(codes, num_groups, child.row_count)
        aggregates: dict[int, Vec] = {}
        for call in node.aggregate_calls:
            if id(call) not in aggregates:
                aggregates[id(call)] = _compute_aggregate(
                    call, codes, num_groups, context
                )
        frame = child.take(representatives)
        frame.aggregate_values = aggregates
        frame.row_count = num_groups
        if node.having is not None:
            keep = truthy(evaluate(node.having, frame.context(subquery_values)))
            frame = frame.filter(keep)
        return frame

    # -- sort / project / distinct / limit ----------------------------------------------

    def _run_sort(
        self, node: SortNode, subquery_values: dict[int, SubqueryValue]
    ) -> _Frame:
        frame = self._run(node.child, subquery_values)
        if frame.row_count <= 1 or not node.order_items:
            return frame
        governor = _governor_context.current_governor()
        context = frame.context(subquery_values)
        keys: list[np.ndarray] = []
        for order in node.order_items:
            vec = evaluate(order.expression, context)
            keys.append(_sort_key(vec, order.descending))
            if governor is not None:
                # Each key materializes a full-width float array; re-check
                # between keys rather than only after the whole sort.
                governor.check()
        # np.lexsort sorts by the last key first.
        order_idx = np.lexsort(tuple(reversed(keys)))
        return frame.take(order_idx)

    def _run_project(
        self, node: ProjectNode, subquery_values: dict[int, SubqueryValue]
    ) -> _Frame:
        frame = self._run(node.child, subquery_values)
        context = frame.context(subquery_values)
        columns: dict[str, Column] = {}
        for name, item in zip(node.output_names, node.items):
            vec = evaluate(item.expression, context)
            columns[name] = vec.to_column(name)
        return _Frame(columns, frame.row_count)

    def _run_distinct(
        self, node: DistinctNode, subquery_values: dict[int, SubqueryValue]
    ) -> _Frame:
        frame = self._run(node.child, subquery_values)
        if frame.row_count == 0:
            return frame
        vecs = [Vec.from_column(col) for col in frame.columns.values()]
        codes, num_groups = _factorize_many(vecs, frame.row_count)
        firsts = _first_index_per_group(codes, num_groups, frame.row_count)
        firsts.sort()  # keep first occurrences in their original order
        return frame.take(firsts)

    def _run_limit(
        self, node: LimitNode, subquery_values: dict[int, SubqueryValue]
    ) -> _Frame:
        frame = self._run(node.child, subquery_values)
        start = node.offset or 0
        stop = frame.row_count if node.limit is None else start + node.limit
        indices = np.arange(start, min(stop, frame.row_count), dtype=np.int64)
        return frame.take(indices)

    def _run_append(self, node: AppendNode) -> _Frame:
        """UNION [ALL]: run each branch and concatenate positionally."""
        tables = [self.execute(plan) for plan in node.plans]
        first = tables[0]
        columns: dict[str, Column] = {}
        for index, proto in enumerate(first.columns):
            branch_columns = [t.columns[index] for t in tables]
            columns[f"__u{index}.{proto.name}"] = _concat_columns(
                proto.name, branch_columns
            )
        frame = _Frame(columns, sum(t.row_count for t in tables))
        if node.deduplicate and frame.row_count:
            vecs = [Vec.from_column(c) for c in frame.columns.values()]
            codes, num_groups = _factorize_many(vecs, frame.row_count)
            firsts = _first_index_per_group(codes, num_groups, frame.row_count)
            firsts.sort()
            frame = frame.take(firsts)
        return frame

    def _run_result(
        self, node: ResultNode, subquery_values: dict[int, SubqueryValue]
    ) -> _Frame:
        context = EvalContext({}, 1, {}, subquery_values)
        columns: dict[str, Column] = {}
        for name, item in zip(node.output_names, node.items):
            vec = evaluate(item.expression, context)
            columns[name] = vec.to_column(name)
        return _Frame(columns, 1)

    # -- DML --------------------------------------------------------------------------
    #
    # The write path is statement-level-atomic: each operator materializes
    # the statement's complete effect on a *new* Table first, and only then
    # publishes it through Catalog.note_mutation (the single commit point).
    # Any error raised earlier — constraint violation, governor budget trip,
    # injected fault — leaves the stored table untouched.

    @staticmethod
    def _dml_frame(count: int) -> _Frame:
        """The one-row ``rows_affected`` result every DML statement returns."""
        column = Column(
            "rows_affected", SqlType.BIGINT, np.array([count], dtype=np.int64)
        )
        return _Frame({"rows_affected": column}, 1)

    def _run_insert(
        self, node: InsertNode, subquery_values: dict[int, SubqueryValue]
    ) -> _Frame:
        meta = self._catalog.table(node.table_name)
        data = self._catalog.data(node.table_name)
        incoming: dict[str, list] = {}
        if node.source is not None:
            result = self.execute(node.source)
            count = result.row_count
            for target_name, col in zip(node.columns, result.columns):
                target_type = meta.column(target_name).sql_type
                incoming[target_name] = [
                    _convert_write_value(
                        value, col.sql_type, target_type, meta.name, target_name
                    )
                    for value in _column_python_values(col)
                ]
        else:
            count = len(node.rows)
            incoming = {name: [] for name in node.columns}
            context = EvalContext({}, 1, {}, subquery_values)
            for row in node.rows:
                for target_name, expression in zip(node.columns, row):
                    vec = evaluate(expression, context)
                    is_null = vec.mask is not None and bool(vec.mask[0])
                    value = None if is_null else _to_python(vec.data[0])
                    incoming[target_name].append(
                        _convert_write_value(
                            value,
                            vec.sql_type,
                            meta.column(target_name).sql_type,
                            meta.name,
                            target_name,
                        )
                    )
        governor = _governor_context.current_governor()
        if governor is not None:
            governor.admit(count, count * meta.row_width, "InsertNode")
        pieces: list[Column] = []
        for column_meta in meta.columns:
            values = incoming.get(column_meta.name, [None] * count)
            _reject_nulls(meta, column_meta.name, values)
            pieces.append(
                Column.from_values(column_meta.name, column_meta.sql_type, values)
            )
        new_table = data.append_rows(Table(meta.name, pieces))
        _enforce_unique(self._catalog, meta, new_table)
        if governor is not None:
            governor.charge_rows(count)
        self._catalog.note_mutation(meta.name, new_table, appended=count)
        return self._dml_frame(count)

    def _run_update(
        self, node: UpdateNode, subquery_values: dict[int, SubqueryValue]
    ) -> _Frame:
        meta = self._catalog.table(node.table_name)
        data, frame, keep = self._mutation_scan(node.child, subquery_values)
        positions = np.flatnonzero(keep)
        count = int(len(positions))
        governor = _governor_context.current_governor()
        if governor is not None:
            governor.admit(count, count * meta.row_width, "UpdateNode")
        # Assignments are evaluated over the *matched* rows only, so an
        # expression that would error on an unmatched row (1/y with y = 0,
        # say) cannot fail a statement whose WHERE excludes that row.
        context = frame.filter(keep).context(subquery_values)
        new_table = data
        for assignment in node.assignments:
            vec = evaluate(assignment.value, context)
            column_meta = meta.column(assignment.column)
            values = []
            for i in range(count):
                is_null = vec.mask is not None and bool(vec.mask[i])
                value = None if is_null else _to_python(vec.data[i])
                values.append(
                    _convert_write_value(
                        value,
                        vec.sql_type,
                        column_meta.sql_type,
                        meta.name,
                        assignment.column,
                    )
                )
            _reject_nulls(meta, assignment.column, values)
            old = new_table.column(assignment.column)
            new_data = old.data.copy()
            new_mask = (
                old.null_mask.copy()
                if old.null_mask is not None
                else np.zeros(len(old), dtype=bool)
            )
            for position, value in zip(positions, values):
                if value is None:
                    new_mask[position] = True
                    new_data[position] = None if new_data.dtype == object else 0
                else:
                    new_data[position] = value
                    new_mask[position] = False
            new_table = new_table.with_column(
                Column(
                    old.name,
                    old.sql_type,
                    new_data,
                    new_mask if new_mask.any() else None,
                )
            )
        _enforce_unique(
            self._catalog,
            meta,
            new_table,
            changed_columns={a.column for a in node.assignments},
        )
        if governor is not None:
            governor.charge_rows(count)
        self._catalog.note_mutation(
            meta.name,
            new_table,
            changed_columns=[a.column for a in node.assignments],
        )
        return self._dml_frame(count)

    def _run_delete(
        self, node: DeleteNode, subquery_values: dict[int, SubqueryValue]
    ) -> _Frame:
        meta = self._catalog.table(node.table_name)
        data, frame, keep = self._mutation_scan(node.child, subquery_values)
        count = int(keep.sum())
        governor = _governor_context.current_governor()
        if governor is not None:
            governor.admit(count, 0, "DeleteNode")
        new_table = data.filter(~keep)
        if governor is not None:
            governor.charge_rows(count)
        self._catalog.note_mutation(meta.name, new_table)
        return self._dml_frame(count)

    def _mutation_scan(
        self,
        scan: PlanNode,
        subquery_values: dict[int, SubqueryValue],
    ) -> tuple[Table, _Frame, np.ndarray]:
        """Run an UPDATE/DELETE child scan, keeping base-table row positions.

        The regular scan operator loses positions when it filters, and the
        write path needs them to address rows in place — so the scan is
        inlined here, with the same governor boundary (fault injection,
        deadline check, frame charge) the dispatcher would have applied.
        """
        if not isinstance(scan, (SeqScanNode, IndexScanNode)):
            raise ExecutionError(
                f"unexpected DML child operator {type(scan).__name__}"
            )
        governor = _governor_context.current_governor()
        name = type(scan).__name__
        if governor is not None:
            governor.begin_operator(name)
        data = self._catalog.data(scan.table_name)
        columns = {f"{scan.binding}.{c.name}": c for c in data.columns}
        frame = _Frame(columns, data.row_count)
        if scan.filter is not None:
            keep = truthy(evaluate(scan.filter, frame.context(subquery_values)))
        else:
            keep = np.ones(data.row_count, dtype=bool)
        if governor is not None:
            governor.charge_frame(name, data.row_count, _frame_bytes(frame))
        return data, frame, keep


def _unique_constraints(
    catalog, meta, changed_columns: set[str] | None
) -> list[tuple[str, tuple[str, ...]]]:
    """The uniqueness constraints a write into *meta* must satisfy.

    The primary key is one (possibly composite) constraint; every unique
    index contributes a single-column one.  A unique index whose column is
    the sole primary-key column restates the PK (the catalog auto-creates
    those), so it is folded away.  With *changed_columns* given (UPDATE),
    constraints over untouched columns are skipped: the statement cannot
    have introduced a duplicate there.
    """
    constraints: list[tuple[str, tuple[str, ...]]] = []
    pk = tuple(meta.primary_key)
    if pk:
        constraints.append((f"{meta.name}_pkey", pk))
    for index in catalog.indexes_of(meta.name):
        if not index.unique:
            continue
        if pk == (index.column,):
            continue
        constraints.append((index.name, (index.column,)))
    if changed_columns is not None:
        constraints = [
            entry
            for entry in constraints
            if any(column in changed_columns for column in entry[1])
        ]
    return constraints


def _enforce_unique(
    catalog, meta, new_table: Table, changed_columns: set[str] | None = None
) -> None:
    """Reject *new_table* if any PK/unique-index constraint has a duplicate.

    Runs on the statement's fully-materialized result *before* it is
    published through ``note_mutation``, so a violation rolls the statement
    back completely (the stored table is never touched).  Rows with a NULL
    anywhere in the key never conflict, matching SQL unique-index
    semantics.  The error is positioned (offset 0) so ``attach_source``
    renders a ``LINE 1: ...`` caret snippet like every other engine error.
    """
    for constraint, key_columns in _unique_constraints(
        catalog, meta, changed_columns
    ):
        duplicate = _first_duplicate_key(new_table, key_columns)
        if duplicate is None:
            continue
        keys = ", ".join(key_columns)
        values = ", ".join(repr(v) for v in duplicate)
        raise ConstraintError(
            f'duplicate key value violates unique constraint "{constraint}" '
            f"(Key ({keys})=({values}) already exists)",
            position=0,
        )


def _first_duplicate_key(
    table: Table, key_columns: tuple[str, ...]
) -> tuple | None:
    """The first duplicated key tuple among non-NULL keys, or None."""
    columns = [table.column(name) for name in key_columns]
    if len(columns) == 1:
        column = columns[0]
        data = column.data
        if column.null_mask is not None:
            data = data[~column.null_mask]
        if len(data) <= 1:
            return None
        values, counts = np.unique(data, return_counts=True)
        dupes = values[counts > 1]
        if len(dupes):
            return (_to_python(dupes[0]),)
        return None
    seen: set[tuple] = set()
    for position in range(table.row_count):
        key = []
        for column in columns:
            if column.null_mask is not None and column.null_mask[position]:
                key = None
                break
            key.append(_to_python(column.data[position]))
        if key is None:
            continue
        key = tuple(key)
        if key in seen:
            return key
        seen.add(key)
    return None


def _column_python_values(column: Column) -> list:
    """A column's values as Python objects, NULL as ``None``."""
    values = []
    for i in range(len(column)):
        if column.null_mask is not None and column.null_mask[i]:
            values.append(None)
        else:
            values.append(_to_python(column.data[i]))
    return values


def _convert_write_value(
    value, source_type: SqlType, target_type: SqlType, table: str, column: str
):
    """Coerce one value into the target column's storage representation.

    Mirrors the DDL loader's coercions (ISO date text -> epoch days, numeric
    widening/narrowing); a value the column type cannot hold is a
    :class:`ConstraintError`, the runtime counterpart of the binder's static
    type check.
    """
    if value is None:
        return None
    if hasattr(value, "item"):
        value = value.item()
    try:
        if source_type is SqlType.DATE and target_type is SqlType.TEXT:
            return days_to_date(int(value)).isoformat()
        if target_type is SqlType.DATE:
            if isinstance(value, str):
                return date_to_days(value)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(value)
            return int(value)
        if target_type in (SqlType.INTEGER, SqlType.BIGINT):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(value)
            return int(value)
        if target_type is SqlType.DOUBLE:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(value)
            return float(value)
        if target_type is SqlType.BOOLEAN:
            if not isinstance(value, (bool, int)):
                raise ValueError(value)
            return bool(value)
        if not isinstance(value, str):  # TEXT
            raise ValueError(value)
        return value
    except ValueError:
        raise ConstraintError(
            f'invalid value {value!r} for column "{column}" of type '
            f"{target_type.value} in table {table!r}"
        ) from None


def _reject_nulls(meta, column_name: str, values: list) -> None:
    """NOT NULL enforcement (declared or implied by the primary key)."""
    column_meta = meta.column(column_name)
    nullable = (
        column_meta.column_type.nullable
        and column_name not in meta.primary_key
    )
    if nullable or not any(value is None for value in values):
        return
    raise ConstraintError(
        f'null value in column "{column_name}" of relation '
        f'"{meta.name}" violates not-null constraint'
    )


def _frame_bytes(frame: _Frame) -> int:
    """Estimated bytes held by a materialized frame (governor accounting)."""
    return sum(col.estimated_bytes for col in frame.columns.values())


def _row_bytes(frame: _Frame) -> int:
    """Estimated bytes per row of *frame* (1 minimum, so products stay > 0)."""
    if frame.row_count == 0:
        return 1
    return max(_frame_bytes(frame) // frame.row_count, 1)


# -- join helpers -------------------------------------------------------------------


def _join_key_codes(
    keys: list[ast.Expression],
    left: _Frame,
    right: _Frame,
    subquery_values: dict[int, SubqueryValue],
    prefer: _Frame,
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate join keys on *prefer* and hash them to comparable tuples."""
    context = prefer.context(subquery_values)
    vecs = [evaluate(k, context) for k in keys]
    valid = np.ones(prefer.row_count, dtype=bool)
    for vec in vecs:
        if vec.mask is not None:
            valid &= ~vec.mask
    normalized = []
    for vec in vecs:
        if vec.sql_type is SqlType.TEXT:
            normalized.append(np.array([str(v) for v in vec.data], dtype=object))
        else:
            normalized.append(vec.data.astype(np.float64))
    if len(normalized) == 1:
        codes = normalized[0]
    else:
        codes = np.array(list(zip(*normalized)), dtype=object)
        codes = np.array([tuple(row) for row in codes], dtype=object)
    return codes, valid


def _combine_frames(left: _Frame, right: _Frame) -> _Frame:
    columns = dict(left.columns)
    for name, col in right.columns.items():
        if name in columns:
            raise ExecutionError(f"duplicate column binding {name!r} in join")
        columns[name] = col
    return _Frame(columns, left.row_count)


def _append_outer_rows(
    joined: _Frame,
    left: _Frame,
    right: _Frame,
    unmatched: np.ndarray,
    side: str,
) -> _Frame:
    count = int(unmatched.sum())
    if count == 0:
        return joined
    preserved = left if side == "left" else right
    null_side = right if side == "left" else left
    indices = np.flatnonzero(unmatched)
    preserved_rows = preserved.take(indices)
    columns: dict[str, Column] = {}
    for name in joined.columns:
        if name in preserved.columns:
            source = preserved_rows.columns[name]
        else:
            proto = null_side.columns[name]
            data = _null_array(proto, count)
            source = Column(proto.name, proto.sql_type, data, np.ones(count, dtype=bool))
        existing = joined.columns[name]
        merged_data = np.concatenate(
            [existing.data.astype(object), source.data.astype(object)]
        ) if existing.data.dtype == object or source.data.dtype == object else np.concatenate(
            [existing.data, source.data]
        )
        existing_mask = (
            existing.null_mask
            if existing.null_mask is not None
            else np.zeros(len(existing), dtype=bool)
        )
        source_mask = (
            source.null_mask
            if source.null_mask is not None
            else np.zeros(len(source), dtype=bool)
        )
        merged_mask = np.concatenate([existing_mask, source_mask])
        columns[name] = Column(
            existing.name,
            existing.sql_type,
            merged_data,
            merged_mask if merged_mask.any() else None,
        )
    return _Frame(columns, joined.row_count + count)


def _concat_columns(name: str, columns: list[Column]) -> Column:
    """Concatenate per-branch columns, widening to a common representation."""
    types = {c.sql_type for c in columns}
    if len(types) == 1:
        out_type = columns[0].sql_type
    elif all(t.is_numeric for t in types):
        out_type = SqlType.DOUBLE
    else:
        out_type = SqlType.TEXT
    pieces = []
    for column in columns:
        data = column.data
        if out_type is SqlType.TEXT and data.dtype != object:
            data = np.array([str(v) for v in data], dtype=object)
        elif out_type is SqlType.DOUBLE and data.dtype != np.float64:
            data = data.astype(np.float64)
        pieces.append(data)
    merged = np.concatenate(pieces) if pieces else np.zeros(0)
    masks = [
        c.null_mask
        if c.null_mask is not None
        else np.zeros(len(c), dtype=bool)
        for c in columns
    ]
    mask = np.concatenate(masks) if masks else None
    if mask is not None and not mask.any():
        mask = None
    return Column(name, out_type, merged, mask)


def _null_array(proto: Column, count: int) -> np.ndarray:
    if proto.data.dtype == object:
        return np.full(count, None, dtype=object)
    return np.zeros(count, dtype=proto.data.dtype)


# -- grouping helpers --------------------------------------------------------------


def _factorize(vec: Vec) -> np.ndarray:
    """Dense integer codes for *vec* values; NULL gets its own code."""
    if vec.sql_type is SqlType.TEXT or vec.data.dtype == object:
        values = np.array([str(v) for v in vec.data], dtype=object)
        _, codes = np.unique(values, return_inverse=True)
    else:
        _, codes = np.unique(vec.data, return_inverse=True)
    codes = codes.astype(np.int64) + 1
    if vec.mask is not None:
        codes[vec.mask] = 0
    return codes


def _factorize_many(vecs: list[Vec], row_count: int) -> tuple[np.ndarray, int]:
    """Combine per-key codes into dense group ids; returns (codes, #groups)."""
    if row_count == 0:
        return np.zeros(0, dtype=np.int64), 0
    combined = np.zeros(row_count, dtype=np.int64)
    for vec in vecs:
        codes = _factorize(vec)
        combined = combined * (int(codes.max()) + 1) + codes
    _, dense = np.unique(combined, return_inverse=True)
    return dense.astype(np.int64), int(dense.max()) + 1


def _first_index_per_group(
    codes: np.ndarray, num_groups: int, row_count: int
) -> np.ndarray:
    if row_count == 0:
        # Global aggregate over an empty input: a single synthetic group with
        # no representative row (the take() of an empty index set).
        return np.zeros(0, dtype=np.int64)
    # codes are dense 0..G-1, so unique() returns first occurrences in order.
    _, firsts = np.unique(codes, return_index=True)
    return firsts.astype(np.int64)


def _compute_aggregate(
    call: ast.FunctionCall,
    codes: np.ndarray,
    num_groups: int,
    context: EvalContext,
) -> Vec:
    name = call.name
    row_count = len(codes)
    if name == "count" and (not call.args or isinstance(call.args[0], ast.Star)):
        counts = np.bincount(codes, minlength=num_groups) if row_count else np.zeros(
            num_groups, dtype=np.int64
        )
        return Vec(counts.astype(np.int64), None, SqlType.BIGINT)
    arg = evaluate(call.args[0], context)
    valid = ~arg.mask if arg.mask is not None else np.ones(row_count, dtype=bool)
    if call.distinct:
        pair_codes = codes * (row_count + 1) + _factorize(arg)
        _, first_of_pair = np.unique(pair_codes, return_index=True)
        keep = np.zeros(row_count, dtype=bool)
        keep[first_of_pair] = True
        valid = valid & keep
    if name == "count":
        counts = np.bincount(codes[valid], minlength=num_groups)
        return Vec(counts.astype(np.int64), None, SqlType.BIGINT)
    if arg.sql_type is SqlType.TEXT:
        # MIN/MAX over text: per-group python reduction.
        out = np.full(num_groups, None, dtype=object)
        for group in range(num_groups):
            members = (codes == group) & valid
            if members.any():
                strings = [str(v) for v in arg.data[members]]
                out[group] = min(strings) if name == "min" else max(strings)
        mask = np.array([v is None for v in out], dtype=bool)
        return Vec(out, mask if mask.any() else None, SqlType.TEXT)
    values = arg.data.astype(np.float64)
    group_counts = np.bincount(codes[valid], minlength=num_groups)
    empty = group_counts == 0
    if name in ("sum", "avg"):
        # bincount returns int64 (not the weights' dtype) when the input is
        # empty; a DOUBLE sum column must stay float64 even with no rows.
        sums = np.bincount(
            codes[valid], weights=values[valid], minlength=num_groups
        ).astype(np.float64)
        if name == "sum":
            out_type = SqlType.DOUBLE if arg.sql_type is SqlType.DOUBLE else SqlType.BIGINT
            data = sums if out_type is SqlType.DOUBLE else np.round(sums).astype(np.int64)
            return Vec(data, empty if empty.any() else None, out_type)
        means = np.divide(
            sums, np.maximum(group_counts, 1), where=~empty, out=np.zeros(num_groups)
        )
        return Vec(means, empty if empty.any() else None, SqlType.DOUBLE)
    # min / max via sort + reduceat on valid rows
    result = np.zeros(num_groups, dtype=np.float64)
    if valid.any():
        sub_codes = codes[valid]
        sub_values = values[valid]
        order = np.argsort(sub_codes, kind="stable")
        sorted_codes = sub_codes[order]
        sorted_values = sub_values[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_codes[1:] != sorted_codes[:-1]))
        )
        reducer = np.minimum if name == "min" else np.maximum
        reduced = reducer.reduceat(sorted_values, starts)
        result[sorted_codes[starts]] = reduced
    out_type = arg.sql_type if arg.sql_type.is_numeric or arg.sql_type is SqlType.DATE else SqlType.DOUBLE
    if out_type in (SqlType.INTEGER, SqlType.BIGINT, SqlType.DATE):
        result = result.astype(np.int64)
    return Vec(result, empty if empty.any() else None, out_type)


def _sort_key(vec: Vec, descending: bool) -> np.ndarray:
    """Map a Vec to float codes where lexsort ascending gives SQL order.

    PostgreSQL defaults: NULLS LAST for ASC, NULLS FIRST for DESC — both fall
    out of mapping NULL to +inf and negating for DESC.
    """
    if vec.sql_type is SqlType.TEXT or vec.data.dtype == object:
        values = np.array([str(v) for v in vec.data], dtype=object)
        uniques, codes = np.unique(values, return_inverse=True)
        key = codes.astype(np.float64)
    else:
        key = vec.data.astype(np.float64)
    if descending:
        key = -key
    if vec.mask is not None:
        key = key.copy()
        # ASC: nulls last (+inf); DESC: nulls first (-inf after negation).
        key[vec.mask] = -np.inf if descending else np.inf
    return key


def _to_python(value):
    return value.item() if hasattr(value, "item") else value
