"""EXPLAIN output: the optimizer's cardinality and cost estimates.

:func:`render_plan` produces a PostgreSQL-flavoured plan tree string;
:class:`ExplainResult` is the structured form SQLBarber consumes (estimated
rows = "cardinality", total cost = "execution plan cost").
"""

from __future__ import annotations

from dataclasses import dataclass

from .plan_nodes import Plan, PlanNode


@dataclass(frozen=True)
class ExplainResult:
    """The estimates a client gets from ``EXPLAIN <query>``."""

    estimated_rows: float
    startup_cost: float
    total_cost: float
    plan_text: str

    @property
    def cardinality(self) -> float:
        """Alias used throughout SQLBarber: estimated output row count."""
        return self.estimated_rows


def explain_plan(plan: Plan) -> ExplainResult:
    return ExplainResult(
        estimated_rows=plan.est_rows,
        startup_cost=plan.startup_cost,
        total_cost=plan.total_cost,
        plan_text=render_plan(plan),
    )


def render_plan(plan: Plan) -> str:
    lines: list[str] = []
    _render_node(plan.root, lines, depth=0)
    for index, subplan in enumerate(plan.subplans.values(), start=1):
        lines.append(f"  SubPlan {index} ({subplan.kind})")
        _render_node(subplan.plan.root, lines, depth=2)
    return "\n".join(lines)


def _render_node(node: PlanNode, lines: list[str], depth: int) -> None:
    indent = "  " * depth
    arrow = "" if depth == 0 else "->  "
    detail = node.describe()
    detail_text = f" {detail}" if detail else ""
    lines.append(
        f"{indent}{arrow}{node.node_type}{detail_text}  "
        f"(cost={node.cost.startup:.2f}..{node.cost.total:.2f} "
        f"rows={max(round(node.est_rows), 0)})"
    )
    for child in node.children():
        _render_node(child, lines, depth + 1)
