"""Vectorized expression evaluation with SQL three-valued logic.

Expressions are evaluated over a batch of rows.  Every intermediate result is
a :class:`Vec` — a numpy array plus an optional null mask — so NULL semantics
(``NULL = 3`` is unknown, ``WHERE`` treats unknown as false, aggregates skip
NULLs) behave like a real DBMS.
"""

from __future__ import annotations

import datetime
import re
from dataclasses import dataclass

import numpy as np

from . import ast_nodes as ast
from .errors import ExecutionError, UnsupportedSqlError
from .storage import Column
from .types import SqlType, date_to_days, parse_type_name


@dataclass
class Vec:
    """A vector of values with an optional null mask (True = NULL)."""

    data: np.ndarray
    mask: np.ndarray | None
    sql_type: SqlType

    def __len__(self) -> int:
        return len(self.data)

    @staticmethod
    def from_column(column: Column) -> "Vec":
        return Vec(column.data, column.null_mask, column.sql_type)

    def to_column(self, name: str) -> Column:
        mask = self.mask if self.mask is not None and self.mask.any() else None
        return Column(name, self.sql_type, self.data, mask)

    @staticmethod
    def constant(value, length: int) -> "Vec":
        if value is None:
            return Vec(
                np.zeros(length, dtype=np.float64),
                np.ones(length, dtype=bool),
                SqlType.DOUBLE,
            )
        if isinstance(value, bool):
            return Vec(np.full(length, value, dtype=bool), None, SqlType.BOOLEAN)
        if isinstance(value, (int, np.integer)):
            return Vec(np.full(length, int(value), dtype=np.int64), None, SqlType.BIGINT)
        if isinstance(value, (float, np.floating)):
            return Vec(np.full(length, float(value)), None, SqlType.DOUBLE)
        if isinstance(value, (str,)):
            return Vec(np.full(length, value, dtype=object), None, SqlType.TEXT)
        if isinstance(value, datetime.date):
            return Vec(
                np.full(length, date_to_days(value), dtype=np.int64),
                None,
                SqlType.DATE,
            )
        raise ExecutionError(f"unsupported literal type: {type(value).__name__}")


@dataclass
class SubqueryValue:
    """The materialized result of an uncorrelated subquery expression."""

    kind: str  # 'in' | 'exists' | 'scalar'
    values: np.ndarray | None = None  # for 'in': the value set (non-null)
    had_null: bool = False  # whether the IN set contained NULLs
    exists: bool = False  # for 'exists'
    scalar: object = None  # for 'scalar' (None = NULL / empty result)
    scalar_type: SqlType = SqlType.DOUBLE


class EvalContext:
    """Everything an expression needs to evaluate over one batch."""

    def __init__(
        self,
        columns: dict[str, Vec],
        row_count: int,
        aggregate_values: dict[int, Vec] | None = None,
        subquery_values: dict[int, SubqueryValue] | None = None,
    ):
        self.columns = columns
        self.row_count = row_count
        self.aggregate_values = aggregate_values or {}
        self.subquery_values = subquery_values or {}

    def column(self, binding: str | None, name: str) -> Vec:
        key = f"{binding}.{name}" if binding else name
        if key in self.columns:
            return self.columns[key]
        # Unqualified lookup fallback (post-aggregation columns).
        if binding is None:
            matches = [v for k, v in self.columns.items() if k.endswith(f".{name}")]
            if len(matches) == 1:
                return matches[0]
        raise ExecutionError(f"column {key!r} not found at execution time")


def evaluate(expression: ast.Expression, context: EvalContext) -> Vec:
    """Evaluate *expression* over the batch described by *context*."""
    if isinstance(expression, ast.Literal):
        return Vec.constant(expression.value, context.row_count)
    if isinstance(expression, ast.Placeholder):
        raise ExecutionError(
            f"cannot execute a template containing placeholder {{{expression.name}}}"
        )
    if isinstance(expression, ast.ColumnRef):
        return context.column(expression.table, expression.column)
    if isinstance(expression, ast.FunctionCall):
        if id(expression) in context.aggregate_values:
            return context.aggregate_values[id(expression)]
        if expression.is_aggregate:
            raise ExecutionError(
                f"aggregate {expression.name.upper()} evaluated outside aggregation"
            )
        return _evaluate_scalar_function(expression, context)
    if isinstance(expression, ast.BinaryOp):
        return _evaluate_binary(expression, context)
    if isinstance(expression, ast.UnaryOp):
        return _evaluate_unary(expression, context)
    if isinstance(expression, ast.IsNull):
        operand = evaluate(expression.operand, context)
        is_null = (
            operand.mask.copy()
            if operand.mask is not None
            else np.zeros(len(operand), dtype=bool)
        )
        result = ~is_null if expression.negated else is_null
        return Vec(result, None, SqlType.BOOLEAN)
    if isinstance(expression, ast.Between):
        operand = evaluate(expression.operand, context)
        low = evaluate(expression.low, context)
        high = evaluate(expression.high, context)
        ge = _compare(operand, low, ">=")
        le = _compare(operand, high, "<=")
        result = _logical_and(ge, le)
        return _negate_bool(result) if expression.negated else result
    if isinstance(expression, ast.InList):
        return _evaluate_in_list(expression, context)
    if isinstance(expression, ast.InSubquery):
        return _evaluate_in_subquery(expression, context)
    if isinstance(expression, ast.Exists):
        sub = context.subquery_values.get(id(expression))
        if sub is None:
            raise ExecutionError("EXISTS subquery was not pre-executed")
        exists = sub.exists != expression.negated
        return Vec(np.full(context.row_count, exists, dtype=bool), None, SqlType.BOOLEAN)
    if isinstance(expression, ast.ScalarSubquery):
        sub = context.subquery_values.get(id(expression))
        if sub is None:
            raise ExecutionError("scalar subquery was not pre-executed")
        if sub.scalar is None:
            vec = Vec.constant(None, context.row_count)
            vec.sql_type = sub.scalar_type
            return vec
        return Vec.constant(sub.scalar, context.row_count)
    if isinstance(expression, ast.Like):
        return _evaluate_like(expression, context)
    if isinstance(expression, ast.Cast):
        return _evaluate_cast(expression, context)
    if isinstance(expression, ast.CaseWhen):
        return _evaluate_case(expression, context)
    if isinstance(expression, ast.Star):
        raise ExecutionError("'*' cannot be evaluated as a scalar expression")
    raise UnsupportedSqlError(f"unsupported expression: {type(expression).__name__}")


# -- boolean helpers (Kleene three-valued logic) -------------------------------


def truthy(vec: Vec) -> np.ndarray:
    """Collapse a boolean Vec to a filter mask: NULL counts as false."""
    values = vec.data.astype(bool)
    if vec.mask is not None:
        values = values & ~vec.mask
    return values


def _logical_and(a: Vec, b: Vec) -> Vec:
    av, bv = a.data.astype(bool), b.data.astype(bool)
    am = a.mask if a.mask is not None else np.zeros(len(av), dtype=bool)
    bm = b.mask if b.mask is not None else np.zeros(len(bv), dtype=bool)
    data = av & bv
    # unknown unless one side is definitely false
    false_a = ~av & ~am
    false_b = ~bv & ~bm
    mask = (am | bm) & ~(false_a | false_b)
    return Vec(data & ~mask, mask if mask.any() else None, SqlType.BOOLEAN)


def _logical_or(a: Vec, b: Vec) -> Vec:
    av, bv = a.data.astype(bool), b.data.astype(bool)
    am = a.mask if a.mask is not None else np.zeros(len(av), dtype=bool)
    bm = b.mask if b.mask is not None else np.zeros(len(bv), dtype=bool)
    true_a = av & ~am
    true_b = bv & ~bm
    data = true_a | true_b
    mask = (am | bm) & ~data
    return Vec(data, mask if mask.any() else None, SqlType.BOOLEAN)


def _negate_bool(vec: Vec) -> Vec:
    return Vec(~vec.data.astype(bool), vec.mask, SqlType.BOOLEAN)


# -- operators ---------------------------------------------------------------


def _evaluate_binary(expression: ast.BinaryOp, context: EvalContext) -> Vec:
    op = expression.op
    if op == "and":
        return _logical_and(
            evaluate(expression.left, context), evaluate(expression.right, context)
        )
    if op == "or":
        return _logical_or(
            evaluate(expression.left, context), evaluate(expression.right, context)
        )
    left = evaluate(expression.left, context)
    right = evaluate(expression.right, context)
    if op in ("=", "<>", "<", "<=", ">", ">="):
        return _compare(left, right, op)
    if op == "||":
        return _concat(left, right)
    return _arithmetic(left, right, op)


def _combined_mask(left: Vec, right: Vec) -> np.ndarray | None:
    if left.mask is None and right.mask is None:
        return None
    lm = left.mask if left.mask is not None else np.zeros(len(left), dtype=bool)
    rm = right.mask if right.mask is not None else np.zeros(len(right), dtype=bool)
    combined = lm | rm
    return combined if combined.any() else None


def _coerce_pair(left: Vec, right: Vec) -> tuple[np.ndarray, np.ndarray, SqlType]:
    """Bring both operands to a common comparable representation."""
    lt, rt = left.sql_type, right.sql_type
    # DATE vs TEXT: parse the text side as ISO dates.
    if lt is SqlType.DATE and rt is SqlType.TEXT:
        return left.data, _text_to_days(right.data), SqlType.DATE
    if rt is SqlType.DATE and lt is SqlType.TEXT:
        return _text_to_days(left.data), right.data, SqlType.DATE
    if lt is SqlType.TEXT or rt is SqlType.TEXT:
        return left.data.astype(object), right.data.astype(object), SqlType.TEXT
    if lt is SqlType.BOOLEAN or rt is SqlType.BOOLEAN:
        return left.data.astype(bool), right.data.astype(bool), SqlType.BOOLEAN
    if lt is SqlType.DOUBLE or rt is SqlType.DOUBLE:
        return (
            left.data.astype(np.float64),
            right.data.astype(np.float64),
            SqlType.DOUBLE,
        )
    return left.data.astype(np.int64), right.data.astype(np.int64), SqlType.BIGINT


def _text_to_days(values: np.ndarray) -> np.ndarray:
    out = np.zeros(len(values), dtype=np.int64)
    for i, value in enumerate(values):
        try:
            out[i] = date_to_days(str(value))
        except ValueError as exc:
            raise ExecutionError(f"invalid date literal: {value!r}") from exc
    return out


def _compare(left: Vec, right: Vec, op: str) -> Vec:
    lv, rv, common = _coerce_pair(left, right)
    if common is SqlType.TEXT:
        lv = np.array([str(v) for v in lv], dtype=object)
        rv = np.array([str(v) for v in rv], dtype=object)
    ops = {
        "=": lambda a, b: a == b,
        "<>": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }
    if common is SqlType.TEXT:
        result = np.array(
            [bool(ops[op](a, b)) for a, b in zip(lv, rv)], dtype=bool
        )
    else:
        result = ops[op](lv, rv)
    mask = _combined_mask(left, right)
    if mask is not None:
        result = result & ~mask
    return Vec(np.asarray(result, dtype=bool), mask, SqlType.BOOLEAN)


def _concat(left: Vec, right: Vec) -> Vec:
    lv = left.data.astype(object)
    rv = right.data.astype(object)
    data = np.array([f"{_fmt(a)}{_fmt(b)}" for a, b in zip(lv, rv)], dtype=object)
    return Vec(data, _combined_mask(left, right), SqlType.TEXT)


def _fmt(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _arithmetic(left: Vec, right: Vec, op: str) -> Vec:
    lt, rt = left.sql_type, right.sql_type
    mask = _combined_mask(left, right)
    if lt is SqlType.DATE and rt.is_numeric and op in ("+", "-"):
        rv = right.data.astype(np.int64)
        data = left.data + rv if op == "+" else left.data - rv
        return Vec(data.astype(np.int64), mask, SqlType.DATE)
    if lt is SqlType.DATE and rt is SqlType.DATE and op == "-":
        return Vec((left.data - right.data).astype(np.int64), mask, SqlType.INTEGER)
    if not (lt.is_numeric and rt.is_numeric):
        raise ExecutionError(f"operator {op} over {lt.value} and {rt.value}")
    use_float = SqlType.DOUBLE in (lt, rt) or op == "/"
    dtype = np.float64 if use_float else np.int64
    lv = left.data.astype(dtype)
    rv = right.data.astype(dtype)
    valid = ~mask if mask is not None else np.ones(len(lv), dtype=bool)
    if op == "+":
        data = lv + rv
    elif op == "-":
        data = lv - rv
    elif op == "*":
        data = lv * rv
    elif op in ("/", "%"):
        zero = (rv == 0) & valid
        if zero.any():
            raise ExecutionError("division by zero")
        safe = np.where(rv == 0, 1, rv)
        data = lv / safe if op == "/" else np.mod(lv, safe)
    else:  # pragma: no cover
        raise UnsupportedSqlError(f"operator {op}")
    result_type = SqlType.DOUBLE if use_float else SqlType.BIGINT
    return Vec(data, mask, result_type)


def _evaluate_unary(expression: ast.UnaryOp, context: EvalContext) -> Vec:
    operand = evaluate(expression.operand, context)
    if expression.op == "not":
        return _negate_bool(operand)
    if expression.op == "-":
        if not operand.sql_type.is_numeric:
            raise ExecutionError(f"cannot negate {operand.sql_type.value}")
        return Vec(-operand.data, operand.mask, operand.sql_type)
    raise UnsupportedSqlError(f"unary operator {expression.op}")


# -- IN / LIKE / CASE / CAST ----------------------------------------------------


def _evaluate_in_list(expression: ast.InList, context: EvalContext) -> Vec:
    operand = evaluate(expression.operand, context)
    result: Vec | None = None
    for item in expression.items:
        value = evaluate(item, context)
        eq = _compare(operand, value, "=")
        result = eq if result is None else _logical_or(result, eq)
    assert result is not None  # parser guarantees at least one item
    return _negate_bool(result) if expression.negated else result


def _evaluate_in_subquery(expression: ast.InSubquery, context: EvalContext) -> Vec:
    sub = context.subquery_values.get(id(expression))
    if sub is None:
        raise ExecutionError("IN subquery was not pre-executed")
    operand = evaluate(expression.operand, context)
    values = sub.values if sub.values is not None else np.array([], dtype=object)
    if operand.sql_type is SqlType.TEXT or values.dtype == np.dtype(object):
        member = np.isin(operand.data.astype(str), values.astype(str))
    else:
        member = np.isin(
            operand.data.astype(np.float64), values.astype(np.float64)
        )
    mask = operand.mask.copy() if operand.mask is not None else None
    if sub.had_null:
        # x IN (..., NULL) is NULL when x is not found — SQL semantics.
        unknown = ~member
        mask = unknown if mask is None else (mask | unknown)
        member = member & ~unknown
    if expression.negated:
        member = ~member
        if mask is not None:
            member = member & ~mask
    return Vec(member, mask, SqlType.BOOLEAN)


_LIKE_CACHE: dict[tuple[str, bool], re.Pattern] = {}


def like_to_regex(pattern: str, case_insensitive: bool = False) -> re.Pattern:
    """Compile a SQL LIKE pattern to an anchored regular expression."""
    key = (pattern, case_insensitive)
    if key not in _LIKE_CACHE:
        regex = "".join(
            ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
            for ch in pattern
        )
        flags = re.IGNORECASE if case_insensitive else 0
        _LIKE_CACHE[key] = re.compile(f"^{regex}$", flags | re.DOTALL)
    return _LIKE_CACHE[key]


def _evaluate_like(expression: ast.Like, context: EvalContext) -> Vec:
    operand = evaluate(expression.operand, context)
    pattern_vec = evaluate(expression.pattern, context)
    mask = _combined_mask(operand, pattern_vec)
    valid = ~mask if mask is not None else np.ones(len(operand), dtype=bool)
    patterns = pattern_vec.data
    uniform = len(set(patterns[valid].tolist())) <= 1 if valid.any() else True
    result = np.zeros(len(operand), dtype=bool)
    if uniform and valid.any():
        regex = like_to_regex(
            str(patterns[valid][0]), expression.case_insensitive
        )
        result[valid] = [
            bool(regex.match(str(v))) for v in operand.data[valid]
        ]
    else:
        for i in np.flatnonzero(valid):
            regex = like_to_regex(str(patterns[i]), expression.case_insensitive)
            result[i] = bool(regex.match(str(operand.data[i])))
    if expression.negated:
        result = ~result & valid
    return Vec(result, mask, SqlType.BOOLEAN)


def _evaluate_cast(expression: ast.Cast, context: EvalContext) -> Vec:
    operand = evaluate(expression.operand, context)
    try:
        target = parse_type_name(expression.type_name)
    except ValueError as exc:
        raise ExecutionError(str(exc)) from None
    if target is operand.sql_type:
        return operand
    if target.is_numeric:
        if operand.sql_type is SqlType.TEXT:
            try:
                data = np.array([float(v) for v in operand.data], dtype=np.float64)
            except ValueError as exc:
                raise ExecutionError(f"invalid numeric cast: {exc}") from None
        else:
            data = operand.data.astype(np.float64)
        if target in (SqlType.INTEGER, SqlType.BIGINT):
            data = data.astype(np.int64)
        return Vec(data, operand.mask, target)
    if target is SqlType.TEXT:
        data = np.array([_fmt(v) for v in operand.data], dtype=object)
        return Vec(data, operand.mask, SqlType.TEXT)
    if target is SqlType.DATE:
        if operand.sql_type is SqlType.TEXT:
            return Vec(_text_to_days(operand.data), operand.mask, SqlType.DATE)
        return Vec(operand.data.astype(np.int64), operand.mask, SqlType.DATE)
    if target is SqlType.BOOLEAN:
        return Vec(operand.data.astype(bool), operand.mask, SqlType.BOOLEAN)
    raise ExecutionError(f"unsupported cast target {target.value}")


def _evaluate_case(expression: ast.CaseWhen, context: EvalContext) -> Vec:
    length = context.row_count
    decided = np.zeros(length, dtype=bool)
    result_data: np.ndarray | None = None
    result_mask = np.zeros(length, dtype=bool)
    result_type = SqlType.TEXT
    for condition, value in expression.whens:
        cond_vec = evaluate(condition, context)
        take = truthy(cond_vec) & ~decided
        value_vec = evaluate(value, context)
        if result_data is None:
            result_type = value_vec.sql_type
            if result_type is SqlType.TEXT:
                result_data = np.full(length, None, dtype=object)
            else:
                result_data = np.zeros(length, dtype=value_vec.data.dtype)
            result_mask[:] = True  # undecided rows default to NULL
        result_data[take] = value_vec.data[take]
        value_nulls = (
            value_vec.mask[take]
            if value_vec.mask is not None
            else np.zeros(int(take.sum()), dtype=bool)
        )
        result_mask[take] = value_nulls
        decided |= take
    remaining = ~decided
    if expression.default is not None and remaining.any():
        default_vec = evaluate(expression.default, context)
        if result_data is None:
            result_type = default_vec.sql_type
            result_data = np.zeros(length, dtype=default_vec.data.dtype)
            result_mask[:] = True
        if result_data.dtype != default_vec.data.dtype and result_data.dtype != object:
            result_data = result_data.astype(np.float64)
            result_type = SqlType.DOUBLE
        result_data[remaining] = default_vec.data[remaining]
        default_nulls = (
            default_vec.mask[remaining]
            if default_vec.mask is not None
            else np.zeros(int(remaining.sum()), dtype=bool)
        )
        result_mask[remaining] = default_nulls
    if result_data is None:  # pragma: no cover - parser requires WHEN
        result_data = np.full(length, None, dtype=object)
    mask = result_mask if result_mask.any() else None
    return Vec(result_data, mask, result_type)


# -- scalar functions ------------------------------------------------------------


def _evaluate_scalar_function(call: ast.FunctionCall, context: EvalContext) -> Vec:
    name = call.name
    args = [evaluate(arg, context) for arg in call.args]
    if name == "coalesce":
        return _coalesce(args, context.row_count)
    if name in ("greatest", "least"):
        return _greatest_least(args, name == "greatest")
    if name == "concat":
        result = args[0]
        for other in args[1:]:
            result = _concat(result, other)
        return result
    if name == "extract":
        return _extract(args)
    if name in ("substr", "substring"):
        return _substring(args)
    if name in ("upper", "lower"):
        func = str.upper if name == "upper" else str.lower
        data = np.array([func(str(v)) for v in args[0].data], dtype=object)
        return Vec(data, args[0].mask, SqlType.TEXT)
    if name == "length":
        data = np.array([len(str(v)) for v in args[0].data], dtype=np.int64)
        return Vec(data, args[0].mask, SqlType.INTEGER)
    numeric = {
        "abs": np.abs,
        "floor": np.floor,
        "ceil": np.ceil,
        "sqrt": _safe_sqrt,
        "exp": np.exp,
        "ln": _safe_log,
        "log": _safe_log10,
    }
    if name in numeric:
        arg = args[0]
        data = numeric[name](arg.data.astype(np.float64))
        out_type = SqlType.DOUBLE
        if name in ("floor", "ceil"):
            data = data.astype(np.int64)
            out_type = SqlType.BIGINT
        if name == "abs":
            out_type = arg.sql_type if arg.sql_type.is_numeric else SqlType.DOUBLE
            if out_type is not SqlType.DOUBLE:
                data = data.astype(np.int64)
        return Vec(data, arg.mask, out_type)
    if name == "round":
        arg = args[0]
        digits = int(args[1].data[0]) if len(args) > 1 else 0
        data = np.round(arg.data.astype(np.float64), digits)
        return Vec(data, arg.mask, SqlType.DOUBLE)
    if name == "mod":
        return _arithmetic(args[0], args[1], "%")
    if name == "power":
        data = np.power(args[0].data.astype(np.float64), args[1].data.astype(np.float64))
        return Vec(data, _combined_mask(args[0], args[1]), SqlType.DOUBLE)
    raise UnsupportedSqlError(f"function {name}() is not implemented")


def _safe_sqrt(values: np.ndarray) -> np.ndarray:
    if (values < 0).any():
        raise ExecutionError("cannot take square root of a negative number")
    return np.sqrt(values)


def _safe_log(values: np.ndarray) -> np.ndarray:
    if (values <= 0).any():
        raise ExecutionError("cannot take logarithm of a non-positive number")
    return np.log(values)


def _safe_log10(values: np.ndarray) -> np.ndarray:
    if (values <= 0).any():
        raise ExecutionError("cannot take logarithm of a non-positive number")
    return np.log10(values)


def _substring(args: list[Vec]) -> Vec:
    """substr(text, start[, length]) with SQL's 1-based start position."""
    if len(args) < 2:
        raise ExecutionError("substr() requires at least two arguments")
    source = args[0]
    starts = args[1].data.astype(np.int64)
    lengths = args[2].data.astype(np.int64) if len(args) > 2 else None
    out = np.empty(len(source), dtype=object)
    for i, value in enumerate(source.data):
        text = str(value)
        begin = max(int(starts[i]) - 1, 0)
        if lengths is None:
            out[i] = text[begin:]
        else:
            out[i] = text[begin : begin + max(int(lengths[i]), 0)]
    mask = source.mask
    for other in args[1:]:
        mask = _combined_mask(Vec(out, mask, SqlType.TEXT), other)
    return Vec(out, mask, SqlType.TEXT)


def _coalesce(args: list[Vec], length: int) -> Vec:
    if not args:
        raise ExecutionError("COALESCE requires arguments")
    result = args[0]
    data = result.data.copy()
    mask = (
        result.mask.copy() if result.mask is not None else np.zeros(length, dtype=bool)
    )
    for other in args[1:]:
        fill = mask & (
            ~other.mask if other.mask is not None else np.ones(length, dtype=bool)
        )
        if data.dtype != other.data.dtype:
            data = data.astype(object)
        data[fill] = other.data[fill]
        mask = mask & ~fill
    return Vec(data, mask if mask.any() else None, result.sql_type)


def _greatest_least(args: list[Vec], greatest: bool) -> Vec:
    result = args[0]
    for other in args[1:]:
        lv, rv, common = _coerce_pair(result, other)
        picked = np.where(lv >= rv, lv, rv) if greatest else np.where(lv <= rv, lv, rv)
        result = Vec(picked, _combined_mask(result, other), common)
    return result


def _extract(args: list[Vec]) -> Vec:
    part = str(args[0].data[0]).lower()
    days = args[1].data.astype(np.int64)
    epoch = np.datetime64("1970-01-01")
    dates = epoch + days.astype("timedelta64[D]")
    years = dates.astype("datetime64[Y]").astype(int) + 1970
    if part == "year":
        out = years
    elif part == "month":
        months = dates.astype("datetime64[M]").astype(int)
        out = months % 12 + 1
    elif part == "day":
        month_start = dates.astype("datetime64[M]").astype("datetime64[D]")
        out = (dates - month_start).astype(int) + 1
    else:
        raise ExecutionError(f"EXTRACT field {part!r} not supported")
    return Vec(out.astype(np.int64), args[1].mask, SqlType.INTEGER)
