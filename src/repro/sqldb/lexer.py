"""Tokenizer for the SQL dialect understood by the embedded engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import SqlSyntaxError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    PLACEHOLDER = "placeholder"  # {p_1} style template placeholders
    EOF = "eof"


KEYWORDS = frozenset(
    """
    select from where group by having order limit offset as and or not
    join inner left right full outer cross on using distinct all
    case when then else end between in like ilike is null exists any some
    union intersect except asc desc cast
    count sum avg min max
    true false
    create table primary key foreign references index unique insert into values
    update set delete
    integer bigint double precision text date boolean varchar char numeric
    decimal float real extract interval substring
    """.split()
)

MULTI_CHAR_OPERATORS = ("<>", "!=", "<=", ">=", "||")
SINGLE_CHAR_OPERATORS = "+-*/%<>=."
PUNCTUATION = "(),;"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    type: TokenType
    value: str
    position: int

    def matches_keyword(self, *keywords: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in keywords


def tokenize(sql: str) -> list[Token]:
    """Split *sql* into tokens, raising :class:`SqlSyntaxError` on bad input.

    Identifiers and keywords are case-insensitive and normalized to lower
    case; string literals keep their case.  ``{name}`` sequences become
    :data:`TokenType.PLACEHOLDER` tokens so SQL *templates* can be parsed with
    the same grammar as executable queries.
    """
    tokens: list[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):  # line comment
            end = sql.find("\n", i)
            i = length if end == -1 else end + 1
            continue
        if sql.startswith("/*", i):  # block comment
            end = sql.find("*/", i + 2)
            if end == -1:
                raise SqlSyntaxError("unterminated block comment", position=i)
            i = end + 2
            continue
        if ch == "{":
            end = sql.find("}", i + 1)
            if end == -1:
                raise SqlSyntaxError("unterminated placeholder", position=i)
            name = sql[i + 1 : end].strip()
            if not name:
                raise SqlSyntaxError("empty placeholder", position=i)
            tokens.append(Token(TokenType.PLACEHOLDER, name, i))
            i = end + 1
            continue
        if ch == "'":
            value, i = _read_string(sql, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        if ch == '"':
            end = sql.find('"', i + 1)
            if end == -1:
                raise SqlSyntaxError("unterminated quoted identifier", position=i)
            tokens.append(Token(TokenType.IDENTIFIER, sql[i + 1 : end].lower(), i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and sql[i + 1].isdigit()):
            value, i = _read_number(sql, i)
            tokens.append(Token(TokenType.NUMBER, value, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i].lower()
            token_type = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENTIFIER
            tokens.append(Token(token_type, word, start))
            continue
        matched = False
        for op in MULTI_CHAR_OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in SINGLE_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, ch, i))
            i += 1
            continue
        if ch in PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


def _read_string(sql: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string literal starting at *start*.

    Doubled quotes (``''``) escape a quote, matching standard SQL.
    """
    chars: list[str] = []
    i = start + 1
    length = len(sql)
    while i < length:
        if sql[i] == "'":
            if i + 1 < length and sql[i + 1] == "'":
                chars.append("'")
                i += 2
                continue
            return "".join(chars), i + 1
        chars.append(sql[i])
        i += 1
    raise SqlSyntaxError("unterminated string literal", position=start)


def _read_number(sql: str, start: int) -> tuple[str, int]:
    i = start
    length = len(sql)
    seen_dot = False
    seen_exp = False
    while i < length:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            # Only treat as exponent when followed by digits or a sign.
            nxt = sql[i + 1] if i + 1 < length else ""
            if nxt.isdigit() or nxt in "+-":
                seen_exp = True
                i += 1
                if sql[i] in "+-":
                    i += 1
            else:
                break
        else:
            break
    return sql[start:i], i
