"""Recursive-descent parser for the engine's SQL dialect.

The dialect covers the subset that SQLBarber's workloads exercise:

* ``SELECT [DISTINCT] ... FROM ... [JOIN ... ON ...]*``
* ``WHERE`` with AND/OR/NOT, comparisons, BETWEEN, IN (list or subquery),
  LIKE/ILIKE, IS [NOT] NULL, EXISTS, scalar subqueries
* ``GROUP BY`` / ``HAVING`` with the aggregates COUNT/SUM/AVG/MIN/MAX
* ``ORDER BY`` / ``LIMIT`` / ``OFFSET``
* scalar expressions: arithmetic, string concatenation, CASE WHEN, CAST,
  and a library of scalar functions
* derived tables (subqueries in FROM)
* ``{name}`` placeholders anywhere an expression may appear, so the very
  same grammar parses SQL *templates*
* top-level ``UNION [ALL]`` chains (INTERSECT/EXCEPT and set operations
  inside subqueries are rejected with :class:`UnsupportedSqlError`)
"""

from __future__ import annotations

from . import ast_nodes as ast
from .errors import SqlSyntaxError, UnsupportedSqlError
from .lexer import Token, TokenType, tokenize

_COMPARISON_OPS = frozenset({"=", "<>", "!=", "<", "<=", ">", ">="})
_JOIN_KEYWORDS = frozenset({"join", "inner", "left", "right", "full", "cross"})

# Keywords that may still be used as table/column identifiers, matching how
# real dialects treat DDL-only and type-name words as non-reserved.
_NON_RESERVED = frozenset(
    """
    key primary foreign references index unique table insert into values
    create date text integer bigint boolean double precision varchar char
    numeric decimal float real interval update set delete
    """.split()
)

#: Any statement :func:`parse_sql` can return.
SqlStatement = (
    ast.SelectStatement
    | ast.CompoundSelect
    | ast.InsertStatement
    | ast.UpdateStatement
    | ast.DeleteStatement
)


def parse_select(sql: str) -> ast.SelectStatement | ast.CompoundSelect:
    """Parse *sql* into a (possibly UNION-compound) SELECT statement.

    Syntax errors leave the parser with line/column information attached
    (see :meth:`~repro.sqldb.errors.SqlError.attach_source`).
    """
    try:
        parser = _Parser(tokenize(sql))
        statement = parser.parse_statement()
        parser.expect_end()
    except SqlSyntaxError as exc:
        raise exc.attach_source(sql)
    return statement


def parse_sql(sql: str) -> SqlStatement:
    """Parse any supported statement: SELECT or DML (INSERT/UPDATE/DELETE).

    The statement kind is dispatched on the leading keyword, so a SELECT
    parses exactly as :func:`parse_select` would parse it (same AST, same
    errors).  Syntax errors carry attached source like ``parse_select``'s.
    """
    try:
        parser = _Parser(tokenize(sql))
        statement = parser.parse_any_statement()
        parser.expect_end()
    except SqlSyntaxError as exc:
        raise exc.attach_source(sql)
    return statement


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _accept_keyword(self, *keywords: str) -> bool:
        if self._current.matches_keyword(*keywords):
            self._advance()
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            self._error(f'expected "{keyword.upper()}"')

    def _accept_punct(self, value: str) -> bool:
        token = self._current
        if token.type is TokenType.PUNCTUATION and token.value == value:
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        if not self._accept_punct(value):
            self._error(f'expected "{value}"')

    def _accept_operator(self, *values: str) -> str | None:
        token = self._current
        if token.type is TokenType.OPERATOR and token.value in values:
            self._advance()
            return token.value
        return None

    def _error(self, message: str) -> None:
        token = self._current
        near = token.value if token.type is not TokenType.EOF else "end of input"
        raise SqlSyntaxError(f'{message}, at or near "{near}"', position=token.position)

    def expect_end(self) -> None:
        self._accept_punct(";")
        if self._current.type is not TokenType.EOF:
            self._error("unexpected trailing input")

    # -- statements --------------------------------------------------------

    def parse_any_statement(self) -> "SqlStatement":
        token = self._current
        if token.matches_keyword("insert"):
            return self._parse_insert()
        if token.matches_keyword("update"):
            return self._parse_update()
        if token.matches_keyword("delete"):
            return self._parse_delete()
        return self.parse_statement()

    def _parse_insert(self) -> ast.InsertStatement:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        position = self._current.position
        name = self._expect_identifier("table name")
        target = ast.TableRef(name=name, position=position)
        columns: list[str] | None = None
        if self._accept_punct("("):
            columns = [self._expect_identifier("column name")]
            while self._accept_punct(","):
                columns.append(self._expect_identifier("column name"))
            self._expect_punct(")")
        if self._accept_keyword("values"):
            rows = [self._parse_value_row()]
            while self._accept_punct(","):
                rows.append(self._parse_value_row())
            return ast.InsertStatement(target=target, columns=columns, rows=rows)
        if self._current.matches_keyword("select"):
            source = self.parse_statement()
            return ast.InsertStatement(
                target=target, columns=columns, source=source
            )
        self._error("expected VALUES or SELECT in INSERT")
        raise AssertionError("unreachable")

    def _parse_value_row(self) -> list[ast.Expression]:
        self._expect_punct("(")
        row = [self._parse_expression()]
        while self._accept_punct(","):
            row.append(self._parse_expression())
        self._expect_punct(")")
        return row

    def _parse_update(self) -> ast.UpdateStatement:
        self._expect_keyword("update")
        position = self._current.position
        name = self._expect_identifier("table name")
        target = ast.TableRef(name=name, position=position)
        self._expect_keyword("set")
        assignments = [self._parse_assignment()]
        while self._accept_punct(","):
            assignments.append(self._parse_assignment())
        where = self._parse_expression() if self._accept_keyword("where") else None
        return ast.UpdateStatement(
            target=target, assignments=assignments, where=where
        )

    def _parse_assignment(self) -> ast.Assignment:
        position = self._current.position
        column = self._expect_identifier("column name")
        if self._accept_operator("=") is None:
            self._error('expected "=" in SET assignment')
        return ast.Assignment(
            column=column, value=self._parse_expression(), position=position
        )

    def _parse_delete(self) -> ast.DeleteStatement:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        position = self._current.position
        name = self._expect_identifier("table name")
        target = ast.TableRef(name=name, position=position)
        where = self._parse_expression() if self._accept_keyword("where") else None
        return ast.DeleteStatement(target=target, where=where)

    def parse_statement(self) -> ast.SelectStatement | ast.CompoundSelect:
        statement = self._parse_select()
        if not self._current.matches_keyword("union", "intersect", "except"):
            return statement
        selects = [statement]
        ops: list[str] = []
        while True:
            if self._current.matches_keyword("intersect", "except"):
                raise UnsupportedSqlError(
                    f"set operation {self._current.value.upper()} "
                    "is not supported"
                )
            if not self._accept_keyword("union"):
                break
            op = "union all" if self._accept_keyword("all") else "union"
            ops.append(op)
            selects.append(self._parse_select())
        return ast.CompoundSelect(selects=selects, ops=ops)

    def _parse_subselect(self) -> ast.SelectStatement:
        """A nested SELECT (derived table / subquery): no set operations."""
        statement = self.parse_statement()
        if isinstance(statement, ast.CompoundSelect):
            raise UnsupportedSqlError(
                "set operations are not supported inside subqueries"
            )
        return statement

    def _parse_select(self) -> ast.SelectStatement:
        self._expect_keyword("select")
        distinct = False
        if self._accept_keyword("distinct"):
            distinct = True
        else:
            self._accept_keyword("all")
        select_items = self._parse_select_list()
        from_clause = None
        if self._accept_keyword("from"):
            from_clause = self._parse_table_expression()
        where = self._parse_expression() if self._accept_keyword("where") else None
        group_by: list[ast.Expression] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._parse_expression())
            while self._accept_punct(","):
                group_by.append(self._parse_expression())
        having = self._parse_expression() if self._accept_keyword("having") else None
        order_by: list[ast.OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())
        limit = offset = None
        if self._accept_keyword("limit"):
            limit = self._parse_nonnegative_int("LIMIT")
        if self._accept_keyword("offset"):
            offset = self._parse_nonnegative_int("OFFSET")
        return ast.SelectStatement(
            select_items=select_items,
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_nonnegative_int(self, clause: str) -> int:
        token = self._current
        if token.type is not TokenType.NUMBER or "." in token.value:
            self._error(f"{clause} expects an integer literal")
        self._advance()
        return int(token.value)

    def _parse_select_list(self) -> list[ast.SelectItem]:
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.SelectItem:
        expression = self._parse_expression()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier("alias")
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.SelectItem(expression=expression, alias=alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expression = self._parse_expression()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return ast.OrderItem(expression=expression, descending=descending)

    def _expect_identifier(self, what: str) -> str:
        token = self._current
        if token.type is not TokenType.IDENTIFIER and not (
            token.type is TokenType.KEYWORD and token.value in _NON_RESERVED
        ):
            self._error(f"expected {what}")
        self._advance()
        return token.value

    # -- FROM clause -------------------------------------------------------

    def _parse_table_expression(self) -> ast.TableExpression:
        left = self._parse_table_primary()
        while True:
            join_type = self._parse_join_type()
            if join_type is None:
                if self._accept_punct(","):
                    right = self._parse_table_primary()
                    left = ast.Join("cross", left, right, condition=None)
                    continue
                return left
            right = self._parse_table_primary()
            condition = None
            if join_type != "cross":
                self._expect_keyword("on")
                condition = self._parse_expression()
            left = ast.Join(join_type, left, right, condition)

    def _parse_join_type(self) -> str | None:
        token = self._current
        if token.type is not TokenType.KEYWORD or token.value not in _JOIN_KEYWORDS:
            return None
        if self._accept_keyword("join"):
            return "inner"
        if self._accept_keyword("inner"):
            self._expect_keyword("join")
            return "inner"
        if self._accept_keyword("cross"):
            self._expect_keyword("join")
            return "cross"
        for side in ("left", "right", "full"):
            if self._accept_keyword(side):
                self._accept_keyword("outer")
                self._expect_keyword("join")
                return side
        return None

    def _parse_table_primary(self) -> ast.TableExpression:
        if self._accept_punct("("):
            if self._current.matches_keyword("select"):
                subquery = self._parse_subselect()
                self._expect_punct(")")
                self._accept_keyword("as")
                alias = self._expect_identifier("derived table alias")
                return ast.DerivedTable(subquery=subquery, alias=alias)
            # Parenthesized join tree.
            inner = self._parse_table_expression()
            self._expect_punct(")")
            return inner
        position = self._current.position
        name = self._expect_identifier("table name")
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier("table alias")
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.TableRef(name=name, alias=alias, position=position)

    # -- expressions (precedence climbing) ----------------------------------

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self._accept_keyword("or"):
            left = ast.BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_not()
        while self._accept_keyword("and"):
            left = ast.BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expression:
        if self._accept_keyword("not"):
            return ast.UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_additive()
        op = self._accept_operator(*_COMPARISON_OPS)
        if op is not None:
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, left, self._parse_additive())
        if self._current.matches_keyword("is"):
            self._advance()
            negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return ast.IsNull(left, negated=negated)
        negated = False
        if self._current.matches_keyword("not") and self._peek().matches_keyword(
            "between", "in", "like", "ilike"
        ):
            self._advance()
            negated = True
        if self._accept_keyword("between"):
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated=negated)
        if self._accept_keyword("in"):
            return self._parse_in(left, negated)
        if self._accept_keyword("like"):
            return ast.Like(left, self._parse_additive(), negated=negated)
        if self._accept_keyword("ilike"):
            return ast.Like(
                left, self._parse_additive(), negated=negated, case_insensitive=True
            )
        if negated:
            self._error("expected BETWEEN, IN, or LIKE after NOT")
        return left

    def _parse_in(self, operand: ast.Expression, negated: bool) -> ast.Expression:
        self._expect_punct("(")
        if self._current.matches_keyword("select"):
            subquery = self._parse_subselect()
            self._expect_punct(")")
            return ast.InSubquery(operand, subquery, negated=negated)
        items = [self._parse_expression()]
        while self._accept_punct(","):
            items.append(self._parse_expression())
        self._expect_punct(")")
        return ast.InList(operand, items, negated=negated)

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            op = self._accept_operator("+", "-", "||")
            if op is None:
                return left
            left = ast.BinaryOp(op, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            op = self._accept_operator("*", "/", "%")
            if op is None:
                return left
            left = ast.BinaryOp(op, left, self._parse_unary())

    def _parse_unary(self) -> ast.Expression:
        if self._accept_operator("-"):
            return ast.UnaryOp("-", self._parse_unary())
        if self._accept_operator("+"):
            return self._parse_unary()
        return self._parse_primary()

    # -- primary expressions -------------------------------------------------

    def _parse_primary(self) -> ast.Expression:
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            if "." in token.value or "e" in token.value or "E" in token.value:
                return ast.Literal(float(token.value))
            return ast.Literal(int(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.PLACEHOLDER:
            self._advance()
            return ast.Placeholder(token.value)
        if token.matches_keyword("true"):
            self._advance()
            return ast.Literal(True)
        if token.matches_keyword("false"):
            self._advance()
            return ast.Literal(False)
        if token.matches_keyword("null"):
            self._advance()
            return ast.Literal(None)
        if token.matches_keyword("case"):
            return self._parse_case()
        if token.matches_keyword("cast"):
            return self._parse_cast()
        if token.matches_keyword("exists"):
            self._advance()
            self._expect_punct("(")
            subquery = self._parse_subselect()
            self._expect_punct(")")
            return ast.Exists(subquery)
        if token.matches_keyword("extract"):
            return self._parse_extract()
        if token.matches_keyword("count", "sum", "avg", "min", "max", "substring"):
            return self._parse_function_call(token.value)
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return ast.Star()
        if self._accept_punct("("):
            if self._current.matches_keyword("select"):
                subquery = self._parse_subselect()
                self._expect_punct(")")
                return ast.ScalarSubquery(subquery)
            expression = self._parse_expression()
            self._expect_punct(")")
            return expression
        if token.type is TokenType.IDENTIFIER or (
            token.type is TokenType.KEYWORD and token.value in _NON_RESERVED
        ):
            return self._parse_identifier_expression()
        self._error("expected expression")
        raise AssertionError("unreachable")

    def _parse_identifier_expression(self) -> ast.Expression:
        start = self._current
        name = self._advance().value
        # Function call?
        if self._current.type is TokenType.PUNCTUATION and self._current.value == "(":
            return self._parse_function_call(
                name, already_consumed_name=True, position=start.position
            )
        # Qualified reference?
        if self._accept_operator("."):
            token = self._current
            if token.type is TokenType.OPERATOR and token.value == "*":
                self._advance()
                return ast.Star(table=name)
            column = self._expect_identifier("column name")
            return ast.ColumnRef(column=column, table=name, position=start.position)
        return ast.ColumnRef(column=name, position=start.position)

    def _parse_function_call(
        self,
        name: str,
        already_consumed_name: bool = False,
        position: int | None = None,
    ) -> ast.Expression:
        if not already_consumed_name:
            position = self._current.position
            self._advance()
        self._expect_punct("(")
        distinct = self._accept_keyword("distinct")
        args: list[ast.Expression] = []
        if not self._accept_punct(")"):
            args.append(self._parse_expression())
            while self._accept_punct(","):
                args.append(self._parse_expression())
            self._expect_punct(")")
        return ast.FunctionCall(
            name=name, args=args, distinct=distinct, position=position
        )

    def _parse_case(self) -> ast.Expression:
        self._expect_keyword("case")
        whens: list[tuple[ast.Expression, ast.Expression]] = []
        while self._accept_keyword("when"):
            condition = self._parse_expression()
            self._expect_keyword("then")
            whens.append((condition, self._parse_expression()))
        if not whens:
            self._error("CASE requires at least one WHEN branch")
        default = self._parse_expression() if self._accept_keyword("else") else None
        self._expect_keyword("end")
        return ast.CaseWhen(whens=whens, default=default)

    def _parse_cast(self) -> ast.Expression:
        self._expect_keyword("cast")
        self._expect_punct("(")
        operand = self._parse_expression()
        self._expect_keyword("as")
        type_tokens: list[str] = []
        while self._current.type in (TokenType.KEYWORD, TokenType.IDENTIFIER):
            type_tokens.append(self._advance().value)
        if not type_tokens:
            self._error("expected type name in CAST")
        self._expect_punct(")")
        return ast.Cast(operand, " ".join(type_tokens))

    def _parse_extract(self) -> ast.Expression:
        self._expect_keyword("extract")
        self._expect_punct("(")
        part_token = self._advance()
        if part_token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            self._error("expected date part in EXTRACT")
        self._expect_keyword("from")
        operand = self._parse_expression()
        self._expect_punct(")")
        return ast.FunctionCall("extract", [ast.Literal(part_token.value), operand])
