"""Physical plan node definitions shared by the planner, executor, EXPLAIN."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from . import ast_nodes as ast
from .cost import Cost
from .types import SqlType


@dataclass
class PlanNode:
    """Base physical node: estimated rows plus (startup, total) cost."""

    est_rows: float = 0.0
    cost: Cost = field(default_factory=lambda: Cost(0.0, 0.0))

    @property
    def node_type(self) -> str:
        return type(self).__name__.removesuffix("Node")

    def children(self) -> list["PlanNode"]:
        return []

    def describe(self) -> str:
        """Extra detail appended to the node type in EXPLAIN output."""
        return ""


@dataclass
class SeqScanNode(PlanNode):
    """Full sequential scan of a base table with an optional pushed filter."""

    table_name: str = ""
    binding: str = ""
    filter: Optional[ast.Expression] = None

    @property
    def node_type(self) -> str:
        return "Seq Scan"

    def describe(self) -> str:
        alias = f" {self.binding}" if self.binding != self.table_name else ""
        return f"on {self.table_name}{alias}"


@dataclass
class IndexScanNode(PlanNode):
    """B-tree index scan driven by one indexable conjunct."""

    table_name: str = ""
    binding: str = ""
    index_name: str = ""
    index_column: str = ""
    filter: Optional[ast.Expression] = None

    @property
    def node_type(self) -> str:
        return "Index Scan"

    def describe(self) -> str:
        alias = f" {self.binding}" if self.binding != self.table_name else ""
        return f"using {self.index_name} on {self.table_name}{alias}"


@dataclass
class SubqueryScanNode(PlanNode):
    """A derived table: run the subplan, expose columns under *alias*."""

    subplan: "Plan" = None  # type: ignore[assignment]
    alias: str = ""
    filter: Optional[ast.Expression] = None

    @property
    def node_type(self) -> str:
        return "Subquery Scan"

    def describe(self) -> str:
        return f"on {self.alias}"

    def children(self) -> list[PlanNode]:
        return [self.subplan.root]


@dataclass
class HashJoinNode(PlanNode):
    """Equi-join: hash build on the right input, probe with the left."""

    left: PlanNode = None  # type: ignore[assignment]
    right: PlanNode = None  # type: ignore[assignment]
    left_keys: list[ast.Expression] = field(default_factory=list)
    right_keys: list[ast.Expression] = field(default_factory=list)
    join_type: str = "inner"
    residual: Optional[ast.Expression] = None

    @property
    def node_type(self) -> str:
        return f"Hash {self.join_type.capitalize()} Join" if self.join_type != "inner" else "Hash Join"

    def describe(self) -> str:
        conds = ", ".join(
            f"{_expr_text(l)} = {_expr_text(r)}"
            for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"({conds})" if conds else ""

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]


@dataclass
class NestedLoopJoinNode(PlanNode):
    """Materialized nested-loop join for non-equi and cross joins."""

    left: PlanNode = None  # type: ignore[assignment]
    right: PlanNode = None  # type: ignore[assignment]
    condition: Optional[ast.Expression] = None
    join_type: str = "inner"

    @property
    def node_type(self) -> str:
        return "Nested Loop"

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]


@dataclass
class FilterNode(PlanNode):
    """Residual predicate applied above its child."""

    child: PlanNode = None  # type: ignore[assignment]
    condition: Optional[ast.Expression] = None

    @property
    def node_type(self) -> str:
        return "Filter"

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class AggregateNode(PlanNode):
    """Grouped or global aggregation, with the HAVING filter folded in."""

    child: PlanNode = None  # type: ignore[assignment]
    group_exprs: list[ast.Expression] = field(default_factory=list)
    aggregate_calls: list[ast.FunctionCall] = field(default_factory=list)
    having: Optional[ast.Expression] = None

    @property
    def node_type(self) -> str:
        return "HashAggregate" if self.group_exprs else "Aggregate"

    def describe(self) -> str:
        if self.group_exprs:
            keys = ", ".join(_expr_text(g) for g in self.group_exprs)
            return f"group by {keys}"
        return ""

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class ProjectNode(PlanNode):
    """Select-list evaluation producing the statement's output columns."""

    child: PlanNode = None  # type: ignore[assignment]
    items: list[ast.SelectItem] = field(default_factory=list)
    output_names: list[str] = field(default_factory=list)
    output_types: list[SqlType] = field(default_factory=list)

    @property
    def node_type(self) -> str:
        return "Projection"

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class DistinctNode(PlanNode):
    """Duplicate elimination over the projected output (SELECT DISTINCT)."""

    child: PlanNode = None  # type: ignore[assignment]

    @property
    def node_type(self) -> str:
        return "Unique"

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class SortNode(PlanNode):
    """ORDER BY: sorts its child by the resolved order keys."""

    child: PlanNode = None  # type: ignore[assignment]
    order_items: list[ast.OrderItem] = field(default_factory=list)

    @property
    def node_type(self) -> str:
        return "Sort"

    def describe(self) -> str:
        keys = ", ".join(
            _expr_text(o.expression) + (" DESC" if o.descending else "")
            for o in self.order_items
        )
        return f"key: {keys}"

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class LimitNode(PlanNode):
    """LIMIT/OFFSET: row-range selection over its child."""

    child: PlanNode = None  # type: ignore[assignment]
    limit: Optional[int] = None
    offset: Optional[int] = None

    @property
    def node_type(self) -> str:
        return "Limit"

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class AppendNode(PlanNode):
    """UNION [ALL]: concatenate branch plans, optionally deduplicating."""

    plans: list["Plan"] = field(default_factory=list)
    deduplicate: bool = False

    @property
    def node_type(self) -> str:
        return "Unique over Append" if self.deduplicate else "Append"

    def children(self) -> list[PlanNode]:
        return [plan.root for plan in self.plans]


@dataclass
class ResultNode(PlanNode):
    """A FROM-less SELECT producing a single row."""

    items: list[ast.SelectItem] = field(default_factory=list)
    output_names: list[str] = field(default_factory=list)

    @property
    def node_type(self) -> str:
        return "Result"


@dataclass
class InsertNode(PlanNode):
    """INSERT: append literal rows or a source plan's output to a table.

    ``est_rows`` is the estimated number of rows written; the node's own
    output is always the single ``rows_affected`` row.
    """

    table_name: str = ""
    columns: list[str] = field(default_factory=list)
    rows: list[list[ast.Expression]] = field(default_factory=list)
    source: Optional["Plan"] = None

    @property
    def node_type(self) -> str:
        return "Insert"

    def describe(self) -> str:
        return f"on {self.table_name}"

    def children(self) -> list[PlanNode]:
        return [self.source.root] if self.source is not None else []


@dataclass
class UpdateNode(PlanNode):
    """UPDATE: rewrite assigned columns of the rows its child scan matches."""

    child: PlanNode = None  # type: ignore[assignment]
    table_name: str = ""
    assignments: list[ast.Assignment] = field(default_factory=list)

    @property
    def node_type(self) -> str:
        return "Update"

    def describe(self) -> str:
        columns = ", ".join(a.column for a in self.assignments)
        return f"on {self.table_name} set {columns}"

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class DeleteNode(PlanNode):
    """DELETE: remove the rows its child scan matches."""

    child: PlanNode = None  # type: ignore[assignment]
    table_name: str = ""

    @property
    def node_type(self) -> str:
        return "Delete"

    def describe(self) -> str:
        return f"on {self.table_name}"

    def children(self) -> list[PlanNode]:
        return [self.child]


@dataclass
class SubPlan:
    """An uncorrelated subquery expression, planned once and cached."""

    kind: str  # 'in' | 'exists' | 'scalar'
    plan: "Plan" = None  # type: ignore[assignment]


@dataclass
class Plan:
    """A complete plan for one statement."""

    root: PlanNode
    subplans: dict[int, SubPlan] = field(default_factory=dict)
    output_names: list[str] = field(default_factory=list)
    output_types: list[SqlType] = field(default_factory=list)
    # Stamped by the planner: whether this plan is eligible for the
    # vectorized executor (the database still checks operator support).
    use_vectorized: bool = False

    @property
    def est_rows(self) -> float:
        return self.root.est_rows

    @property
    def total_cost(self) -> float:
        return self.root.cost.total

    @property
    def startup_cost(self) -> float:
        return self.root.cost.startup


def _expr_text(expression: ast.Expression) -> str:
    """A compact, lossy rendering of an expression for EXPLAIN output."""
    if isinstance(expression, ast.ColumnRef):
        return str(expression)
    if isinstance(expression, ast.Literal):
        return repr(expression.value)
    if isinstance(expression, ast.BinaryOp):
        return f"{_expr_text(expression.left)} {expression.op} {_expr_text(expression.right)}"
    if isinstance(expression, ast.FunctionCall):
        inner = ", ".join(_expr_text(a) for a in expression.args)
        return f"{expression.name}({inner})"
    if isinstance(expression, ast.Star):
        return "*"
    return type(expression).__name__.lower()
