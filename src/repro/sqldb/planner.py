"""Cost-based query planner.

The planner turns a bound statement into a physical :class:`Plan`:

* WHERE conjuncts are pushed down to scans when they touch one binding;
* equi-conjuncts across two bindings become hash-join conditions;
* inner-join trees are re-ordered greedily by estimated output cardinality
  (outer-join trees keep their written shape, which is always correct);
* each base scan picks the cheaper of a sequential or index scan;
* aggregation, sorting, projection, DISTINCT, and LIMIT are layered on top.

Every node carries estimated rows and a (startup, total) cost computed from
:mod:`repro.sqldb.cost` — that pair is what ``EXPLAIN`` reports and what
SQLBarber uses as its "execution plan cost" optimization target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from . import ast_nodes as ast
from . import cost as costs
from .binder import Binder, BoundQuery
from .catalog import Catalog
from .errors import UnsupportedSqlError
from .plan_nodes import (
    AggregateNode,
    AppendNode,
    DeleteNode,
    DistinctNode,
    FilterNode,
    HashJoinNode,
    IndexScanNode,
    InsertNode,
    LimitNode,
    NestedLoopJoinNode,
    Plan,
    PlanNode,
    ProjectNode,
    ResultNode,
    SeqScanNode,
    SortNode,
    SubPlan,
    SubqueryScanNode,
    UpdateNode,
)
from .selectivity import count_operators, estimate_selectivity
from .stats import join_selectivity

_UNKNOWN_GROUP_NDV = 25.0


def shallow_walk(expression: ast.Node) -> Iterator[ast.Node]:
    """Walk an expression without descending into nested SELECTs."""
    yield expression
    if isinstance(expression, ast.SelectStatement):
        return
    for child in expression.children():
        if isinstance(child, ast.SelectStatement):
            yield child  # yield the statement itself but not its innards
        else:
            yield from shallow_walk(child)


def bindings_of(expression: ast.Expression) -> frozenset[str]:
    """The FROM-clause bindings referenced by *expression* (outer query only)."""
    found = set()
    for node in shallow_walk(expression):
        if isinstance(node, ast.ColumnRef) and node.table:
            found.add(node.table)
    return frozenset(found)


def split_conjuncts(expression: ast.Expression | None) -> list[ast.Expression]:
    """Flatten a boolean expression into its top-level AND-ed conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, ast.BinaryOp) and expression.op == "and":
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return [expression]


def conjoin(conjuncts: list[ast.Expression]) -> ast.Expression | None:
    """Combine conjuncts back into one expression (None for empty)."""
    if not conjuncts:
        return None
    combined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        combined = ast.BinaryOp("and", combined, conjunct)
    return combined


@dataclass
class _Source:
    """One FROM-clause input with its scan plan."""

    binding: str
    node: PlanNode
    table_name: Optional[str] = None


@dataclass
class _JoinCondition:
    """An equi-join conjunct linking exactly two bindings."""

    left_expr: ast.ColumnRef
    right_expr: ast.ColumnRef
    left_binding: str
    right_binding: str
    original: ast.Expression

    @property
    def bindings(self) -> frozenset[str]:
        return frozenset((self.left_binding, self.right_binding))


@dataclass
class _QueryContext:
    """Per-statement planning state."""

    binding_tables: dict[str, str] = field(default_factory=dict)

    def resolver(self, catalog: Catalog):
        def resolve(binding: str | None, column: str):
            if binding is None or binding not in self.binding_tables:
                return None
            table = self.binding_tables[binding]
            meta = catalog.table(table)
            if not meta.has_column(column):
                return None
            return meta.column(column).stats

        return resolve


class Planner:
    """Plans bound statements against a catalog."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog
        self._binder = Binder(catalog)
        # Plans are stamped eligible for the vectorized executor; the
        # database decides per-plan whether every operator is supported.
        self.use_vectorized = True

    def plan(self, bound: BoundQuery) -> Plan:
        statement = bound.statement
        if isinstance(statement, ast.InsertStatement):
            return self._plan_insert(bound)
        if isinstance(statement, (ast.UpdateStatement, ast.DeleteStatement)):
            return self._plan_mutation(bound)
        if isinstance(statement, ast.CompoundSelect):
            return self._plan_compound(bound)
        subplans = self._plan_subqueries(statement)
        context = _QueryContext()
        root = self._plan_body(bound, context)
        subplan_cost = sum(s.plan.root.cost.total for s in subplans.values())
        if subplan_cost:
            root.cost = root.cost.plus(subplan_cost)
        return Plan(
            root=root,
            subplans=subplans,
            output_names=bound.output_names,
            output_types=bound.output_types,
            use_vectorized=self.use_vectorized,
        )

    def _plan_compound(self, bound: BoundQuery) -> Plan:
        """UNION [ALL]: plan each branch and append them."""
        statement: ast.CompoundSelect = bound.statement  # type: ignore[assignment]
        branch_plans = [self._plan_nested(s) for s in statement.selects]
        total_rows = sum(p.est_rows for p in branch_plans)
        total_cost = sum(p.total_cost for p in branch_plans)
        startup = max((p.startup_cost for p in branch_plans), default=0.0)
        est_rows = total_rows
        if statement.deduplicates:
            # Duplicate elimination shrinks the output; without cross-branch
            # statistics use a flat reduction factor.
            est_rows = max(total_rows * 0.75, 1.0)
            total_cost += total_rows * costs.HASH_ENTRY_COST
        root = AppendNode(
            est_rows=est_rows,
            cost=costs.Cost(startup, total_cost),
            plans=branch_plans,
            deduplicate=statement.deduplicates,
        )
        return Plan(
            root=root,
            subplans={},
            output_names=bound.output_names,
            output_types=bound.output_types,
            use_vectorized=self.use_vectorized,
        )

    # -- DML -------------------------------------------------------------------

    def _plan_insert(self, bound: BoundQuery) -> Plan:
        statement: ast.InsertStatement = bound.statement  # type: ignore[assignment]
        meta = self._catalog.table(statement.target.name)
        columns = (
            list(statement.columns)
            if statement.columns is not None
            else meta.column_names
        )
        index_count = len(self._catalog.indexes_of(meta.name))
        if statement.source is not None:
            source_plan = self.plan(self._binder.bind(statement.source))
            est_rows = max(source_plan.est_rows, 0.0)
            child_cost = costs.Cost(
                source_plan.startup_cost, source_plan.total_cost
            )
            root = InsertNode(
                est_rows=est_rows,
                cost=costs.dml_cost(child_cost, est_rows, index_count),
                table_name=meta.name,
                columns=columns,
                source=source_plan,
            )
        else:
            est_rows = float(len(statement.rows))
            expr_ops = sum(
                count_operators(value)
                for row in statement.rows
                for value in row
            )
            child_cost = costs.Cost(0.0, expr_ops * costs.CPU_OPERATOR_COST)
            root = InsertNode(
                est_rows=est_rows,
                cost=costs.dml_cost(child_cost, est_rows, index_count),
                table_name=meta.name,
                columns=columns,
                rows=statement.rows,
            )
        return Plan(
            root=root,
            subplans=self._plan_clause_subqueries(
                [v for row in statement.rows for v in row]
            ),
            output_names=bound.output_names,
            output_types=bound.output_types,
            use_vectorized=False,
        )

    def _plan_mutation(self, bound: BoundQuery) -> Plan:
        """UPDATE/DELETE: a pushed-filter scan of the target feeds the write."""
        statement = bound.statement
        context = _QueryContext()
        pushed = split_conjuncts(statement.where)
        scan = self._plan_base_scan(statement.target, pushed, context)
        child = scan.node
        meta = self._catalog.table(statement.target.name)
        clauses: list[ast.Expression] = list(pushed)
        if isinstance(statement, ast.UpdateStatement):
            clauses.extend(a.value for a in statement.assignments)
            assigned = {a.column for a in statement.assignments}
            index_count = sum(
                1
                for index in self._catalog.indexes_of(meta.name)
                if index.column in assigned
            )
            expr_ops = sum(
                count_operators(a.value) for a in statement.assignments
            )
            cost = costs.dml_cost(
                child.cost.plus(child.est_rows * expr_ops * costs.CPU_OPERATOR_COST),
                child.est_rows,
                index_count,
            )
            root: PlanNode = UpdateNode(
                est_rows=child.est_rows,
                cost=cost,
                child=child,
                table_name=meta.name,
                assignments=statement.assignments,
            )
        else:
            index_count = len(self._catalog.indexes_of(meta.name))
            root = DeleteNode(
                est_rows=child.est_rows,
                cost=costs.dml_cost(child.cost, child.est_rows, index_count),
                child=child,
                table_name=meta.name,
            )
        subplans = self._plan_clause_subqueries(clauses)
        subplan_cost = sum(s.plan.root.cost.total for s in subplans.values())
        if subplan_cost:
            root.cost = root.cost.plus(subplan_cost)
        return Plan(
            root=root,
            subplans=subplans,
            output_names=bound.output_names,
            output_types=bound.output_types,
            use_vectorized=False,
        )

    def _plan_clause_subqueries(
        self, clauses: list[ast.Expression]
    ) -> dict[int, SubPlan]:
        """Subquery expressions reachable from DML clauses (WHERE, SET, VALUES)."""
        subplans: dict[int, SubPlan] = {}
        for clause in clauses:
            for node in shallow_walk(clause):
                if isinstance(node, ast.InSubquery):
                    subplans[id(node)] = SubPlan(
                        "in", self._plan_nested(node.subquery)
                    )
                elif isinstance(node, ast.Exists):
                    subplans[id(node)] = SubPlan(
                        "exists", self._plan_nested(node.subquery)
                    )
                elif isinstance(node, ast.ScalarSubquery):
                    subplans[id(node)] = SubPlan(
                        "scalar", self._plan_nested(node.subquery)
                    )
        return subplans

    # -- subquery expressions ---------------------------------------------------

    def _plan_subqueries(self, statement: ast.SelectStatement) -> dict[int, SubPlan]:
        subplans: dict[int, SubPlan] = {}
        clauses: list[ast.Expression] = []
        for item in statement.select_items:
            clauses.append(item.expression)
        if statement.where is not None:
            clauses.append(statement.where)
        if statement.having is not None:
            clauses.append(statement.having)
        clauses.extend(statement.group_by)
        clauses.extend(o.expression for o in statement.order_by)
        if statement.from_clause is not None:
            clauses.extend(
                j.condition
                for j in statement.from_clause.walk()
                if isinstance(j, ast.Join) and j.condition is not None
            )
        for clause in clauses:
            for node in shallow_walk(clause):
                if isinstance(node, ast.InSubquery):
                    subplans[id(node)] = SubPlan("in", self._plan_nested(node.subquery))
                elif isinstance(node, ast.Exists):
                    subplans[id(node)] = SubPlan(
                        "exists", self._plan_nested(node.subquery)
                    )
                elif isinstance(node, ast.ScalarSubquery):
                    subplans[id(node)] = SubPlan(
                        "scalar", self._plan_nested(node.subquery)
                    )
        return subplans

    def _plan_nested(self, statement: ast.SelectStatement) -> Plan:
        return self.plan(self._binder.bind(statement))

    # -- main body ---------------------------------------------------------------

    def _plan_body(self, bound: BoundQuery, context: _QueryContext) -> PlanNode:
        statement = bound.statement
        if statement.from_clause is None:
            node: PlanNode = ResultNode(
                est_rows=1.0,
                cost=costs.Cost(0.0, costs.CPU_TUPLE_COST),
                items=statement.select_items,
                output_names=bound.output_names,
            )
            return self._finalize(node, bound, context, aggregated=False)

        where_conjuncts = split_conjuncts(statement.where)
        if _has_outer_join(statement.from_clause):
            node = self._plan_join_tree_literal(statement.from_clause, context)
            if where_conjuncts:
                node = self._add_filter(node, conjoin(where_conjuncts), context)
        else:
            node = self._plan_flattened_joins(
                statement.from_clause, where_conjuncts, context
            )
        aggregated = self._needs_aggregation(statement)
        if aggregated:
            node = self._add_aggregate(node, statement, context)
        return self._finalize(node, bound, context, aggregated)

    def _needs_aggregation(self, statement: ast.SelectStatement) -> bool:
        if statement.group_by:
            return True
        clause_exprs = [i.expression for i in statement.select_items]
        if statement.having is not None:
            clause_exprs.append(statement.having)
        clause_exprs.extend(o.expression for o in statement.order_by)
        for expression in clause_exprs:
            for node in shallow_walk(expression):
                if isinstance(node, ast.FunctionCall) and node.is_aggregate:
                    return True
        return False

    # -- scans ---------------------------------------------------------------------

    def _plan_scan(
        self,
        source: ast.TableExpression,
        pushed: list[ast.Expression],
        context: _QueryContext,
    ) -> _Source:
        if isinstance(source, ast.TableRef):
            return self._plan_base_scan(source, pushed, context)
        if isinstance(source, ast.DerivedTable):
            subplan = self._plan_nested(source.subquery)
            node: PlanNode = SubqueryScanNode(
                est_rows=subplan.est_rows,
                cost=costs.Cost(
                    subplan.startup_cost,
                    subplan.total_cost
                    + subplan.est_rows * costs.CPU_TUPLE_COST,
                ),
                subplan=subplan,
                alias=source.alias,
                filter=conjoin(pushed),
            )
            if pushed:
                selectivity = estimate_selectivity(
                    conjoin(pushed), context.resolver(self._catalog)
                )
                node.est_rows = max(subplan.est_rows * selectivity, 0.0)
            return _Source(binding=source.alias, node=node, table_name=None)
        raise UnsupportedSqlError(
            f"unsupported FROM item: {type(source).__name__}"
        )

    def _plan_base_scan(
        self,
        ref: ast.TableRef,
        pushed: list[ast.Expression],
        context: _QueryContext,
    ) -> _Source:
        meta = self._catalog.table(ref.name)
        binding = ref.binding_name
        context.binding_tables[binding] = ref.name
        resolve = context.resolver(self._catalog)
        filter_expr = conjoin(pushed)
        selectivity = estimate_selectivity(filter_expr, resolve)
        est_rows = max(meta.row_count * selectivity, 0.0)
        qual_ops = count_operators(filter_expr) if filter_expr is not None else 0
        seq_cost = costs.seq_scan_cost(meta.page_count, meta.row_count, qual_ops)
        best: PlanNode = SeqScanNode(
            est_rows=est_rows,
            cost=seq_cost,
            table_name=ref.name,
            binding=binding,
            filter=filter_expr,
        )
        index_choice = self._maybe_index_scan(
            ref, meta, binding, pushed, est_rows, qual_ops, context
        )
        if index_choice is not None and index_choice.cost.total < best.cost.total:
            best = index_choice
        return _Source(binding=binding, node=best, table_name=ref.name)

    def _maybe_index_scan(
        self,
        ref: ast.TableRef,
        meta,
        binding: str,
        pushed: list[ast.Expression],
        est_rows: float,
        qual_ops: int,
        context: _QueryContext,
    ) -> IndexScanNode | None:
        resolve = context.resolver(self._catalog)
        best: IndexScanNode | None = None
        for conjunct in pushed:
            column = _indexable_column(conjunct, binding)
            if column is None:
                continue
            index = self._catalog.index_on(ref.name, column)
            if index is None:
                continue
            index_sel = estimate_selectivity(conjunct, resolve)
            cost = costs.index_scan_cost(
                meta.page_count, meta.row_count, index_sel, qual_ops
            )
            node = IndexScanNode(
                est_rows=est_rows,
                cost=cost,
                table_name=ref.name,
                binding=binding,
                index_name=index.name,
                index_column=column,
                filter=conjoin(pushed),
            )
            if best is None or node.cost.total < best.cost.total:
                best = node
        return best

    # -- flattened inner-join planning ----------------------------------------------

    def _plan_flattened_joins(
        self,
        from_clause: ast.TableExpression,
        where_conjuncts: list[ast.Expression],
        context: _QueryContext,
    ) -> PlanNode:
        sources_ast: list[ast.TableExpression] = []
        on_conjuncts: list[ast.Expression] = []
        _flatten_inner_joins(from_clause, sources_ast, on_conjuncts)
        bindings = [_binding_name(s) for s in sources_ast]
        all_conjuncts = on_conjuncts + where_conjuncts

        pushed: dict[str, list[ast.Expression]] = {b: [] for b in bindings}
        join_conditions: list[_JoinCondition] = []
        residuals: list[ast.Expression] = []
        for conjunct in all_conjuncts:
            refs = bindings_of(conjunct)
            if len(refs) <= 1 and (not refs or next(iter(refs)) in pushed):
                target = next(iter(refs)) if refs else bindings[0]
                pushed[target].append(conjunct)
                continue
            condition = _as_equi_condition(conjunct)
            if condition is not None:
                join_conditions.append(condition)
            else:
                residuals.append(conjunct)

        sources = [
            self._plan_scan(s, pushed[_binding_name(s)], context)
            for s in sources_ast
        ]
        return self._order_joins(sources, join_conditions, residuals, context)

    def _order_joins(
        self,
        sources: list[_Source],
        conditions: list[_JoinCondition],
        residuals: list[ast.Expression],
        context: _QueryContext,
    ) -> PlanNode:
        if len(sources) == 1:
            node = sources[0].node
            return self._apply_ready_residuals(
                node, {sources[0].binding}, residuals, context
            )
        remaining = {s.binding: s for s in sources}
        start = min(remaining.values(), key=lambda s: s.node.est_rows)
        current = start.node
        joined = {start.binding}
        del remaining[start.binding]
        pending_conditions = list(conditions)
        pending_residuals = list(residuals)
        current = self._apply_ready_residuals(
            current, joined, pending_residuals, context
        )
        while remaining:
            choice = self._pick_next_join(
                current, joined, remaining, pending_conditions, context
            )
            binding, node, applicable = choice
            current = self._build_join(current, node, applicable, context)
            joined.add(binding)
            del remaining[binding]
            for condition in applicable:
                pending_conditions.remove(condition)
            current = self._apply_ready_residuals(
                current, joined, pending_residuals, context
            )
        return current

    def _pick_next_join(
        self,
        current: PlanNode,
        joined: set[str],
        remaining: dict[str, _Source],
        conditions: list[_JoinCondition],
        context: _QueryContext,
    ) -> tuple[str, PlanNode, list[_JoinCondition]]:
        best: tuple[float, str, PlanNode, list[_JoinCondition]] | None = None
        for binding, source in remaining.items():
            applicable = [
                c
                for c in conditions
                if c.bindings <= (joined | {binding}) and binding in c.bindings
            ]
            selectivity = self._join_conditions_selectivity(applicable, context)
            out_rows = max(current.est_rows * source.node.est_rows * selectivity, 0.0)
            connected = bool(applicable)
            # Prefer connected joins; cross joins sort after every connected one.
            rank = (0.0 if connected else 1e18) + out_rows
            if best is None or rank < best[0]:
                best = (rank, binding, source.node, applicable)
        assert best is not None
        return best[1], best[2], best[3]

    def _join_conditions_selectivity(
        self, conditions: list[_JoinCondition], context: _QueryContext
    ) -> float:
        resolve = context.resolver(self._catalog)
        selectivity = 1.0
        for condition in conditions:
            left_stats = resolve(
                condition.left_expr.table, condition.left_expr.column
            )
            right_stats = resolve(
                condition.right_expr.table, condition.right_expr.column
            )
            selectivity *= join_selectivity(left_stats, right_stats)
        return selectivity

    def _build_join(
        self,
        left: PlanNode,
        right: PlanNode,
        conditions: list[_JoinCondition],
        context: _QueryContext,
        join_type: str = "inner",
        residual: ast.Expression | None = None,
    ) -> PlanNode:
        out_selectivity = self._join_conditions_selectivity(conditions, context)
        out_rows = max(left.est_rows * right.est_rows * out_selectivity, 0.0)
        if residual is not None:
            out_rows *= estimate_selectivity(
                residual, context.resolver(self._catalog)
            )
        if join_type in ("left", "full"):
            out_rows = max(out_rows, left.est_rows)
        if join_type in ("right", "full"):
            out_rows = max(out_rows, right.est_rows)
        if conditions:
            # Orient keys: left_keys must reference the left subtree.
            left_bindings = _plan_bindings(left)
            left_keys, right_keys = [], []
            for condition in conditions:
                if condition.left_binding in left_bindings:
                    left_keys.append(condition.left_expr)
                    right_keys.append(condition.right_expr)
                else:
                    left_keys.append(condition.right_expr)
                    right_keys.append(condition.left_expr)
            cost = costs.hash_join_cost(
                left.cost, right.cost, left.est_rows, right.est_rows, out_rows
            )
            return HashJoinNode(
                est_rows=out_rows,
                cost=cost,
                left=left,
                right=right,
                left_keys=left_keys,
                right_keys=right_keys,
                join_type=join_type,
                residual=residual,
            )
        condition = residual
        if join_type == "cross" or (join_type == "inner" and condition is None):
            out_rows = max(left.est_rows * right.est_rows, 0.0)
        cost = costs.nested_loop_cost(
            left.cost, right.cost, left.est_rows, right.est_rows, out_rows
        )
        return NestedLoopJoinNode(
            est_rows=out_rows,
            cost=cost,
            left=left,
            right=right,
            condition=condition,
            join_type=join_type,
        )

    def _apply_ready_residuals(
        self,
        node: PlanNode,
        joined: set[str],
        residuals: list[ast.Expression],
        context: _QueryContext,
    ) -> PlanNode:
        ready = [r for r in residuals if bindings_of(r) <= joined]
        for conjunct in ready:
            residuals.remove(conjunct)
        if not ready:
            return node
        return self._add_filter(node, conjoin(ready), context)

    def _add_filter(
        self, child: PlanNode, condition: ast.Expression | None, context: _QueryContext
    ) -> PlanNode:
        if condition is None:
            return child
        selectivity = estimate_selectivity(condition, context.resolver(self._catalog))
        est_rows = max(child.est_rows * selectivity, 0.0)
        ops = count_operators(condition)
        cost = costs.Cost(
            child.cost.startup,
            child.cost.total + child.est_rows * ops * costs.CPU_OPERATOR_COST,
        )
        return FilterNode(est_rows=est_rows, cost=cost, child=child, condition=condition)

    # -- literal (outer-join-preserving) join planning -----------------------------

    def _plan_join_tree_literal(
        self, node: ast.TableExpression, context: _QueryContext
    ) -> PlanNode:
        if isinstance(node, (ast.TableRef, ast.DerivedTable)):
            return self._plan_scan(node, [], context).node
        assert isinstance(node, ast.Join)
        left = self._plan_join_tree_literal(node.left, context)
        right = self._plan_join_tree_literal(node.right, context)
        conjuncts = split_conjuncts(node.condition)
        equi = [c for c in map(_as_equi_condition, conjuncts) if c is not None]
        other = [
            c for c in conjuncts if _as_equi_condition(c) is None
        ]
        join_type = node.join_type
        if join_type == "right":
            left, right = right, left
            join_type = "left"
        return self._build_join(
            left,
            right,
            equi,
            context,
            join_type=join_type,
            residual=conjoin(other),
        )

    # -- aggregation and finalization ------------------------------------------------

    def _add_aggregate(
        self,
        child: PlanNode,
        statement: ast.SelectStatement,
        context: _QueryContext,
    ) -> PlanNode:
        aggregate_calls = _collect_aggregates(statement)
        groups = self._estimate_groups(statement.group_by, child, context)
        cost = costs.aggregate_cost(
            child.cost, child.est_rows, groups, len(aggregate_calls)
        )
        est_rows = groups
        if statement.having is not None:
            est_rows *= estimate_selectivity(
                statement.having, context.resolver(self._catalog)
            )
            cost = cost.plus(groups * costs.CPU_OPERATOR_COST)
        return AggregateNode(
            est_rows=max(est_rows, 0.0),
            cost=cost,
            child=child,
            group_exprs=statement.group_by,
            aggregate_calls=aggregate_calls,
            having=statement.having,
        )

    def _estimate_groups(
        self,
        group_exprs: list[ast.Expression],
        child: PlanNode,
        context: _QueryContext,
    ) -> float:
        if not group_exprs:
            return 1.0
        resolve = context.resolver(self._catalog)
        ndv_product = 1.0
        for expression in group_exprs:
            if isinstance(expression, ast.ColumnRef):
                stats = resolve(expression.table, expression.column)
                ndv = stats.distinct_count if stats else _UNKNOWN_GROUP_NDV
            else:
                ndv = _UNKNOWN_GROUP_NDV
            ndv_product *= max(ndv, 1.0)
        return float(min(ndv_product, max(child.est_rows, 1.0)))

    def _finalize(
        self,
        node: PlanNode,
        bound: BoundQuery,
        context: _QueryContext,
        aggregated: bool,
    ) -> PlanNode:
        statement = bound.statement
        if statement.order_by and not isinstance(node, ResultNode):
            order_items = _resolve_order_aliases(statement)
            node = SortNode(
                est_rows=node.est_rows,
                cost=costs.sort_cost(node.cost, node.est_rows),
                child=node,
                order_items=order_items,
            )
        if not isinstance(node, ResultNode):
            expr_ops = sum(
                count_operators(i.expression) for i in statement.select_items
            )
            node = ProjectNode(
                est_rows=node.est_rows,
                cost=costs.project_cost(node.cost, node.est_rows, expr_ops),
                child=node,
                items=statement.select_items,
                output_names=bound.output_names,
                output_types=bound.output_types,
            )
        if statement.distinct:
            distinct_rows = self._estimate_distinct(bound, node, context)
            node = DistinctNode(
                est_rows=distinct_rows,
                cost=costs.aggregate_cost(node.cost, node.est_rows, distinct_rows, 0),
                child=node,
            )
        if statement.limit is not None or statement.offset is not None:
            limit = statement.limit if statement.limit is not None else node.est_rows
            offset = statement.offset or 0
            fetched = min(float(limit) + offset, max(node.est_rows, 0.0))
            node = LimitNode(
                est_rows=max(min(float(limit), node.est_rows - offset), 0.0),
                cost=costs.limit_cost(node.cost, node.est_rows, fetched),
                child=node,
                limit=statement.limit,
                offset=statement.offset,
            )
        return node

    def _estimate_distinct(
        self, bound: BoundQuery, node: PlanNode, context: _QueryContext
    ) -> float:
        resolve = context.resolver(self._catalog)
        ndv_product = 1.0
        for item in bound.statement.select_items:
            expression = item.expression
            if isinstance(expression, ast.ColumnRef):
                stats = resolve(expression.table, expression.column)
                ndv = stats.distinct_count if stats else _UNKNOWN_GROUP_NDV
            else:
                ndv = _UNKNOWN_GROUP_NDV
            ndv_product *= max(ndv, 1.0)
        return float(min(ndv_product, max(node.est_rows, 1.0)))


# -- helpers -----------------------------------------------------------------------


def _has_outer_join(node: ast.TableExpression) -> bool:
    for item in node.walk():
        if isinstance(item, ast.Join) and item.join_type in ("left", "right", "full"):
            return True
    return False


def _flatten_inner_joins(
    node: ast.TableExpression,
    sources: list[ast.TableExpression],
    conjuncts: list[ast.Expression],
) -> None:
    if isinstance(node, ast.Join):
        _flatten_inner_joins(node.left, sources, conjuncts)
        _flatten_inner_joins(node.right, sources, conjuncts)
        if node.condition is not None:
            conjuncts.extend(split_conjuncts(node.condition))
    else:
        sources.append(node)


def _binding_name(source: ast.TableExpression) -> str:
    if isinstance(source, ast.TableRef):
        return source.binding_name
    if isinstance(source, ast.DerivedTable):
        return source.alias
    raise UnsupportedSqlError(f"unsupported FROM item: {type(source).__name__}")


def _indexable_column(conjunct: ast.Expression, binding: str) -> str | None:
    """The column an index could serve for this conjunct, if any.

    Recognizes ``col <op> constant``, ``constant <op> col``, ``col BETWEEN``
    and ``col IN (...)`` shapes over the given binding.
    """
    from .selectivity import constant_value

    if isinstance(conjunct, ast.BinaryOp) and conjunct.op in (
        "=", "<", "<=", ">", ">=",
    ):
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ast.ColumnRef) and left.table == binding:
            if constant_value(right) is not None:
                return left.column
        if isinstance(right, ast.ColumnRef) and right.table == binding:
            if constant_value(left) is not None:
                return right.column
    if isinstance(conjunct, ast.Between) and not conjunct.negated:
        if (
            isinstance(conjunct.operand, ast.ColumnRef)
            and conjunct.operand.table == binding
        ):
            return conjunct.operand.column
    if isinstance(conjunct, ast.InList) and not conjunct.negated:
        if (
            isinstance(conjunct.operand, ast.ColumnRef)
            and conjunct.operand.table == binding
        ):
            return conjunct.operand.column
    return None


def _as_equi_condition(conjunct: ast.Expression) -> _JoinCondition | None:
    if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
        return None
    left, right = conjunct.left, conjunct.right
    if not (isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef)):
        return None
    if left.table is None or right.table is None or left.table == right.table:
        return None
    return _JoinCondition(
        left_expr=left,
        right_expr=right,
        left_binding=left.table,
        right_binding=right.table,
        original=conjunct,
    )


def _plan_bindings(node: PlanNode) -> set[str]:
    found: set[str] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (SeqScanNode, IndexScanNode)):
            found.add(current.binding)
        elif isinstance(current, SubqueryScanNode):
            found.add(current.alias)
            continue  # do not descend into the subplan
        stack.extend(current.children())
    return found


def _collect_aggregates(statement: ast.SelectStatement) -> list[ast.FunctionCall]:
    calls: list[ast.FunctionCall] = []
    clauses: list[ast.Expression] = [i.expression for i in statement.select_items]
    if statement.having is not None:
        clauses.append(statement.having)
    clauses.extend(o.expression for o in statement.order_by)
    for clause in clauses:
        for node in shallow_walk(clause):
            if isinstance(node, ast.FunctionCall) and node.is_aggregate:
                calls.append(node)
    return calls


def _resolve_order_aliases(statement: ast.SelectStatement) -> list[ast.OrderItem]:
    """Replace ORDER BY references to select aliases with the aliased
    expression, so sort keys can always be evaluated pre-projection."""
    aliases: dict[str, ast.Expression] = {}
    for item in statement.select_items:
        if item.alias:
            aliases[item.alias] = item.expression
    resolved = []
    for order in statement.order_by:
        expression = order.expression
        if (
            isinstance(expression, ast.ColumnRef)
            and expression.table is None
            and expression.column in aliases
        ):
            expression = aliases[expression.column]
        elif isinstance(expression, ast.Literal) and isinstance(expression.value, int):
            # ORDER BY <position>
            index = expression.value - 1
            if 0 <= index < len(statement.select_items):
                expression = statement.select_items[index].expression
        resolved.append(ast.OrderItem(expression, order.descending))
    return resolved
