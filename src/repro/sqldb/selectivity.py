"""Predicate selectivity estimation over the AST.

This is the glue between the statistics in :mod:`repro.sqldb.stats` and the
planner: given a WHERE-clause expression and a way to look up column
statistics, estimate the fraction of rows that survive.
"""

from __future__ import annotations

from typing import Callable, Optional

from . import ast_nodes as ast
from .stats import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    ColumnStats,
    like_selectivity,
)
from .types import date_to_days

StatsResolver = Callable[[Optional[str], str], Optional[ColumnStats]]

IN_SUBQUERY_SELECTIVITY = 0.5
EXISTS_SELECTIVITY = 0.5
BOOL_EXPR_SELECTIVITY = 0.5
COLUMN_EQ_COLUMN_SELECTIVITY = 0.05


def constant_value(expression: ast.Expression):
    """Fold *expression* to a Python constant, or return ``None`` if dynamic.

    Handles literals, unary minus over literals, casts of literals, and ISO
    date strings (converted to day numbers so they are comparable with DATE
    column statistics).
    """
    if isinstance(expression, ast.Literal):
        value = expression.value
        if isinstance(value, str) and _looks_like_date(value):
            try:
                return date_to_days(value)
            except ValueError:
                return value
        return value
    if isinstance(expression, ast.UnaryOp) and expression.op == "-":
        inner = constant_value(expression.operand)
        if isinstance(inner, (int, float)) and not isinstance(inner, bool):
            return -inner
        return None
    if isinstance(expression, ast.Cast):
        return constant_value(expression.operand)
    if isinstance(expression, ast.BinaryOp) and expression.op in "+-*/":
        left = constant_value(expression.left)
        right = constant_value(expression.right)
        if _is_number(left) and _is_number(right):
            try:
                ops = {
                    "+": lambda a, b: a + b,
                    "-": lambda a, b: a - b,
                    "*": lambda a, b: a * b,
                    "/": lambda a, b: a / b if b else None,
                }
                return ops[expression.op](left, right)
            except Exception:
                return None
    return None


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _looks_like_date(value: str) -> bool:
    return (
        len(value) == 10 and value[4] == "-" and value[7] == "-"
        and value[:4].isdigit()
    )


def estimate_selectivity(
    expression: ast.Expression | None, resolve: StatsResolver
) -> float:
    """Estimate the fraction of rows satisfying *expression* (1.0 for None)."""
    if expression is None:
        return 1.0
    sel = _estimate(expression, resolve)
    return float(min(max(sel, 0.0), 1.0))


def _estimate(expression: ast.Expression, resolve: StatsResolver) -> float:
    if isinstance(expression, ast.BinaryOp):
        if expression.op == "and":
            return _estimate(expression.left, resolve) * _estimate(
                expression.right, resolve
            )
        if expression.op == "or":
            left = _estimate(expression.left, resolve)
            right = _estimate(expression.right, resolve)
            return left + right - left * right
        if expression.op in ("=", "<>", "<", "<=", ">", ">="):
            return _estimate_comparison(expression, resolve)
        return BOOL_EXPR_SELECTIVITY
    if isinstance(expression, ast.UnaryOp) and expression.op == "not":
        return 1.0 - _estimate(expression.operand, resolve)
    if isinstance(expression, ast.IsNull):
        stats = _column_stats(expression.operand, resolve)
        fraction = stats.null_fraction if stats else DEFAULT_EQ_SELECTIVITY
        return 1.0 - fraction if expression.negated else fraction
    if isinstance(expression, ast.Between):
        sel = _estimate_between(expression, resolve)
        return 1.0 - sel if expression.negated else sel
    if isinstance(expression, ast.InList):
        sel = _estimate_in_list(expression, resolve)
        return 1.0 - sel if expression.negated else sel
    if isinstance(expression, ast.InSubquery):
        sel = IN_SUBQUERY_SELECTIVITY
        return 1.0 - sel if expression.negated else sel
    if isinstance(expression, ast.Exists):
        sel = EXISTS_SELECTIVITY
        return 1.0 - sel if expression.negated else sel
    if isinstance(expression, ast.Like):
        sel = _estimate_like(expression, resolve)
        return 1.0 - sel if expression.negated else sel
    if isinstance(expression, ast.Literal):
        if expression.value is True:
            return 1.0
        if expression.value in (False, None):
            return 0.0
        return BOOL_EXPR_SELECTIVITY
    return BOOL_EXPR_SELECTIVITY


def _column_stats(
    expression: ast.Expression, resolve: StatsResolver
) -> ColumnStats | None:
    if isinstance(expression, ast.ColumnRef):
        return resolve(expression.table, expression.column)
    return None


def _estimate_comparison(expression: ast.BinaryOp, resolve: StatsResolver) -> float:
    left, right, op = expression.left, expression.right, expression.op
    left_stats = _column_stats(left, resolve)
    right_stats = _column_stats(right, resolve)
    left_const = constant_value(left)
    right_const = constant_value(right)
    # Normalize to column <op> constant.
    if left_stats is None and right_stats is not None and left_const is not None:
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        op = flipped.get(op, op)
        left_stats, right_const = right_stats, left_const
    if left_stats is not None and right_const is not None:
        if op == "=":
            return left_stats.eq_selectivity(right_const)
        if op == "<>":
            return 1.0 - left_stats.eq_selectivity(right_const)
        return left_stats.range_selectivity(op, right_const)
    if left_stats is not None and right_stats is not None:
        # column-to-column comparison (usually a join predicate handled
        # elsewhere; as a residual filter use a flat default).
        if op == "=":
            largest = max(left_stats.distinct_count, right_stats.distinct_count, 1.0)
            return 1.0 / largest
        return DEFAULT_RANGE_SELECTIVITY
    if op == "=":
        return DEFAULT_EQ_SELECTIVITY
    if op == "<>":
        return 1.0 - DEFAULT_EQ_SELECTIVITY
    return DEFAULT_RANGE_SELECTIVITY


def _estimate_between(expression: ast.Between, resolve: StatsResolver) -> float:
    stats = _column_stats(expression.operand, resolve)
    low = constant_value(expression.low)
    high = constant_value(expression.high)
    if stats is not None and low is not None and high is not None:
        return stats.between_selectivity(low, high)
    return DEFAULT_RANGE_SELECTIVITY * 0.5


def _estimate_in_list(expression: ast.InList, resolve: StatsResolver) -> float:
    stats = _column_stats(expression.operand, resolve)
    total = 0.0
    for item in expression.items:
        value = constant_value(item)
        if stats is not None and value is not None:
            total += stats.eq_selectivity(value)
        else:
            total += DEFAULT_EQ_SELECTIVITY
    return min(total, 1.0)


def _estimate_like(expression: ast.Like, resolve: StatsResolver) -> float:
    pattern = constant_value(expression.pattern)
    if isinstance(pattern, str):
        return like_selectivity(pattern)
    return like_selectivity("%abc%")


def count_operators(expression: ast.Expression | None) -> int:
    """Number of operator applications, used to charge per-row CPU cost."""
    if expression is None:
        return 0
    count = 0
    for node in expression.walk():
        if isinstance(
            node,
            (
                ast.BinaryOp,
                ast.UnaryOp,
                ast.Between,
                ast.Like,
                ast.IsNull,
                ast.FunctionCall,
                ast.CaseWhen,
            ),
        ):
            count += 1
        elif isinstance(node, ast.InList):
            count += max(len(node.items), 1)
    return max(count, 1)
