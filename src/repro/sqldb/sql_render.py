"""Render an AST back to SQL text.

The inverse of :mod:`repro.sqldb.parser` for the supported dialect,
including ``{placeholder}`` markers.  ``parse_select(render(stmt))`` is
structurally equivalent to ``stmt``, which the template-refinement machinery
relies on when it mutates parsed templates.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .errors import UnsupportedSqlError

_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 4, "<>": 4, "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5, "||": 5,
    "*": 6, "/": 6, "%": 6,
}


def render_statement(statement: ast.Node) -> str:
    if isinstance(statement, ast.InsertStatement):
        parts = [f"INSERT INTO {statement.target.name}"]
        if statement.columns is not None:
            parts.append("(" + ", ".join(statement.columns) + ")")
        if statement.source is not None:
            parts.append(render_statement(statement.source))
        else:
            rows = ", ".join(
                "(" + ", ".join(render_expression(v) for v in row) + ")"
                for row in statement.rows
            )
            parts.append(f"VALUES {rows}")
        return " ".join(parts)
    if isinstance(statement, ast.UpdateStatement):
        assignments = ", ".join(
            f"{a.column} = {render_expression(a.value)}"
            for a in statement.assignments
        )
        text = f"UPDATE {statement.target.name} SET {assignments}"
        if statement.where is not None:
            text += " WHERE " + render_expression(statement.where)
        return text
    if isinstance(statement, ast.DeleteStatement):
        text = f"DELETE FROM {statement.target.name}"
        if statement.where is not None:
            text += " WHERE " + render_expression(statement.where)
        return text
    if isinstance(statement, ast.CompoundSelect):
        parts = [render_statement(statement.selects[0])]
        for op, branch in zip(statement.ops, statement.selects[1:]):
            parts.append(op.upper())
            parts.append(render_statement(branch))
        return " ".join(parts)
    parts = ["SELECT"]
    if statement.distinct:
        parts.append("DISTINCT")
    parts.append(
        ", ".join(_render_select_item(i) for i in statement.select_items)
    )
    if statement.from_clause is not None:
        parts.append("FROM " + _render_table(statement.from_clause))
    if statement.where is not None:
        parts.append("WHERE " + render_expression(statement.where))
    if statement.group_by:
        parts.append(
            "GROUP BY " + ", ".join(render_expression(g) for g in statement.group_by)
        )
    if statement.having is not None:
        parts.append("HAVING " + render_expression(statement.having))
    if statement.order_by:
        rendered = [
            render_expression(o.expression) + (" DESC" if o.descending else "")
            for o in statement.order_by
        ]
        parts.append("ORDER BY " + ", ".join(rendered))
    if statement.limit is not None:
        parts.append(f"LIMIT {statement.limit}")
    if statement.offset is not None:
        parts.append(f"OFFSET {statement.offset}")
    return " ".join(parts)


def _render_select_item(item: ast.SelectItem) -> str:
    text = render_expression(item.expression)
    if item.alias:
        return f"{text} AS {item.alias}"
    return text


def _render_table(node: ast.TableExpression) -> str:
    if isinstance(node, ast.TableRef):
        if node.alias and node.alias != node.name:
            return f"{node.name} AS {node.alias}"
        return node.name
    if isinstance(node, ast.DerivedTable):
        return f"({render_statement(node.subquery)}) AS {node.alias}"
    if isinstance(node, ast.Join):
        left = _render_table(node.left)
        right = _render_table(node.right)
        if node.join_type == "cross":
            return f"{left} CROSS JOIN {right}"
        keyword = {
            "inner": "JOIN",
            "left": "LEFT JOIN",
            "right": "RIGHT JOIN",
            "full": "FULL JOIN",
        }[node.join_type]
        condition = render_expression(node.condition) if node.condition else "TRUE"
        return f"{left} {keyword} {right} ON {condition}"
    raise UnsupportedSqlError(f"cannot render {type(node).__name__}")


def render_expression(expression: ast.Expression, parent_prec: int = 0) -> str:
    text, prec = _render_expr(expression)
    if prec < parent_prec:
        return f"({text})"
    return text


def _render_expr(expression: ast.Expression) -> tuple[str, int]:
    if isinstance(expression, ast.Literal):
        return _render_literal(expression.value), 10
    if isinstance(expression, ast.Placeholder):
        return f"{{{expression.name}}}", 10
    if isinstance(expression, ast.ColumnRef):
        return str(expression), 10
    if isinstance(expression, ast.Star):
        return f"{expression.table}.*" if expression.table else "*", 10
    if isinstance(expression, ast.BinaryOp):
        prec = _PRECEDENCE.get(expression.op, 3)
        op = expression.op.upper() if expression.op in ("and", "or") else expression.op
        left = render_expression(expression.left, prec)
        right = render_expression(expression.right, prec + 1)
        return f"{left} {op} {right}", prec
    if isinstance(expression, ast.UnaryOp):
        if expression.op == "not":
            return f"NOT {render_expression(expression.operand, 3)}", 3
        return f"-{render_expression(expression.operand, 7)}", 7
    if isinstance(expression, ast.IsNull):
        keyword = "IS NOT NULL" if expression.negated else "IS NULL"
        return f"{render_expression(expression.operand, 4)} {keyword}", 4
    if isinstance(expression, ast.Between):
        negated = "NOT " if expression.negated else ""
        return (
            f"{render_expression(expression.operand, 5)} {negated}BETWEEN "
            f"{render_expression(expression.low, 5)} AND "
            f"{render_expression(expression.high, 5)}",
            4,
        )
    if isinstance(expression, ast.InList):
        negated = "NOT " if expression.negated else ""
        items = ", ".join(render_expression(i) for i in expression.items)
        return f"{render_expression(expression.operand, 5)} {negated}IN ({items})", 4
    if isinstance(expression, ast.InSubquery):
        negated = "NOT " if expression.negated else ""
        return (
            f"{render_expression(expression.operand, 5)} {negated}IN "
            f"({render_statement(expression.subquery)})",
            4,
        )
    if isinstance(expression, ast.Exists):
        negated = "NOT " if expression.negated else ""
        return f"{negated}EXISTS ({render_statement(expression.subquery)})", 4
    if isinstance(expression, ast.ScalarSubquery):
        return f"({render_statement(expression.subquery)})", 10
    if isinstance(expression, ast.Like):
        keyword = "ILIKE" if expression.case_insensitive else "LIKE"
        negated = "NOT " if expression.negated else ""
        return (
            f"{render_expression(expression.operand, 5)} {negated}{keyword} "
            f"{render_expression(expression.pattern, 5)}",
            4,
        )
    if isinstance(expression, ast.FunctionCall):
        distinct = "DISTINCT " if expression.distinct else ""
        if expression.name == "extract" and len(expression.args) == 2:
            part = expression.args[0]
            part_text = (
                str(part.value) if isinstance(part, ast.Literal) else
                render_expression(part)
            )
            return (
                f"EXTRACT({part_text} FROM "
                f"{render_expression(expression.args[1])})",
                10,
            )
        args = ", ".join(render_expression(a) for a in expression.args)
        return f"{expression.name}({distinct}{args})", 10
    if isinstance(expression, ast.Cast):
        return (
            f"CAST({render_expression(expression.operand)} AS {expression.type_name})",
            10,
        )
    if isinstance(expression, ast.CaseWhen):
        parts = ["CASE"]
        for condition, value in expression.whens:
            parts.append(
                f"WHEN {render_expression(condition)} THEN {render_expression(value)}"
            )
        if expression.default is not None:
            parts.append(f"ELSE {render_expression(expression.default)}")
        parts.append("END")
        return " ".join(parts), 10
    raise UnsupportedSqlError(f"cannot render {type(expression).__name__}")


def _render_literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)
