"""Column statistics and selectivity estimation.

This module is the engine's answer to PostgreSQL's ``pg_statistic``: each
analyzed column gets a null fraction, a distinct count, a most-common-values
list, and an equi-depth histogram.  The selectivity functions drive both the
cardinality estimates in ``EXPLAIN`` output and the cost-based plan choices —
which is exactly the signal SQLBarber's profiling and Bayesian optimization
loops consume, so the estimates here must respond smoothly to predicate
values.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from .storage import Column
from .types import SqlType

DEFAULT_HISTOGRAM_BUCKETS = 100
DEFAULT_MCV_COUNT = 10
# Fallback selectivities, mirroring PostgreSQL's defaults.
DEFAULT_EQ_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.05


@dataclass
class Histogram:
    """Equi-depth histogram over the non-null, non-MCV values of a column.

    ``bounds`` has ``buckets + 1`` entries; bucket *i* covers
    ``[bounds[i], bounds[i+1])`` and holds ~1/buckets of the rows.
    """

    bounds: np.ndarray

    @property
    def num_buckets(self) -> int:
        return max(len(self.bounds) - 1, 0)

    def fraction_below(self, value: float) -> float:
        """Estimated fraction of histogram values strictly below *value*."""
        # Bisect over a cached Python list: same index and same float
        # arithmetic as np.searchsorted over the ndarray (NaN sorts last
        # either way), without the per-call numpy scalar overhead — this
        # sits on the per-binding re-costing hot path.
        bounds = self.__dict__.get("_bounds_list")
        if bounds is None:
            bounds = self.bounds.tolist()
            self._bounds_list = bounds
        if self.num_buckets == 0:
            return 0.5
        if value <= bounds[0]:
            return 0.0
        if value >= bounds[-1]:
            return 1.0
        bucket = bisect_right(bounds, value) - 1
        bucket = min(bucket, self.num_buckets - 1)
        low, high = bounds[bucket], bounds[bucket + 1]
        within = 0.5 if high <= low else (value - low) / (high - low)
        return (bucket + within) / self.num_buckets

    def fraction_between(self, low: float, high: float) -> float:
        if high < low:
            return 0.0
        return max(self.fraction_below(high) - self.fraction_below(low), 0.0)


@dataclass
class ColumnStats:
    """Summary statistics for one column, produced by :func:`analyze_column`."""

    null_fraction: float
    distinct_count: float
    min_value: float | str | None
    max_value: float | str | None
    mcv_values: list = field(default_factory=list)
    mcv_fractions: list[float] = field(default_factory=list)
    histogram: Histogram | None = None
    row_count: int = 0

    @property
    def mcv_total_fraction(self) -> float:
        return float(sum(self.mcv_fractions))

    # -- selectivity estimators --------------------------------------------

    def eq_selectivity(self, value) -> float:
        """Selectivity of ``col = value``."""
        if value is None:
            return 0.0
        nonnull = 1.0 - self.null_fraction
        if nonnull <= 0.0:
            return 0.0
        # Compare against Python-native MCV values (cached): numpy scalar
        # equality costs a ufunc dispatch per MCV, and this loop runs for
        # every equality/range estimate on the re-costing hot path.  The
        # values are identical, so the matches (and fractions) are too.
        mcvs = self.__dict__.get("_mcv_native")
        if mcvs is None:
            mcvs = [_to_python(v) for v in self.mcv_values]
            self._mcv_native = mcvs
        for mcv, fraction in zip(mcvs, self.mcv_fractions):
            try:
                if mcv == value:
                    return fraction
            except Exception:
                pass
        remaining_fraction = max(nonnull - self.mcv_total_fraction, 0.0)
        remaining_distinct = max(self.distinct_count - len(self.mcv_values), 1.0)
        if _is_numeric(value) and self.min_value is not None:
            # Out-of-range equality matches nothing.
            try:
                if value < self.min_value or value > self.max_value:
                    return 0.0
            except TypeError:
                pass
        return min(remaining_fraction / remaining_distinct, 1.0)

    def range_selectivity(self, op: str, value) -> float:
        """Selectivity of ``col <op> value`` for ``<, <=, >, >=``."""
        if value is None:
            return 0.0
        nonnull = 1.0 - self.null_fraction
        if self.histogram is None or not _is_numeric(value):
            return DEFAULT_RANGE_SELECTIVITY * nonnull
        below = self.histogram.fraction_below(float(value))
        eq = self.eq_selectivity(value) / max(nonnull, 1e-12)
        if op == "<":
            fraction = below
        elif op == "<=":
            fraction = below + eq
        elif op == ">":
            fraction = 1.0 - below - eq
        elif op == ">=":
            fraction = 1.0 - below
        else:
            raise ValueError(f"not a range operator: {op}")
        # MCVs are folded into the histogram fraction proportionally, which is
        # a simplification of PostgreSQL's split accounting but monotone in
        # the predicate value — the property the BO loop needs.  Scalar
        # min/max clamps exactly like np.clip here, including NaN
        # passthrough (max(nan, 0.0) keeps the NaN first argument).
        return float(min(max(fraction, 0.0), 1.0)) * nonnull

    def between_selectivity(self, low, high) -> float:
        if low is None or high is None:
            return 0.0
        nonnull = 1.0 - self.null_fraction
        if self.histogram is None or not (_is_numeric(low) and _is_numeric(high)):
            return DEFAULT_RANGE_SELECTIVITY * nonnull * 0.5
        fraction = self.histogram.fraction_between(float(low), float(high))
        return float(min(max(fraction, 0.0), 1.0)) * nonnull


def like_selectivity(pattern: str) -> float:
    """Heuristic selectivity of a LIKE pattern, PostgreSQL-style.

    A leading wildcard prevents index-range reasoning, so the estimate only
    depends on the number of literal characters: each literal character
    multiplies selectivity by a fixed factor (``0.9`` per char, ``0.2`` per
    leading literal run), bounded to PostgreSQL-like defaults.
    """
    if pattern is None:
        return 0.0
    literals = sum(1 for ch in pattern if ch not in "%_")
    if literals == 0:
        return 1.0
    sel = DEFAULT_LIKE_SELECTIVITY * (0.9 ** max(literals - 4, 0))
    return float(np.clip(sel, 1e-5, 1.0))


def analyze_column(
    column: Column,
    histogram_buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
    mcv_count: int = DEFAULT_MCV_COUNT,
) -> ColumnStats:
    """Compute :class:`ColumnStats` from actual column data (full scan)."""
    total = len(column)
    if total == 0:
        return ColumnStats(
            null_fraction=0.0, distinct_count=0.0,
            min_value=None, max_value=None, row_count=0,
        )
    values = column.non_null_values()
    null_fraction = 1.0 - len(values) / total
    if len(values) == 0:
        return ColumnStats(
            null_fraction=1.0, distinct_count=0.0,
            min_value=None, max_value=None, row_count=total,
        )

    if column.sql_type is SqlType.TEXT:
        uniques, counts = np.unique(values.astype(str), return_counts=True)
    elif column.sql_type is SqlType.BOOLEAN:
        uniques, counts = np.unique(values, return_counts=True)
    else:
        uniques, counts = np.unique(values, return_counts=True)
    distinct = float(len(uniques))

    order = np.argsort(counts)[::-1]
    mcv_take = min(mcv_count, len(uniques))
    mcv_values: list = []
    mcv_fractions: list[float] = []
    # Only store values that are genuinely "common" (above the uniform share).
    uniform_share = 1.0 / distinct if distinct else 1.0
    for idx in order[:mcv_take]:
        fraction = counts[idx] / total
        if fraction > 1.25 * uniform_share * (1.0 - null_fraction):
            mcv_values.append(_to_python(uniques[idx]))
            mcv_fractions.append(float(fraction))

    histogram = None
    min_value: float | str | None
    max_value: float | str | None
    if column.sql_type.is_numeric or column.sql_type is SqlType.DATE:
        numeric = values.astype(np.float64)
        min_value = float(numeric.min())
        max_value = float(numeric.max())
        buckets = min(histogram_buckets, max(len(numeric) // 2, 1))
        quantiles = np.linspace(0.0, 1.0, buckets + 1)
        bounds = np.quantile(numeric, quantiles)
        histogram = Histogram(bounds=bounds)
    elif column.sql_type is SqlType.TEXT:
        # np.unique returns sorted values, so the ends are min and max.
        min_value = str(uniques[0])
        max_value = str(uniques[-1])
    else:  # BOOLEAN
        min_value = bool(values.min())
        max_value = bool(values.max())

    return ColumnStats(
        null_fraction=float(null_fraction),
        distinct_count=distinct,
        min_value=min_value,
        max_value=max_value,
        mcv_values=mcv_values,
        mcv_fractions=mcv_fractions,
        histogram=histogram,
        row_count=total,
    )


def join_selectivity(left: ColumnStats | None, right: ColumnStats | None) -> float:
    """Equi-join selectivity: ``1 / max(ndv_left, ndv_right)`` (System R)."""
    ndv_left = left.distinct_count if left else 0.0
    ndv_right = right.distinct_count if right else 0.0
    largest = max(ndv_left, ndv_right, 1.0)
    return 1.0 / largest


def _is_numeric(value) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(
        value, bool
    )


def _to_python(value):
    return value.item() if hasattr(value, "item") else value
