"""Columnar in-memory storage.

A :class:`Table` is an ordered collection of :class:`Column` objects, each a
numpy array plus an optional null mask.  All executor operators exchange
tables, so the storage layer doubles as the intermediate-result format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from .errors import CatalogError
from .types import SqlType

#: Flat per-element payload estimate for object-dtype columns (a short
#: CPython str is ~49 bytes plus the array's own 8-byte pointer).
_OBJECT_PAYLOAD_BYTES = 48


@dataclass
class Column:
    """One column of data: values plus an optional validity mask.

    ``null_mask[i] is True`` means row *i* is NULL.  A ``None`` mask means the
    column contains no NULLs, which keeps the common case allocation-free.
    """

    name: str
    sql_type: SqlType
    data: np.ndarray
    null_mask: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.null_mask is not None and len(self.null_mask) != len(self.data):
            raise ValueError("null mask length mismatch")

    def __len__(self) -> int:
        return len(self.data)

    @property
    def has_nulls(self) -> bool:
        """Whether any row of this column is NULL."""
        return self.null_mask is not None and bool(self.null_mask.any())

    def valid_mask(self) -> np.ndarray:
        """Boolean array that is True where the value is NOT NULL."""
        if self.null_mask is None:
            return np.ones(len(self.data), dtype=bool)
        return ~self.null_mask

    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by position, preserving nulls."""
        mask = None if self.null_mask is None else self.null_mask[indices]
        return Column(self.name, self.sql_type, self.data[indices], mask)

    def filter(self, keep: np.ndarray) -> "Column":
        """Keep the rows where *keep* is True."""
        mask = None if self.null_mask is None else self.null_mask[keep]
        return Column(self.name, self.sql_type, self.data[keep], mask)

    def non_null_values(self) -> np.ndarray:
        """The values of all non-NULL rows, in row order."""
        if self.null_mask is None:
            return self.data
        return self.data[~self.null_mask]

    @property
    def estimated_bytes(self) -> int:
        """Approximate in-memory size, for governor memory accounting.

        ``nbytes`` is exact for primitive dtypes; object columns add a flat
        per-element charge for the boxed payload (strings, dates) on top of
        the pointer array, since measuring each object would cost more than
        the accounting is worth.
        """
        total = int(self.data.nbytes)
        if self.data.dtype == object:
            total += _OBJECT_PAYLOAD_BYTES * len(self.data)
        if self.null_mask is not None:
            total += int(self.null_mask.nbytes)
        return total

    def append(self, other: "Column") -> "Column":
        """This column followed by *other*'s rows (same type, new arrays)."""
        data = np.concatenate([self.data, other.data])
        if self.null_mask is None and other.null_mask is None:
            mask = None
        else:
            left = (
                self.null_mask
                if self.null_mask is not None
                else np.zeros(len(self.data), dtype=bool)
            )
            right = (
                other.null_mask
                if other.null_mask is not None
                else np.zeros(len(other.data), dtype=bool)
            )
            mask = np.concatenate([left, right])
        return Column(self.name, self.sql_type, data, mask)

    @staticmethod
    def from_values(name: str, sql_type: SqlType, values: Sequence) -> "Column":
        """Build a column from a Python sequence, treating ``None`` as NULL."""
        nulls = np.array([v is None for v in values], dtype=bool)
        dtype = sql_type.numpy_dtype
        if dtype == np.dtype(object):
            data = np.array(list(values), dtype=object)
        else:
            fill: object = 0
            cleaned = [fill if v is None else v for v in values]
            data = np.array(cleaned, dtype=dtype)
        mask = nulls if nulls.any() else None
        return Column(name, sql_type, data, mask)


@dataclass
class Table:
    """A named, ordered collection of equal-length columns."""

    name: str
    columns: list[Column] = field(default_factory=list)

    def __post_init__(self) -> None:
        lengths = {len(c) for c in self.columns}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns in table {self.name}: {lengths}")
        self._by_name = {c.name: c for c in self.columns}
        if len(self._by_name) != len(self.columns):
            raise CatalogError(f"duplicate column name in table {self.name}")

    @property
    def row_count(self) -> int:
        """Number of rows (0 for a table without columns)."""
        return len(self.columns[0]) if self.columns else 0

    @property
    def column_names(self) -> list[str]:
        """Column names in declaration order."""
        return [c.name for c in self.columns]

    @property
    def estimated_bytes(self) -> int:
        """Approximate in-memory size (sum of the columns' estimates)."""
        return sum(c.estimated_bytes for c in self.columns)

    def column(self, name: str) -> Column:
        """Look up a column by name (CatalogError if absent)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(
                f"no column {name!r} in table {self.name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        """Whether a column named *name* exists."""
        return name in self._by_name

    def take(self, indices: np.ndarray) -> "Table":
        """Gather rows by position across all columns."""
        return Table(self.name, [c.take(indices) for c in self.columns])

    def filter(self, keep: np.ndarray) -> "Table":
        """Keep the rows where the boolean mask is True."""
        return Table(self.name, [c.filter(keep) for c in self.columns])

    def head(self, n: int) -> "Table":
        """The first *n* rows."""
        return Table(self.name, [
            Column(c.name, c.sql_type, c.data[:n],
                   None if c.null_mask is None else c.null_mask[:n])
            for c in self.columns
        ])

    def append_rows(self, rows: "Table") -> "Table":
        """A new table with *rows* appended positionally (DML INSERT).

        *rows* must carry one column per column of this table, in order;
        names on the incoming columns are ignored (the target's names win).
        """
        if len(rows.columns) != len(self.columns):
            raise ValueError(
                f"cannot append {len(rows.columns)} columns to "
                f"{len(self.columns)}-column table {self.name!r}"
            )
        appended = [
            mine.append(
                Column(mine.name, mine.sql_type, new.data, new.null_mask)
            )
            for mine, new in zip(self.columns, rows.columns)
        ]
        return Table(self.name, appended)

    def with_column(self, column: Column) -> "Table":
        """A new table with the same-named column replaced (DML UPDATE)."""
        if column.name not in self._by_name:
            raise CatalogError(
                f"no column {column.name!r} in table {self.name!r}"
            )
        return Table(
            self.name,
            [column if c.name == column.name else c for c in self.columns],
        )

    def rows(self) -> Iterable[tuple]:
        """Iterate rows as tuples (NULL becomes ``None``); for tests/demos."""
        for i in range(self.row_count):
            yield tuple(
                None
                if (c.null_mask is not None and c.null_mask[i])
                else c.data[i].item() if hasattr(c.data[i], "item") else c.data[i]
                for c in self.columns
            )

    @staticmethod
    def from_dict(
        name: str,
        data: Mapping[str, Sequence],
        types: Mapping[str, SqlType],
    ) -> "Table":
        """Build a table from ``{column: values}`` with explicit types."""
        columns = [
            Column.from_values(col, types[col], values)
            for col, values in data.items()
        ]
        return Table(name, columns)
