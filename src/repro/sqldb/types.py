"""SQL type system for the embedded engine.

Only the types that TPC-H and IMDB need are implemented.  Dates are stored
as integer days since the Unix epoch so that range predicates over dates are
plain integer comparisons in both the executor and the histogram code.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass

import numpy as np


class SqlType(enum.Enum):
    """Concrete column types supported by the engine."""

    INTEGER = "integer"
    BIGINT = "bigint"
    DOUBLE = "double precision"
    TEXT = "text"
    DATE = "date"
    BOOLEAN = "boolean"

    @property
    def is_numeric(self) -> bool:
        return self in (SqlType.INTEGER, SqlType.BIGINT, SqlType.DOUBLE)

    @property
    def is_orderable(self) -> bool:
        """Whether values can appear in range predicates and histograms."""
        return self is not SqlType.BOOLEAN

    @property
    def numpy_dtype(self) -> np.dtype:
        """The dtype used by :mod:`repro.sqldb.storage` for this type."""
        mapping = {
            SqlType.INTEGER: np.dtype(np.int64),
            SqlType.BIGINT: np.dtype(np.int64),
            SqlType.DOUBLE: np.dtype(np.float64),
            SqlType.TEXT: np.dtype(object),
            SqlType.DATE: np.dtype(np.int64),
            SqlType.BOOLEAN: np.dtype(np.bool_),
        }
        return mapping[self]

    @property
    def byte_width(self) -> int:
        """Approximate on-disk width, used by the cost model for page counts."""
        mapping = {
            SqlType.INTEGER: 4,
            SqlType.BIGINT: 8,
            SqlType.DOUBLE: 8,
            SqlType.TEXT: 32,
            SqlType.DATE: 4,
            SqlType.BOOLEAN: 1,
        }
        return mapping[self]


_EPOCH = datetime.date(1970, 1, 1)


def date_to_days(value: datetime.date | str) -> int:
    """Convert a date (or ISO string) to integer days since the epoch."""
    if isinstance(value, str):
        value = datetime.date.fromisoformat(value)
    return (value - _EPOCH).days


def days_to_date(days: int) -> datetime.date:
    """Inverse of :func:`date_to_days`."""
    return _EPOCH + datetime.timedelta(days=int(days))


def parse_type_name(name: str) -> SqlType:
    """Map a SQL type name (as written in DDL) to a :class:`SqlType`."""
    normalized = name.strip().lower()
    aliases = {
        "int": SqlType.INTEGER,
        "integer": SqlType.INTEGER,
        "int4": SqlType.INTEGER,
        "bigint": SqlType.BIGINT,
        "int8": SqlType.BIGINT,
        "double": SqlType.DOUBLE,
        "double precision": SqlType.DOUBLE,
        "float": SqlType.DOUBLE,
        "float8": SqlType.DOUBLE,
        "real": SqlType.DOUBLE,
        "numeric": SqlType.DOUBLE,
        "decimal": SqlType.DOUBLE,
        "text": SqlType.TEXT,
        "varchar": SqlType.TEXT,
        "char": SqlType.TEXT,
        "string": SqlType.TEXT,
        "date": SqlType.DATE,
        "boolean": SqlType.BOOLEAN,
        "bool": SqlType.BOOLEAN,
    }
    # Strip a length suffix such as varchar(25).
    if "(" in normalized:
        normalized = normalized.split("(", 1)[0].strip()
    if normalized not in aliases:
        raise ValueError(f"unknown SQL type name: {name!r}")
    return aliases[normalized]


@dataclass(frozen=True)
class ColumnType:
    """A column's type plus nullability, as recorded in the catalog."""

    sql_type: SqlType
    nullable: bool = True

    def __str__(self) -> str:
        suffix = "" if self.nullable else " not null"
        return f"{self.sql_type.value}{suffix}"


def common_numeric_type(left: SqlType, right: SqlType) -> SqlType:
    """The result type of an arithmetic expression over two numeric types."""
    if not (left.is_numeric and right.is_numeric):
        raise ValueError(f"not numeric: {left}, {right}")
    if SqlType.DOUBLE in (left, right):
        return SqlType.DOUBLE
    if SqlType.BIGINT in (left, right):
        return SqlType.BIGINT
    return SqlType.INTEGER
