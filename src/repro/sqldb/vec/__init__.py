"""Vectorized columnar execution: batches, kernels, and the batch executor.

``repro.sqldb.vec`` is the row executor's batch-at-a-time twin.  It is
selected per-plan by the planner's ``use_vectorized`` flag (see
``Database.set_vectorized``) and is proven semantically identical to the
row path by the differential battery in
``tests/sqldb/test_vec_differential.py`` and the ``vec-vs-row`` fuzz
oracle.
"""

from .batch import VecColumn, VecFrame, frame_bytes
from .executor import DEFAULT_BATCH_SIZE, VecExecutor, supports
from .expr import VecEvalContext, constant, logical_and, logical_or, negate_bool, truthy, veval

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "VecColumn",
    "VecEvalContext",
    "VecExecutor",
    "VecFrame",
    "constant",
    "frame_bytes",
    "logical_and",
    "logical_or",
    "negate_bool",
    "supports",
    "truthy",
    "veval",
]
