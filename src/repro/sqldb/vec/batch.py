"""Columnar batches over stdlib containers for the vectorized executor.

A :class:`VecColumn` is the vectorized path's unit of data: a flat container
of values (``array('q')`` for 64-bit integers and dates, ``array('d')`` for
doubles, plain lists for text and booleans) plus an optional validity mask —
a list of bools where ``True`` marks NULL, mirroring the numpy
``null_mask`` convention of :class:`repro.sqldb.storage.Column`.

Mask *presence* is semantically meaningful for parity with the row
executor: operations drop an all-False mask exactly where the numpy path
drops one (``mask.any()`` checks), and keep a present-but-all-False mask
exactly where the numpy path keeps one (slicing).  Governor byte accounting
depends on this (a present mask is charged), so the rules are mirrored
rather than normalized.

Values at masked (NULL) slots are *garbage with defined content*: the same
fill the numpy path carries (0 / 0.0 / False, and ``None`` for object
columns).  They are deliberately kept and propagated through arithmetic
because the row executor's kernels compute over full arrays — including
masked slots — and some error checks (``sqrt`` of a negative, date parses)
fire on that garbage.  Bit-parity requires computing the same garbage.
"""

from __future__ import annotations

from array import array

import numpy as np

from ..storage import Column
from ..types import SqlType

#: Container kind per column: int64 / float64 / bool / object.  This is the
#: vec analogue of a numpy dtype and is tracked separately from ``sql_type``
#: because the row executor can legitimately hold e.g. a BIGINT-typed vector
#: in an object array (``coalesce`` over mixed argument types widens the
#: container without changing the SQL type).
KIND_INT = "i"
KIND_FLOAT = "f"
KIND_BOOL = "b"
KIND_OBJECT = "o"

_CANONICAL_KIND = {
    SqlType.INTEGER: KIND_INT,
    SqlType.BIGINT: KIND_INT,
    SqlType.DATE: KIND_INT,
    SqlType.DOUBLE: KIND_FLOAT,
    SqlType.BOOLEAN: KIND_BOOL,
    SqlType.TEXT: KIND_OBJECT,
}

_NUMPY_DTYPE = {
    KIND_INT: np.int64,
    KIND_FLOAT: np.float64,
    KIND_BOOL: np.bool_,
    KIND_OBJECT: object,
}

#: Governor byte accounting, mirroring ``Column.estimated_bytes``: numpy
#: item widths plus the 48-byte payload estimate per object element.
_BYTE_WIDTH = {KIND_INT: 8, KIND_FLOAT: 8, KIND_BOOL: 1, KIND_OBJECT: 8 + 48}

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1


def canonical_kind(sql_type: SqlType) -> str:
    return _CANONICAL_KIND[sql_type]


def wrap_i64(value: int) -> int:
    """Wrap a Python int to int64 two's-complement (numpy overflow parity)."""
    if _I64_MIN <= value <= _I64_MAX:
        return value
    return (value - _I64_MIN) % (2**64) + _I64_MIN


def float_to_i64(value: float) -> int:
    """``np.float64 -> np.int64`` C-cast parity: truncate toward zero;
    NaN/inf/out-of-range collapse to INT64_MIN (x86 ``cvttsd2si``)."""
    if value != value:  # NaN
        return _I64_MIN
    if value <= _I64_MIN or value >= float(_I64_MAX):
        return _I64_MIN if value < 0 or value >= float(_I64_MAX) else _I64_MAX
    return int(value)


def _storage(kind: str, values):
    if kind == KIND_INT:
        return array("q", values)
    if kind == KIND_FLOAT:
        return array("d", values)
    return list(values)


class VecColumn:
    """One column of a batch: values + optional validity mask (True=NULL)."""

    __slots__ = ("values", "mask", "sql_type", "kind")

    def __init__(self, values, mask, sql_type: SqlType, kind: str | None = None):
        self.values = values
        self.mask = mask
        self.sql_type = sql_type
        self.kind = kind if kind is not None else _CANONICAL_KIND[sql_type]

    def __len__(self) -> int:
        return len(self.values)

    # -- construction ---------------------------------------------------------

    @staticmethod
    def from_numpy(column: Column, start: int = 0, stop: int | None = None) -> "VecColumn":
        """A batch slice of a stored numpy column, [start, stop)."""
        stop = len(column.data) if stop is None else stop
        data = column.data[start:stop]
        kind = KIND_OBJECT if data.dtype == object else _CANONICAL_KIND[column.sql_type]
        values = list(data) if kind == KIND_OBJECT else _storage(kind, data.tolist())
        mask = None
        if column.null_mask is not None:
            mask = [bool(m) for m in column.null_mask[start:stop]]
        return VecColumn(values, mask, column.sql_type, kind)

    @staticmethod
    def filled(value, count: int, sql_type: SqlType, kind: str | None = None) -> "VecColumn":
        kind = kind if kind is not None else _CANONICAL_KIND[sql_type]
        return VecColumn(_storage(kind, [value] * count), None, sql_type, kind)

    # -- conversion -----------------------------------------------------------

    def to_numpy(self, name: str) -> Column:
        """Materialize as a numpy storage column (final result assembly)."""
        dtype = _NUMPY_DTYPE[self.kind]
        if self.kind == KIND_OBJECT:
            data = np.empty(len(self.values), dtype=object)
            for i, v in enumerate(self.values):
                data[i] = v
        else:
            data = np.array(self.values, dtype=dtype)
        mask = None
        if self.mask is not None:
            mask = np.array(self.mask, dtype=bool)
        return Column(name, self.sql_type, data, mask)

    # -- slicing --------------------------------------------------------------

    def slice(self, start: int, stop: int) -> "VecColumn":
        mask = None if self.mask is None else self.mask[start:stop]
        return VecColumn(self.values[start:stop], mask, self.sql_type, self.kind)

    def filter(self, keep: list) -> "VecColumn":
        if len(keep) != len(self.values):
            # Row-executor parity: numpy boolean indexing raises when the
            # mask length mismatches (HAVING over an empty global aggregate
            # produces a 1-row frame whose columns hold 0 values).
            np.zeros(len(self.values))[np.asarray(keep, dtype=bool)]
        values = _storage(
            self.kind, (v for v, k in zip(self.values, keep) if k)
        )
        mask = None
        if self.mask is not None:
            mask = [m for m, k in zip(self.mask, keep) if k]
        return VecColumn(values, mask, self.sql_type, self.kind)

    def take(self, indices) -> "VecColumn":
        values = _storage(self.kind, (self.values[i] for i in indices))
        mask = None
        if self.mask is not None:
            mask = [self.mask[i] for i in indices]
        return VecColumn(values, mask, self.sql_type, self.kind)

    @staticmethod
    def concat(parts: list["VecColumn"]) -> "VecColumn":
        """Concatenate batches of one logical column.

        The mask is present iff any part carries one (absent parts
        contribute all-valid runs) — matching what a whole-column numpy
        operation would have produced before the column was batched.
        """
        first = parts[0]
        values = _storage(first.kind, (v for p in parts for v in p.values))
        mask = None
        if any(p.mask is not None for p in parts):
            mask = []
            for p in parts:
                mask.extend(p.mask if p.mask is not None else [False] * len(p))
        return VecColumn(values, mask, first.sql_type, first.kind)

    # -- accounting -----------------------------------------------------------

    @property
    def estimated_bytes(self) -> int:
        total = _BYTE_WIDTH[self.kind] * len(self.values)
        if self.mask is not None:
            total += len(self.mask)
        return total

    def null_fill(self):
        """The garbage value the numpy path stores at a NULL slot."""
        if self.kind == KIND_OBJECT:
            return None
        if self.kind == KIND_FLOAT:
            return 0.0
        if self.kind == KIND_BOOL:
            return False
        return 0


class VecFrame:
    """An intermediate batch: qualified columns plus aggregate side-band."""

    __slots__ = ("columns", "row_count", "aggregate_values")

    def __init__(
        self,
        columns: dict[str, VecColumn],
        row_count: int,
        aggregate_values: dict[int, VecColumn] | None = None,
    ):
        self.columns = columns
        self.row_count = row_count
        self.aggregate_values = aggregate_values or {}

    def filter(self, keep: list) -> "VecFrame":
        columns = {name: col.filter(keep) for name, col in self.columns.items()}
        aggregates = {
            key: col.filter(keep) for key, col in self.aggregate_values.items()
        }
        return VecFrame(columns, sum(1 for k in keep if k), aggregates)

    def take(self, indices) -> "VecFrame":
        columns = {name: col.take(indices) for name, col in self.columns.items()}
        aggregates = {
            key: col.take(indices) for key, col in self.aggregate_values.items()
        }
        return VecFrame(columns, len(indices), aggregates)

    def slice(self, start: int, stop: int) -> "VecFrame":
        columns = {
            name: col.slice(start, stop) for name, col in self.columns.items()
        }
        aggregates = {
            key: col.slice(start, stop)
            for key, col in self.aggregate_values.items()
        }
        return VecFrame(columns, max(stop - start, 0), aggregates)

    @staticmethod
    def concat(frames: list["VecFrame"]) -> "VecFrame":
        """Concatenate batches into one whole frame (barrier operators)."""
        if len(frames) == 1:
            return frames[0]
        first = frames[0]
        columns = {
            name: VecColumn.concat([f.columns[name] for f in frames])
            for name in first.columns
        }
        aggregates = {
            key: VecColumn.concat([f.aggregate_values[key] for f in frames])
            for key in first.aggregate_values
        }
        return VecFrame(columns, sum(f.row_count for f in frames), aggregates)


def frame_bytes(frame: VecFrame) -> int:
    """Estimated bytes held by a batch (governor accounting parity)."""
    return sum(col.estimated_bytes for col in frame.columns.values())
