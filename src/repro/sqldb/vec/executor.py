"""Batch-at-a-time plan execution over columnar stdlib batches.

The vectorized twin of :class:`repro.sqldb.executor.Executor`.  Operators
run operator-at-a-time but produce *lists of batches* instead of one
materialized frame: scans emit ``batch_size``-row slices of the stored
table, and pipeline operators (filter, projection, inner hash-join probe,
limit) preserve batch structure.  Barrier operators (aggregate, sort,
distinct, outer-join append) concatenate their input to a single frame
because their semantics are inherently whole-input.

Parity contract with the row executor, enforced by the differential
battery (``tests/sqldb/test_vec_differential.py``):

* identical result rows, row order, column names/types and null masks;
* identical governor accounting in single-batch mode (``begin_operator``
  exactly once per operator so fault-injection RNG draws line up, one
  ``charge_frame`` per output batch — totals equal the row executor's
  because charges are additive);
* identical error type + message in single-batch mode (multi-batch runs
  may surface a different batch's error first, so the battery compares
  those message-agnostically).

The governor keeps its guarantees with *partial-batch accounting*: budgets
are charged at batch boundaries, so a tripped budget reflects only the
batches charged so far rather than the operator's full output.
"""

from __future__ import annotations

import repro.governor.context as _governor_context
import repro.obs.profile as _obs_profile

from .. import ast_nodes as ast
from ..catalog import Catalog
from ..errors import ExecutionError
from ..plan_nodes import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    HashJoinNode,
    IndexScanNode,
    LimitNode,
    Plan,
    PlanNode,
    ProjectNode,
    ResultNode,
    SeqScanNode,
    SortNode,
)
from ..storage import Column, Table
from ..types import SqlType
from .batch import (
    KIND_FLOAT,
    KIND_INT,
    KIND_OBJECT,
    VecColumn,
    VecFrame,
    float_to_i64,
    frame_bytes,
    wrap_i64,
)
from .expr import VecEvalContext, truthy, veval

DEFAULT_BATCH_SIZE = 1024

_SUPPORTED_NODES = (
    SeqScanNode,
    IndexScanNode,
    HashJoinNode,
    FilterNode,
    AggregateNode,
    SortNode,
    ProjectNode,
    DistinctNode,
    LimitNode,
    ResultNode,
)


def supports(plan: Plan) -> bool:
    """Whether every operator in *plan* has a vectorized implementation.

    Subplans (subquery expressions), UNION branches, subquery scans, and
    nested-loop joins fall back to the row executor wholesale.
    """
    if plan.subplans:
        return False
    return _supports_node(plan.root)


def _supports_node(node: PlanNode) -> bool:
    if not isinstance(node, _SUPPORTED_NODES):
        return False
    if isinstance(node, HashJoinNode):
        return _supports_node(node.left) and _supports_node(node.right)
    child = getattr(node, "child", None)
    if child is not None:
        return _supports_node(child)
    return True


class VecExecutor:
    """Executes physical plans batch-at-a-time against the catalog."""

    def __init__(self, catalog: Catalog, batch_size: int = DEFAULT_BATCH_SIZE):
        self._catalog = catalog
        self._batch_size = batch_size

    def execute(self, plan: Plan) -> Table:
        """Run *plan* and return the result with its output column names."""
        if _obs_profile.ACTIVE_RUN.get() is None:
            target = _obs_profile.capture_target()
            if target is not None:
                run = _obs_profile.ProfileRun()
                token = _obs_profile.ACTIVE_RUN.set(run)
                try:
                    result = self._execute(plan)
                finally:
                    _obs_profile.ACTIVE_RUN.reset(token)
                target.record(run.finalize())
                return result
        return self._execute(plan)

    def _execute(self, plan: Plan) -> Table:
        frame = VecFrame.concat(self._run(plan.root))
        names = list(frame.columns.keys())
        if plan.output_names and len(names) == len(plan.output_names):
            names = list(plan.output_names)
        columns = [
            col.to_numpy(name)
            for name, col in zip(names, frame.columns.values())
        ]
        return Table("result", columns)

    # -- dispatch --------------------------------------------------------------

    def _run(self, node: PlanNode) -> list[VecFrame]:
        """One operator boundary — governor and profiler integration.

        ``begin_operator`` fires exactly once per operator (fault-injection
        RNG draws depend on the call sequence), while ``charge_frame`` fires
        once per output batch: row/memory budgets are charged at batch
        boundaries and a tripped budget reflects the partial charge.
        """
        governor = _governor_context.current_governor()
        run = _obs_profile.ACTIVE_RUN.get()
        if governor is None and run is None:
            return self._dispatch(node)
        if run is None:
            return self._run_governed(governor, node)
        profile, started = run.enter(node)
        rows = 0
        batches = 1
        try:
            if governor is None:
                frames = self._dispatch(node)
            else:
                frames = self._run_governed(governor, node)
            rows = sum(f.row_count for f in frames)
            batches = len(frames)
            return frames
        finally:
            run.exit(profile, started, rows, batches=batches)

    def _run_governed(self, governor, node: PlanNode) -> list[VecFrame]:
        name = type(node).__name__
        governor.begin_operator(name)
        frames = self._dispatch(node)
        for frame in frames:
            governor.charge_frame(name, frame.row_count, frame_bytes(frame))
        return frames

    def _dispatch(self, node: PlanNode) -> list[VecFrame]:
        if isinstance(node, (SeqScanNode, IndexScanNode)):
            return self._run_scan(node)
        if isinstance(node, HashJoinNode):
            return self._run_hash_join(node)
        if isinstance(node, FilterNode):
            return [
                self._apply_filter(frame, node.condition)
                for frame in self._run(node.child)
            ]
        if isinstance(node, AggregateNode):
            return self._run_aggregate(node)
        if isinstance(node, SortNode):
            return self._run_sort(node)
        if isinstance(node, ProjectNode):
            return [self._project(frame, node) for frame in self._run(node.child)]
        if isinstance(node, DistinctNode):
            return self._run_distinct(node)
        if isinstance(node, LimitNode):
            return self._run_limit(node)
        if isinstance(node, ResultNode):
            return self._run_result(node)
        raise ExecutionError(f"cannot execute node {type(node).__name__}")

    # -- scans -----------------------------------------------------------------

    def _run_scan(self, node: SeqScanNode | IndexScanNode) -> list[VecFrame]:
        data = self._catalog.data(node.table_name)
        frames = []
        total = data.row_count
        size = max(self._batch_size, 1)
        for start in range(0, max(total, 1), size):
            stop = min(start + size, total)
            columns = {
                f"{node.binding}.{col.name}": VecColumn.from_numpy(col, start, stop)
                for col in data.columns
            }
            frames.append(
                self._apply_filter(
                    VecFrame(columns, stop - start), node.filter
                )
            )
        return frames

    def _apply_filter(
        self, frame: VecFrame, condition: ast.Expression | None
    ) -> VecFrame:
        if condition is None:
            return frame
        keep = truthy(veval(condition, _context(frame)))
        return frame.filter(keep)

    # -- joins -----------------------------------------------------------------

    def _run_hash_join(self, node: HashJoinNode) -> list[VecFrame]:
        left_frames = self._run(node.left)
        right = VecFrame.concat(self._run(node.right))
        # Key-evaluation order matters for error parity: the row executor
        # evaluates left keys before right keys.
        left_keys = [_join_key_codes(node.left_keys, f) for f in left_frames]
        right_codes, right_valid = _join_key_codes(node.right_keys, right)
        governor = _governor_context.current_governor()
        table: dict[object, list[int]] = {}
        for i, ok in enumerate(right_valid):
            if ok:
                table.setdefault(right_codes[i], []).append(i)
        matched_left: list[bool] = [False] * sum(f.row_count for f in left_frames)
        matched_right = [False] * right.row_count
        joined_frames: list[VecFrame] = []
        offset = 0
        pairs = 0
        for left, (left_codes, left_valid) in zip(left_frames, left_keys):
            li: list[int] = []
            ri: list[int] = []
            for i, ok in enumerate(left_valid):
                if not ok:
                    continue
                bucket = table.get(left_codes[i])
                if bucket:
                    for j in bucket:
                        li.append(i)
                        ri.append(j)
                        pairs += 1
                        if governor is not None and pairs & 0x1FFF == 0:
                            governor.admit(pairs, 0, "HashJoinNode")
            joined = _combine_frames(left.take(li), right.take(ri))
            if node.residual is not None:
                keep = truthy(veval(node.residual, _context(joined)))
                joined = joined.filter(keep)
                li = [v for v, k in zip(li, keep) if k]
                ri = [v for v, k in zip(ri, keep) if k]
            for v in li:
                matched_left[offset + v] = True
            for v in ri:
                matched_right[v] = True
            joined_frames.append(joined)
            offset += left.row_count
        if node.join_type == "inner":
            return joined_frames
        joined = VecFrame.concat(joined_frames)
        left = VecFrame.concat(left_frames)
        if node.join_type in ("left", "full"):
            joined = _append_outer_rows(
                joined, left, right, [not m for m in matched_left], side="left"
            )
        if node.join_type in ("right", "full"):
            joined = _append_outer_rows(
                joined, left, right, [not m for m in matched_right], side="right"
            )
        return [joined]

    # -- aggregation -----------------------------------------------------------

    def _run_aggregate(self, node: AggregateNode) -> list[VecFrame]:
        child = VecFrame.concat(self._run(node.child))
        context = _context(child)
        if node.group_exprs:
            key_vecs = [veval(g, context) for g in node.group_exprs]
            codes, num_groups = _factorize_many(key_vecs, child.row_count)
        else:
            codes = [0] * child.row_count
            num_groups = 1  # global aggregate: one group even over zero rows
        representatives = _first_index_per_group(codes, num_groups, child.row_count)
        aggregates: dict[int, VecColumn] = {}
        for call in node.aggregate_calls:
            if id(call) not in aggregates:
                aggregates[id(call)] = _compute_aggregate(
                    call, codes, num_groups, context
                )
        frame = child.take(representatives)
        frame.aggregate_values = aggregates
        frame.row_count = num_groups
        if node.having is not None:
            keep = truthy(veval(node.having, _context(frame)))
            frame = frame.filter(keep)
        return [frame]

    # -- sort / distinct / limit / project / result ----------------------------

    def _run_sort(self, node: SortNode) -> list[VecFrame]:
        frames = self._run(node.child)
        total = sum(f.row_count for f in frames)
        if total <= 1 or not node.order_items:
            return frames
        frame = VecFrame.concat(frames)
        governor = _governor_context.current_governor()
        context = _context(frame)
        keys: list[list] = []
        for order in node.order_items:
            vec = veval(order.expression, context)
            keys.append(_sort_key(vec, order.descending))
            if governor is not None:
                governor.check()
        order_idx = sorted(
            range(frame.row_count),
            key=lambda i: tuple((k[i] != k[i], k[i]) for k in keys),
        )
        return [frame.take(order_idx)]

    def _run_distinct(self, node: DistinctNode) -> list[VecFrame]:
        frames = self._run(node.child)
        if sum(f.row_count for f in frames) == 0:
            return frames
        frame = VecFrame.concat(frames)
        codes, num_groups = _factorize_many(
            list(frame.columns.values()), frame.row_count
        )
        firsts = _first_index_per_group(codes, num_groups, frame.row_count)
        firsts.sort()  # keep first occurrences in their original order
        return [frame.take(firsts)]

    def _run_limit(self, node: LimitNode) -> list[VecFrame]:
        frames = self._run(node.child)
        start = node.offset or 0
        stop = (
            sum(f.row_count for f in frames)
            if node.limit is None
            else start + node.limit
        )
        out: list[VecFrame] = []
        position = 0
        for frame in frames:
            lo = max(start - position, 0)
            hi = min(stop - position, frame.row_count)
            if hi > lo:
                out.append(frame.slice(lo, hi))
            position += frame.row_count
        if not out:
            out.append(frames[0].slice(0, 0))
        return out

    def _project(self, frame: VecFrame, node: ProjectNode) -> VecFrame:
        context = _context(frame)
        columns: dict[str, VecColumn] = {}
        for name, item in zip(node.output_names, node.items):
            vec = veval(item.expression, context)
            # to_column parity: an all-False mask is dropped at projection.
            mask = vec.mask if vec.mask is not None and any(vec.mask) else None
            columns[name] = VecColumn(vec.values, mask, vec.sql_type, vec.kind)
        return VecFrame(columns, frame.row_count)

    def _run_result(self, node: ResultNode) -> list[VecFrame]:
        context = VecEvalContext({}, 1, {})
        columns: dict[str, VecColumn] = {}
        for name, item in zip(node.output_names, node.items):
            vec = veval(item.expression, context)
            mask = vec.mask if vec.mask is not None and any(vec.mask) else None
            columns[name] = VecColumn(vec.values, mask, vec.sql_type, vec.kind)
        return [VecFrame(columns, 1)]


def _context(frame: VecFrame) -> VecEvalContext:
    return VecEvalContext(frame.columns, frame.row_count, frame.aggregate_values)


# -- join helpers -------------------------------------------------------------


def _join_key_codes(
    keys: list[ast.Expression], frame: VecFrame
) -> tuple[list, list]:
    """Evaluate join keys on *frame* and hash them to comparable codes."""
    context = _context(frame)
    vecs = [veval(k, context) for k in keys]
    valid = [True] * frame.row_count
    for vec in vecs:
        if vec.mask is not None:
            valid = [ok and not m for ok, m in zip(valid, vec.mask)]
    normalized = []
    for vec in vecs:
        if vec.sql_type is SqlType.TEXT:
            normalized.append([str(v) for v in vec.values])
        else:
            # float() mirrors astype(float64): hash/eq match the row
            # executor's np.float64 dict keys, including NaN never matching.
            normalized.append([float(v) for v in vec.values])
    if len(normalized) == 1:
        codes = normalized[0]
    else:
        codes = [tuple(col[i] for col in normalized) for i in range(frame.row_count)]
    return codes, valid


def _combine_frames(left: VecFrame, right: VecFrame) -> VecFrame:
    columns = dict(left.columns)
    for name, col in right.columns.items():
        if name in columns:
            raise ExecutionError(f"duplicate column binding {name!r} in join")
        columns[name] = col
    return VecFrame(columns, left.row_count)


def _append_outer_rows(
    joined: VecFrame,
    left: VecFrame,
    right: VecFrame,
    unmatched: list,
    side: str,
) -> VecFrame:
    count = sum(1 for m in unmatched if m)
    if count == 0:
        return joined
    preserved = left if side == "left" else right
    null_side = right if side == "left" else left
    indices = [i for i, m in enumerate(unmatched) if m]
    preserved_rows = preserved.take(indices)
    columns: dict[str, VecColumn] = {}
    for name in joined.columns:
        if name in preserved.columns:
            source = preserved_rows.columns[name]
        else:
            proto = null_side.columns[name]
            source = VecColumn(
                [proto.null_fill()] * count,
                [True] * count,
                proto.sql_type,
                proto.kind,
            )
        existing = joined.columns[name]
        kind = (
            KIND_OBJECT
            if existing.kind == KIND_OBJECT or source.kind == KIND_OBJECT
            else existing.kind
        )
        merged_data = list(existing.values) + list(source.values)
        existing_mask = (
            list(existing.mask)
            if existing.mask is not None
            else [False] * len(existing)
        )
        source_mask = (
            list(source.mask) if source.mask is not None else [False] * len(source)
        )
        merged_mask = existing_mask + source_mask
        columns[name] = VecColumn(
            merged_data,
            merged_mask if any(merged_mask) else None,
            existing.sql_type,
            kind,
        )
    return VecFrame(columns, joined.row_count + count)


# -- grouping helpers ---------------------------------------------------------


def _rank_codes(values: list) -> list:
    """Dense ascending-rank codes — the np.unique(return_inverse) mirror.

    NaNs collapse to one trailing code (numpy's ``equal_nan=True``); -0.0
    and 0.0 share a code (they compare equal under sort-and-dedupe).
    """
    distinct = {}
    for v in values:
        if not (isinstance(v, float) and v != v):
            distinct[v] = None
    ranked = sorted(distinct)
    ranks = {v: i for i, v in enumerate(ranked)}
    nan_rank = len(ranked)
    return [
        nan_rank if isinstance(v, float) and v != v else ranks[v] for v in values
    ]


def _factorize(vec: VecColumn) -> list:
    """Dense integer codes for *vec* values; NULL gets its own code (0)."""
    if vec.sql_type is SqlType.TEXT or vec.kind == KIND_OBJECT:
        codes = _rank_codes([str(v) for v in vec.values])
    else:
        codes = _rank_codes(list(vec.values))
    codes = [c + 1 for c in codes]
    if vec.mask is not None:
        codes = [0 if m else c for c, m in zip(codes, vec.mask)]
    return codes


def _factorize_many(vecs: list[VecColumn], row_count: int) -> tuple[list, int]:
    """Combine per-key codes into dense group ids; returns (codes, #groups)."""
    if row_count == 0:
        return [], 0
    combined = [0] * row_count
    for vec in vecs:
        codes = _factorize(vec)
        radix = max(codes) + 1
        # int64 wraparound parity with the numpy combination arithmetic.
        combined = [wrap_i64(c * radix + k) for c, k in zip(combined, codes)]
    dense = _rank_codes(combined)
    return dense, max(dense) + 1


def _first_index_per_group(codes: list, num_groups: int, row_count: int) -> list:
    if row_count == 0:
        # Global aggregate over an empty input: a single synthetic group with
        # no representative row (the take() of an empty index set).
        return []
    firsts: dict[int, int] = {}
    for i, code in enumerate(codes):
        if code not in firsts:
            firsts[code] = i
    return [firsts[code] for code in sorted(firsts)]


def _compute_aggregate(
    call: ast.FunctionCall,
    codes: list,
    num_groups: int,
    context: VecEvalContext,
) -> VecColumn:
    name = call.name
    row_count = len(codes)
    if name == "count" and (not call.args or isinstance(call.args[0], ast.Star)):
        counts = [0] * num_groups
        for c in codes:
            counts[c] += 1
        return VecColumn(counts, None, SqlType.BIGINT, KIND_INT)
    arg = veval(call.args[0], context)
    valid = (
        [not m for m in arg.mask] if arg.mask is not None else [True] * row_count
    )
    if call.distinct:
        arg_codes = _factorize(arg)
        pair_codes = [
            wrap_i64(c * (row_count + 1) + a) for c, a in zip(codes, arg_codes)
        ]
        seen: set = set()
        keep = []
        for p in pair_codes:
            keep.append(p not in seen)
            seen.add(p)
        valid = [v and k for v, k in zip(valid, keep)]
    if name == "count":
        counts = [0] * num_groups
        for c, ok in zip(codes, valid):
            if ok:
                counts[c] += 1
        return VecColumn(counts, None, SqlType.BIGINT, KIND_INT)
    if arg.sql_type is SqlType.TEXT:
        # MIN/MAX over text: per-group reduction in group-code order.
        out: list = [None] * num_groups
        for group in range(num_groups):
            strings = [
                str(v)
                for v, c, ok in zip(arg.values, codes, valid)
                if ok and c == group
            ]
            if strings:
                out[group] = min(strings) if name == "min" else max(strings)
        mask = [v is None for v in out]
        return VecColumn(
            out, mask if any(mask) else None, SqlType.TEXT, KIND_OBJECT
        )
    values = [float(v) for v in arg.values]
    group_counts = [0] * num_groups
    for c, ok in zip(codes, valid):
        if ok:
            group_counts[c] += 1
    empty = [c == 0 for c in group_counts]
    if name in ("sum", "avg"):
        # Accumulate in row order — the same order np.bincount's weighted
        # accumulation visits rows, so float sums are bit-identical.
        sums = [0.0] * num_groups
        for c, v, ok in zip(codes, values, valid):
            if ok:
                sums[c] += v
        if name == "sum":
            if arg.sql_type is SqlType.DOUBLE:
                return VecColumn(
                    sums, empty if any(empty) else None, SqlType.DOUBLE, KIND_FLOAT
                )
            data = [_rint_to_i64(s) for s in sums]
            return VecColumn(
                data, empty if any(empty) else None, SqlType.BIGINT, KIND_INT
            )
        means = [
            0.0 if e else s / max(c, 1)
            for s, c, e in zip(sums, group_counts, empty)
        ]
        return VecColumn(
            means, empty if any(empty) else None, SqlType.DOUBLE, KIND_FLOAT
        )
    # min / max: sequential fold in row order per group (reduceat parity,
    # including NaN propagation through np.minimum/np.maximum).
    result = [0.0] * num_groups
    started = [False] * num_groups
    for c, v, ok in zip(codes, values, valid):
        if not ok:
            continue
        if not started[c]:
            result[c] = v
            started[c] = True
        else:
            result[c] = _fold_minmax(result[c], v, name == "min")
    out_type = (
        arg.sql_type
        if arg.sql_type.is_numeric or arg.sql_type is SqlType.DATE
        else SqlType.DOUBLE
    )
    if out_type in (SqlType.INTEGER, SqlType.BIGINT, SqlType.DATE):
        data = [float_to_i64(v) for v in result]
        return VecColumn(data, empty if any(empty) else None, out_type, KIND_INT)
    return VecColumn(result, empty if any(empty) else None, out_type, KIND_FLOAT)


def _fold_minmax(acc: float, v: float, is_min: bool) -> float:
    # np.minimum/np.maximum: NaN poisons; on ties the *second* operand wins
    # (visible only through the sign of zero).
    if acc != acc or v != v:
        return float("nan")
    if is_min:
        return acc if acc < v else v
    return acc if acc > v else v


def _rint_to_i64(value: float) -> int:
    """np.round(x).astype(int64) parity: banker's rounding, then C-cast."""
    if value != value or value in (float("inf"), float("-inf")):
        return float_to_i64(value)
    return float_to_i64(round(value))


def _sort_key(vec: VecColumn, descending: bool) -> list:
    """Map a column to floats where ascending sort gives SQL order.

    PostgreSQL defaults: NULLS LAST for ASC, NULLS FIRST for DESC — both
    fall out of mapping NULL to +inf and negating for DESC.  NaN data values
    sort after everything in either direction (numpy argsort behaviour);
    the caller's tuple key handles that via an is-NaN flag.
    """
    if vec.sql_type is SqlType.TEXT or vec.kind == KIND_OBJECT:
        key = [float(c) for c in _rank_codes([str(v) for v in vec.values])]
    else:
        key = [float(v) for v in vec.values]
    if descending:
        key = [-v for v in key]
    if vec.mask is not None:
        inf = float("-inf") if descending else float("inf")
        key = [inf if m else v for v, m in zip(key, vec.mask)]
    return key
