"""Batch expression evaluation over stdlib containers with Kleene 3VL.

This is the vectorized twin of :mod:`repro.sqldb.expr_eval`.  Every arm is
an independent implementation over :class:`VecColumn` (lists / ``array``
containers + validity masks) rather than numpy arrays, but the *semantics*
are mirrored operation-for-operation so the two evaluators are bit-identical
— including error messages, mask-presence decisions, integer wraparound,
float-cast truncation, and computation over garbage values at NULL slots.

Two deliberate exceptions to "stdlib only": transcendental kernels
(sqrt/exp/ln/log/power/round) and EXTRACT's calendar math route the float
payload through the *same numpy ufuncs* the row evaluator uses.  On this
platform ``np.exp``/``np.log10``/``np.power`` differ from ``math.*`` in the
last ulp (SIMD polynomial vs libm), so a pure-Python implementation could
never be bit-identical.  The engine logic around them — masks, 3VL,
batching, coercion — is all new code, which is what the differential
battery is exercising.
"""

from __future__ import annotations

import datetime

import numpy as np

from .. import ast_nodes as ast
from ..errors import ExecutionError, UnsupportedSqlError
from ..expr_eval import like_to_regex
from ..types import SqlType, date_to_days, parse_type_name
from .batch import (
    KIND_BOOL,
    KIND_FLOAT,
    KIND_INT,
    KIND_OBJECT,
    VecColumn,
    float_to_i64,
    wrap_i64,
)

_KIND_FOR_TYPE = {
    SqlType.TEXT: KIND_OBJECT,
    SqlType.BOOLEAN: KIND_BOOL,
    SqlType.DOUBLE: KIND_FLOAT,
    SqlType.BIGINT: KIND_INT,
    SqlType.INTEGER: KIND_INT,
    SqlType.DATE: KIND_INT,
}


class VecEvalContext:
    """Everything an expression needs to evaluate over one batch."""

    def __init__(
        self,
        columns: dict[str, VecColumn],
        row_count: int,
        aggregate_values: dict[int, VecColumn] | None = None,
    ):
        self.columns = columns
        self.row_count = row_count
        self.aggregate_values = aggregate_values or {}

    def column(self, binding: str | None, name: str) -> VecColumn:
        key = f"{binding}.{name}" if binding else name
        if key in self.columns:
            return self.columns[key]
        if binding is None:
            matches = [v for k, v in self.columns.items() if k.endswith(f".{name}")]
            if len(matches) == 1:
                return matches[0]
        raise ExecutionError(f"column {key!r} not found at execution time")


def constant(value, length: int) -> VecColumn:
    if value is None:
        return VecColumn([0.0] * length, [True] * length, SqlType.DOUBLE, KIND_FLOAT)
    if isinstance(value, bool):
        return VecColumn([value] * length, None, SqlType.BOOLEAN, KIND_BOOL)
    if isinstance(value, (int, np.integer)):
        return VecColumn([int(value)] * length, None, SqlType.BIGINT, KIND_INT)
    if isinstance(value, (float, np.floating)):
        return VecColumn([float(value)] * length, None, SqlType.DOUBLE, KIND_FLOAT)
    if isinstance(value, (str,)):
        return VecColumn([value] * length, None, SqlType.TEXT, KIND_OBJECT)
    if isinstance(value, datetime.date):
        return VecColumn(
            [date_to_days(value)] * length, None, SqlType.DATE, KIND_INT
        )
    raise ExecutionError(f"unsupported literal type: {type(value).__name__}")


def veval(expression: ast.Expression, context: VecEvalContext) -> VecColumn:
    """Evaluate *expression* over the batch described by *context*."""
    if isinstance(expression, ast.Literal):
        return constant(expression.value, context.row_count)
    if isinstance(expression, ast.Placeholder):
        raise ExecutionError(
            f"cannot execute a template containing placeholder {{{expression.name}}}"
        )
    if isinstance(expression, ast.ColumnRef):
        return context.column(expression.table, expression.column)
    if isinstance(expression, ast.FunctionCall):
        if id(expression) in context.aggregate_values:
            return context.aggregate_values[id(expression)]
        if expression.is_aggregate:
            raise ExecutionError(
                f"aggregate {expression.name.upper()} evaluated outside aggregation"
            )
        return _scalar_function(expression, context)
    if isinstance(expression, ast.BinaryOp):
        return _binary(expression, context)
    if isinstance(expression, ast.UnaryOp):
        return _unary(expression, context)
    if isinstance(expression, ast.IsNull):
        operand = veval(expression.operand, context)
        is_null = (
            list(operand.mask)
            if operand.mask is not None
            else [False] * len(operand)
        )
        result = [not v for v in is_null] if expression.negated else is_null
        return VecColumn(result, None, SqlType.BOOLEAN, KIND_BOOL)
    if isinstance(expression, ast.Between):
        operand = veval(expression.operand, context)
        low = veval(expression.low, context)
        high = veval(expression.high, context)
        ge = _compare(operand, low, ">=")
        le = _compare(operand, high, "<=")
        result = logical_and(ge, le)
        return negate_bool(result) if expression.negated else result
    if isinstance(expression, ast.InList):
        operand = veval(expression.operand, context)
        result: VecColumn | None = None
        for item in expression.items:
            value = veval(item, context)
            eq = _compare(operand, value, "=")
            result = eq if result is None else logical_or(result, eq)
        assert result is not None
        return negate_bool(result) if expression.negated else result
    if isinstance(expression, ast.InSubquery):
        raise ExecutionError("IN subquery was not pre-executed")
    if isinstance(expression, ast.Exists):
        raise ExecutionError("EXISTS subquery was not pre-executed")
    if isinstance(expression, ast.ScalarSubquery):
        raise ExecutionError("scalar subquery was not pre-executed")
    if isinstance(expression, ast.Like):
        return _like(expression, context)
    if isinstance(expression, ast.Cast):
        return _cast(expression, context)
    if isinstance(expression, ast.CaseWhen):
        return _case(expression, context)
    if isinstance(expression, ast.Star):
        raise ExecutionError("'*' cannot be evaluated as a scalar expression")
    raise UnsupportedSqlError(f"unsupported expression: {type(expression).__name__}")


# -- kind casts (numpy astype parity) -----------------------------------------


def _as_bool(column: VecColumn) -> list:
    return [bool(v) for v in column.values]


def _as_float(values) -> list:
    # float() raises the same TypeError numpy's object->float64 cast raises
    # when it meets a None garbage value; that parity is intentional.
    return [float(v) for v in values]


def _as_i64(column: VecColumn) -> list:
    # numpy astype(int64): C truncation from float64, PyNumber_Long from
    # object (so ``int(nan)`` raises ValueError exactly like numpy).
    if column.kind == KIND_FLOAT:
        return [float_to_i64(v) for v in column.values]
    if column.kind == KIND_OBJECT:
        return [int(v) for v in column.values]
    return [int(v) for v in column.values]


# -- boolean helpers (Kleene three-valued logic) -------------------------------


def truthy(column: VecColumn) -> list:
    """Collapse a boolean column to a filter mask: NULL counts as false."""
    values = _as_bool(column)
    if column.mask is not None:
        values = [v and not m for v, m in zip(values, column.mask)]
    return values


def logical_and(a: VecColumn, b: VecColumn) -> VecColumn:
    av, bv = _as_bool(a), _as_bool(b)
    am = a.mask if a.mask is not None else [False] * len(av)
    bm = b.mask if b.mask is not None else [False] * len(bv)
    data = []
    mask = []
    any_null = False
    for x, y, mx, my in zip(av, bv, am, bm):
        false_side = (not x and not mx) or (not y and not my)
        null = (mx or my) and not false_side
        any_null = any_null or null
        data.append(x and y and not null)
        mask.append(null)
    return VecColumn(data, mask if any_null else None, SqlType.BOOLEAN, KIND_BOOL)


def logical_or(a: VecColumn, b: VecColumn) -> VecColumn:
    av, bv = _as_bool(a), _as_bool(b)
    am = a.mask if a.mask is not None else [False] * len(av)
    bm = b.mask if b.mask is not None else [False] * len(bv)
    data = []
    mask = []
    any_null = False
    for x, y, mx, my in zip(av, bv, am, bm):
        true_side = (x and not mx) or (y and not my)
        null = (mx or my) and not true_side
        any_null = any_null or null
        data.append(true_side)
        mask.append(null)
    return VecColumn(data, mask if any_null else None, SqlType.BOOLEAN, KIND_BOOL)


def negate_bool(column: VecColumn) -> VecColumn:
    data = [not v for v in _as_bool(column)]
    return VecColumn(data, column.mask, SqlType.BOOLEAN, KIND_BOOL)


# -- operators ----------------------------------------------------------------


def _binary(expression: ast.BinaryOp, context: VecEvalContext) -> VecColumn:
    op = expression.op
    if op == "and":
        return logical_and(
            veval(expression.left, context), veval(expression.right, context)
        )
    if op == "or":
        return logical_or(
            veval(expression.left, context), veval(expression.right, context)
        )
    left = veval(expression.left, context)
    right = veval(expression.right, context)
    if op in ("=", "<>", "<", "<=", ">", ">="):
        return _compare(left, right, op)
    if op == "||":
        return _concat(left, right)
    return _arithmetic(left, right, op)


def _combined_mask(left: VecColumn, right: VecColumn) -> list | None:
    if left.mask is None and right.mask is None:
        return None
    lm = left.mask if left.mask is not None else [False] * len(left)
    rm = right.mask if right.mask is not None else [False] * len(right)
    combined = [a or b for a, b in zip(lm, rm)]
    return combined if any(combined) else None


def _text_to_days(values) -> list:
    out = []
    for value in values:
        try:
            out.append(date_to_days(str(value)))
        except ValueError as exc:
            raise ExecutionError(f"invalid date literal: {value!r}") from exc
    return out


def _coerce_pair(left: VecColumn, right: VecColumn) -> tuple[list, list, SqlType]:
    """Bring both operands to a common comparable representation."""
    lt, rt = left.sql_type, right.sql_type
    if lt is SqlType.DATE and rt is SqlType.TEXT:
        return list(left.values), _text_to_days(right.values), SqlType.DATE
    if rt is SqlType.DATE and lt is SqlType.TEXT:
        return _text_to_days(left.values), list(right.values), SqlType.DATE
    if lt is SqlType.TEXT or rt is SqlType.TEXT:
        return list(left.values), list(right.values), SqlType.TEXT
    if lt is SqlType.BOOLEAN or rt is SqlType.BOOLEAN:
        return _as_bool(left), _as_bool(right), SqlType.BOOLEAN
    if lt is SqlType.DOUBLE or rt is SqlType.DOUBLE:
        return _as_float(left.values), _as_float(right.values), SqlType.DOUBLE
    return _as_i64(left), _as_i64(right), SqlType.BIGINT


_COMPARE_OPS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _compare(left: VecColumn, right: VecColumn, op: str) -> VecColumn:
    lv, rv, common = _coerce_pair(left, right)
    if common is SqlType.TEXT:
        lv = [str(v) for v in lv]
        rv = [str(v) for v in rv]
    fn = _COMPARE_OPS[op]
    result = [bool(fn(a, b)) for a, b in zip(lv, rv)]
    mask = _combined_mask(left, right)
    if mask is not None:
        result = [v and not m for v, m in zip(result, mask)]
    return VecColumn(result, mask, SqlType.BOOLEAN, KIND_BOOL)


def _fmt(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _concat(left: VecColumn, right: VecColumn) -> VecColumn:
    data = [f"{_fmt(a)}{_fmt(b)}" for a, b in zip(left.values, right.values)]
    return VecColumn(data, _combined_mask(left, right), SqlType.TEXT, KIND_OBJECT)


def _arithmetic(left: VecColumn, right: VecColumn, op: str) -> VecColumn:
    lt, rt = left.sql_type, right.sql_type
    mask = _combined_mask(left, right)
    if lt is SqlType.DATE and rt.is_numeric and op in ("+", "-"):
        rv = _as_i64(right)
        if op == "+":
            data = [wrap_i64(a + b) for a, b in zip(left.values, rv)]
        else:
            data = [wrap_i64(a - b) for a, b in zip(left.values, rv)]
        return VecColumn(data, mask, SqlType.DATE, KIND_INT)
    if lt is SqlType.DATE and rt is SqlType.DATE and op == "-":
        data = [wrap_i64(a - b) for a, b in zip(left.values, right.values)]
        return VecColumn(data, mask, SqlType.INTEGER, KIND_INT)
    if not (lt.is_numeric and rt.is_numeric):
        raise ExecutionError(f"operator {op} over {lt.value} and {rt.value}")
    use_float = SqlType.DOUBLE in (lt, rt) or op == "/"
    if use_float:
        lv = _as_float(left.values)
        rv = _as_float(right.values)
    else:
        lv = _as_i64(left)
        rv = _as_i64(right)
    valid = (
        [not m for m in mask] if mask is not None else [True] * len(lv)
    )
    if op == "+":
        data = [a + b for a, b in zip(lv, rv)]
    elif op == "-":
        data = [a - b for a, b in zip(lv, rv)]
    elif op == "*":
        data = [a * b for a, b in zip(lv, rv)]
    elif op in ("/", "%"):
        if any(b == 0 and ok for b, ok in zip(rv, valid)):
            raise ExecutionError("division by zero")
        safe = [1 if b == 0 else b for b in rv]
        if op == "/":
            data = [a / b for a, b in zip(lv, safe)]
        else:
            # Python % is floored modulo for ints and floats — same as np.mod.
            data = [a % b for a, b in zip(lv, safe)]
    else:  # pragma: no cover
        raise UnsupportedSqlError(f"operator {op}")
    if not use_float:
        data = [wrap_i64(v) for v in data]
    result_type = SqlType.DOUBLE if use_float else SqlType.BIGINT
    kind = KIND_FLOAT if use_float else KIND_INT
    return VecColumn(data, mask, result_type, kind)


def _unary(expression: ast.UnaryOp, context: VecEvalContext) -> VecColumn:
    operand = veval(expression.operand, context)
    if expression.op == "not":
        return negate_bool(operand)
    if expression.op == "-":
        if not operand.sql_type.is_numeric:
            raise ExecutionError(f"cannot negate {operand.sql_type.value}")
        if operand.kind == KIND_INT:
            data = [wrap_i64(-v) for v in operand.values]
        else:
            data = [-v for v in operand.values]
        return VecColumn(data, operand.mask, operand.sql_type, operand.kind)
    raise UnsupportedSqlError(f"unary operator {expression.op}")


# -- LIKE / CAST / CASE -------------------------------------------------------


def _like(expression: ast.Like, context: VecEvalContext) -> VecColumn:
    operand = veval(expression.operand, context)
    pattern_vec = veval(expression.pattern, context)
    mask = _combined_mask(operand, pattern_vec)
    valid = [not m for m in mask] if mask is not None else [True] * len(operand)
    patterns = pattern_vec.values
    result = [False] * len(operand)
    for i, ok in enumerate(valid):
        if ok:
            regex = like_to_regex(str(patterns[i]), expression.case_insensitive)
            result[i] = bool(regex.match(str(operand.values[i])))
    if expression.negated:
        result = [(not v) and ok for v, ok in zip(result, valid)]
    return VecColumn(result, mask, SqlType.BOOLEAN, KIND_BOOL)


def _cast(expression: ast.Cast, context: VecEvalContext) -> VecColumn:
    operand = veval(expression.operand, context)
    try:
        target = parse_type_name(expression.type_name)
    except ValueError as exc:
        raise ExecutionError(str(exc)) from None
    if target is operand.sql_type:
        return operand
    if target.is_numeric:
        if operand.sql_type is SqlType.TEXT:
            try:
                data = [float(v) for v in operand.values]
            except ValueError as exc:
                raise ExecutionError(f"invalid numeric cast: {exc}") from None
        else:
            data = _as_float(operand.values)
        if target in (SqlType.INTEGER, SqlType.BIGINT):
            data = [float_to_i64(v) for v in data]
            return VecColumn(data, operand.mask, target, KIND_INT)
        return VecColumn(data, operand.mask, target, KIND_FLOAT)
    if target is SqlType.TEXT:
        data = [_fmt(v) for v in operand.values]
        return VecColumn(data, operand.mask, SqlType.TEXT, KIND_OBJECT)
    if target is SqlType.DATE:
        if operand.sql_type is SqlType.TEXT:
            return VecColumn(
                _text_to_days(operand.values), operand.mask, SqlType.DATE, KIND_INT
            )
        return VecColumn(_as_i64(operand), operand.mask, SqlType.DATE, KIND_INT)
    if target is SqlType.BOOLEAN:
        return VecColumn(_as_bool(operand), operand.mask, SqlType.BOOLEAN, KIND_BOOL)
    raise ExecutionError(f"unsupported cast target {target.value}")


def _container_fill(kind: str, sql_type: SqlType, length: int) -> list:
    # CASE builds its result container from the first WHEN value: object
    # None-fill for TEXT, dtype zeros otherwise (an object container with a
    # non-TEXT type still zero-fills, matching np.zeros(dtype=object)).
    if sql_type is SqlType.TEXT:
        return [None] * length
    if kind == KIND_FLOAT:
        return [0.0] * length
    if kind == KIND_BOOL:
        return [False] * length
    return [0] * length


def _assign_cast(container_kind: str, value, value_kind: str):
    """Mirror numpy fancy-assignment casting into an existing container."""
    if container_kind == KIND_OBJECT:
        return value
    if container_kind == KIND_FLOAT:
        return float(value)
    if container_kind == KIND_BOOL:
        return bool(value)
    if value_kind == KIND_FLOAT:
        return float_to_i64(value)
    return int(value)


def _case(expression: ast.CaseWhen, context: VecEvalContext) -> VecColumn:
    length = context.row_count
    decided = [False] * length
    result_data: list | None = None
    result_kind = KIND_OBJECT
    result_mask = [False] * length
    result_type = SqlType.TEXT
    for condition, value in expression.whens:
        cond_vec = veval(condition, context)
        take = [t and not d for t, d in zip(truthy(cond_vec), decided)]
        value_vec = veval(value, context)
        if result_data is None:
            result_type = value_vec.sql_type
            result_kind = value_vec.kind
            result_data = _container_fill(result_kind, result_type, length)
            result_mask = [True] * length
        for i, t in enumerate(take):
            if t:
                result_data[i] = _assign_cast(
                    result_kind, value_vec.values[i], value_vec.kind
                )
                result_mask[i] = (
                    value_vec.mask[i] if value_vec.mask is not None else False
                )
                decided[i] = True
    remaining = [not d for d in decided]
    if expression.default is not None and any(remaining):
        default_vec = veval(expression.default, context)
        if result_data is None:
            result_type = default_vec.sql_type
            result_kind = default_vec.kind
            result_data = _container_fill(result_kind, result_type, length)
            result_mask = [True] * length
        if result_kind != default_vec.kind and result_kind != KIND_OBJECT:
            result_data = [float(v) for v in result_data]
            result_kind = KIND_FLOAT
            result_type = SqlType.DOUBLE
        for i, r in enumerate(remaining):
            if r:
                result_data[i] = _assign_cast(
                    result_kind, default_vec.values[i], default_vec.kind
                )
                result_mask[i] = (
                    default_vec.mask[i] if default_vec.mask is not None else False
                )
    if result_data is None:  # pragma: no cover - parser requires WHEN
        result_data = [None] * length
    mask = result_mask if any(result_mask) else None
    return VecColumn(result_data, mask, result_type, result_kind)


# -- scalar functions ---------------------------------------------------------


def _scalar_function(call: ast.FunctionCall, context: VecEvalContext) -> VecColumn:
    name = call.name
    args = [veval(arg, context) for arg in call.args]
    if name == "coalesce":
        return _coalesce(args, context.row_count)
    if name in ("greatest", "least"):
        return _greatest_least(args, name == "greatest")
    if name == "concat":
        result = args[0]
        for other in args[1:]:
            result = _concat(result, other)
        return result
    if name == "extract":
        return _extract(args)
    if name in ("substr", "substring"):
        return _substring(args)
    if name in ("upper", "lower"):
        func = str.upper if name == "upper" else str.lower
        data = [func(str(v)) for v in args[0].values]
        return VecColumn(data, args[0].mask, SqlType.TEXT, KIND_OBJECT)
    if name == "length":
        data = [len(str(v)) for v in args[0].values]
        return VecColumn(data, args[0].mask, SqlType.INTEGER, KIND_INT)
    if name in ("abs", "floor", "ceil", "sqrt", "exp", "ln", "log"):
        arg = args[0]
        values = _as_float(arg.values)
        if name == "abs":
            data = [abs(v) for v in values]
            out_type = arg.sql_type if arg.sql_type.is_numeric else SqlType.DOUBLE
            if out_type is not SqlType.DOUBLE:
                return VecColumn(
                    [float_to_i64(v) for v in data], arg.mask, out_type, KIND_INT
                )
            return VecColumn(data, arg.mask, out_type, KIND_FLOAT)
        if name in ("floor", "ceil"):
            func = np.floor if name == "floor" else np.ceil
            data = [float_to_i64(v) for v in func(np.array(values)).tolist()]
            return VecColumn(data, arg.mask, SqlType.BIGINT, KIND_INT)
        if name == "sqrt":
            if any(v < 0 for v in values):
                raise ExecutionError("cannot take square root of a negative number")
            ufunc = np.sqrt
        elif name == "exp":
            ufunc = np.exp
        else:
            if any(v <= 0 for v in values):
                raise ExecutionError(
                    "cannot take logarithm of a non-positive number"
                )
            ufunc = np.log if name == "ln" else np.log10
        data = ufunc(np.array(values, dtype=np.float64)).tolist()
        return VecColumn(data, arg.mask, SqlType.DOUBLE, KIND_FLOAT)
    if name == "round":
        arg = args[0]
        digits = int(np.asarray(args[1].values)[0]) if len(args) > 1 else 0
        data = np.round(
            np.array(_as_float(arg.values), dtype=np.float64), digits
        ).tolist()
        return VecColumn(data, arg.mask, SqlType.DOUBLE, KIND_FLOAT)
    if name == "mod":
        return _arithmetic(args[0], args[1], "%")
    if name == "power":
        data = np.power(
            np.array(_as_float(args[0].values), dtype=np.float64),
            np.array(_as_float(args[1].values), dtype=np.float64),
        ).tolist()
        return VecColumn(
            data, _combined_mask(args[0], args[1]), SqlType.DOUBLE, KIND_FLOAT
        )
    raise UnsupportedSqlError(f"function {name}() is not implemented")


def _substring(args: list[VecColumn]) -> VecColumn:
    if len(args) < 2:
        raise ExecutionError("substr() requires at least two arguments")
    source = args[0]
    starts = _as_i64(args[1])
    lengths = _as_i64(args[2]) if len(args) > 2 else None
    out = []
    for i, value in enumerate(source.values):
        text = str(value)
        begin = max(int(starts[i]) - 1, 0)
        if lengths is None:
            out.append(text[begin:])
        else:
            out.append(text[begin : begin + max(int(lengths[i]), 0)])
    mask = source.mask
    for other in args[1:]:
        mask = _combined_mask(VecColumn(out, mask, SqlType.TEXT, KIND_OBJECT), other)
    return VecColumn(out, mask, SqlType.TEXT, KIND_OBJECT)


def _coalesce(args: list[VecColumn], length: int) -> VecColumn:
    if not args:
        raise ExecutionError("COALESCE requires arguments")
    result = args[0]
    data = list(result.values)
    kind = result.kind
    mask = list(result.mask) if result.mask is not None else [False] * length
    for other in args[1:]:
        fill = [
            m and not (other.mask[i] if other.mask is not None else False)
            for i, m in enumerate(mask)
        ]
        if kind != other.kind:
            kind = KIND_OBJECT
        for i, f in enumerate(fill):
            if f:
                data[i] = (
                    other.values[i]
                    if kind == KIND_OBJECT
                    else _assign_cast(kind, other.values[i], other.kind)
                )
                mask[i] = False
    return VecColumn(data, mask if any(mask) else None, result.sql_type, kind)


def _greatest_least(args: list[VecColumn], greatest: bool) -> VecColumn:
    result = args[0]
    for other in args[1:]:
        lv, rv, common = _coerce_pair(result, other)
        if greatest:
            picked = [a if a >= b else b for a, b in zip(lv, rv)]
        else:
            picked = [a if a <= b else b for a, b in zip(lv, rv)]
        result = VecColumn(
            picked, _combined_mask(result, other), common, _KIND_FOR_TYPE[common]
        )
    return result


def _extract(args: list[VecColumn]) -> VecColumn:
    part = str(np.asarray(args[0].values, dtype=object)[0]).lower()
    days = np.array(_as_i64(args[1]), dtype=np.int64)
    epoch = np.datetime64("1970-01-01")
    dates = epoch + days.astype("timedelta64[D]")
    years = dates.astype("datetime64[Y]").astype(int) + 1970
    if part == "year":
        out = years
    elif part == "month":
        months = dates.astype("datetime64[M]").astype(int)
        out = months % 12 + 1
    elif part == "day":
        month_start = dates.astype("datetime64[M]").astype("datetime64[D]")
        out = (dates - month_start).astype(int) + 1
    else:
        raise ExecutionError(f"EXTRACT field {part!r} not supported")
    return VecColumn(
        out.astype(np.int64).tolist(), args[1].mask, SqlType.INTEGER, KIND_INT
    )
