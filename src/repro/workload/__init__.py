"""Shared workload data model: templates, specs, queries, distributions."""

from .analyzer import TemplateStructure, analyze_sql, analyze_statement, check_template
from .distribution import CostDistribution, DistributionTracker
from .mixer import STATEMENT_KINDS, WorkloadMixer, parse_mix, validate_mix
from .placeholders import infer_placeholder_bindings
from .query import GeneratedQuery, Workload
from .replay import QueryOutcome, ReplayReport, replay_workload
from .spec import TemplateSpec, parse_instructions
from .stats import CostSummary, StructuralMix, WorkloadReport, describe_workload
from .template import PlaceholderInfo, SqlTemplate, render_literal

__all__ = [
    "CostDistribution",
    "CostSummary",
    "DistributionTracker",
    "GeneratedQuery",
    "QueryOutcome",
    "ReplayReport",
    "STATEMENT_KINDS",
    "StructuralMix",
    "WorkloadMixer",
    "parse_mix",
    "validate_mix",
    "replay_workload",
    "WorkloadReport",
    "describe_workload",
    "PlaceholderInfo",
    "SqlTemplate",
    "TemplateSpec",
    "TemplateStructure",
    "Workload",
    "analyze_sql",
    "analyze_statement",
    "check_template",
    "infer_placeholder_bindings",
    "parse_instructions",
    "render_literal",
]
