"""Ground-truth structural analysis of SQL statements.

:func:`analyze_sql` computes the structural features a
:class:`~repro.workload.spec.TemplateSpec` constrains — table count, join
count, aggregation count, placeholder count, GROUP BY / subquery / ORDER BY /
LIMIT presence.  It is the arbiter for the paper's "Template Alignment
Accuracy" metric, and the simulated LLM's semantic validator consults it
(with optional noise) to mimic LLM self-checking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqldb import ast_nodes as ast
from repro.sqldb.parser import parse_select
from .spec import TemplateSpec


@dataclass(frozen=True)
class TemplateStructure:
    """Measured structural features of one SQL statement."""

    num_tables: int
    num_joins: int
    num_aggregations: int
    num_predicates: int
    num_scans: int
    has_group_by: bool
    has_nested_subquery: bool
    has_order_by: bool
    has_limit: bool
    has_complex_scalar: bool
    has_union: bool = False

    def violations(self, spec: TemplateSpec) -> list[str]:
        """Human-readable explanations of every spec mismatch (empty = ok)."""
        problems: list[str] = []
        checks = [
            ("num_tables", self.num_tables, "accesses {got} tables, expected {want}"),
            ("num_joins", self.num_joins, "has {got} joins, expected {want}"),
            (
                "num_aggregations",
                self.num_aggregations,
                "has {got} aggregations, expected {want}",
            ),
            (
                "num_predicates",
                self.num_predicates,
                "has {got} predicate placeholders, expected {want}",
            ),
        ]
        for name, got, message in checks:
            want = getattr(spec, name)
            if want is not None and got != want:
                problems.append(message.format(got=got, want=want))
        flags = [
            ("require_group_by", self.has_group_by, "GROUP BY"),
            ("require_nested_subquery", self.has_nested_subquery, "a nested subquery"),
            ("require_order_by", self.has_order_by, "ORDER BY"),
            ("require_limit", self.has_limit, "LIMIT"),
            (
                "require_complex_scalar",
                self.has_complex_scalar,
                "complex scalar expressions",
            ),
            ("require_union", self.has_union, "a UNION of subqueries"),
        ]
        for name, got, label in flags:
            want = getattr(spec, name)
            if want is True and not got:
                problems.append(f"is missing {label}")
            elif want is False and got:
                problems.append(f"must not use {label}")
        return problems

    def satisfies(self, spec: TemplateSpec) -> bool:
        return not self.violations(spec)


def analyze_sql(sql: str) -> TemplateStructure:
    """Parse *sql* (queries and templates alike) and measure its structure."""
    return analyze_statement(parse_select(sql))


def analyze_statement(
    statement: ast.SelectStatement | ast.CompoundSelect,
) -> TemplateStructure:
    branches = (
        statement.selects
        if isinstance(statement, ast.CompoundSelect)
        else [statement]
    )
    # Per-branch counts: a spec's "2 joins" constrains the query's shape,
    # which UNION repeats per branch — so structural counts are the maximum
    # over branches, while tables and placeholders aggregate across them.
    tables: set[str] = set()
    num_joins = 0
    num_aggregations = 0
    num_scans = 0
    has_nested_subquery = False
    complex_scalar_score = 0
    for branch in branches:
        branch_joins = branch_aggs = branch_scans = branch_complex = 0
        for node in branch.walk():
            if isinstance(node, ast.TableRef):
                tables.add(node.name)
                branch_scans += 1
            elif isinstance(node, ast.Join):
                branch_joins += 1
            elif isinstance(node, ast.FunctionCall):
                if node.is_aggregate:
                    branch_aggs += 1
                else:
                    branch_complex += 1
            elif isinstance(
                node,
                (ast.InSubquery, ast.Exists, ast.ScalarSubquery, ast.DerivedTable),
            ):
                has_nested_subquery = True
            elif isinstance(node, ast.CaseWhen):
                branch_complex += 2
            elif isinstance(node, (ast.Cast,)):
                branch_complex += 1
            elif isinstance(node, ast.BinaryOp) and node.op in (
                "+", "-", "*", "/", "||",
            ):
                branch_complex += 1
        num_joins = max(num_joins, branch_joins)
        num_aggregations = max(num_aggregations, branch_aggs)
        num_scans = max(num_scans, branch_scans)
        complex_scalar_score = max(complex_scalar_score, branch_complex)

    placeholders = ast.find_placeholders(statement)
    return TemplateStructure(
        num_tables=len(tables),
        num_joins=num_joins,
        num_aggregations=num_aggregations,
        num_predicates=len(placeholders),
        num_scans=num_scans,
        has_group_by=any(b.group_by for b in branches),
        has_nested_subquery=has_nested_subquery,
        has_order_by=any(b.order_by for b in branches),
        has_limit=any(b.limit is not None for b in branches),
        has_complex_scalar=complex_scalar_score >= 3,
        has_union=len(branches) > 1,
    )


def check_template(sql: str, spec: TemplateSpec) -> tuple[bool, list[str]]:
    """Convenience wrapper: (satisfies, violations) for *sql* against *spec*.

    A syntactically invalid statement is reported as a single violation
    rather than an exception, so callers can treat "cannot parse" uniformly
    with "parsed but wrong".
    """
    try:
        structure = analyze_sql(sql)
    except Exception as exc:  # SqlSyntaxError and friends
        return False, [f"could not parse template: {exc}"]
    violations = structure.violations(spec)
    return not violations, violations
