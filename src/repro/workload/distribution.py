"""Target cost distributions and the Wasserstein alignment metric.

A :class:`CostDistribution` is what the paper calls a *target cost
distribution* (Def. 2.12): a cost range split into intervals, each with a
target query count.  The Wasserstein (earth mover's) distance between the
target histogram and the histogram of generated query costs is the paper's
quality metric; both histograms live on interval midpoints, so an exact
per-interval count match yields distance zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class CostDistribution:
    """A histogram-shaped target: intervals over a cost range + counts."""

    lower: float
    upper: float
    target_counts: tuple[int, ...]
    name: str = "custom"
    cost_type: str = "plan_cost"  # 'plan_cost' | 'cardinality' | 'execution_time'

    def __post_init__(self) -> None:
        if self.upper <= self.lower:
            raise ValueError("upper bound must exceed lower bound")
        if not self.target_counts:
            raise ValueError("at least one interval is required")
        if any(c < 0 for c in self.target_counts):
            raise ValueError("target counts must be non-negative")

    # -- geometry -------------------------------------------------------------

    @property
    def num_intervals(self) -> int:
        return len(self.target_counts)

    @property
    def total_queries(self) -> int:
        return int(sum(self.target_counts))

    @property
    def interval_width(self) -> float:
        return (self.upper - self.lower) / self.num_intervals

    @property
    def boundaries(self) -> np.ndarray:
        return np.linspace(self.lower, self.upper, self.num_intervals + 1)

    @property
    def midpoints(self) -> np.ndarray:
        bounds = self.boundaries
        return (bounds[:-1] + bounds[1:]) / 2.0

    def interval_bounds(self, index: int) -> tuple[float, float]:
        bounds = self.boundaries
        return float(bounds[index]), float(bounds[index + 1])

    def interval_of(self, cost: float) -> int | None:
        """The interval index containing *cost*, or None if out of range."""
        if cost < self.lower or cost > self.upper:
            return None
        index = int((cost - self.lower) / self.interval_width)
        return min(index, self.num_intervals - 1)

    # -- histograms over generated costs -------------------------------------------

    def coverage(self, costs: Iterable[float]) -> np.ndarray:
        """Per-interval counts of *costs* (out-of-range costs are dropped)."""
        counts = np.zeros(self.num_intervals, dtype=np.int64)
        for cost in costs:
            index = self.interval_of(float(cost))
            if index is not None:
                counts[index] += 1
        return counts

    def deficits(self, costs: Iterable[float]) -> np.ndarray:
        """target - achieved per interval, floored at zero."""
        achieved = self.coverage(costs)
        target = np.asarray(self.target_counts, dtype=np.int64)
        return np.maximum(target - achieved, 0)

    def wasserstein(self, costs: Sequence[float]) -> float:
        """W1 distance between the target histogram and the cost histogram.

        Both distributions are normalized and placed on interval midpoints.
        An empty *costs* sequence compares against a point mass at the lower
        bound, so the metric starts high and decreases toward zero as the
        target fills — matching how the paper plots convergence.
        """
        target = np.asarray(self.target_counts, dtype=np.float64)
        target_total = target.sum()
        if target_total == 0:
            return 0.0
        target_pmf = target / target_total
        achieved = self.coverage(costs).astype(np.float64)
        achieved_total = achieved.sum()
        if achieved_total == 0:
            achieved_pmf = np.zeros_like(target_pmf)
            achieved_pmf[0] = 1.0
        else:
            achieved_pmf = achieved / achieved_total
        # W1 over an ordered 1-D support = sum |CDF differences| * spacing.
        cdf_gap = np.cumsum(target_pmf - achieved_pmf)
        return float(np.abs(cdf_gap[:-1]).sum() * self.interval_width)

    def count_distance(self, costs: Sequence[float]) -> int:
        """Total absolute per-interval count mismatch (0 = exact match)."""
        achieved = self.coverage(costs)
        target = np.asarray(self.target_counts, dtype=np.int64)
        return int(np.abs(target - achieved).sum())

    def is_satisfied_by(self, costs: Sequence[float]) -> bool:
        """Every interval has at least its target number of queries."""
        return bool((self.deficits(costs) == 0).all())

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def uniform(
        lower: float,
        upper: float,
        num_queries: int,
        num_intervals: int,
        name: str = "uniform",
        cost_type: str = "plan_cost",
    ) -> "CostDistribution":
        base, extra = divmod(num_queries, num_intervals)
        counts = tuple(
            base + (1 if i < extra else 0) for i in range(num_intervals)
        )
        return CostDistribution(lower, upper, counts, name, cost_type)

    @staticmethod
    def normal(
        lower: float,
        upper: float,
        num_queries: int,
        num_intervals: int,
        mean_fraction: float = 0.5,
        std_fraction: float = 0.18,
        name: str = "normal",
        cost_type: str = "plan_cost",
    ) -> "CostDistribution":
        """A discretized Gaussian over the cost range."""
        mids = np.linspace(0, 1, num_intervals + 1)
        mids = (mids[:-1] + mids[1:]) / 2
        density = np.exp(-0.5 * ((mids - mean_fraction) / std_fraction) ** 2)
        return CostDistribution.from_weights(
            lower, upper, density, num_queries, name, cost_type
        )

    @staticmethod
    def from_weights(
        lower: float,
        upper: float,
        weights: Sequence[float],
        num_queries: int,
        name: str = "weighted",
        cost_type: str = "plan_cost",
    ) -> "CostDistribution":
        """Allocate *num_queries* across intervals proportionally to weights.

        Rounding is largest-remainder so the counts sum exactly to
        *num_queries*.
        """
        weights = np.asarray(weights, dtype=np.float64)
        if (weights < 0).any() or weights.sum() <= 0:
            raise ValueError("weights must be non-negative and not all zero")
        shares = weights / weights.sum() * num_queries
        counts = np.floor(shares).astype(np.int64)
        remainder = num_queries - int(counts.sum())
        if remainder > 0:
            order = np.argsort(shares - counts)[::-1]
            counts[order[:remainder]] += 1
        return CostDistribution(lower, upper, tuple(int(c) for c in counts), name, cost_type)

    @staticmethod
    def from_samples(
        samples: Sequence[float],
        lower: float,
        upper: float,
        num_queries: int,
        num_intervals: int,
        name: str = "sampled",
        cost_type: str = "plan_cost",
    ) -> "CostDistribution":
        """Fit the target histogram to empirical samples (fleet statistics)."""
        bounds = np.linspace(lower, upper, num_intervals + 1)
        clipped = np.clip(np.asarray(samples, dtype=np.float64), lower, upper)
        histogram, _ = np.histogram(clipped, bins=bounds)
        weights = histogram.astype(np.float64)
        if weights.sum() == 0:
            weights[:] = 1.0
        return CostDistribution.from_weights(
            lower, upper, weights, num_queries, name, cost_type
        )

    def scaled_to(self, num_queries: int) -> "CostDistribution":
        """The same shape re-normalized to a different total query count."""
        return CostDistribution.from_weights(
            self.lower,
            self.upper,
            np.maximum(np.asarray(self.target_counts, dtype=np.float64), 1e-9),
            num_queries,
            self.name,
            self.cost_type,
        )

    def with_intervals(self, num_intervals: int) -> "CostDistribution":
        """The same shape re-binned to a different interval count."""
        mids = np.linspace(0, 1, num_intervals + 1)
        mids = (mids[:-1] + mids[1:]) / 2
        old_mids = (np.linspace(0, 1, self.num_intervals + 1)[:-1]
                    + np.linspace(0, 1, self.num_intervals + 1)[1:]) / 2
        weights = np.interp(mids, old_mids, np.asarray(self.target_counts, float))
        return CostDistribution.from_weights(
            self.lower, self.upper, np.maximum(weights, 1e-9),
            self.total_queries, self.name, self.cost_type,
        )


@dataclass
class DistributionTracker:
    """Mutable view of generation progress against one target distribution."""

    target: CostDistribution
    costs: list[float] = field(default_factory=list)

    def add(self, cost: float) -> int | None:
        """Record a generated query cost; returns the interval it landed in."""
        self.costs.append(float(cost))
        return self.target.interval_of(float(cost))

    def add_many(self, costs: Iterable[float]) -> None:
        for cost in costs:
            self.add(cost)

    @property
    def achieved(self) -> np.ndarray:
        return self.target.coverage(self.costs)

    @property
    def deficits(self) -> np.ndarray:
        return self.target.deficits(self.costs)

    @property
    def wasserstein(self) -> float:
        return self.target.wasserstein(self.costs)

    @property
    def complete(self) -> bool:
        return self.target.is_satisfied_by(self.costs)
