"""Mixed read/write workload synthesis (the ``--workload-mix`` knob).

SQLBarber's pipeline generates SELECT statements: templates come from the
LLM, predicates from the cost-distribution search.  Real OLTP-ish traces
interleave writes, so this module adds a deterministic post-pass that swaps
a seeded fraction of the generated queries for DML statements drawn from
the fuzz grammar's INSERT/UPDATE/DELETE productions (valid by construction
against the live schema) and costed through EXPLAIN — which never executes,
so mixing is side-effect free and cannot perturb later decisions.

Reproducibility contract: the keep-or-replace decision and the replacement
statement at position *i* are a pure function of ``(seed, i)`` and the
schema — never of earlier queries — so mixed workloads are prefix-stable,
byte-identical across runs, and identical across serial and parallel
pipelines (mixing runs after the search stage, which is itself pinned
bit-identical across worker counts).
"""

from __future__ import annotations

import random

from repro.workload.query import GeneratedQuery, Workload

#: Statement kinds, in the order the mix fractions are given.
STATEMENT_KINDS = ("select", "insert", "update", "delete")


def parse_mix(text: str) -> tuple[float, float, float, float]:
    """Parse a ``select,insert,update,delete`` fraction string.

    ``"0.5,0.2,0.2,0.1"`` → ``(0.5, 0.2, 0.2, 0.1)``.  Raises
    :class:`ValueError` with an actionable message on malformed input.
    """
    parts = [p.strip() for p in text.split(",")]
    if len(parts) != 4:
        raise ValueError(
            f"expected four comma-separated fractions "
            f"(select,insert,update,delete), got {text!r}"
        )
    try:
        values = tuple(float(p) for p in parts)
    except ValueError:
        raise ValueError(f"non-numeric fraction in {text!r}") from None
    return validate_mix(values)


def validate_mix(mix) -> tuple[float, float, float, float]:
    """Check that *mix* is four non-negative fractions summing to 1."""
    values = tuple(float(f) for f in mix)
    if len(values) != 4:
        raise ValueError(
            f"expected four fractions (select,insert,update,delete), "
            f"got {len(values)}"
        )
    if any(f < 0 for f in values):
        raise ValueError(f"fractions must be non-negative, got {values}")
    if abs(sum(values) - 1.0) > 1e-6:
        raise ValueError(f"fractions must sum to 1, got {sum(values)!r}")
    return values


def _draw_kind(rng: random.Random, mix) -> str:
    roll = rng.random()
    acc = 0.0
    for kind, fraction in zip(STATEMENT_KINDS, mix):
        acc += fraction
        if roll < acc:
            return kind
    return "select"  # guard against float round-off at the boundary


class WorkloadMixer:
    """Replace a seeded fraction of a workload's queries with DML."""

    def __init__(self, db, seed: int = 0):
        from repro.fuzz.grammar import FuzzGrammar

        self._db = db
        self._seed = seed
        self._grammar = FuzzGrammar(db.catalog, seed=seed)

    def mix(self, workload: Workload, mix) -> Workload:
        """A new :class:`Workload` with DML interleaved per *mix*.

        The input workload is not modified; kept SELECT queries are shared
        (they are frozen dataclasses).
        """
        mix = validate_mix(mix)
        mixed: list[GeneratedQuery] = []
        for i, query in enumerate(workload.queries):
            rng = random.Random(f"mix:{self._seed}:{i}")
            kind = _draw_kind(rng, mix)
            if kind == "select":
                mixed.append(query)
            else:
                mixed.append(self._dml_query(kind, rng, i, query.cost_type))
        return Workload(queries=mixed, name=workload.name)

    def _dml_query(
        self, kind: str, rng: random.Random, index: int, cost_type: str
    ) -> GeneratedQuery:
        from repro.sqldb.sql_render import render_statement

        builder = getattr(self._grammar, f"_shape_{kind}")
        statement, _scope = builder(rng)
        sql = render_statement(statement)
        # Estimates only — EXPLAIN never executes, so costing a DML
        # statement here mutates nothing and stays deterministic.
        estimate = self._db.explain(sql)
        cost = (
            estimate.estimated_rows
            if cost_type == "estimated_rows"
            else estimate.total_cost
        )
        return GeneratedQuery(
            sql=sql,
            cost=cost,
            template_id=f"mix_{kind}_{index}",
            cost_type=cost_type,
        )


__all__ = [
    "STATEMENT_KINDS",
    "WorkloadMixer",
    "parse_mix",
    "validate_mix",
]
