"""Placeholder-to-column inference.

To search predicate values, the system must know which column each
placeholder is compared against.  This module walks a template's AST, builds
the FROM-clause binding map against the catalog, and attributes every
placeholder to (table, column, operator) — the metadata that drives both the
value domains of profiling/LHS sampling and the Bayesian search space.
"""

from __future__ import annotations

from repro.sqldb import ast_nodes as ast
from repro.sqldb.catalog import Catalog
from .template import PlaceholderInfo


def infer_placeholder_bindings(
    statement: ast.SelectStatement, catalog: Catalog
) -> list[PlaceholderInfo]:
    """Return one :class:`PlaceholderInfo` per distinct placeholder."""
    found: dict[str, PlaceholderInfo] = {}
    _scan_statement(statement, catalog, found)
    # Keep document order of first appearance.
    ordered = []
    for name in ast.find_placeholders(statement):
        ordered.append(found.get(name, PlaceholderInfo(name=name)))
    return ordered


def _scan_statement(
    statement: ast.SelectStatement | ast.CompoundSelect,
    catalog: Catalog,
    found: dict[str, PlaceholderInfo],
) -> None:
    if isinstance(statement, ast.CompoundSelect):
        for branch in statement.selects:
            _scan_statement(branch, catalog, found)
        return
    if ast.is_dml(statement):
        _scan_dml(statement, catalog, found)
        return
    bindings = _binding_map(statement.from_clause, catalog)
    clauses: list[ast.Expression] = [i.expression for i in statement.select_items]
    if statement.where is not None:
        clauses.append(statement.where)
    if statement.having is not None:
        clauses.append(statement.having)
    clauses.extend(statement.group_by)
    clauses.extend(o.expression for o in statement.order_by)
    if statement.from_clause is not None:
        for node in statement.from_clause.walk():
            if isinstance(node, ast.Join) and node.condition is not None:
                clauses.append(node.condition)
            if isinstance(node, ast.DerivedTable):
                _scan_statement(node.subquery, catalog, found)
    for clause in clauses:
        _scan_expression(clause, bindings, catalog, found)


def _scan_dml(
    statement: ast.Node, catalog: Catalog, found: dict[str, PlaceholderInfo]
) -> None:
    """Attribute placeholders inside INSERT/UPDATE/DELETE statements.

    DML binds under the bare target-table name (no aliases), so the
    binding map is the single target table; a placeholder assigned or
    inserted *into* a column inherits that column's domain the same way a
    comparison against it would.
    """
    target = statement.target.name
    bindings = {target: target} if catalog.has_table(target) else {}
    if isinstance(statement, ast.InsertStatement):
        columns = statement.columns or (
            list(catalog.table(target).column_names)
            if catalog.has_table(target)
            else []
        )
        for row in statement.rows:
            for column_name, value in zip(columns, row):
                name = _placeholder_of(value)
                if name is not None:
                    _record(
                        name,
                        ast.ColumnRef(column=column_name, table=target),
                        "insert",
                        bindings,
                        catalog,
                        found,
                    )
                _scan_expression(value, bindings, catalog, found)
        if statement.source is not None:
            _scan_statement(statement.source, catalog, found)
        return
    if isinstance(statement, ast.UpdateStatement):
        for assignment in statement.assignments:
            name = _placeholder_of(assignment.value)
            if name is not None:
                _record(
                    name,
                    ast.ColumnRef(column=assignment.column, table=target),
                    "set",
                    bindings,
                    catalog,
                    found,
                )
            _scan_expression(assignment.value, bindings, catalog, found)
    if statement.where is not None:
        _scan_expression(statement.where, bindings, catalog, found)


def _binding_map(
    from_clause: ast.TableExpression | None, catalog: Catalog
) -> dict[str, str]:
    """binding name -> base table name (derived tables are skipped)."""
    bindings: dict[str, str] = {}
    if from_clause is None:
        return bindings
    for node in from_clause.walk():
        if isinstance(node, ast.TableRef) and catalog.has_table(node.name):
            bindings[node.binding_name] = node.name
    return bindings


def _scan_expression(
    expression: ast.Expression,
    bindings: dict[str, str],
    catalog: Catalog,
    found: dict[str, PlaceholderInfo],
) -> None:
    if isinstance(expression, ast.BinaryOp):
        if expression.op in ("=", "<>", "<", "<=", ">", ">="):
            self_ph = _placeholder_of(expression.right)
            column = _column_of(expression.left)
            if self_ph is None and _placeholder_of(expression.left) is not None:
                self_ph = _placeholder_of(expression.left)
                column = _column_of(expression.right)
            if self_ph is not None and column is not None:
                _record(self_ph, column, expression.op, bindings, catalog, found)
        _scan_expression(expression.left, bindings, catalog, found)
        _scan_expression(expression.right, bindings, catalog, found)
        return
    if isinstance(expression, ast.Between):
        column = _column_of(expression.operand)
        for bound in (expression.low, expression.high):
            name = _placeholder_of(bound)
            if name is not None and column is not None:
                _record(name, column, "between", bindings, catalog, found)
        for child in (expression.operand, expression.low, expression.high):
            _scan_expression(child, bindings, catalog, found)
        return
    if isinstance(expression, ast.InList):
        column = _column_of(expression.operand)
        for item in expression.items:
            name = _placeholder_of(item)
            if name is not None and column is not None:
                _record(name, column, "in", bindings, catalog, found)
            _scan_expression(item, bindings, catalog, found)
        _scan_expression(expression.operand, bindings, catalog, found)
        return
    if isinstance(expression, ast.Like):
        name = _placeholder_of(expression.pattern)
        column = _column_of(expression.operand)
        if name is not None and column is not None:
            _record(name, column, "like", bindings, catalog, found)
        _scan_expression(expression.operand, bindings, catalog, found)
        _scan_expression(expression.pattern, bindings, catalog, found)
        return
    if isinstance(expression, (ast.InSubquery,)):
        _scan_expression(expression.operand, bindings, catalog, found)
        _scan_statement(expression.subquery, catalog, found)
        return
    if isinstance(expression, (ast.Exists, ast.ScalarSubquery)):
        _scan_statement(expression.subquery, catalog, found)
        return
    for child in expression.children():
        if isinstance(child, ast.Expression):
            _scan_expression(child, bindings, catalog, found)
        elif isinstance(child, ast.SelectStatement):
            _scan_statement(child, catalog, found)


def _placeholder_of(expression: ast.Expression) -> str | None:
    if isinstance(expression, ast.Placeholder):
        return expression.name
    # Allow simple arithmetic around the placeholder, e.g. {p_1} * 100.
    if isinstance(expression, ast.BinaryOp) and expression.op in "+-*/":
        left = _placeholder_of(expression.left)
        if left is not None:
            return left
        return _placeholder_of(expression.right)
    if isinstance(expression, ast.UnaryOp):
        return _placeholder_of(expression.operand)
    return None


def _column_of(expression: ast.Expression) -> ast.ColumnRef | None:
    if isinstance(expression, ast.ColumnRef):
        return expression
    if isinstance(expression, ast.FunctionCall) and expression.args:
        # e.g. round(col, 2) > {p}: attribute the placeholder to col
        for arg in expression.args:
            column = _column_of(arg)
            if column is not None:
                return column
    if isinstance(expression, ast.BinaryOp):
        return _column_of(expression.left) or _column_of(expression.right)
    if isinstance(expression, ast.Cast):
        return _column_of(expression.operand)
    return None


def _record(
    name: str,
    column: ast.ColumnRef,
    operator: str,
    bindings: dict[str, str],
    catalog: Catalog,
    found: dict[str, PlaceholderInfo],
) -> None:
    if name in found:
        return
    table = None
    if column.table is not None:
        table = bindings.get(column.table, column.table)
    else:
        for candidate in bindings.values():
            if catalog.has_table(candidate) and catalog.table(candidate).has_column(
                column.column
            ):
                table = candidate
                break
    sql_type = None
    if table is not None and catalog.has_table(table):
        meta = catalog.table(table)
        if meta.has_column(column.column):
            sql_type = meta.column(column.column).sql_type
        else:
            table = None
    found[name] = PlaceholderInfo(
        name=name,
        table=table,
        column=column.column if table else None,
        sql_type=sql_type,
        operator=operator,
    )
