"""Generated queries and workload containers."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping


@dataclass(frozen=True)
class GeneratedQuery:
    """One executable SQL query produced by a generator."""

    sql: str
    cost: float
    template_id: str | None = None
    predicate_values: Mapping[str, object] | None = None
    cost_type: str = "plan_cost"

    def to_json(self) -> dict:
        return {
            "sql": self.sql,
            "cost": self.cost,
            "template_id": self.template_id,
            "predicate_values": dict(self.predicate_values or {}),
            "cost_type": self.cost_type,
        }


@dataclass
class Workload:
    """An ordered collection of generated queries."""

    queries: list[GeneratedQuery] = field(default_factory=list)
    name: str = "workload"

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[GeneratedQuery]:
        return iter(self.queries)

    def add(self, query: GeneratedQuery) -> None:
        self.queries.append(query)

    def extend(self, queries: Iterable[GeneratedQuery]) -> None:
        self.queries.extend(queries)

    @property
    def costs(self) -> list[float]:
        return [q.cost for q in self.queries]

    @property
    def template_ids(self) -> set[str]:
        return {q.template_id for q in self.queries if q.template_id}

    def to_jsonl(self) -> str:
        """Serialize as one JSON object per line (workload export format)."""
        return "\n".join(json.dumps(q.to_json()) for q in self.queries)

    @staticmethod
    def from_jsonl(text: str, name: str = "workload") -> "Workload":
        queries = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            queries.append(
                GeneratedQuery(
                    sql=payload["sql"],
                    cost=float(payload["cost"]),
                    template_id=payload.get("template_id"),
                    predicate_values=payload.get("predicate_values") or None,
                    cost_type=payload.get("cost_type", "plan_cost"),
                )
            )
        return Workload(queries=queries, name=name)
