"""Workload replay: execute a generated workload against a database.

The paper's motivating scenario (Figure 2) ends with the synthetic workload
being *run* to test a DBMS.  :func:`replay_workload` does exactly that:
every query is executed, timed, and checked against its recorded cost, and
the outcome is summarised per query and in aggregate — including the Q-error
between the optimizer's estimates and reality for cardinality targets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.sqldb import Database, SqlError
from .query import GeneratedQuery, Workload


@dataclass(frozen=True)
class QueryOutcome:
    """The result of replaying one query."""

    query: GeneratedQuery
    ok: bool
    rows: int = 0
    elapsed_seconds: float = 0.0
    estimated_rows: float = 0.0
    estimated_cost: float = 0.0
    error: str | None = None

    @property
    def q_error(self) -> float:
        """max(est/actual, actual/est) over row counts, floored at 1."""
        estimated = max(self.estimated_rows, 1.0)
        actual = max(float(self.rows), 1.0)
        return max(estimated / actual, actual / estimated)


@dataclass
class ReplayReport:
    """Aggregate outcome of replaying a whole workload."""

    outcomes: list[QueryOutcome] = field(default_factory=list)
    total_seconds: float = 0.0

    @property
    def succeeded(self) -> int:
        return sum(o.ok for o in self.outcomes)

    @property
    def failed(self) -> int:
        return len(self.outcomes) - self.succeeded

    @property
    def success_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return self.succeeded / len(self.outcomes)

    def q_error_percentiles(self) -> dict[str, float]:
        """Q-error summary over the successfully replayed queries."""
        errors = [o.q_error for o in self.outcomes if o.ok]
        if not errors:
            return {"p50": 0.0, "p90": 0.0, "max": 0.0}
        array = np.asarray(errors)
        return {
            "p50": float(np.percentile(array, 50)),
            "p90": float(np.percentile(array, 90)),
            "max": float(array.max()),
        }

    def worst_estimates(self, count: int = 5) -> list[QueryOutcome]:
        """The queries with the largest optimizer misestimates."""
        successes = [o for o in self.outcomes if o.ok]
        return sorted(successes, key=lambda o: o.q_error, reverse=True)[:count]

    def to_text(self) -> str:
        percentiles = self.q_error_percentiles()
        return (
            f"replayed {len(self.outcomes)} queries in "
            f"{self.total_seconds:.2f}s: {self.succeeded} ok, "
            f"{self.failed} failed; q-error p50={percentiles['p50']:.2f} "
            f"p90={percentiles['p90']:.2f} max={percentiles['max']:.2f}"
        )


def replay_workload(
    workload: Workload,
    db: Database,
    fail_fast: bool = False,
) -> ReplayReport:
    """Execute every query of *workload* on *db* and report outcomes."""
    report = ReplayReport()
    started = time.perf_counter()
    for query in workload:
        try:
            estimates = db.explain(query.sql)
            execution = db.execute(query.sql)
        except SqlError as exc:
            report.outcomes.append(
                QueryOutcome(query=query, ok=False, error=str(exc))
            )
            if fail_fast:
                break
            continue
        report.outcomes.append(
            QueryOutcome(
                query=query,
                ok=True,
                rows=execution.row_count,
                elapsed_seconds=execution.elapsed_seconds,
                estimated_rows=estimates.estimated_rows,
                estimated_cost=estimates.total_cost,
            )
        )
    report.total_seconds = time.perf_counter() - started
    return report
