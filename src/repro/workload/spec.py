"""Template specifications (paper Def. 2.5) and their NL/JSON front-ends.

A :class:`TemplateSpec` captures the structural constraints a user puts on one
SQL template: counts (tables, joins, aggregations, predicates) and boolean
features (nested subquery, GROUP BY, ORDER BY, complex scalar expressions).
Specs can be built programmatically, parsed from JSON dictionaries, or parsed
from free-form natural-language instructions — SQLBarber's declarative
interface accepts all three.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class TemplateSpec:
    """Structural constraints for one SQL template."""

    spec_id: str = "spec"
    num_tables: int | None = None
    num_joins: int | None = None
    num_aggregations: int | None = None
    num_predicates: int | None = None
    require_group_by: bool | None = None
    require_nested_subquery: bool | None = None
    require_order_by: bool | None = None
    require_limit: bool | None = None
    require_complex_scalar: bool | None = None
    require_union: bool | None = None
    instructions: tuple[str, ...] = field(default_factory=tuple)

    def merged_with_instructions(self, *texts: str) -> "TemplateSpec":
        """Fold extra natural-language instructions into this spec."""
        extra = parse_instructions(" ".join(texts))
        merged = self
        for name, value in extra.items():
            if getattr(merged, name, None) is None:
                merged = replace(merged, **{name: value})
        return replace(
            merged, instructions=tuple(self.instructions) + tuple(texts)
        )

    def to_prompt_text(self) -> str:
        """Human/LLM-readable description used in prompt construction."""
        parts: list[str] = []
        if self.num_tables is not None:
            parts.append(f"access exactly {self.num_tables} table(s)")
        if self.num_joins is not None:
            parts.append(f"contain exactly {self.num_joins} join(s)")
        if self.num_aggregations is not None:
            parts.append(f"use exactly {self.num_aggregations} aggregation(s)")
        if self.num_predicates is not None:
            parts.append(
                f"have exactly {self.num_predicates} predicate placeholder(s)"
            )
        if self.require_group_by:
            parts.append("include a GROUP BY clause")
        if self.require_group_by is False:
            parts.append("not use GROUP BY")
        if self.require_nested_subquery:
            parts.append("contain a nested subquery")
        if self.require_order_by:
            parts.append("include an ORDER BY clause")
        if self.require_limit:
            parts.append("include a LIMIT clause")
        if self.require_complex_scalar:
            parts.append("use complex scalar expressions")
        if self.require_union:
            parts.append("combine two subqueries with UNION")
        body = "; ".join(parts) if parts else "no structural constraints"
        text = f"The SQL template must {body}."
        for instruction in self.instructions:
            text += f"\nUser instruction: {instruction}"
        return text

    @staticmethod
    def from_json(payload: dict, spec_id: str | None = None) -> "TemplateSpec":
        """Build a spec from a JSON-style dict (Redset-like annotations)."""
        aliases = {
            "template_id": "spec_id",
            "id": "spec_id",
            "num_tables_accessed": "num_tables",
            "num_tables": "num_tables",
            "num_joins": "num_joins",
            "num_aggregations": "num_aggregations",
            "num_aggregates": "num_aggregations",
            "num_predicates": "num_predicates",
            "group_by": "require_group_by",
            "nested_subquery": "require_nested_subquery",
            "order_by": "require_order_by",
            "limit": "require_limit",
        }
        kwargs: dict = {}
        instructions: list[str] = []
        for key, value in payload.items():
            key_lower = key.lower()
            if key_lower in ("instructions", "natural_language"):
                if isinstance(value, str):
                    instructions.append(value)
                else:
                    instructions.extend(value)
                continue
            if key_lower in aliases:
                target = aliases[key_lower]
                kwargs[target] = (
                    str(value) if target == "spec_id" else value
                )
        if spec_id is not None:
            kwargs["spec_id"] = spec_id
        kwargs.setdefault("spec_id", "spec")
        spec = TemplateSpec(**kwargs)
        if instructions:
            spec = spec.merged_with_instructions(*instructions)
        return spec

    @staticmethod
    def from_natural_language(text: str, spec_id: str = "spec") -> "TemplateSpec":
        """Parse a free-form instruction into a spec (plus keep the text)."""
        fields = parse_instructions(text)
        return TemplateSpec(spec_id=spec_id, instructions=(text,), **fields)


_NUMBER_WORDS = {
    "no": 0, "zero": 0, "one": 1, "two": 2, "three": 3, "four": 4,
    "five": 5, "six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10,
}


def _parse_count(match: re.Match) -> int:
    token = match.group(1).lower()
    return _NUMBER_WORDS.get(token, None) if token in _NUMBER_WORDS else int(token)


def parse_instructions(text: str) -> dict:
    """Extract structural constraints from natural-language instructions.

    Recognizes phrasing like "5 joins", "three aggregations", "no joins",
    "a nested subquery", "two predicates", "use GROUP BY", "accesses 3
    tables".  Anything it cannot parse is simply carried along as prose for
    the LLM prompt — the parse is a convenience, not a gatekeeper.
    """
    lowered = text.lower()
    fields: dict = {}
    count = r"(\d+|no|zero|one|two|three|four|five|six|seven|eight|nine|ten)"
    patterns = {
        "num_joins": rf"{count}\s+joins?\b",
        "num_tables": rf"(?:access(?:es)?\s+)?{count}\s+tables?\b",
        "num_aggregations": rf"{count}\s+aggregat\w*",
        "num_predicates": rf"{count}\s+predicates?(?:\s+values?)?\b",
    }
    for name, pattern in patterns.items():
        match = re.search(pattern, lowered)
        if match:
            fields[name] = _parse_count(match)
    if re.search(r"nested\s+(?:sub)?quer", lowered) or "subquery" in lowered:
        fields["require_nested_subquery"] = not re.search(
            r"(?:no|without)\s+(?:a\s+)?(?:nested\s+)?subquer", lowered
        )
    if "group by" in lowered or "groupby" in lowered:
        fields["require_group_by"] = not re.search(
            r"(?:no|without|not use)\s+(?:a\s+)?group\s*by", lowered
        )
    if "order by" in lowered:
        fields["require_order_by"] = not re.search(
            r"(?:no|without)\s+(?:an\s+)?order\s*by", lowered
        )
    if re.search(r"\blimit\b", lowered):
        fields["require_limit"] = not re.search(r"(?:no|without)\s+limit", lowered)
    if "complex scalar" in lowered:
        fields["require_complex_scalar"] = True
    if re.search(r"\bunion\b", lowered):
        fields["require_union"] = not re.search(
            r"(?:no|without)\s+(?:a\s+)?union", lowered
        )
    if re.search(r"(?:no|without)\s+joins?\b", lowered):
        fields["num_joins"] = 0
    return fields
