"""Workload-level statistics and reporting.

Given a generated :class:`~repro.workload.query.Workload`, summarise what a
benchmark consumer cares about: the cost distribution actually achieved,
per-template contribution, and the structural mix (joins, aggregations,
subqueries) across queries — the same lenses the paper uses to argue a
workload is "realistic".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .analyzer import analyze_sql
from .distribution import CostDistribution
from .query import Workload


@dataclass(frozen=True)
class CostSummary:
    count: int
    minimum: float
    maximum: float
    mean: float
    median: float
    p95: float

    @staticmethod
    def of(costs: list[float]) -> "CostSummary":
        if not costs:
            return CostSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        array = np.asarray(costs, dtype=np.float64)
        return CostSummary(
            count=len(costs),
            minimum=float(array.min()),
            maximum=float(array.max()),
            mean=float(array.mean()),
            median=float(np.median(array)),
            p95=float(np.percentile(array, 95)),
        )


@dataclass
class StructuralMix:
    """Distribution of structural features across a workload's queries."""

    joins: dict[int, int] = field(default_factory=dict)
    aggregations: dict[int, int] = field(default_factory=dict)
    tables: dict[int, int] = field(default_factory=dict)
    with_group_by: int = 0
    with_subquery: int = 0
    with_order_by: int = 0
    with_limit: int = 0
    unparseable: int = 0


@dataclass
class WorkloadReport:
    """Everything :func:`describe_workload` computes."""

    name: str
    cost: CostSummary
    structure: StructuralMix
    queries_per_template: dict[str, int]
    alignment: float | None = None  # Wasserstein vs. a target, if given

    def to_text(self) -> str:
        lines = [f"Workload '{self.name}': {self.cost.count} queries"]
        lines.append(
            f"  cost: min={self.cost.minimum:.1f} median={self.cost.median:.1f} "
            f"mean={self.cost.mean:.1f} p95={self.cost.p95:.1f} "
            f"max={self.cost.maximum:.1f}"
        )
        if self.alignment is not None:
            lines.append(f"  Wasserstein distance to target: {self.alignment:.2f}")
        joins = ", ".join(
            f"{k}j:{v}" for k, v in sorted(self.structure.joins.items())
        )
        lines.append(f"  joins: {joins}")
        aggregates = ", ".join(
            f"{k}a:{v}" for k, v in sorted(self.structure.aggregations.items())
        )
        lines.append(f"  aggregations: {aggregates}")
        lines.append(
            f"  group_by={self.structure.with_group_by} "
            f"subquery={self.structure.with_subquery} "
            f"order_by={self.structure.with_order_by} "
            f"limit={self.structure.with_limit}"
        )
        lines.append(f"  templates used: {len(self.queries_per_template)}")
        return "\n".join(lines)


def describe_workload(
    workload: Workload, target: CostDistribution | None = None
) -> WorkloadReport:
    """Compute the full report for *workload* (optionally vs. a target)."""
    structure = StructuralMix()
    per_template: dict[str, int] = {}
    for query in workload:
        template_id = query.template_id or "(none)"
        per_template[template_id] = per_template.get(template_id, 0) + 1
        try:
            features = analyze_sql(query.sql)
        except Exception:
            structure.unparseable += 1
            continue
        structure.joins[features.num_joins] = (
            structure.joins.get(features.num_joins, 0) + 1
        )
        structure.aggregations[features.num_aggregations] = (
            structure.aggregations.get(features.num_aggregations, 0) + 1
        )
        structure.tables[features.num_tables] = (
            structure.tables.get(features.num_tables, 0) + 1
        )
        structure.with_group_by += features.has_group_by
        structure.with_subquery += features.has_nested_subquery
        structure.with_order_by += features.has_order_by
        structure.with_limit += features.has_limit
    alignment = target.wasserstein(workload.costs) if target else None
    return WorkloadReport(
        name=workload.name,
        cost=CostSummary.of(workload.costs),
        structure=structure,
        queries_per_template=per_template,
        alignment=alignment,
    )
