"""SQL templates and their instantiation into executable queries.

A template is a SQL statement with ``{name}`` placeholders (paper Def. 2.1).
Instantiating a template substitutes concrete predicate values for the
placeholders (Def. 2.3).  Values are rendered as SQL literals with proper
quoting, so substitution is purely textual and the template's own SQL text
stays the single source of truth.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Mapping

from repro.sqldb import SelectStatement, days_to_date, find_placeholders, parse_sql
from repro.sqldb.types import SqlType


def render_literal(value: object, sql_type: SqlType | None = None) -> str:
    """Render a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, datetime.date):
        return f"'{value.isoformat()}'"
    if isinstance(value, float):
        if sql_type in (SqlType.INTEGER, SqlType.BIGINT):
            return str(int(round(value)))
        return repr(float(value))
    if isinstance(value, int):
        if sql_type is SqlType.DATE:
            return f"'{days_to_date(value).isoformat()}'"
        if sql_type is SqlType.DOUBLE:
            return repr(float(value))
        return str(int(value))
    text = str(value).replace("'", "''")
    return f"'{text}'"


@dataclass(frozen=True)
class PlaceholderInfo:
    """What the engine knows about one placeholder in a template.

    ``table``/``column`` identify the column the placeholder is compared
    against, which is how the predicate search derives its value domain.
    """

    name: str
    table: str | None = None
    column: str | None = None
    sql_type: SqlType | None = None
    operator: str | None = None  # '=', '<', 'between', 'in', 'like', ...


@dataclass
class SqlTemplate:
    """A SQL template: text with placeholders plus derived metadata."""

    template_id: str
    sql: str
    spec_id: str | None = None
    parent_id: str | None = None  # set when refined from another template
    placeholders: list[PlaceholderInfo] = field(default_factory=list)

    _parsed: SelectStatement | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def placeholder_names(self) -> list[str]:
        if self.placeholders:
            return [p.name for p in self.placeholders]
        return find_placeholders(self.parse())

    def parse(self) -> SelectStatement:
        """Parse (and cache) the template text.

        Templates are usually SELECTs, but mixed read/write workloads carry
        DML templates too — ``parse_sql`` accepts every statement kind.
        """
        if self._parsed is None:
            self._parsed = parse_sql(self.sql)
        return self._parsed

    def instantiate(self, values: Mapping[str, object]) -> str:
        """Substitute *values* for the placeholders and return runnable SQL.

        Raises :class:`KeyError` if a placeholder has no value.
        """
        # The (name, token, sql_type) substitution plan only depends on the
        # placeholders list, which callers replace wholesale (never mutate
        # in place) — cache it keyed on that list's identity, since this
        # runs once per binding in the profiling loops.
        cached = self.__dict__.get("_instantiate_plan")
        if cached is None or cached[0] is not self.placeholders:
            info_by_name = {p.name: p for p in self.placeholders}
            plan = [
                (
                    name,
                    f"{{{name}}}",
                    info.sql_type if (info := info_by_name.get(name)) else None,
                )
                for name in self.placeholder_names
            ]
            cached = (self.placeholders, plan)
            self._instantiate_plan = cached
        sql = self.sql
        for name, token, sql_type in cached[1]:
            if name not in values:
                raise KeyError(f"no value for placeholder {{{name}}}")
            sql = sql.replace(token, render_literal(values[name], sql_type))
        return sql

    def with_sql(self, sql: str, template_id: str) -> "SqlTemplate":
        """A copy of this template with new SQL (used by refinement)."""
        return SqlTemplate(
            template_id=template_id,
            sql=sql,
            spec_id=self.spec_id,
            parent_id=self.template_id,
        )
