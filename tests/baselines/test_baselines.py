"""Baseline generators: pool construction, scheduling, and search behaviour."""

import numpy as np
import pytest

from repro.baselines import (
    HillClimbing,
    LearnedSQLGen,
    build_template_pool,
    perturb_template_sql,
)
from repro.core import BarberConfig, TemplateProfiler, schema_payload
from repro.datasets import build_tpch, redset_spec_workload
from repro.sqldb.parser import parse_select
from repro.workload import CostDistribution, analyze_sql


@pytest.fixture(scope="module")
def db():
    return build_tpch(scale=0.002)


@pytest.fixture(scope="module")
def profiler(db):
    return TemplateProfiler(db, BarberConfig(seed=0))


@pytest.fixture(scope="module")
def schema(db):
    return schema_payload(db)


@pytest.fixture(scope="module")
def pool(db, profiler, schema):
    return build_template_pool(
        db,
        redset_spec_workload(num_specs=4),
        pool_size=30,
        profiler=profiler,
        schema=schema,
        seed=0,
    )


class TestPerturbation:
    def test_perturbed_sql_parses(self, schema):
        rng = np.random.default_rng(0)
        base = "SELECT * FROM orders WHERE o_totalprice > {p_1}"
        for _ in range(10):
            mutated = perturb_template_sql(base, schema, rng)
            if mutated is not None:
                parse_select(mutated)

    def test_perturbation_changes_predicate_count(self, schema):
        rng = np.random.default_rng(1)
        base = "SELECT * FROM orders WHERE o_totalprice > {p_1}"
        counts = set()
        for _ in range(20):
            mutated = perturb_template_sql(base, schema, rng)
            if mutated:
                counts.add(analyze_sql(mutated).num_predicates)
        assert len(counts) >= 2  # sometimes adds, sometimes removes


class TestPool:
    def test_pool_size_and_usability(self, pool):
        assert len(pool) >= 20
        assert all(p.is_usable for p in pool)

    def test_pool_templates_distinct(self, pool):
        sqls = {p.template.sql for p in pool}
        assert len(sqls) == len(pool)

    def test_pool_has_cost_diversity(self, pool):
        mins = min(p.min_cost for p in pool)
        maxs = max(p.max_cost for p in pool)
        assert maxs > mins * 2


class TestScheduling:
    def test_invalid_heuristic_rejected(self, profiler, pool):
        with pytest.raises(ValueError):
            HillClimbing(profiler, pool, heuristic="zigzag")

    def test_names(self, profiler, pool):
        assert HillClimbing(profiler, pool, "order").name == "hillclimbing-order"
        assert (
            LearnedSQLGen(profiler, pool, "priority").name
            == "learnedsqlgen-priority"
        )

    def test_order_heuristic_fills_low_intervals_first(self, profiler, pool):
        generator = HillClimbing(profiler, pool, heuristic="order", seed=0)
        distribution = CostDistribution.uniform(0, 800, 20, 4)
        run = generator.generate(distribution, per_interval_budget_seconds=0.3)
        # With a tiny budget, earlier (cheaper) intervals get filled first.
        achieved = run.tracker.achieved
        assert achieved[0] >= achieved[-1]


@pytest.mark.parametrize("generator_cls", [HillClimbing, LearnedSQLGen])
class TestGeneration:
    def test_fills_easy_target(self, generator_cls, profiler, pool):
        generator = generator_cls(profiler, pool, heuristic="priority", seed=1)
        distribution = CostDistribution.uniform(0, 800, 30, 3)
        run = generator.generate(distribution, per_interval_budget_seconds=3.0)
        assert run.final_distance < distribution.wasserstein([])
        assert len(run.queries) > 0

    def test_queries_are_deduplicated(self, generator_cls, profiler, pool):
        generator = generator_cls(profiler, pool, heuristic="priority", seed=2)
        distribution = CostDistribution.uniform(0, 800, 20, 2)
        run = generator.generate(distribution, per_interval_budget_seconds=2.0)
        keys = [
            (q.template_id, tuple(sorted(q.predicate_values.items())))
            for q in run.queries
        ]
        assert len(keys) == len(set(keys))

    def test_unreachable_interval_stays_empty(self, generator_cls, profiler, pool):
        generator = generator_cls(profiler, pool, heuristic="priority", seed=3)
        ceiling = max(p.max_cost for p in pool)
        distribution = CostDistribution(ceiling * 100, ceiling * 200, (5, 5))
        run = generator.generate(distribution, per_interval_budget_seconds=0.5)
        assert len(run.queries) == 0
        assert not run.complete

    def test_trace_recorded(self, generator_cls, profiler, pool):
        generator = generator_cls(profiler, pool, heuristic="order", seed=4)
        distribution = CostDistribution.uniform(0, 800, 10, 2)
        run = generator.generate(distribution, per_interval_budget_seconds=1.0)
        assert len(run.trace) >= 2
        times = [t for t, _ in run.trace]
        assert times == sorted(times)

    def test_respects_per_interval_budget(self, generator_cls, profiler, pool):
        generator = generator_cls(profiler, pool, heuristic="order", seed=5)
        ceiling = max(p.max_cost for p in pool)
        # Unreachable: every interval burns its full budget.
        distribution = CostDistribution(
            ceiling * 100, ceiling * 200, (5, 5, 5)
        )
        run = generator.generate(distribution, per_interval_budget_seconds=0.4)
        assert 1.0 <= run.elapsed_seconds < 4.0


class TestLearnedSQLGenSpecifics:
    def test_q_values_updated(self, profiler, pool):
        generator = LearnedSQLGen(profiler, pool, heuristic="priority", seed=6)
        distribution = CostDistribution.uniform(0, 800, 10, 2)
        generator.generate(distribution, per_interval_budget_seconds=1.0)
        assert generator._q  # learned something
        assert any(row.any() for row in generator._q.values())
