"""Benchmark definitions (Table 1) and report formatting."""

import pytest

from repro.benchsuite import (
    TABLE1_BENCHMARKS,
    benchmark_by_name,
    cardinality_benchmarks,
    cost_benchmarks,
    format_table,
    histogram_text,
    table1_overview,
)


class TestTable1:
    def test_ten_benchmarks(self):
        assert len(TABLE1_BENCHMARKS) == 10

    def test_sources(self):
        sources = [b.source for b in TABLE1_BENCHMARKS]
        assert sources.count("Synthetic") == 2
        assert sources.count("Snowflake") == 6
        assert sources.count("Redshift") == 2

    def test_medium_hard_split(self):
        mediums = [b for b in TABLE1_BENCHMARKS if b.difficulty == "medium"]
        hards = [b for b in TABLE1_BENCHMARKS if b.difficulty == "hard"]
        assert all(b.num_queries == 1000 and b.num_intervals == 10 for b in mediums)
        assert all(b.num_queries == 2000 and b.num_intervals == 20 for b in hards)

    def test_cardinality_benchmarks_all_from_snowflake_or_synthetic(self):
        for bench in cardinality_benchmarks():
            assert bench.source in ("Synthetic", "Snowflake")

    def test_figure5_and_figure6_panels(self):
        assert len(cardinality_benchmarks()) == 6
        assert len(cost_benchmarks()) == 6

    def test_lookup_case_insensitive(self):
        assert benchmark_by_name("redset_cost_hard").name == "Redset_Cost_Hard"

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            benchmark_by_name("bigquery_hard")

    def test_distribution_materialization(self):
        bench = benchmark_by_name("Snowset_Card_1_Medium")
        dist = bench.distribution()
        assert dist.total_queries == 1000
        assert dist.num_intervals == 10
        assert dist.cost_type == "cardinality"

    def test_both_cost_type_resolves(self):
        bench = benchmark_by_name("uniform")
        assert bench.distribution().cost_type == "plan_cost"
        assert bench.distribution(cost_type="cardinality").cost_type == "cardinality"

    def test_scaled_preserves_intervals(self):
        bench = benchmark_by_name("Redset_Cost_Hard").scaled(0.05)
        assert bench.num_queries == 100
        assert bench.num_intervals == 20

    def test_rescale_at_materialization(self):
        bench = benchmark_by_name("normal")
        dist = bench.distribution(num_queries=73, num_intervals=7)
        assert dist.total_queries == 73
        assert dist.num_intervals == 7


class TestReporting:
    def test_table1_text(self):
        text = table1_overview()
        assert "Snowset_Card_1_Medium" in text
        assert "Redshift" in text

    def test_format_table_alignment(self):
        text = format_table(
            [{"a": 1, "b": "xy"}, {"a": 222, "b": "z"}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1  # aligned

    def test_format_empty(self):
        assert format_table([]) == "(no results)"

    def test_histogram_text(self):
        bench = benchmark_by_name("Redset_Cost_Medium")
        text = histogram_text(bench.distribution(num_queries=100))
        assert "#" in text
        assert text.count("\n") == 10  # one line per interval + title
