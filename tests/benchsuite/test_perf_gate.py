"""The perf-regression gate: planted slowdowns trip it, reruns don't."""

import copy
import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "perf_gate",
    Path(__file__).resolve().parents[2] / "benchmarks" / "perf_gate.py",
)
perf_gate = importlib.util.module_from_spec(_SPEC)
sys.modules["perf_gate"] = perf_gate  # dataclasses resolve via sys.modules
_SPEC.loader.exec_module(perf_gate)


BASELINE = {
    "benchmark": "fastpath",
    "scale": 0.02,
    "smoke": False,
    "explain": {
        "cold_seconds": 0.08,
        "cached_seconds": 0.002,
        "cold_ops_per_s": 3000.0,
        "cached_ops_per_s": 100000.0,
        "speedup": 33.0,
    },
    "profiling": {
        "serial_seconds": 2.0,
        "status": "skipped",
        "reason": "single cpu",
    },
    "profile_overhead": {
        "unarmed_seconds": 5.0,
        "armed_seconds": 5.1,
        "overhead_percent": 2.0,
    },
}

GOVERNOR = {
    "benchmark": "governor",
    "smoke": False,
    "off": {"best_seconds": 0.045, "mean_seconds": 0.05},
    "armed": {"best_seconds": 0.047, "mean_seconds": 0.049},
    "armed_overhead_percent": 3.3,
}


def write_reports(directory, *reports):
    directory.mkdir(parents=True, exist_ok=True)
    for report in reports:
        path = directory / f"BENCH_{report['benchmark']}.json"
        path.write_text(json.dumps(report))
    return str(directory)


class TestGateVerdicts:
    def test_baseline_rerun_passes(self, tmp_path, capsys):
        base = write_reports(tmp_path / "base", BASELINE, GOVERNOR)
        cand = write_reports(tmp_path / "cand", BASELINE, GOVERNOR)
        assert perf_gate.main(["--baseline", base, "--candidate", cand]) == 0

    def test_noisy_rerun_within_tolerance_passes(self, tmp_path):
        noisy = copy.deepcopy(BASELINE)
        noisy["explain"]["cold_seconds"] = 0.11  # 1.4x: noise, not regression
        noisy["explain"]["speedup"] = 25.0
        base = write_reports(tmp_path / "base", BASELINE)
        cand = write_reports(tmp_path / "cand", noisy)
        assert perf_gate.main(["--baseline", base, "--candidate", cand]) == 0

    def test_planted_2x_slowdown_fails(self, tmp_path, capsys):
        slow = copy.deepcopy(BASELINE)
        slow["explain"]["cold_seconds"] = 0.17  # > 2x
        base = write_reports(tmp_path / "base", BASELINE)
        cand = write_reports(tmp_path / "cand", slow)
        assert perf_gate.main(["--baseline", base, "--candidate", cand]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_throughput_collapse_fails(self, tmp_path):
        slow = copy.deepcopy(BASELINE)
        slow["explain"]["cached_ops_per_s"] = 40000.0  # 2.5x fewer ops/s
        base = write_reports(tmp_path / "base", BASELINE)
        cand = write_reports(tmp_path / "cand", slow)
        assert perf_gate.main(["--baseline", base, "--candidate", cand]) == 1

    def test_speedup_collapse_fails(self, tmp_path):
        slow = copy.deepcopy(BASELINE)
        slow["explain"]["speedup"] = 10.0  # from 33x
        base = write_reports(tmp_path / "base", BASELINE)
        cand = write_reports(tmp_path / "cand", slow)
        assert perf_gate.main(["--baseline", base, "--candidate", cand]) == 1

    def test_overhead_jump_fails(self, tmp_path):
        slow = copy.deepcopy(BASELINE)
        slow["profile_overhead"]["overhead_percent"] = 40.0  # +38 points
        base = write_reports(tmp_path / "base", BASELINE)
        cand = write_reports(tmp_path / "cand", slow)
        assert perf_gate.main(["--baseline", base, "--candidate", cand]) == 1

    def test_overhead_noise_passes(self, tmp_path):
        noisy = copy.deepcopy(BASELINE)
        noisy["profile_overhead"]["overhead_percent"] = 9.0  # +7 points
        base = write_reports(tmp_path / "base", BASELINE)
        cand = write_reports(tmp_path / "cand", noisy)
        assert perf_gate.main(["--baseline", base, "--candidate", cand]) == 0


class TestSkippedAndScaleRules:
    def test_skipped_sections_never_compared(self, tmp_path):
        # Baseline measured the (now hardware-gated) section; the candidate
        # skipped it.  Nothing under it may count as a regression — and a
        # baseline that itself carries "status": "skipped" contributes
        # nothing either.
        measured = copy.deepcopy(BASELINE)
        measured["profiling"] = {
            "status": "measured",
            "serial_seconds": 2.0,
            "parallel_seconds": 1.0,
            "speedup": 2.0,
        }
        skipped = copy.deepcopy(BASELINE)  # profiling: status skipped
        base = write_reports(tmp_path / "base", measured)
        cand = write_reports(tmp_path / "cand", skipped)
        assert perf_gate.main(["--baseline", base, "--candidate", cand]) == 0

    def test_scale_mismatch_skips_time_metrics(self, tmp_path, capsys):
        smoke = copy.deepcopy(BASELINE)
        smoke["smoke"] = True
        smoke["scale"] = 0.002
        smoke["explain"]["cold_seconds"] = 0.9  # 11x "slower": smoke scale
        base = write_reports(tmp_path / "base", BASELINE)
        cand = write_reports(tmp_path / "cand", smoke)
        assert perf_gate.main(["--baseline", base, "--candidate", cand]) == 0
        assert "scale/smoke differ" in capsys.readouterr().out

    def test_tiny_timings_below_noise_floor_ignored(self, tmp_path):
        jittery = copy.deepcopy(BASELINE)
        jittery["explain"]["cached_seconds"] = 0.008  # 4x of 2ms: clock noise
        base = write_reports(tmp_path / "base", BASELINE)
        cand = write_reports(tmp_path / "cand", jittery)
        assert perf_gate.main(["--baseline", base, "--candidate", cand]) == 0

    def test_new_benchmark_without_baseline_is_noted_not_failed(
        self, tmp_path, capsys
    ):
        base = write_reports(tmp_path / "base", BASELINE)
        cand = write_reports(tmp_path / "cand", BASELINE, GOVERNOR)
        assert perf_gate.main(["--baseline", base, "--candidate", cand]) == 0
        assert "new" in capsys.readouterr().out

    def test_empty_directories_error(self, tmp_path):
        (tmp_path / "base").mkdir()
        (tmp_path / "cand").mkdir()
        assert perf_gate.main(
            ["--baseline", str(tmp_path / "base"),
             "--candidate", str(tmp_path / "cand")]
        ) == 2


class TestAgainstRealReports:
    def test_committed_reports_pass_against_themselves(self, capsys):
        repo = Path(__file__).resolve().parents[2]
        assert perf_gate.main(
            ["--baseline", str(repo), "--candidate", str(repo)]
        ) == 0
        out = capsys.readouterr().out
        assert "0 regressions" in out
