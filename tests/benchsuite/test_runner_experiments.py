"""The experiment runner, ablation helpers, and cost study (small scale)."""

import pytest

from repro.benchsuite import (
    ExperimentRunner,
    benchmark_by_name,
    convergence_ablation,
    cost_study,
    distance_trace_text,
    method_comparison_table,
    rewrite_analysis,
    scale_intervals,
    scale_queries,
    speedup_summary,
    variant_config,
)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(seed=0, num_specs=4, pool_size=16)


@pytest.fixture(scope="module")
def tiny_distribution():
    bench = benchmark_by_name("Redset_Cost_Medium")
    return bench.distribution(num_queries=20, num_intervals=4)


class TestRunner:
    def test_sqlbarber_run(self, runner, tiny_distribution):
        run = runner.run_sqlbarber(
            "tpch", tiny_distribution, "tiny", time_budget_seconds=60
        )
        assert run.method == "sqlbarber"
        assert run.final_distance == pytest.approx(0.0)
        assert run.num_queries == 20
        assert run.extra["llm_usage"]["total_tokens"] > 0

    def test_baseline_run(self, runner, tiny_distribution):
        run = runner.run_baseline(
            "hillclimbing-priority",
            "tpch",
            tiny_distribution,
            "tiny",
            per_interval_budget_seconds=1.0,
        )
        assert run.method == "hillclimbing-priority"
        assert run.extra["evaluations"] > 0
        assert run.num_queries <= 20

    def test_unknown_method(self, runner, tiny_distribution):
        with pytest.raises(KeyError):
            runner.run_baseline("simulated-annealing", "tpch", tiny_distribution)

    def test_pool_cached(self, runner):
        a = runner.pool("tpch", "plan_cost")
        b = runner.pool("tpch", "plan_cost")
        assert a is b

    def test_specs_stable(self, runner):
        assert runner.specs() is runner.specs()

    def test_summary_row_shape(self, runner, tiny_distribution):
        run = runner.run_sqlbarber(
            "tpch", tiny_distribution, "tiny", time_budget_seconds=30
        )
        row = run.summary_row()
        assert set(row) == {
            "method", "benchmark", "db", "time_s", "distance", "queries",
            "complete",
        }

    def test_reporting_helpers(self, runner, tiny_distribution):
        run = runner.run_sqlbarber(
            "tpch", tiny_distribution, "tiny", time_budget_seconds=30
        )
        table = method_comparison_table([run], "t")
        assert "sqlbarber" in table
        assert "sqlbarber" in distance_trace_text(run)
        assert "no sqlbarber" not in speedup_summary([run])


class TestAblationHelpers:
    def test_variant_configs(self):
        assert variant_config("sqlbarber").enable_refinement
        assert not variant_config("no-refine-prune").enable_refinement
        assert variant_config("naive-search").search_strategy == "random"
        with pytest.raises(KeyError):
            variant_config("no-llm")

    def test_rewrite_analysis_shape(self):
        analysis = rewrite_analysis(db_name="tpch", num_specs=6, seed=1)
        assert analysis.num_templates == 6
        assert len(analysis.specification) == analysis.attempts
        assert analysis.specification == sorted(analysis.specification)
        assert analysis.syntax == sorted(analysis.syntax)
        # Faulty first attempts, repaired later (Figure 8a shape).
        assert analysis.specification[0] < analysis.specification[-1] or (
            analysis.specification[0] == 6
        )
        assert analysis.rows()[0]["attempt"] == 0

    def test_convergence_ablation_variants(self):
        bench = benchmark_by_name("Redset_Cost_Medium")
        distribution = bench.distribution(num_queries=16, num_intervals=4)
        results = convergence_ablation(
            "tpch", distribution, seed=2, time_budget_seconds=20.0
        )
        assert [r.variant for r in results] == [
            "sqlbarber", "no-refine-prune", "naive-search",
        ]
        full = results[0]
        assert full.final_distance <= min(r.final_distance for r in results) + 1e-9


class TestScalabilityHelpers:
    def test_scale_queries(self, runner):
        runs = scale_queries(
            runner,
            (8, 16),
            db_name="tpch",
            methods=("sqlbarber",),
            num_intervals=4,
            time_budget_seconds=30,
        )
        assert len(runs) == 2
        assert runs[0].extra["num_queries_requested"] == 8
        assert all(r.final_distance == pytest.approx(0.0) for r in runs)

    def test_scale_intervals(self, runner):
        runs = scale_intervals(
            runner,
            (2, 4),
            db_name="tpch",
            methods=("sqlbarber",),
            num_queries=12,
            time_budget_seconds=30,
        )
        assert len(runs) == 2
        assert runs[1].extra["num_intervals_requested"] == 4


class TestCostStudy:
    def test_rows_shape(self):
        bench = benchmark_by_name("uniform")
        rows = cost_study(
            [bench], db_name="tpch", num_queries=12, num_specs=3,
            time_budget_seconds=30,
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.tokens_thousands > 0
        assert row.num_templates > 0
        assert row.cost_usd > 0
        assert set(row.as_dict()) == {
            "Benchmark", "Tokens (K)", "#SQL Templates", "Cost (USD)",
            "#Queries",
        }
