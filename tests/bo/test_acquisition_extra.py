"""Remaining acquisition-function behaviour."""

import numpy as np
import pytest

from repro.bo import expected_improvement, upper_confidence_bound


class TestUpperConfidenceBound:
    def test_prefers_low_mean(self):
        scores = upper_confidence_bound(
            mean=np.array([1.0, 5.0]), std=np.array([0.1, 0.1])
        )
        assert scores[0] > scores[1]

    def test_uncertainty_bonus(self):
        scores = upper_confidence_bound(
            mean=np.array([1.0, 1.0]), std=np.array([0.0, 2.0]), beta=2.0
        )
        assert scores[1] > scores[0]

    def test_beta_scales_bonus(self):
        low = upper_confidence_bound(
            np.array([0.0]), np.array([1.0]), beta=0.5
        )[0]
        high = upper_confidence_bound(
            np.array([0.0]), np.array([1.0]), beta=4.0
        )[0]
        assert high > low


class TestExpectedImprovementEdges:
    def test_all_zero_std_greedy_fallback(self):
        ei = expected_improvement(
            mean=np.array([0.2, 0.8]), std=np.zeros(2), best=1.0
        )
        assert ei[0] > ei[1] > 0.0

    def test_scalar_like_inputs(self):
        ei = expected_improvement(np.array([0.5]), np.array([0.5]), best=1.0)
        assert ei.shape == (1,)
        assert ei[0] > 0

    def test_monotone_in_best(self):
        candidate = (np.array([1.0]), np.array([0.3]))
        worse_incumbent = expected_improvement(*candidate, best=5.0)[0]
        better_incumbent = expected_improvement(*candidate, best=1.1)[0]
        assert worse_incumbent > better_incumbent
