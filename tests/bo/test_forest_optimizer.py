"""Random-forest surrogate, EI, and the full BO loop."""

import numpy as np
import pytest

from repro.bo import (
    BayesianOptimizer,
    ConfigSpace,
    FloatParameter,
    IntegerParameter,
    RandomForestRegressor,
    expected_improvement,
    random_search,
)


class TestForest:
    def test_fits_smooth_function(self):
        rng = np.random.default_rng(0)
        X = rng.random((200, 2))
        y = np.sin(X[:, 0] * 3) + X[:, 1] ** 2
        forest = RandomForestRegressor(n_trees=15, seed=1).fit(X, y)
        mean, _ = forest.predict(X[:50])
        rmse = np.sqrt(np.mean((mean - y[:50]) ** 2))
        assert rmse < 0.25

    def test_uncertainty_higher_off_data(self):
        rng = np.random.default_rng(1)
        X = rng.random((100, 1)) * 0.5  # train only on [0, 0.5]
        y = X[:, 0] * 2
        forest = RandomForestRegressor(seed=2).fit(X, y)
        _, std_in = forest.predict(np.array([[0.25]]))
        _, std_out = forest.predict(np.array([[0.95]]))
        assert std_out[0] >= std_in[0]

    def test_constant_target(self):
        X = np.random.default_rng(3).random((30, 2))
        y = np.full(30, 7.0)
        forest = RandomForestRegressor(seed=0).fit(X, y)
        mean, std = forest.predict(X[:5])
        assert mean == pytest.approx(np.full(5, 7.0))
        assert std == pytest.approx(np.zeros(5), abs=1e-9)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((1, 2)))

    def test_empty_data_raises(self):
        with pytest.raises(ValueError):
            RandomForestRegressor().fit(np.zeros((0, 2)), np.zeros(0))


class TestExpectedImprovement:
    def test_better_mean_higher_ei(self):
        ei = expected_improvement(
            mean=np.array([0.1, 0.9]), std=np.array([0.1, 0.1]), best=1.0
        )
        assert ei[0] > ei[1]

    def test_uncertainty_adds_ei(self):
        ei = expected_improvement(
            mean=np.array([1.5, 1.5]), std=np.array([0.0, 1.0]), best=1.0
        )
        assert ei[1] > ei[0]

    def test_nonnegative(self):
        ei = expected_improvement(
            mean=np.array([5.0]), std=np.array([0.0]), best=0.0
        )
        assert ei[0] >= 0.0


def quadratic_space():
    return ConfigSpace(
        [FloatParameter("x", -5.0, 5.0), FloatParameter("y", -5.0, 5.0)]
    )


def quadratic(config):
    return (config["x"] - 1.2) ** 2 + (config["y"] + 2.4) ** 2


class TestOptimizer:
    def test_minimizes_quadratic(self):
        opt = BayesianOptimizer(quadratic_space(), seed=0)
        result = opt.minimize(quadratic, budget=60)
        assert result.best_value < 0.5

    def test_beats_random_search_on_average(self):
        bo_scores, rs_scores = [], []
        for seed in range(3):
            bo = BayesianOptimizer(quadratic_space(), seed=seed).minimize(
                quadratic, budget=40
            )
            rs = random_search(quadratic_space(), quadratic, budget=40, seed=seed)
            bo_scores.append(bo.best_value)
            rs_scores.append(rs.best_value)
        assert np.mean(bo_scores) <= np.mean(rs_scores) * 1.5

    def test_stop_at_short_circuits(self):
        opt = BayesianOptimizer(quadratic_space(), seed=1)
        result = opt.minimize(quadratic, budget=500, stop_at=1.0)
        assert result.best_value <= 1.0
        assert result.num_evaluations < 500

    def test_ask_tell_protocol(self):
        opt = BayesianOptimizer(quadratic_space(), seed=2, n_initial=4)
        for _ in range(12):
            config = opt.ask()
            opt.tell(config, quadratic(config))
        assert opt.best is not None
        assert len(opt.observations) == 12

    def test_warm_start_accelerates(self):
        space = quadratic_space()
        # History: dense evaluations around the optimum.
        history = []
        rng = np.random.default_rng(3)
        for _ in range(30):
            config = {"x": 1.2 + rng.normal(0, 0.3), "y": -2.4 + rng.normal(0, 0.3)}
            history.append((config, quadratic(config)))
        warm = BayesianOptimizer(space, seed=4, n_initial=0)
        warm.warm_start(history)
        result = warm.minimize(quadratic, budget=10)
        assert result.best_value < 0.5

    def test_integer_space(self):
        space = ConfigSpace([IntegerParameter("n", 0, 1000)])
        opt = BayesianOptimizer(space, seed=5)
        result = opt.minimize(lambda c: abs(c["n"] - 777), budget=60)
        assert result.best_value <= 30

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(ConfigSpace([]))

    def test_observations_are_copies(self):
        opt = BayesianOptimizer(quadratic_space(), seed=6)
        config = opt.ask()
        opt.tell(config, 1.0)
        config["x"] = 999.0  # mutating the caller's dict must not leak
        assert opt.observations[0].config["x"] != 999.0


class TestRandomSearch:
    def test_finds_something(self):
        result = random_search(quadratic_space(), quadratic, budget=100, seed=0)
        assert result.best_value < 10.0

    def test_stop_at(self):
        result = random_search(
            quadratic_space(), quadratic, budget=10_000, seed=0, stop_at=2.0
        )
        assert result.best_value <= 2.0
        assert result.num_evaluations < 10_000

    def test_zero_budget(self):
        result = random_search(quadratic_space(), quadratic, budget=0)
        assert result.best_config is None
