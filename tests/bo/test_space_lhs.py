"""Configuration spaces and Latin Hypercube Sampling."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bo import (
    CategoricalParameter,
    ConfigSpace,
    FloatParameter,
    IntegerParameter,
    latin_hypercube,
    lhs_configs,
)


def make_space():
    return ConfigSpace(
        [
            IntegerParameter("i", 0, 100),
            FloatParameter("f", 1.0, 10.0),
            CategoricalParameter("c", ("a", "b", "c")),
        ]
    )


class TestParameters:
    def test_integer_roundtrip(self):
        p = IntegerParameter("x", 5, 25)
        for v in (5, 10, 25):
            assert p.from_unit(p.to_unit(v)) == v

    def test_integer_clamps(self):
        p = IntegerParameter("x", 0, 10)
        assert p.from_unit(-0.5) == 0
        assert p.from_unit(1.5) == 10

    def test_integer_degenerate_range(self):
        p = IntegerParameter("x", 3, 3)
        assert p.from_unit(0.7) == 3
        assert p.to_unit(3) == 0.5

    def test_float_roundtrip(self):
        p = FloatParameter("x", 2.0, 8.0)
        assert p.from_unit(p.to_unit(5.0)) == pytest.approx(5.0)

    def test_log_scale(self):
        p = FloatParameter("x", 1.0, 10000.0, log=True)
        assert p.from_unit(0.5) == pytest.approx(100.0, rel=0.01)

    def test_log_requires_positive(self):
        with pytest.raises(ValueError):
            FloatParameter("x", 0.0, 1.0, log=True)

    def test_categorical_roundtrip(self):
        p = CategoricalParameter("x", ("red", "green", "blue"))
        for choice in p.choices:
            assert p.from_unit(p.to_unit(choice)) == choice

    def test_categorical_empty(self):
        with pytest.raises(ValueError):
            CategoricalParameter("x", ())

    def test_cardinalities(self):
        assert IntegerParameter("x", 0, 9).cardinality() == 10
        assert CategoricalParameter("x", ("a", "b")).cardinality() == 2
        assert math.isinf(FloatParameter("x", 0, 1).cardinality())


class TestConfigSpace:
    def test_roundtrip(self):
        space = make_space()
        config = {"i": 42, "f": 3.5, "c": "b"}
        assert space.from_unit(space.to_unit(config)) == pytest.approx(
            config, rel=1e-9
        ) or space.from_unit(space.to_unit(config)) == config

    def test_sample_in_bounds(self):
        space = make_space()
        rng = np.random.default_rng(0)
        for config in space.sample_many(50, rng):
            assert 0 <= config["i"] <= 100
            assert 1.0 <= config["f"] <= 10.0
            assert config["c"] in ("a", "b", "c")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ConfigSpace([IntegerParameter("x", 0, 1), IntegerParameter("x", 0, 1)])

    def test_cardinality(self):
        space = ConfigSpace(
            [IntegerParameter("i", 0, 9), CategoricalParameter("c", ("a", "b"))]
        )
        assert space.cardinality() == 20
        assert math.isinf(make_space().cardinality())


class TestLhs:
    def test_shape(self):
        points = latin_hypercube(10, 3, np.random.default_rng(0))
        assert points.shape == (10, 3)

    def test_unit_cube(self):
        points = latin_hypercube(20, 2, np.random.default_rng(1))
        assert (points >= 0).all() and (points <= 1).all()

    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_stratification_property(self, n, dims):
        # Exactly one sample falls in each of the n strata per dimension.
        points = latin_hypercube(n, dims, np.random.default_rng(42))
        for dim in range(dims):
            strata = np.floor(points[:, dim] * n).astype(int)
            strata = np.clip(strata, 0, n - 1)
            assert sorted(strata.tolist()) == list(range(n))

    def test_zero_samples(self):
        assert latin_hypercube(0, 3, np.random.default_rng(0)).shape == (0, 3)

    def test_lhs_configs_valid(self):
        configs = lhs_configs(make_space(), 9, np.random.default_rng(0))
        assert len(configs) == 9
        values = {c["i"] for c in configs}
        assert len(values) >= 7  # spread across the integer range

    def test_lhs_beats_clumping(self):
        # LHS 1-D coverage: max gap between sorted samples is bounded by 2/n.
        points = latin_hypercube(50, 1, np.random.default_rng(5))[:, 0]
        gaps = np.diff(np.sort(points))
        assert gaps.max() <= 2.0 / 50 + 1e-9
