"""Shared fixtures for core tests: a small TPC-H and common objects."""

from __future__ import annotations

import pytest

from repro.core import BarberConfig, TemplateProfiler, schema_payload
from repro.datasets import build_tpch
from repro.llm import FaultModel, SimulatedLLM


@pytest.fixture(scope="session")
def small_tpch():
    return build_tpch(scale=0.002)


@pytest.fixture(scope="session")
def schema(small_tpch):
    return schema_payload(small_tpch)


@pytest.fixture()
def config():
    return BarberConfig(seed=0)


@pytest.fixture()
def perfect_llm():
    return SimulatedLLM(seed=0, fault_model=FaultModel.perfect(),
                        validation_noise=0.0)


@pytest.fixture()
def profiler(small_tpch, config):
    return TemplateProfiler(small_tpch, config, cost_metric="plan_cost")
