"""End-to-end SQLBarber runs: the paper's headline behaviour in miniature."""

import pytest

from repro.core import BarberConfig, SQLBarber
from repro.datasets import redset_spec_workload
from repro.llm import SimulatedLLM
from repro.workload import CostDistribution, TemplateSpec, check_template


@pytest.fixture(scope="module")
def result(small_tpch):
    barber = SQLBarber(small_tpch, config=BarberConfig(seed=1))
    specs = redset_spec_workload(num_specs=5)
    # The cost range is chosen to be reachable at the test's tiny scale
    # (a full multi-way join on scale-0.002 TPC-H costs ~2k).
    distribution = CostDistribution.uniform(0, 1200, 60, 6)
    return barber.generate_workload(specs, distribution, time_budget_seconds=120)


class TestEndToEnd:
    def test_distribution_satisfied(self, result):
        assert result.complete
        assert result.final_distance == pytest.approx(0.0)

    def test_workload_size(self, result):
        assert len(result.workload) == 60

    def test_queries_executable(self, small_tpch, result):
        for query in result.workload.queries[:10]:
            ok, error = small_tpch.validate(query.sql)
            assert ok, error

    def test_costs_match_reported(self, small_tpch, result):
        for query in result.workload.queries[:5]:
            explain = small_tpch.explain(query.sql)
            assert explain.total_cost == pytest.approx(query.cost)

    def test_trace_converges(self, result):
        distances = [d for _, d in result.distance_trace]
        assert distances[-1] == pytest.approx(0.0)
        assert distances[0] > 0

    def test_llm_usage_tracked(self, result):
        assert result.llm_usage["total_tokens"] > 0
        assert "generate_template" in result.llm_usage["calls_by_task"]

    def test_alignment_reported(self, result):
        assert 0.0 <= result.generation_report.alignment_accuracy <= 1.0

    def test_templates_profiled(self, result):
        assert result.num_templates >= len(result.templates)


class TestVariants:
    def test_cardinality_target(self, small_tpch):
        barber = SQLBarber(small_tpch, config=BarberConfig(seed=2))
        max_rows = small_tpch.catalog.table("lineitem").row_count
        distribution = CostDistribution.uniform(
            0, max_rows, 40, 4, cost_type="cardinality"
        )
        specs = redset_spec_workload(num_specs=4)
        result = barber.generate_workload(specs, distribution,
                                          time_budget_seconds=120)
        assert result.final_distance < distribution.wasserstein([])

    def test_pregenerated_templates_skip_section4(self, small_tpch, perfect_llm):
        barber = SQLBarber(small_tpch, llm=perfect_llm,
                           config=BarberConfig(seed=3))
        templates, _ = barber.generate_templates(
            [TemplateSpec(spec_id="s", num_joins=1, num_predicates=2)]
        )
        distribution = CostDistribution.uniform(0, 2000, 20, 2)
        result = barber.generate_workload(
            [], distribution, templates=templates, time_budget_seconds=60
        )
        assert result.generation_report.traces == []
        assert len(result.workload) > 0

    def test_no_refinement_variant_runs(self, small_tpch):
        barber = SQLBarber(
            small_tpch,
            config=BarberConfig(seed=4, enable_refinement=False),
        )
        specs = redset_spec_workload(num_specs=3)
        distribution = CostDistribution.uniform(0, 2000, 30, 3)
        result = barber.generate_workload(specs, distribution,
                                          time_budget_seconds=60)
        assert result.refinement is None or result.refinement.refine_calls == 0

    def test_custom_nl_spec_flows_through(self, small_tpch, perfect_llm):
        barber = SQLBarber(small_tpch, llm=perfect_llm,
                           config=BarberConfig(seed=5))
        spec = TemplateSpec.from_natural_language(
            "a template with 2 joins, one aggregation and a GROUP BY",
            spec_id="nl",
        )
        templates, report = barber.generate_templates([spec])
        assert report.alignment_accuracy == 1.0
        ok, violations = check_template(templates[0].sql, spec)
        assert ok, violations
