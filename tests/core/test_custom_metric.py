"""User-defined cost metrics (Definition 2.10's 'any user-defined one')."""

import pytest

from repro.core import BarberConfig, PredicateSearch, TemplateProfiler
from repro.workload import CostDistribution, SqlTemplate

TEMPLATE = SqlTemplate(
    "t_custom", "SELECT * FROM orders WHERE o_totalprice < {p_1}"
)


def rows_squared(sql, db):
    """A deliberately odd user-defined metric: estimated rows, squared."""
    return db.explain(sql).estimated_rows ** 2


class TestCustomMetric:
    def test_callable_metric_used(self, small_tpch):
        profiler = TemplateProfiler(
            small_tpch, BarberConfig(seed=0), cost_metric=rows_squared
        )
        assert profiler.cost_metric == "rows_squared"
        profile = profiler.profile(TEMPLATE, num_samples=8)
        baseline = TemplateProfiler(
            small_tpch, BarberConfig(seed=0), cost_metric="cardinality"
        ).profile(TEMPLATE, num_samples=8)
        # Same LHS samples (same seed), squared relationship between costs.
        for (_, squared), (_, plain) in zip(
            profile.observations, baseline.observations
        ):
            assert squared == pytest.approx(plain**2, rel=1e-6)

    def test_search_against_custom_metric(self, small_tpch):
        profiler = TemplateProfiler(
            small_tpch, BarberConfig(seed=1), cost_metric=rows_squared
        )
        profile = profiler.profile(TEMPLATE, num_samples=12)
        distribution = CostDistribution.uniform(
            profile.min_cost, profile.max_cost, 10, 2, cost_type="custom"
        )
        search = PredicateSearch(profiler, BarberConfig(seed=1))
        result = search.run([profile], distribution)
        assert result.complete

    def test_metric_exceptions_do_not_crash(self, small_tpch):
        def flaky(sql, db):
            from repro.sqldb import SqlError

            raise SqlError("metric backend unavailable")

        profiler = TemplateProfiler(
            small_tpch, BarberConfig(seed=2), cost_metric=flaky
        )
        profile = profiler.profile(TEMPLATE, num_samples=4)
        assert not profile.is_usable
        assert profile.errors == 4


class TestExplainAnalyze:
    def test_returns_both(self, small_tpch):
        estimates, execution = small_tpch.explain_analyze(
            "SELECT count(*) FROM orders WHERE o_totalprice > 1000"
        )
        assert estimates.total_cost > 0
        assert execution.row_count == 1

    def test_single_plan_consistency(self, small_tpch):
        sql = "SELECT * FROM orders WHERE o_totalprice > 50000"
        estimates, execution = small_tpch.explain_analyze(sql)
        # Estimated and actual row counts refer to the same plan/query.
        assert estimates.estimated_rows >= 0
        assert execution.row_count >= 0
