"""Failure injection: the pipeline degrades gracefully, never crashes."""

import pytest

from repro.core import (
    BarberConfig,
    PredicateSearch,
    SQLBarber,
    TemplateRefiner,
)
from repro.llm import FaultModel, LLMClient, ScriptedLLM, SimulatedLLM
from repro.workload import CostDistribution, SqlTemplate, TemplateSpec


class GarbageLLM(LLMClient):
    """Returns non-SQL garbage for every prompt."""

    def __init__(self):
        super().__init__(model="garbage")

    def _complete_text(self, prompt: str) -> str:
        return "I'm sorry, I can't help with that."


class AlwaysBrokenLLM(LLMClient):
    """Returns syntactically broken SQL for every prompt."""

    def __init__(self):
        super().__init__(model="broken")

    def _complete_text(self, prompt: str) -> str:
        if "validate" in prompt[:200].lower() or '"satisfied"' in prompt:
            return '{"satisfied": false, "violations": ["always broken"]}'
        return "```sql\nSELEC FORM WHERE ((\n```"


class TestHostileLLMs:
    def test_garbage_llm_yields_no_templates_but_no_crash(self, small_tpch):
        barber = SQLBarber(small_tpch, llm=GarbageLLM(),
                           config=BarberConfig(seed=0))
        templates, report = barber.generate_templates(
            [TemplateSpec(spec_id="x", num_joins=1)]
        )
        assert templates == []
        assert report.alignment_accuracy == 0.0

    def test_broken_llm_workload_run_terminates(self, small_tpch):
        barber = SQLBarber(small_tpch, llm=AlwaysBrokenLLM(),
                           config=BarberConfig(seed=0))
        distribution = CostDistribution.uniform(0, 100, 10, 2)
        result = barber.generate_workload(
            [TemplateSpec(spec_id="x", num_joins=1)],
            distribution,
            time_budget_seconds=20,
        )
        assert len(result.workload) == 0
        assert not result.complete

    def test_scripted_llm_runs_out_cleanly(self, small_tpch):
        barber = SQLBarber(small_tpch, llm=ScriptedLLM([]),
                           config=BarberConfig(seed=0))
        with pytest.raises(RuntimeError, match="ran out"):
            barber.generate_templates([TemplateSpec(spec_id="x")])


class TestBrokenTemplates:
    def test_search_with_unusable_profiles_only(self, profiler):
        broken = profiler.profile(
            SqlTemplate("t_broken", "SELECT ghost FROM nowhere"), num_samples=4
        )
        search = PredicateSearch(profiler, BarberConfig(seed=1))
        distribution = CostDistribution.uniform(0, 100, 10, 2)
        result = search.run([broken], distribution)
        assert result.queries == []
        assert not result.complete

    def test_search_with_empty_pool(self, profiler):
        search = PredicateSearch(profiler, BarberConfig(seed=2))
        distribution = CostDistribution.uniform(0, 100, 10, 2)
        result = search.run([], distribution)
        assert result.queries == []

    def test_refiner_with_unusable_seed(self, profiler, perfect_llm, schema):
        broken = profiler.profile(
            SqlTemplate("t_broken", "SELECT ghost FROM nowhere"), num_samples=4
        )
        refiner = TemplateRefiner(perfect_llm, profiler, schema,
                                  BarberConfig(seed=3))
        distribution = CostDistribution.uniform(0, 100, 10, 2)
        result = refiner.refine([broken], distribution)
        # Nothing to rank, so nothing gets refined — but no exception.
        assert result.accepted == []


class TestFaultSaturation:
    def test_maximum_fault_rates_still_terminate(self, small_tpch):
        llm = SimulatedLLM(
            seed=4,
            fault_model=FaultModel(
                semantic_rate=1.0,
                syntax_rate=1.0,
                hallucination_rate=1.0,
                repair_decay=1.0,  # never improves
            ),
        )
        barber = SQLBarber(small_tpch, llm=llm, config=BarberConfig(seed=4))
        templates, report = barber.generate_templates(
            [TemplateSpec(spec_id="x", num_joins=1, num_predicates=1)]
        )
        # Every attempt is corrupted and never repaired: the iteration
        # budget bounds the loop.
        for trace in report.traces:
            assert len(trace.attempts) <= BarberConfig().max_rewrite_iterations

    def test_zero_iteration_budget(self, small_tpch):
        config = BarberConfig(seed=5, max_rewrite_iterations=0)
        barber = SQLBarber(small_tpch, config=config)
        templates, report = barber.generate_templates(
            [TemplateSpec(spec_id="x", num_joins=1)]
        )
        assert len(report.traces) == 1
        assert report.traces[0].attempts == []
