"""Template generation (Section 4) and Algorithm 1's check-and-rewrite."""

import pytest

from repro.core import (
    BarberConfig,
    CustomizedTemplateGenerator,
    check_and_rewrite,
    probe_values,
    template_error,
)
from repro.llm import FaultModel, SimulatedLLM
from repro.workload import (
    SqlTemplate,
    TemplateSpec,
    check_template,
    infer_placeholder_bindings,
)

GOOD_TEMPLATE = (
    "SELECT o_orderpriority, count(*) FROM orders "
    "WHERE o_totalprice > {p_1} GROUP BY o_orderpriority"
)


class TestValidation:
    def test_good_template_validates(self, small_tpch, config):
        assert template_error(GOOD_TEMPLATE, small_tpch, config) is None

    def test_syntax_error_reported(self, small_tpch, config):
        error = template_error("SELEC * FROM orders", small_tpch, config)
        assert error is not None and "selec" in error

    def test_unknown_column_reported(self, small_tpch, config):
        error = template_error(
            "SELECT o_nonexistent FROM orders", small_tpch, config
        )
        assert "does not exist" in error

    def test_probe_values_types(self, small_tpch, config):
        template = SqlTemplate("t", GOOD_TEMPLATE)
        infos = infer_placeholder_bindings(template.parse(), small_tpch.catalog)
        values = probe_values(infos, small_tpch, config)
        assert isinstance(values["p_1"], float)

    def test_probe_values_text_and_like(self, small_tpch, config):
        template = SqlTemplate(
            "t",
            "SELECT 1 FROM customer WHERE c_mktsegment = {seg} "
            "AND c_name LIKE {pat}",
        )
        infos = infer_placeholder_bindings(template.parse(), small_tpch.catalog)
        values = probe_values(infos, small_tpch, config)
        assert isinstance(values["seg"], str)
        assert "%" in values["pat"]

    def test_unbound_placeholder_gets_default(self, small_tpch, config):
        template = SqlTemplate(
            "t",
            "SELECT o_orderpriority FROM orders GROUP BY o_orderpriority "
            "HAVING count(*) > {p_1}",
        )
        infos = infer_placeholder_bindings(template.parse(), small_tpch.catalog)
        values = probe_values(infos, small_tpch, config)
        assert isinstance(values["p_1"], int)


class TestCheckAndRewrite:
    def test_compliant_template_passes_immediately(
        self, small_tpch, schema, config, perfect_llm
    ):
        spec = TemplateSpec(num_joins=0, require_group_by=True)
        trace = check_and_rewrite(
            GOOD_TEMPLATE, spec, small_tpch, perfect_llm, schema, config
        )
        assert trace.final_ok
        assert trace.rewrites == 0
        assert trace.attempts[0].fully_ok

    def test_broken_syntax_gets_repaired(
        self, small_tpch, schema, config, perfect_llm
    ):
        spec = TemplateSpec(num_joins=0, require_group_by=True)
        broken = GOOD_TEMPLATE.replace("SELECT", "SELEC")
        trace = check_and_rewrite(
            broken, spec, small_tpch, perfect_llm, schema, config
        )
        assert trace.final_ok
        assert not trace.attempts[0].syntax_ok
        assert trace.rewrites >= 1

    def test_spec_violation_gets_rewritten(
        self, small_tpch, schema, config, perfect_llm
    ):
        spec = TemplateSpec(num_joins=2, num_predicates=1)
        trace = check_and_rewrite(
            GOOD_TEMPLATE, spec, small_tpch, perfect_llm, schema, config
        )
        assert trace.final_ok
        assert not trace.attempts[0].spec_ok
        ok, _ = check_template(trace.final_sql, spec)
        assert ok

    def test_faulty_llm_converges_within_budget(self, small_tpch, schema):
        config = BarberConfig(seed=3, max_rewrite_iterations=6)
        llm = SimulatedLLM(seed=3)  # default fault rates
        spec = TemplateSpec(num_joins=1, num_aggregations=1,
                            require_group_by=True)
        converged = 0
        for attempt in range(6):
            trace = check_and_rewrite(
                "SELEC broken", spec, small_tpch, llm, schema, config
            )
            converged += trace.final_ok
        assert converged >= 4  # decaying faults converge almost always

    def test_trace_first_ok_attempts(self, small_tpch, schema, config, perfect_llm):
        spec = TemplateSpec(num_joins=0, require_group_by=True)
        trace = check_and_rewrite(
            GOOD_TEMPLATE, spec, small_tpch, perfect_llm, schema, config
        )
        assert trace.first_spec_ok_attempt() == 0
        assert trace.first_syntax_ok_attempt() == 0


class TestTemplateGenerator:
    def test_generates_compliant_templates(self, small_tpch, perfect_llm, config):
        generator = CustomizedTemplateGenerator(small_tpch, perfect_llm, config)
        specs = [
            TemplateSpec(spec_id="a", num_joins=1, num_aggregations=1,
                         require_group_by=True),
            TemplateSpec(spec_id="b", num_joins=2, num_predicates=2),
            TemplateSpec(spec_id="c", num_joins=0,
                         require_nested_subquery=True, num_predicates=2),
        ]
        templates, report = generator.generate_many(specs)
        assert len(templates) == 3
        assert report.alignment_accuracy == 1.0
        for template, spec in zip(templates, specs):
            ok, violations = check_template(template.sql, spec)
            assert ok, (template.sql, violations)
            assert template.spec_id == spec.spec_id

    def test_placeholders_inferred(self, small_tpch, perfect_llm, config):
        generator = CustomizedTemplateGenerator(small_tpch, perfect_llm, config)
        template, _ = generator.generate(
            TemplateSpec(spec_id="x", num_joins=1, num_predicates=2)
        )
        assert template is not None
        assert len(template.placeholders) == 2
        assert any(p.table is not None for p in template.placeholders)

    def test_faulty_llm_still_mostly_succeeds(self, small_tpch):
        config = BarberConfig(seed=11)
        generator = CustomizedTemplateGenerator(
            small_tpch, SimulatedLLM(seed=11), config
        )
        specs = [
            TemplateSpec(spec_id=f"s{i}", num_joins=i % 3, num_aggregations=1)
            for i in range(8)
        ]
        templates, report = generator.generate_many(specs)
        assert len(templates) >= 6
        assert report.alignment_accuracy >= 0.6

    def test_report_cumulative_counts_monotone(self, small_tpch):
        config = BarberConfig(seed=5)
        generator = CustomizedTemplateGenerator(
            small_tpch, SimulatedLLM(seed=5), config
        )
        specs = [
            TemplateSpec(spec_id=f"s{i}", num_joins=1, require_group_by=True)
            for i in range(6)
        ]
        _, report = generator.generate_many(specs)
        curves = report.cumulative_correct(config.max_rewrite_iterations)
        for series in curves.values():
            assert series == sorted(series)
            assert series[-1] <= len(specs)
