"""End-to-end integration on the 21-table IMDB database."""

import pytest

from repro.core import BarberConfig, SQLBarber
from repro.datasets import build_imdb, fleet_distribution, redset_spec_workload
from repro.workload import analyze_sql, describe_workload


@pytest.fixture(scope="module")
def imdb():
    return build_imdb(scale=0.5)


@pytest.fixture(scope="module")
def imdb_result(imdb):
    barber = SQLBarber(imdb, config=BarberConfig(seed=7))
    specs = redset_spec_workload(num_specs=6, seed=7)
    # A fleet-shaped target within the small-scale database's reach.
    distribution = fleet_distribution(
        "snowset_cost", 40, 8, "plan_cost"
    ).scaled_to(40)
    distribution = type(distribution)(
        lower=0.0, upper=2000.0,
        target_counts=distribution.target_counts,
        name=distribution.name, cost_type="plan_cost",
    )
    return barber.generate_workload(specs, distribution,
                                    time_budget_seconds=120)


class TestImdbEndToEnd:
    def test_converges(self, imdb_result):
        first = imdb_result.distance_trace[0][1]
        assert imdb_result.final_distance < 0.1 * max(first, 1.0)

    def test_queries_reference_job_tables(self, imdb, imdb_result):
        job_tables = set(imdb.catalog.table_names)
        seen: set = set()
        for query in imdb_result.workload:
            structure = analyze_sql(query.sql)
            assert structure.num_tables >= 1
            for table in job_tables:
                if f" {table} " in f" {query.sql} ".replace("AS", " "):
                    seen.add(table)
        assert len(seen) >= 3  # the workload spreads across the schema

    def test_queries_executable_on_imdb(self, imdb, imdb_result):
        for query in imdb_result.workload.queries[:8]:
            ok, error = imdb.validate(query.sql)
            assert ok, (error, query.sql)

    def test_workload_report(self, imdb_result):
        report = describe_workload(imdb_result.workload)
        assert report.cost.count == len(imdb_result.workload)
        assert report.structure.unparseable == 0
        assert len(report.queries_per_template) >= 2

    def test_zipf_skew_visible_to_optimizer(self, imdb):
        # The most popular movie dominates cast_info: an equality filter on
        # it must get a far larger estimate than on an unpopular movie.
        popular = imdb.explain(
            "SELECT * FROM cast_info WHERE movie_id = 0"
        ).estimated_rows
        obscure = imdb.explain(
            "SELECT * FROM cast_info WHERE movie_id = 1500"
        ).estimated_rows
        assert popular > obscure * 10
