"""The optional measured-execution cost metric (real query timing).

The paper uses optimizer estimates via EXPLAIN; this extension profiles by
actually executing queries and measuring wall-clock time, for users who
want true runtime distributions.
"""

import pytest

from repro.core import BarberConfig, TemplateProfiler
from repro.workload import SqlTemplate

TEMPLATE = SqlTemplate(
    "t_exec", "SELECT count(*) FROM orders WHERE o_totalprice < {p_1}"
)


class TestMeasuredTime:
    def test_measured_profile_collects_positive_times(self, small_tpch):
        profiler = TemplateProfiler(
            small_tpch, BarberConfig(seed=0), cost_metric="measured_time"
        )
        profile = profiler.profile(TEMPLATE, num_samples=5)
        assert len(profile.observations) == 5
        assert all(cost > 0 for cost in profile.costs)

    def test_measured_times_are_seconds_scale(self, small_tpch):
        profiler = TemplateProfiler(
            small_tpch, BarberConfig(seed=0), cost_metric="measured_time"
        )
        profile = profiler.profile(TEMPLATE, num_samples=3)
        assert all(cost < 5.0 for cost in profile.costs)  # tiny db, fast

    def test_measured_errors_counted_not_raised(self, small_tpch):
        profiler = TemplateProfiler(
            small_tpch, BarberConfig(seed=0), cost_metric="measured_time"
        )
        broken = SqlTemplate("t_bad", "SELECT ghost FROM orders WHERE x > {p}")
        profile = profiler.profile(broken, num_samples=3)
        assert not profile.is_usable
