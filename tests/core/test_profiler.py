"""Section 5.1: search-space construction and LHS profiling."""

import pytest

from repro.bo import CategoricalParameter, FloatParameter, IntegerParameter
from repro.core import interval_distance
from repro.workload import SqlTemplate

RANGE_TEMPLATE = SqlTemplate(
    "t_range", "SELECT * FROM orders WHERE o_totalprice < {p_1}"
)
TWO_DIM_TEMPLATE = SqlTemplate(
    "t_2d",
    "SELECT * FROM orders WHERE o_totalprice < {p_1} AND o_orderdate > {p_2}",
)
TEXT_TEMPLATE = SqlTemplate(
    "t_text", "SELECT * FROM customer WHERE c_mktsegment = {seg}"
)


class TestBuildSpace:
    def test_numeric_bounds_from_stats(self, profiler, small_tpch):
        space = profiler.build_space(RANGE_TEMPLATE)
        param = space.parameters[0]
        assert isinstance(param, FloatParameter)
        stats = small_tpch.catalog.column_stats("orders", "o_totalprice")
        assert param.low == pytest.approx(stats.min_value)
        assert param.high == pytest.approx(stats.max_value)

    def test_date_becomes_integer_parameter(self, profiler):
        space = profiler.build_space(TWO_DIM_TEMPLATE)
        by_name = {p.name: p for p in space.parameters}
        assert isinstance(by_name["p_2"], IntegerParameter)

    def test_text_becomes_categorical(self, profiler):
        space = profiler.build_space(TEXT_TEMPLATE)
        param = space.parameters[0]
        assert isinstance(param, CategoricalParameter)
        assert "BUILDING" in param.choices

    def test_like_patterns(self, profiler):
        template = SqlTemplate(
            "t_like", "SELECT * FROM customer WHERE c_mktsegment LIKE {pat}"
        )
        space = profiler.build_space(template)
        assert all("%" in c for c in space.parameters[0].choices)

    def test_unbound_placeholder_default_range(self, profiler, config):
        template = SqlTemplate(
            "t_unbound",
            "SELECT o_orderpriority FROM orders GROUP BY o_orderpriority "
            "HAVING count(*) > {p_1}",
        )
        space = profiler.build_space(template)
        param = space.parameters[0]
        assert (param.low, param.high) == config.unbound_placeholder_range


class TestProfile:
    def test_profile_collects_costs(self, profiler):
        profile = profiler.profile(RANGE_TEMPLATE, num_samples=12)
        assert len(profile.observations) == 12
        assert profile.errors == 0
        assert profile.min_cost < profile.max_cost

    def test_costs_vary_with_predicate(self, profiler):
        profile = profiler.profile(RANGE_TEMPLATE, num_samples=16)
        assert profile.variety > 0.5

    def test_unparseable_template_yields_unusable_profile(self, profiler):
        broken = SqlTemplate("t_bad", "SELEC nonsense FROM nowhere")
        profile = profiler.profile(broken, num_samples=5)
        assert not profile.is_usable
        assert profile.errors >= 1

    def test_hallucinated_column_counts_errors(self, profiler):
        broken = SqlTemplate(
            "t_ghost", "SELECT * FROM orders WHERE o_ghost > {p_1}"
        )
        profile = profiler.profile(broken, num_samples=5)
        assert not profile.is_usable

    def test_placeholder_free_template(self, profiler):
        fixed = SqlTemplate("t_fixed", "SELECT count(*) FROM orders")
        profile = profiler.profile(fixed)
        assert len(profile.observations) == 1

    def test_cardinality_metric(self, small_tpch, config):
        from repro.core import TemplateProfiler

        profiler = TemplateProfiler(small_tpch, config, cost_metric="cardinality")
        profile = profiler.profile(RANGE_TEMPLATE, num_samples=10)
        max_rows = small_tpch.catalog.table("orders").row_count
        assert all(0 <= c <= max_rows for c in profile.costs)

    def test_execution_time_maps_to_plan_cost(self, small_tpch, config):
        from repro.core import TemplateProfiler

        profiler = TemplateProfiler(
            small_tpch, config, cost_metric="execution_time"
        )
        assert profiler.cost_metric == "plan_cost"

    def test_unknown_metric_rejected(self, small_tpch, config):
        from repro.core import TemplateProfiler

        with pytest.raises(ValueError):
            TemplateProfiler(small_tpch, config, cost_metric="joules")


class TestClosenessScore:
    def test_interval_distance(self):
        assert interval_distance(5, 0, 10) == 0
        assert interval_distance(-3, 0, 10) == 3
        assert interval_distance(15, 0, 10) == 5

    def test_closer_profile_scores_higher(self, profiler):
        profile = profiler.profile(RANGE_TEMPLATE, num_samples=16)
        low, high = profile.min_cost, profile.max_cost
        inside = profile.closeness(low, high)
        far = profile.closeness(high * 100, high * 101)
        assert inside > far

    def test_empty_profile_scores_zero(self, profiler):
        broken = profiler.profile(
            SqlTemplate("t_none", "SELECT * FROM ghosts"), num_samples=3
        )
        assert broken.closeness(0, 10) == 0.0

    def test_space_accounting(self, profiler):
        profile = profiler.profile(TWO_DIM_TEMPLATE, num_samples=10)
        assert profile.remaining_space() < profile.space_size()
        assert profile.space_size() > 0

    def test_budget_heuristic(self, profiler, config):
        per_template = profiler.profile_samples_per_template(1000, 10)
        assert config.min_profile_samples <= per_template
        assert per_template <= config.max_profile_samples
