"""Algorithm 2 (refine & prune) and Algorithm 3 (BO predicate search)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BarberConfig,
    PredicateSearch,
    TemplateRefiner,
    interval_objective,
)
from repro.workload import CostDistribution, SqlTemplate

CHEAP_TEMPLATE = SqlTemplate(
    "t_cheap", "SELECT * FROM nation WHERE n_nationkey < {p_1}"
)
WIDE_TEMPLATE = SqlTemplate(
    "t_wide", "SELECT * FROM lineitem WHERE l_extendedprice < {p_1}"
)


class TestIntervalObjective:
    def test_inside_is_zero(self):
        assert interval_objective(5.0, 0.0, 10.0) == 0.0

    def test_boundaries_are_zero(self):
        assert interval_objective(0.0, 0.0, 10.0) == 0.0
        assert interval_objective(10.0, 0.0, 10.0) == 0.0

    def test_outside_positive(self):
        assert interval_objective(20.0, 0.0, 10.0) > 0.0

    def test_farther_is_worse(self):
        near = interval_objective(12.0, 0.0, 10.0)
        far = interval_objective(100.0, 0.0, 10.0)
        assert far > near

    def test_zero_lower_bound_safe(self):
        assert interval_objective(50.0, 0.0, 10.0) == pytest.approx(0.8)

    @given(st.floats(min_value=0.001, max_value=1e6),
           st.floats(min_value=1.0, max_value=1e5))
    @settings(max_examples=60, deadline=None)
    def test_bounded_in_unit_interval(self, cost, low):
        high = low * 2
        value = interval_objective(cost, low, high)
        assert 0.0 <= value <= 1.0


@pytest.fixture()
def profiles(profiler):
    return [
        profiler.profile(CHEAP_TEMPLATE, num_samples=10),
        profiler.profile(WIDE_TEMPLATE, num_samples=10),
    ]


class TestRefiner:
    def make_refiner(self, perfect_llm, profiler, schema, **overrides):
        config = BarberConfig(seed=0).with_overrides(**overrides)
        return TemplateRefiner(perfect_llm, profiler, schema, config)

    def test_refinement_extends_cost_coverage(
        self, perfect_llm, profiler, schema, profiles
    ):
        # Targets well above both templates' reach: refinement must create
        # heavier templates.
        max_reach = max(p.max_cost for p in profiles)
        distribution = CostDistribution.uniform(0, max_reach * 4, 100, 10)
        refiner = self.make_refiner(perfect_llm, profiler, schema)
        result = refiner.refine(profiles, distribution, profile_samples=8)
        assert result.refine_calls > 0
        new_max = max(p.max_cost for p in result.profiles)
        assert new_max > max_reach

    def test_disabled_refinement_is_noop(
        self, perfect_llm, profiler, schema, profiles
    ):
        refiner = self.make_refiner(
            perfect_llm, profiler, schema, enable_refinement=False
        )
        distribution = CostDistribution.uniform(0, 100000, 100, 10)
        result = refiner.refine(profiles, distribution)
        assert result.refine_calls == 0
        assert result.profiles == profiles

    def test_covered_distribution_needs_no_refinement(
        self, perfect_llm, profiler, schema, profiles
    ):
        # A target matching what the templates already produce.
        costs = [c for p in profiles for c in p.costs]
        distribution = CostDistribution.from_samples(
            costs, min(costs) - 1, max(costs) + 1, 50, 4
        )
        refiner = self.make_refiner(perfect_llm, profiler, schema)
        result = refiner.refine(profiles, distribution, profile_samples=6)
        assert result.refine_calls == 0

    def test_pruning_counts(self, perfect_llm, profiler, schema, profiles):
        refiner = self.make_refiner(perfect_llm, profiler, schema)
        distribution = CostDistribution.uniform(0, 1_000_000, 100, 20)
        result = refiner.refine(profiles, distribution, profile_samples=6)
        # accepted + pruned equals the number of refine calls that returned
        # a novel template
        assert result.pruned + len(result.accepted) <= result.refine_calls

    def test_accepted_templates_record_parent(
        self, perfect_llm, profiler, schema, profiles
    ):
        refiner = self.make_refiner(perfect_llm, profiler, schema)
        max_reach = max(p.max_cost for p in profiles)
        distribution = CostDistribution.uniform(0, max_reach * 4, 100, 10)
        result = refiner.refine(profiles, distribution, profile_samples=6)
        for template in result.accepted:
            assert template.parent_id is not None


class TestPredicateSearch:
    def test_fills_reachable_distribution(self, profiler, profiles):
        profile = profiles[1]  # the wide lineitem template
        distribution = CostDistribution.uniform(
            profile.min_cost, profile.max_cost, 40, 4
        )
        search = PredicateSearch(profiler, BarberConfig(seed=0))
        result = search.run([profile], distribution)
        assert result.complete
        assert result.final_distance == pytest.approx(0.0)
        assert len(result.queries) == 40

    def test_queries_have_costs_in_their_intervals(self, profiler, profiles):
        profile = profiles[1]
        distribution = CostDistribution.uniform(
            profile.min_cost, profile.max_cost, 20, 4
        )
        search = PredicateSearch(profiler, BarberConfig(seed=1))
        result = search.run([profile], distribution)
        for query in result.queries:
            assert distribution.interval_of(query.cost) is not None
            assert "{" not in query.sql  # fully instantiated

    def test_no_duplicate_queries(self, profiler, profiles):
        profile = profiles[1]
        distribution = CostDistribution.uniform(
            profile.min_cost, profile.max_cost, 30, 3
        )
        search = PredicateSearch(profiler, BarberConfig(seed=2))
        result = search.run([profile], distribution)
        keys = [(q.template_id, tuple(sorted(q.predicate_values.items())))
                for q in result.queries]
        assert len(keys) == len(set(keys))

    def test_unreachable_interval_gets_skipped(self, profiler, profiles):
        profile = profiles[0]  # cheap template: cost ceiling is tiny
        distribution = CostDistribution(
            profile.max_cost * 1000, profile.max_cost * 2000, (10,)
        )
        search = PredicateSearch(profiler, BarberConfig(seed=3))
        result = search.run([profile], distribution)
        assert not result.complete
        assert 0 in result.skipped_intervals

    def test_trace_is_monotone_in_time(self, profiler, profiles):
        profile = profiles[1]
        distribution = CostDistribution.uniform(
            profile.min_cost, profile.max_cost, 20, 2
        )
        search = PredicateSearch(profiler, BarberConfig(seed=4))
        result = search.run([profile], distribution)
        times = [t for t, _ in result.trace]
        assert times == sorted(times)
        assert result.trace[-1][1] <= result.trace[0][1]

    def test_deadline_stops_early(self, profiler, profiles):
        distribution = CostDistribution.uniform(0, 1_000_000, 500, 20)
        search = PredicateSearch(profiler, BarberConfig(seed=5))
        result = search.run(profiles, distribution, deadline=0.5)
        assert not result.complete  # impossible target, bounded time

    def test_random_strategy_also_fills_easy_targets(self, profiler, profiles):
        profile = profiles[1]
        distribution = CostDistribution.uniform(
            profile.min_cost, profile.max_cost, 20, 2
        )
        search = PredicateSearch(
            profiler, BarberConfig(seed=6, search_strategy="random")
        )
        result = search.run([profile], distribution)
        assert result.complete
