"""Determinism: identical seeds must reproduce identical workloads.

This guards against the class of bug where per-process randomness (e.g.
Python's randomized ``hash()``) leaks into targets or search decisions and
makes experiment results irreproducible.
"""

import pytest

from repro.core import BarberConfig, SQLBarber
from repro.datasets import build_tpch, fleet_distribution, redset_spec_workload
from repro.workload import CostDistribution


def run_once(seed: int, workers: int = 1):
    db = build_tpch(scale=0.002, seed=3)
    barber = SQLBarber(db, config=BarberConfig(seed=seed, workers=workers))
    specs = redset_spec_workload(num_specs=4, seed=11)
    distribution = CostDistribution.uniform(0, 1000, 24, 4)
    return barber.generate_workload(specs, distribution,
                                    time_budget_seconds=60)


class TestReproducibility:
    def test_same_seed_same_workload(self):
        first = run_once(seed=5)
        second = run_once(seed=5)
        assert [q.sql for q in first.workload] == [
            q.sql for q in second.workload
        ]
        assert first.workload.costs == second.workload.costs
        assert [t.sql for t in first.templates] == [
            t.sql for t in second.templates
        ]

    def test_worker_count_does_not_change_results(self):
        # --workers must be a pure throughput knob: per-template RNG seeding
        # and single-flight caching make a 4-worker run bit-identical to the
        # serial one, down to the telemetry counters (timings excluded —
        # histograms record wall-clock).
        serial = run_once(seed=5, workers=1)
        fanned = run_once(seed=5, workers=4)
        assert [q.sql for q in serial.workload] == [
            q.sql for q in fanned.workload
        ]
        assert serial.workload.costs == fanned.workload.costs
        assert [t.sql for t in serial.templates] == [
            t.sql for t in fanned.templates
        ]
        assert [p.observations for p in serial.profiles] == [
            p.observations for p in fanned.profiles
        ]
        serial_counters = serial.telemetry.metrics.snapshot()["counters"]
        fanned_counters = fanned.telemetry.metrics.snapshot()["counters"]
        assert serial_counters == fanned_counters

    def test_different_seed_different_workload(self):
        first = run_once(seed=5)
        second = run_once(seed=6)
        assert [q.sql for q in first.workload] != [
            q.sql for q in second.workload
        ]

    def test_fleet_distribution_process_stable(self):
        # Regression test for the hash()-seeded fleet bug: the target
        # histogram must be a pure function of (name, parameters).
        a = fleet_distribution("redset_cost", 100, 10, "plan_cost")
        b = fleet_distribution("redset_cost", 100, 10, "plan_cost")
        assert a.target_counts == b.target_counts
        # Known-good values pinned so a cross-process change is caught by CI.
        assert sum(a.target_counts) == 100
        assert a.target_counts[0] > 50  # heavy bottom

    def test_dataset_builds_identical(self):
        a = build_tpch(scale=0.001, seed=9)
        b = build_tpch(scale=0.001, seed=9)
        for table in a.catalog.table_names:
            sa = a.catalog.column_stats(table, a.catalog.table(table).columns[0].name)
            sb = b.catalog.column_stats(table, b.catalog.table(table).columns[0].name)
            assert sa.distinct_count == sb.distinct_count
