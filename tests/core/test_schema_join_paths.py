"""Schema summarisation (Step 1) and join path machinery (Step 2)."""

import numpy as np
import pytest

from repro.core import (
    enumerate_join_paths,
    join_graph,
    path_tables,
    sample_join_path,
    schema_payload,
    schema_text,
)


class TestSchemaPayload:
    def test_all_tables_listed(self, small_tpch, schema):
        names = {t["name"] for t in schema["tables"]}
        assert names == set(small_tpch.catalog.table_names)

    def test_column_metadata(self, schema):
        orders = next(t for t in schema["tables"] if t["name"] == "orders")
        price = next(c for c in orders["columns"] if c["name"] == "o_totalprice")
        assert price["type"] == "double precision"
        assert price["ndv"] > 0
        assert price["min"] < price["max"]

    def test_row_counts(self, small_tpch, schema):
        for table in schema["tables"]:
            assert table["rows"] == small_tpch.catalog.table(table["name"]).row_count

    def test_join_edges_cover_fks(self, small_tpch, schema):
        assert len(schema["join_edges"]) == len(small_tpch.catalog.foreign_keys)

    def test_primary_keys_and_indexes(self, schema):
        orders = next(t for t in schema["tables"] if t["name"] == "orders")
        assert orders["primary_key"] == ["o_orderkey"]
        assert "o_custkey" in orders["indexes"]  # FK column is indexed

    def test_schema_text_readable(self, small_tpch):
        text = schema_text(small_tpch)
        assert "lineitem" in text
        assert "Foreign keys" in text
        assert "rows" in text


class TestJoinGraph:
    def test_nodes_are_tables(self, small_tpch):
        graph = join_graph(small_tpch)
        assert set(graph.nodes) == set(small_tpch.catalog.table_names)

    def test_edges_are_fks(self, small_tpch):
        graph = join_graph(small_tpch)
        assert graph.number_of_edges() == len(small_tpch.catalog.foreign_keys)


class TestEnumeratePaths:
    def test_single_join_paths(self, small_tpch):
        paths = enumerate_join_paths(small_tpch, max_joins=1)
        assert all(len(p) == 1 for p in paths)
        assert len(paths) == len(small_tpch.catalog.foreign_keys)

    def test_longer_paths_are_simple(self, small_tpch):
        paths = enumerate_join_paths(small_tpch, max_joins=3)
        for path in paths:
            tables = path_tables(path)
            assert len(tables) == len(path) + 1  # simple path: no repeats

    def test_limit_respected(self, small_tpch):
        paths = enumerate_join_paths(small_tpch, max_joins=4, limit=5)
        assert len(paths) == 5


class TestSamplePath:
    def test_exact_join_count(self, small_tpch):
        rng = np.random.default_rng(0)
        for joins in (1, 2, 3, 5):
            path = sample_join_path(small_tpch, joins, rng)
            assert len(path) == joins

    def test_zero_joins(self, small_tpch):
        assert sample_join_path(small_tpch, 0, np.random.default_rng(0)) == []

    def test_connectivity(self, small_tpch):
        rng = np.random.default_rng(1)
        for _ in range(10):
            path = sample_join_path(small_tpch, 3, rng)
            placed = {path[0]["table"], path[0]["ref_table"]}
            for edge in path[1:]:
                assert edge["table"] in placed or edge["ref_table"] in placed
                placed.update((edge["table"], edge["ref_table"]))

    def test_table_budget(self, small_tpch):
        rng = np.random.default_rng(2)
        for _ in range(20):
            path = sample_join_path(small_tpch, 4, rng, num_tables=3)
            # Budget is soft (the first edge places two tables), but once
            # reached, self-joins are preferred over fresh tables.
            assert len(path_tables(path)) <= 3

    def test_diverse_across_samples(self, small_tpch):
        rng = np.random.default_rng(3)
        starts = {sample_join_path(small_tpch, 2, rng)[0]["table"]
                  for _ in range(20)}
        assert len(starts) >= 3
