"""Behaviours added on top of the paper's Algorithm 3 pseudo-code:
profile harvesting, headroom relaxation, and stepping-stone refinement."""

import pytest

from repro.core import BarberConfig, PredicateSearch, TemplateRefiner
from repro.workload import CostDistribution, SqlTemplate


SMALL_SPACE_TEMPLATE = SqlTemplate(
    "t_small",
    # ps_suppkey has only a handful of distinct values at tiny scale, so the
    # whole search space is a few dozen configurations.
    "SELECT * FROM partsupp WHERE ps_suppkey <= {p_1}",
)
WIDE_TEMPLATE = SqlTemplate(
    "t_wide", "SELECT * FROM lineitem WHERE l_extendedprice < {p_1}"
)


class TestProfileHarvesting:
    def test_profiled_hits_become_queries(self, profiler):
        profile = profiler.profile(WIDE_TEMPLATE, num_samples=20)
        # A target the profile alone can satisfy.
        distribution = CostDistribution.from_samples(
            profile.costs, profile.min_cost, profile.max_cost, 10, 2
        )
        search = PredicateSearch(profiler, BarberConfig(seed=0))
        result = search.run([profile], distribution)
        assert result.complete
        # Most (often all) queries come straight from the profile: the
        # search loop barely needs to evaluate anything new.
        assert result.evaluations <= 20

    def test_harvested_queries_are_instantiated(self, profiler):
        profile = profiler.profile(WIDE_TEMPLATE, num_samples=12)
        distribution = CostDistribution.uniform(
            profile.min_cost, profile.max_cost, 6, 2
        )
        search = PredicateSearch(profiler, BarberConfig(seed=1))
        result = search.run([profile], distribution)
        for query in result.queries:
            assert "{" not in query.sql


class TestHeadroomRelaxation:
    def test_small_space_still_searched(self, profiler):
        profile = profiler.profile(SMALL_SPACE_TEMPLATE, num_samples=8)
        assert profile.space_size() <= 60
        distribution = CostDistribution.uniform(
            max(profile.min_cost - 1, 0), profile.max_cost + 1, 8, 2
        )
        search = PredicateSearch(profiler, BarberConfig(seed=2))
        result = search.run([profile], distribution)
        # With the strict 5Δ headroom alone this space would be filtered
        # out entirely and zero queries generated.
        assert len(result.queries) > 0


class TestSteppingStoneRefinement:
    def test_out_of_reach_interval_is_bridged(
        self, small_tpch, perfect_llm, profiler, schema
    ):
        seed = profiler.profile(
            SqlTemplate(
                "t_seed",
                "SELECT o_orderpriority, count(*) FROM orders "
                "WHERE o_custkey <= {p_1} GROUP BY o_orderpriority",
            ),
            num_samples=8,
        )
        # Far above the seed's reach: only a chain of refinements gets there.
        target_low = seed.max_cost * 20
        distribution = CostDistribution(
            0, target_low * 1.5, (5, 5, 5), cost_type="plan_cost"
        )
        refiner = TemplateRefiner(perfect_llm, profiler, schema, BarberConfig(seed=3))
        result = refiner.refine([seed], distribution, profile_samples=8)
        assert max(p.max_cost for p in result.profiles) > seed.max_cost * 5
        # Intermediate templates were kept even before reaching the target.
        assert len(result.profiles) > 1
