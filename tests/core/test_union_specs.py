"""End-to-end: UNION-requiring specs through the full pipeline."""

import pytest

from repro.core import BarberConfig, SQLBarber
from repro.workload import (
    CostDistribution,
    TemplateSpec,
    analyze_sql,
    check_template,
)


class TestUnionSpecs:
    def test_template_generation_with_union(self, small_tpch, perfect_llm):
        barber = SQLBarber(small_tpch, llm=perfect_llm,
                           config=BarberConfig(seed=0))
        spec = TemplateSpec.from_natural_language(
            "one join, two predicate values and a UNION of two subqueries",
            spec_id="u",
        )
        assert spec.require_union
        templates, report = barber.generate_templates([spec])
        assert report.alignment_accuracy == 1.0
        structure = analyze_sql(templates[0].sql)
        assert structure.has_union
        assert structure.num_joins == 1  # per-branch count

    def test_union_template_generates_queries(self, small_tpch, perfect_llm):
        barber = SQLBarber(small_tpch, llm=perfect_llm,
                           config=BarberConfig(seed=1))
        spec = TemplateSpec(spec_id="u2", num_joins=0, num_predicates=1,
                            require_union=True)
        templates, _ = barber.generate_templates([spec])
        distribution = CostDistribution.uniform(0, 2000, 10, 2)
        result = barber.generate_workload(
            [spec], distribution, templates=templates, time_budget_seconds=30
        )
        assert len(result.workload) > 0
        for query in result.workload.queries[:3]:
            ok, error = small_tpch.validate(query.sql)
            assert ok, error
            assert "UNION" in query.sql

    def test_union_violation_detected(self):
        ok, violations = check_template(
            "SELECT 1 FROM t", TemplateSpec(require_union=True)
        )
        assert not ok
        assert any("UNION" in v for v in violations)

    def test_union_spec_survives_faulty_llm(self, small_tpch):
        from repro.llm import SimulatedLLM

        barber = SQLBarber(small_tpch, llm=SimulatedLLM(seed=3),
                           config=BarberConfig(seed=3))
        specs = [
            TemplateSpec(spec_id=f"u{i}", num_joins=1, require_union=True)
            for i in range(4)
        ]
        templates, report = barber.generate_templates(specs)
        assert report.alignment_accuracy >= 0.5
        assert any(analyze_sql(t.sql).has_union for t in templates)
