"""Dataset generators: schema shape, determinism, and statistics."""

import numpy as np
import pytest

from repro.datasets import (
    COST_RANGE,
    build_database,
    build_imdb,
    build_tpch,
    dataset_names,
    fleet_distribution,
    fleet_samples,
    normal_distribution,
    redset_spec_workload,
    uniform_distribution,
)


@pytest.fixture(scope="module")
def tpch():
    return build_tpch(scale=0.002)


@pytest.fixture(scope="module")
def imdb():
    return build_imdb(scale=0.25)


class TestTpch:
    def test_eight_tables(self, tpch):
        assert len(tpch.catalog.table_names) == 8

    def test_fixed_small_tables(self, tpch):
        assert tpch.catalog.table("region").row_count == 5
        assert tpch.catalog.table("nation").row_count == 25

    def test_ratio_lineitem_to_orders(self, tpch):
        lineitem = tpch.catalog.table("lineitem").row_count
        orders = tpch.catalog.table("orders").row_count
        assert 3.0 <= lineitem / orders <= 5.0

    def test_foreign_keys_registered(self, tpch):
        fks = {str(fk) for fk in tpch.catalog.foreign_keys}
        assert "orders.o_custkey -> customer.c_custkey" in fks
        assert "lineitem.l_orderkey -> orders.o_orderkey" in fks

    def test_statistics_analyzed(self, tpch):
        stats = tpch.catalog.column_stats("orders", "o_totalprice")
        assert stats is not None and stats.histogram is not None

    def test_fk_values_in_domain(self, tpch):
        result = tpch.execute(
            "SELECT count(*) FROM orders WHERE o_custkey >= "
            "(SELECT max(c_custkey) + 1 FROM customer)"
        )
        assert list(result.table.rows()) == [(0,)]

    def test_queries_run(self, tpch):
        result = tpch.execute(
            "SELECT o_orderpriority, count(*) FROM orders "
            "GROUP BY o_orderpriority"
        )
        assert result.row_count == 5

    def test_deterministic(self):
        a = build_tpch(scale=0.001, seed=3)
        b = build_tpch(scale=0.001, seed=3)
        ra = list(a.execute("SELECT sum(o_totalprice) FROM orders").table.rows())
        rb = list(b.execute("SELECT sum(o_totalprice) FROM orders").table.rows())
        assert ra == rb


class TestImdb:
    def test_twentyone_tables(self, imdb):
        assert len(imdb.catalog.table_names) == 21

    def test_job_core_tables_present(self, imdb):
        names = set(imdb.catalog.table_names)
        assert {"title", "name", "cast_info", "movie_info", "movie_keyword",
                "movie_companies", "char_name", "company_name", "keyword",
                "info_type", "kind_type", "role_type"} <= names

    def test_skewed_references(self, imdb):
        # Zipf-skewed movie_id: the most popular movie dominates.
        result = imdb.execute(
            "SELECT movie_id, count(*) AS c FROM cast_info GROUP BY movie_id "
            "ORDER BY c DESC LIMIT 1"
        )
        top_count = list(result.table.rows())[0][1]
        total = imdb.catalog.table("cast_info").row_count
        assert top_count > total * 0.05

    def test_join_graph_connected_to_title(self, imdb):
        title_fks = [
            fk for fk in imdb.catalog.foreign_keys if fk.ref_table == "title"
        ]
        assert len(title_fks) >= 6

    def test_three_way_join_runs(self, imdb):
        result = imdb.execute(
            "SELECT count(*) FROM title t JOIN cast_info ci ON ci.movie_id = t.id "
            "JOIN name n ON ci.person_id = n.id WHERE t.production_year > 2000"
        )
        assert result.row_count == 1


class TestRegistry:
    def test_names(self):
        assert dataset_names() == ["imdb", "tpch"]

    def test_cache_returns_same_object(self):
        a = build_database("tpch", scale=0.001)
        b = build_database("tpch", scale=0.001)
        assert a is b

    def test_uncached_builds_fresh(self):
        a = build_database("tpch", scale=0.001, cached=False)
        b = build_database("tpch", scale=0.001, cached=False)
        assert a is not b

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            build_database("oracle")


class TestFleetDistributions:
    def test_samples_in_range(self):
        samples = fleet_samples("redset_cost", n=5000)
        assert samples.min() >= COST_RANGE[0]
        assert samples.max() <= COST_RANGE[1]

    def test_deterministic(self):
        a = fleet_samples("snowset_card_1", n=1000)
        b = fleet_samples("snowset_card_1", n=1000)
        assert np.array_equal(a, b)

    def test_heavy_tail_shape(self):
        dist = fleet_distribution("redset_cost", 1000, 10, "plan_cost")
        # Fleet workloads are dominated by cheap queries.
        assert dist.target_counts[0] > dist.target_counts[-1]
        assert dist.target_counts[0] > 300

    def test_all_fleets_build(self):
        for name in ("snowset_card_1", "snowset_card_2", "snowset_cost",
                     "redset_cost"):
            dist = fleet_distribution(name, 2000, 20, "cardinality")
            assert dist.total_queries == 2000
            assert dist.num_intervals == 20

    def test_unknown_fleet(self):
        with pytest.raises(KeyError):
            fleet_samples("bigquery")

    def test_synthetic_builders(self):
        assert uniform_distribution(1000, 10).name == "uniform"
        assert normal_distribution(1000, 10).name == "normal"


class TestRedsetSpecs:
    def test_twenty_four_specs(self):
        specs = redset_spec_workload()
        assert len(specs) == 24

    def test_every_spec_has_instruction(self):
        for spec in redset_spec_workload():
            assert len(spec.instructions) >= 1

    def test_annotations_present(self):
        for spec in redset_spec_workload():
            assert spec.num_tables is not None
            assert spec.num_joins is not None
            assert spec.num_aggregations is not None

    def test_join_distribution_small_heavy(self):
        specs = redset_spec_workload(num_specs=200)
        small = sum(1 for s in specs if s.num_joins <= 1)
        assert small > 80

    def test_deterministic(self):
        assert redset_spec_workload() == redset_spec_workload()

    def test_instruction_fields_folded_in(self):
        specs = redset_spec_workload(num_specs=100)
        assert any(s.require_nested_subquery for s in specs)
        assert any(s.require_group_by for s in specs)
        assert any(s.num_predicates is not None for s in specs)
