"""Batched re-costing (``CompiledTemplate.explain_many``) differential tests.

``explain_many`` has a true fast path — with the EXPLAIN cache disabled it
skips per-call SQL rendering and cache dispatch and replays the compiled
plan directly — so this battery pins its contract: byte-identical results,
identical telemetry counters, and identical errors to the equivalent
per-call loop ``[compiled.explain(v) for v in bindings]``, which is itself
pinned to the cold pipeline by ``test_differential_cache``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bo import lhs_configs
from repro.core import BarberConfig, TemplateProfiler
from repro.datasets import build_tpch
from repro.obs import Telemetry, use_telemetry
from repro.sqldb.errors import BindError
from repro.sqldb.explain import explain_plan
from repro.workload import SqlTemplate

TEMPLATES = [
    SqlTemplate(
        "batch_scan",
        "select l_orderkey from lineitem where l_quantity < {v1}",
    ),
    SqlTemplate(
        "batch_range",
        "select l_orderkey, l_quantity from lineitem "
        "where l_quantity < {v1} and l_discount between {v2} and {v3}",
    ),
    SqlTemplate(
        "batch_negative",
        "select c_name from customer where c_acctbal > {v1} and c_acctbal < {v2}",
    ),
    SqlTemplate(
        "batch_date",
        "select o_orderkey from orders where o_orderdate < {d1}",
    ),
    SqlTemplate(
        "batch_text",
        "select p_partkey from part where p_type like {s1}",
    ),
    SqlTemplate(
        "batch_join",
        "select c_name, o_totalprice from customer c "
        "join orders o on c.c_custkey = o.o_custkey "
        "where o.o_totalprice > {v1} and c.c_acctbal > {v2}",
    ),
    SqlTemplate(
        "batch_having",
        "select l_orderkey, avg(l_extendedprice) from lineitem "
        "where l_quantity > {v1} group by l_orderkey "
        "having avg(l_extendedprice) > {v2}",
    ),
]

# Compiles but is *not* replayable (placeholder in the select list), so
# explain_many must take the per-call fallback and still agree.
UNREPLAYABLE = SqlTemplate(
    "batch_projection",
    "select l_orderkey + {v1} from lineitem where l_quantity < {v2}",
)


@pytest.fixture(scope="module")
def db():
    return build_tpch(scale=0.002, seed=3)


@pytest.fixture(scope="module")
def profiler(db):
    return TemplateProfiler(db, BarberConfig(seed=0))


def bindings_for(profiler, template, count=8):
    import zlib

    space = profiler.build_space(template)
    rng = np.random.default_rng(zlib.crc32(template.template_id.encode()))
    return lhs_configs(space, count, rng)


def counters(telemetry):
    counts = dict(telemetry.metrics._counters)
    # The only intended difference: the batch entry point counts itself.
    counts.pop("fastpath.compiled.batches", None)
    counts.pop("fastpath.compiled.batched_explains", None)
    return counts


class TestBatchedFastPath:
    @pytest.mark.parametrize("template", TEMPLATES, ids=lambda t: t.template_id)
    def test_matches_per_call_loop_and_cold(self, db, profiler, template):
        compiled = profiler._compiled_for(template)
        assert compiled is not None
        assert compiled._replayer() is not None, "expected a replayable plan"
        bindings = bindings_for(profiler, template)
        db.set_explain_cache(False)
        try:
            batched = compiled.explain_many(bindings)
            per_call = [compiled.explain(values) for values in bindings]
        finally:
            db.set_explain_cache(True)
        for values, fast, slow in zip(bindings, batched, per_call):
            assert fast == slow, values
            cold = explain_plan(db.plan(template.instantiate(values)))
            assert fast == cold, values
            assert fast.plan_text == cold.plan_text

    @pytest.mark.parametrize("template", TEMPLATES[:3], ids=lambda t: t.template_id)
    def test_telemetry_counters_match_per_call_loop(self, db, profiler, template):
        compiled = profiler._compiled_for(template)
        bindings = bindings_for(profiler, template)
        db.set_explain_cache(False)
        try:
            batched_t, per_call_t = Telemetry(), Telemetry()
            with use_telemetry(batched_t):
                compiled.explain_many(bindings)
            with use_telemetry(per_call_t):
                for values in bindings:
                    compiled.explain(values)
        finally:
            db.set_explain_cache(True)
        assert counters(batched_t) == dict(per_call_t.metrics._counters)
        assert batched_t.metrics.total("fastpath.compiled.batches") == 1
        assert batched_t.metrics.total(
            "fastpath.compiled.batched_explains"
        ) == len(bindings)
        # Every binding was replayed *and* recorded as an explain call.
        assert batched_t.metrics.total("fastpath.compiled.replayed") == len(
            bindings
        )
        assert batched_t.metrics.total("sqldb.explain.calls") == len(bindings)

    def test_cache_enabled_path_matches(self, db, profiler):
        template = TEMPLATES[0]
        compiled = profiler._compiled_for(template)
        bindings = bindings_for(profiler, template)
        db.explain_cache.clear()
        batched = compiled.explain_many(bindings)
        for values, fast in zip(bindings, batched):
            assert fast == explain_plan(db.plan(template.instantiate(values)))
        # The cache saw the statements: a second batch is served from it.
        assert compiled.explain_many(bindings) == batched

    def test_epoch_bump_invalidates_the_replayer(self, db, profiler):
        template = TEMPLATES[1]
        compiled = profiler._compiled_for(template)
        bindings = bindings_for(profiler, template, count=4)
        db.set_explain_cache(False)
        try:
            before = compiled.explain_many(bindings)
            db.catalog.bump_statistics_epoch()
            after = compiled.explain_many(bindings)
        finally:
            db.set_explain_cache(True)
        for values, fast in zip(bindings, after):
            assert fast == explain_plan(db.plan(template.instantiate(values)))
        assert before == after  # same stats, new epoch: same estimates

    def test_unreplayable_template_falls_back_per_call(self, db, profiler):
        compiled = profiler._compiled_for(UNREPLAYABLE)
        assert compiled is not None
        assert compiled._replayer() is None
        bindings = bindings_for(profiler, UNREPLAYABLE, count=4)
        db.set_explain_cache(False)
        try:
            batched = compiled.explain_many(bindings)
        finally:
            db.set_explain_cache(True)
        for values, fast in zip(bindings, batched):
            assert fast == explain_plan(
                db.plan(UNREPLAYABLE.instantiate(values))
            )


class TestBatchedErrorParity:
    """Errors out of explain_many match the per-call loop exactly."""

    def _compiled(self, profiler, template=TEMPLATES[0]):
        return profiler._compiled_for(template)

    def test_missing_placeholder_raises_the_instantiate_keyerror(
        self, db, profiler
    ):
        compiled = self._compiled(profiler)
        db.set_explain_cache(False)
        try:
            with pytest.raises(KeyError) as batched_exc:
                compiled.explain_many([{}])
            with pytest.raises(KeyError) as per_call_exc:
                compiled.explain({})
        finally:
            db.set_explain_cache(True)
        assert str(batched_exc.value) == str(per_call_exc.value)

    def test_non_finite_double_raises_the_same_binderror(self, db, profiler):
        template = TEMPLATES[2]  # c_acctbal: DOUBLE placeholders
        compiled = self._compiled(profiler, template)
        binding = {"v1": float("inf"), "v2": 100.0}
        db.set_explain_cache(False)
        try:
            with pytest.raises(BindError) as batched_exc:
                compiled.explain_many([binding])
            with pytest.raises(BindError) as per_call_exc:
                compiled.explain(binding)
        finally:
            db.set_explain_cache(True)
        assert str(batched_exc.value) == str(per_call_exc.value)

    def test_error_mid_batch_leaves_no_partial_result(self, db, profiler):
        compiled = self._compiled(profiler)
        good = bindings_for(profiler, TEMPLATES[0], count=2)
        db.set_explain_cache(False)
        try:
            with pytest.raises(KeyError):
                compiled.explain_many([good[0], {}, good[1]])
        finally:
            db.set_explain_cache(True)

    def test_type_mismatch_binding_replans_cold(self, db, profiler):
        # l_quantity is INTEGER-typed in the compiled assumption; an
        # out-of-int32-range value binds as BIGINT, forcing the per-call
        # cold re-plan inside the batch.  The result must still match.
        compiled = self._compiled(profiler)
        binding = {"v1": 2**40}
        db.set_explain_cache(False)
        try:
            batched = compiled.explain_many([binding])
            per_call = compiled.explain(binding)
        finally:
            db.set_explain_cache(True)
        cold = explain_plan(db.plan(TEMPLATES[0].instantiate(binding)))
        assert batched[0] == per_call == cold
