"""Concurrency stress: one Database hammered from many threads, DDL mid-run.

The EXPLAIN cache is the only shared mutable state the fastpath adds to
``Database``; these tests drive it from N threads doing mixed
explain/execute work while a DDL lands in the middle, and then verify the
statistics-epoch contract directly: after a data change plus ANALYZE, a
cached estimate must never be served stale.
"""

from __future__ import annotations

import threading

import pytest

from repro.datasets import build_tpch
from repro.sqldb.explain import explain_plan
from repro.sqldb.storage import Column, Table
from repro.sqldb.types import SqlType

NUM_THREADS = 8
ITERATIONS = 30

EXPLAIN_QUERIES = [
    "select count(*) from lineitem where l_quantity < 25",
    "select o_orderkey from orders where o_totalprice > 1000.0",
    "select c_name from customer c join orders o on c.c_custkey = o.o_custkey",
    "select n_name from nation where n_regionkey = 2",
    "select s_name from supplier where s_acctbal between 100.0 and 5000.0",
]

EXECUTE_QUERIES = [
    "select count(*) from region",
    "select count(*) from nation where n_regionkey < 3",
]


@pytest.fixture()
def db():
    return build_tpch(scale=0.002, seed=3)


def test_mixed_explain_execute_with_midflight_ddl(db):
    expected_explains = {sql: explain_plan(db.plan(sql)) for sql in EXPLAIN_QUERIES}
    expected_counts = {sql: db.execute(sql).row_count for sql in EXECUTE_QUERIES}
    # Warm the cache so the mid-flight DDL is guaranteed to flush something.
    for sql in EXPLAIN_QUERIES:
        assert db.explain(sql) == expected_explains[sql]
    epoch_before = db.catalog.statistics_epoch
    errors: list[BaseException] = []
    start = threading.Barrier(NUM_THREADS + 1)
    ddl_done = threading.Event()

    def worker(worker_id: int) -> None:
        try:
            start.wait()
            for i in range(ITERATIONS):
                sql = EXPLAIN_QUERIES[(worker_id + i) % len(EXPLAIN_QUERIES)]
                result = db.explain(sql)
                if result != expected_explains[sql]:
                    raise AssertionError(f"corrupted explain for {sql!r}")
                run = EXECUTE_QUERIES[(worker_id + i) % len(EXECUTE_QUERIES)]
                if db.execute(run).row_count != expected_counts[run]:
                    raise AssertionError(f"corrupted execution for {run!r}")
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    def ddl() -> None:
        start.wait()
        db.create_table(
            Table(
                "stress_extra",
                [
                    Column.from_values(
                        "id", SqlType.INTEGER, list(range(64))
                    ),
                    Column.from_values(
                        "grp", SqlType.INTEGER, [i % 4 for i in range(64)]
                    ),
                ],
            ),
            primary_key=["id"],
        )
        ddl_done.set()

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(NUM_THREADS)
    ]
    threads.append(threading.Thread(target=ddl))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors, errors[0]
    assert ddl_done.is_set()
    assert db.catalog.statistics_epoch > epoch_before
    # And the new table is usable afterwards, through the same cache.
    assert db.explain("select count(*) from stress_extra").estimated_rows == 1
    assert db.execute("select count(*) from stress_extra").row_count == 1
    stats = db.explain_cache.stats()
    # The DDL bumped the epoch mid-run, so a flush happened (the cache was
    # warm: workers had been filling it before the DDL landed).
    assert stats["invalidations"] >= 1
    # Counter coherence under concurrency: every cache-routed explain is
    # accounted for as exactly one hit or miss — no lost updates.  Lookups:
    # the warm-up pass, every worker iteration, and the final probe above.
    expected_lookups = len(EXPLAIN_QUERIES) + NUM_THREADS * ITERATIONS + 1
    assert stats["hits"] + stats["misses"] == expected_lookups


def test_epoch_bump_invalidates_stale_costs(db):
    sql = "select l_orderkey from lineitem where l_quantity < 10"
    before = db.explain(sql)
    hits_before = db.explain_cache.stats()["hits"]
    assert db.explain(sql) == before
    assert db.explain_cache.stats()["hits"] == hits_before + 1

    # A "data load": shift the column's distribution in place, then ANALYZE.
    column = db.catalog.data("lineitem").column("l_quantity")
    column.data[:] = column.data + 100.0
    db.analyze("lineitem")

    after = db.explain(sql)
    uncached = explain_plan(db.plan(sql))
    assert after == uncached, "cache served a result inconsistent with cold plan"
    assert after != before, "estimate did not react to the new statistics"
    assert after.estimated_rows < before.estimated_rows
    assert db.explain_cache.stats()["invalidations"] >= 1


def test_single_flight_counts_concurrent_misses_once(db):
    sql = "select count(*) from orders where o_totalprice > 500.0"
    db.explain_cache.clear()
    # Force a fresh epoch observation, then race 6 threads on one cold key.
    barrier = threading.Barrier(6)
    results = []
    lock = threading.Lock()

    def probe() -> None:
        barrier.wait()
        result = db.explain(sql)
        with lock:
            results.append(result)

    threads = [threading.Thread(target=probe) for _ in range(6)]
    stats_before = db.explain_cache.stats()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats_after = db.explain_cache.stats()
    assert len(results) == 6
    assert all(r == results[0] for r in results)
    # Exactly one miss for the cold key; the other five threads either
    # waited on the in-flight computation or arrived after it finished.
    assert stats_after["misses"] == stats_before["misses"] + 1
    assert stats_after["hits"] == stats_before["hits"] + 5
