"""Differential battery: the fastpath must be byte-identical to the cold path.

Every assertion here compares a fastpath result (compiled-template re-plan or
EXPLAIN-cache hit) against the cold full pipeline (lex → parse → bind → plan)
on the same SQL.  ``ExplainResult`` is a frozen dataclass, so ``==`` compares
estimated rows, startup cost, total cost, and the rendered plan text — any
divergence in any field fails.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import build_template_pool
from repro.bo import lhs_configs
from repro.core import BarberConfig, TemplateProfiler, schema_payload
from repro.datasets import build_tpch, redset_spec_workload
from repro.fastpath import normalize_sql
from repro.fastpath.compiled import literal_expression
from repro.sqldb.ast_nodes import Literal, UnaryOp
from repro.sqldb.explain import explain_plan
from repro.sqldb.types import SqlType
from repro.workload import SqlTemplate

# Hand-written corpus covering every predicate shape the generator emits:
# point/range comparisons, BETWEEN, LIKE, IN, joins, aggregation, ORDER BY
# with LIMIT, date placeholders, text placeholders, and a column whose domain
# includes negative values (c_acctbal), which exercises the unary-minus
# literal representation.
CORPUS = [
    SqlTemplate(
        "diff_eq",
        "select l_orderkey from lineitem where l_linenumber = {v1}",
    ),
    SqlTemplate(
        "diff_range",
        "select l_orderkey, l_quantity from lineitem "
        "where l_quantity < {v1} and l_discount between {v2} and {v3}",
    ),
    SqlTemplate(
        "diff_negative",
        "select c_name from customer where c_acctbal > {v1} and c_acctbal < {v2}",
    ),
    SqlTemplate(
        "diff_date",
        "select o_orderkey from orders where o_orderdate < {d1}",
    ),
    SqlTemplate(
        "diff_text",
        "select p_partkey from part where p_type like {s1}",
    ),
    SqlTemplate(
        "diff_in",
        "select s_name from supplier where s_nationkey in ({v1}, {v2})",
    ),
    SqlTemplate(
        "diff_join",
        "select c_name, o_totalprice from customer c "
        "join orders o on c.c_custkey = o.o_custkey "
        "where o.o_totalprice > {v1} and c.c_acctbal > {v2}",
    ),
    SqlTemplate(
        "diff_group",
        "select o_orderdate, count(*), sum(o_totalprice) from orders "
        "where o_totalprice > {v1} group by o_orderdate "
        "order by o_orderdate limit 10",
    ),
    SqlTemplate(
        "diff_agg_having",
        "select l_orderkey, avg(l_extendedprice) from lineitem "
        "where l_quantity > {v1} group by l_orderkey "
        "having avg(l_extendedprice) > {v2}",
    ),
]

SAMPLES_PER_TEMPLATE = 10


@pytest.fixture(scope="module")
def db():
    return build_tpch(scale=0.002, seed=3)


@pytest.fixture(scope="module")
def profiler(db):
    return TemplateProfiler(db, BarberConfig(seed=0))


def cold_explain(db, sql):
    """The uncached, uncompiled reference: full pipeline, no counters."""
    return explain_plan(db.plan(sql))


def bindings_for(profiler, template, count=SAMPLES_PER_TEMPLATE):
    import zlib

    space = profiler.build_space(template)
    rng = np.random.default_rng(zlib.crc32(template.template_id.encode()))
    return lhs_configs(space, count, rng)


class TestCompiledDifferential:
    @pytest.mark.parametrize("template", CORPUS, ids=lambda t: t.template_id)
    def test_replan_matches_cold_pipeline(self, db, profiler, template):
        compiled = profiler._compiled_for(template)
        assert compiled is not None, f"{template.template_id} failed to compile"
        for values in bindings_for(profiler, template):
            sql = template.instantiate(values)
            assert compiled._replan(sql, values) == cold_explain(db, sql), (
                template.template_id,
                values,
            )

    @pytest.mark.parametrize("template", CORPUS, ids=lambda t: t.template_id)
    def test_evaluate_matches_cold_evaluate(self, db, template):
        fast = TemplateProfiler(db, BarberConfig(seed=0))
        cold = TemplateProfiler(db, BarberConfig(seed=0, use_fastpath=False))
        db.set_explain_cache(False)
        try:
            for values in bindings_for(fast, template):
                assert fast.evaluate(template, values) == cold.evaluate(
                    template, values
                )
        finally:
            db.set_explain_cache(True)

    def test_generated_pool_differential(self, db, profiler):
        """Randomly generated templates (the baseline pool generator) must
        also re-cost identically — the corpus above is not the only shape."""
        pool = build_template_pool(
            db,
            redset_spec_workload(num_specs=4, seed=21),
            pool_size=12,
            profiler=profiler,
            schema=schema_payload(db),
            seed=21,
        )
        compiled_count = 0
        checked = 0
        for profile in pool:
            template = profile.template
            compiled = profiler._compiled_for(template)
            if compiled is None:
                continue
            compiled_count += 1
            for values in bindings_for(profiler, template, count=4):
                try:
                    sql = template.instantiate(values)
                except KeyError:
                    continue
                try:
                    cold = cold_explain(db, sql)
                except Exception:
                    # The cold path rejects this instantiation; the compiled
                    # path must reject it too (profiler maps both to None).
                    with pytest.raises(Exception):
                        compiled._replan(sql, values)
                    continue
                assert compiled._replan(sql, values) == cold
                checked += 1
        assert compiled_count >= len(pool) // 2, "most pool templates should compile"
        assert checked >= 10


class TestExplainCacheDifferential:
    def test_cache_hits_return_identical_results(self, db):
        db.explain_cache.clear()
        for template in CORPUS:
            profiler = TemplateProfiler(db, BarberConfig(seed=1))
            for values in bindings_for(profiler, template, count=3):
                sql = template.instantiate(values)
                reference = cold_explain(db, sql)
                first = db.explain(sql)
                second = db.explain(sql)
                assert first == reference
                assert second == reference

    def test_normalized_variants_share_one_entry(self, db):
        db.explain_cache.clear()
        base = "select count(*) from nation where n_regionkey = 2"
        variants = [
            base,
            "select  count(*)   from nation\n where n_regionkey = 2 ;",
            "\tselect count(*) from nation where n_regionkey = 2;",
        ]
        results = [db.explain(sql) for sql in variants]
        assert results[0] == results[1] == results[2]
        key = normalize_sql(variants[1])
        assert key == normalize_sql(base)
        assert db.explain_cache.contains(key)

    def test_disabled_cache_still_matches(self, db):
        sql = "select count(*) from region"
        cached = db.explain(sql)
        db.set_explain_cache(False)
        try:
            assert db.explain(sql) == cached == cold_explain(db, sql)
        finally:
            db.set_explain_cache(True)


class TestNormalizeSql:
    def test_collapses_whitespace_outside_strings(self):
        assert (
            normalize_sql("select  a ,\n b\tfrom t")
            == "select a , b from t"
        )

    def test_preserves_string_literals(self):
        sql = "select * from t where name = 'a  b\tc'"
        assert normalize_sql(sql) == sql

    def test_strips_trailing_semicolons(self):
        assert normalize_sql("select 1 ; ") == "select 1"

    def test_quote_escape_stays_inside_string(self):
        # '' is an escaped quote: the parser sees one literal, and the
        # normalizer must not treat the text after it as code.
        sql = "select * from t where name = 'it''s  a' and x = 1"
        assert normalize_sql(sql) == sql


class TestLiteralExpression:
    """literal_expression must mirror what parsing render_literal() yields."""

    def test_negative_int_is_unary_minus(self):
        expr = literal_expression(-7)
        assert expr == UnaryOp("-", Literal(7))

    def test_negative_float_is_unary_minus(self):
        assert literal_expression(-2.5) == UnaryOp("-", Literal(2.5))

    def test_negative_zero_float_keeps_sign_shape(self):
        # repr(-0.0) == "-0.0" parses as unary minus over 0.0.
        assert literal_expression(-0.0) == UnaryOp("-", Literal(0.0))

    def test_int_for_date_column_renders_iso_text(self):
        expr = literal_expression(0, SqlType.DATE)
        assert isinstance(expr, Literal) and isinstance(expr.value, str)

    def test_float_for_integer_column_rounds(self):
        assert literal_expression(41.6, SqlType.INTEGER) == Literal(42)

    def test_nonfinite_float_raises_like_cold_path(self):
        from repro.sqldb import SqlError

        with pytest.raises(SqlError):
            literal_expression(float("inf"))
        with pytest.raises(SqlError):
            literal_expression(float("nan"))
