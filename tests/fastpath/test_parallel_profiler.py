"""ParallelProfiler: fan-out must be bit-identical to the serial loop.

Profiles carry the exact sampled configurations and their float costs, so
``observations`` equality below is bit-level: any drift in RNG seeding,
scheduling-dependent sampling, or literal rendering across workers fails.
"""

from __future__ import annotations

import pytest

from repro.core import BarberConfig, TemplateProfiler
from repro.datasets import build_tpch
from repro.fastpath.parallel import ParallelProfiler
from repro.obs import Telemetry, use_telemetry
from repro.workload import SqlTemplate

TEMPLATES = [
    SqlTemplate(
        "par_scan",
        "select l_orderkey from lineitem where l_quantity < {v1}",
    ),
    SqlTemplate(
        "par_range",
        "select o_orderkey from orders "
        "where o_totalprice between {v1} and {v2}",
    ),
    SqlTemplate(
        "par_join",
        "select c_name from customer c "
        "join orders o on c.c_custkey = o.o_custkey "
        "where o.o_totalprice > {v1}",
    ),
    SqlTemplate(
        "par_group",
        "select o_orderdate, count(*) from orders "
        "where o_totalprice > {v1} group by o_orderdate",
    ),
    SqlTemplate(
        "par_text",
        "select p_partkey from part where p_type like {s1}",
    ),
]

SAMPLES = 6


@pytest.fixture(scope="module")
def db():
    return build_tpch(scale=0.002, seed=3)


def serial_profiles(db):
    profiler = TemplateProfiler(db, BarberConfig(seed=5))
    return [profiler.profile(t, SAMPLES) for t in TEMPLATES]


def assert_identical(parallel, serial):
    assert len(parallel) == len(serial)
    for got, want in zip(parallel, serial):
        assert got.template.template_id == want.template.template_id
        assert got.observations == want.observations
        assert got.errors == want.errors


def test_thread_backend_matches_serial(db):
    serial = serial_profiles(db)
    profiler = TemplateProfiler(db, BarberConfig(seed=5))
    parallel = ParallelProfiler(profiler, workers=4, backend="thread")
    assert_identical(parallel.profile_many(TEMPLATES, SAMPLES), serial)


def test_process_backend_matches_serial(db):
    serial = serial_profiles(db)
    profiler = TemplateProfiler(db, BarberConfig(seed=5))
    parallel = ParallelProfiler(profiler, workers=2, backend="process")
    assert_identical(parallel.profile_many(TEMPLATES, SAMPLES), serial)


def test_profile_many_entry_point_matches_serial(db):
    serial = serial_profiles(db)
    profiler = TemplateProfiler(
        db, BarberConfig(seed=5, workers=4, parallel_backend="thread")
    )
    assert_identical(profiler.profile_many(TEMPLATES, SAMPLES), serial)


def test_thread_backend_merges_counters(db):
    profiler = TemplateProfiler(db, BarberConfig(seed=5))
    telemetry = Telemetry()
    with use_telemetry(telemetry):
        profiles = ParallelProfiler(profiler, workers=4).profile_many(
            TEMPLATES, SAMPLES
        )
    total_observations = sum(len(p.observations) for p in profiles)
    assert telemetry.metrics.total("profiler.templates") == len(TEMPLATES)
    assert telemetry.metrics.total("profiler.samples") == total_observations


def test_process_backend_merges_child_counters(db):
    profiler = TemplateProfiler(db, BarberConfig(seed=5))
    telemetry = Telemetry()
    with use_telemetry(telemetry):
        profiles = ParallelProfiler(
            profiler, workers=2, backend="process"
        ).profile_many(TEMPLATES, SAMPLES)
    total_observations = sum(len(p.observations) for p in profiles)
    assert telemetry.metrics.total("profiler.templates") == len(TEMPLATES)
    assert telemetry.metrics.total("profiler.samples") == total_observations


def test_unpicklable_profiler_falls_back_to_thread(db):
    # A closure cost metric cannot cross a process boundary; the process
    # backend must downgrade to threads instead of crashing.
    profiler = TemplateProfiler(
        db, BarberConfig(seed=5), cost_metric=lambda sql, _db: float(len(sql))
    )
    serial = [profiler.profile(t, SAMPLES) for t in TEMPLATES]
    parallel = ParallelProfiler(profiler, workers=2, backend="process")
    assert_identical(parallel.profile_many(TEMPLATES, SAMPLES), serial)


def test_unknown_backend_rejected(db):
    profiler = TemplateProfiler(db, BarberConfig(seed=5))
    with pytest.raises(ValueError):
        ParallelProfiler(profiler, workers=2, backend="greenlet")


class TestChunkedWorkUnits:
    """Templates are submitted in contiguous chunks, not one per task."""

    def test_chunks_concatenate_to_the_input(self):
        from repro.fastpath.parallel import _chunks

        items = list(range(103))
        for workers in (1, 2, 3, 4, 8):
            chunks = _chunks(items, workers)
            assert [x for c in chunks for x in c] == items
            assert all(c for c in chunks)  # no empty work units

    def test_chunk_count_amortizes_ipc(self):
        from repro.fastpath.parallel import CHUNK_UNITS_PER_WORKER, _chunks

        items = list(range(256))
        workers = 4
        chunks = _chunks(items, workers)
        # Enough chunks to balance the tail, few enough that each task
        # carries many items (the IPC amortization the bench measures).
        assert len(chunks) <= workers * CHUNK_UNITS_PER_WORKER
        assert len(chunks) >= workers
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 16

    def test_fewer_items_than_chunks(self):
        from repro.fastpath.parallel import _chunks

        assert _chunks([], 4) == []
        assert _chunks([1], 4) == [[1]]
        assert _chunks([1, 2, 3], 8) == [[1], [2], [3]]

    def test_chunked_thread_run_matches_serial_on_many_templates(self, db):
        # More templates than workers * CHUNK_UNITS_PER_WORKER forces
        # multi-template chunks through the real pool path.
        templates = [
            SqlTemplate(
                f"chunk_{i}",
                "select l_orderkey from lineitem where l_quantity < {v1} "
                f"and l_linenumber <= {{v2}}",
            )
            for i in range(10)
        ]
        profiler = TemplateProfiler(db, BarberConfig(seed=5))
        serial = [profiler.profile(t, 3) for t in templates]
        parallel = ParallelProfiler(profiler, workers=2, backend="thread")
        assert_identical(parallel.profile_many(templates, 3), serial)
