"""Observability determinism under parallelism.

The PR's contract: operator-profile fingerprints and event-stream
fingerprints are bit-identical serial vs parallel — thread or process
backend, any worker count — because collectors merge commutatively and
workers' events are replayed by the parent in input order.
"""

import pytest

from repro.core import BarberConfig, TemplateProfiler
from repro.datasets import build_tpch
from repro.obs import InMemoryCollector, Telemetry, event_fingerprint, use_telemetry
from repro.workload import SqlTemplate

TEMPLATES = [
    SqlTemplate(
        "det_scan",
        "select l_orderkey from lineitem where l_quantity < {v1}",
    ),
    SqlTemplate(
        "det_join",
        "select c_name, o_totalprice from customer c "
        "join orders o on c.c_custkey = o.o_custkey "
        "where o.o_totalprice > {v1}",
    ),
    SqlTemplate(
        "det_group",
        "select o_orderdate, count(*) from orders "
        "where o_totalprice > {v1} group by o_orderdate limit 5",
    ),
]
SAMPLES = 4


@pytest.fixture(scope="module")
def db():
    return build_tpch(scale=0.002, seed=3)


def profile_run(db, workers, backend=None, profile=True, sink=None):
    """One profile_many pass under an armed telemetry; returns telemetry."""
    profiler = TemplateProfiler(
        db, BarberConfig(seed=0), cost_metric="actual_rows"
    )
    sinks = [sink] if sink is not None else []
    telemetry = Telemetry(sinks=sinks, profile=profile)
    with use_telemetry(telemetry):
        kwargs = {"workers": workers}
        if backend is not None:
            kwargs["backend"] = backend
        profiler.profile_many(TEMPLATES, SAMPLES, **kwargs)
    return telemetry


class TestProfileFingerprintParallel:
    @pytest.fixture(scope="class")
    def serial_fingerprint(self, db):
        return profile_run(db, workers=1).profiler.fingerprint()

    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_thread_backend_matches_serial(self, db, workers, serial_fingerprint):
        telemetry = profile_run(db, workers=workers, backend="thread")
        assert telemetry.profiler.fingerprint() == serial_fingerprint

    @pytest.mark.parametrize("workers", [2, 4])
    def test_process_backend_matches_serial(self, db, workers, serial_fingerprint):
        telemetry = profile_run(db, workers=workers, backend="process")
        assert telemetry.profiler.fingerprint() == serial_fingerprint

    def test_serial_reruns_are_identical(self, db, serial_fingerprint):
        assert profile_run(db, workers=1).profiler.fingerprint() == (
            serial_fingerprint
        )

    def test_fingerprint_counts_expected_queries(self, serial_fingerprint):
        # actual_rows executes every sample once per template.
        assert serial_fingerprint["queries"] == len(TEMPLATES) * SAMPLES


class TestEventStreamParallel:
    """Thread backend shares the explain cache with the serial path, so the
    full event stream — including cache totals — must match bit-for-bit.
    (Process workers keep private caches; their cache counters legitimately
    differ, which is documented behaviour since the fastpath PR.)"""

    def events_for(self, db, workers, backend=None):
        sink = InMemoryCollector()
        profile_run(db, workers=workers, backend=backend, sink=sink)
        return event_fingerprint(sink.events)

    @pytest.fixture(scope="class")
    def serial_events(self, db):
        return self.events_for(db, workers=1)

    def test_serial_stream_nonempty(self, serial_events):
        names = [e["event"] for e in serial_events]
        assert names.count("template_profiled") == len(TEMPLATES)

    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_thread_stream_matches_serial(self, db, workers, serial_events):
        assert self.events_for(db, workers=workers, backend="thread") == (
            serial_events
        )

    def test_process_stream_matches_serial(self, db, serial_events):
        assert self.events_for(db, workers=2, backend="process") == (
            serial_events
        )

    def test_profiled_events_in_input_order(self, serial_events):
        profiled = [
            e["template_id"]
            for e in serial_events
            if e["event"] == "template_profiled"
        ]
        assert profiled == [t.template_id for t in TEMPLATES]
