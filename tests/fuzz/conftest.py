"""Shared fixtures for the fuzz suite."""

from __future__ import annotations

import pytest

from repro.fuzz import FuzzGrammar, build_fuzz_database


@pytest.fixture(scope="module")
def fuzz_db():
    """The standard fuzz target (module-scoped: oracles bump its
    statistics epoch, which is harmless but mutating)."""
    return build_fuzz_database(0)


@pytest.fixture()
def grammar(fuzz_db):
    return FuzzGrammar(fuzz_db.catalog, seed=11)
