"""Regression corpus: persistence round-trips and pytest replay.

Every JSON file under ``tests/fuzz/corpus/`` is one past disagreement
(shrunk to its minimal reproducer) or a seeded regression case; replaying
it against the standard fuzz database must come back clean.  A failure
here means a previously-fixed engine disagreement has resurfaced.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz import Corpus, CorpusEntry
from repro.fuzz.runner import replay_entry

CORPUS_DIR = Path(__file__).parent / "corpus"

_ENTRIES = Corpus(CORPUS_DIR).entries()


class TestPersistence:
    def test_append_load_round_trip(self, tmp_path):
        corpus = Corpus(tmp_path)
        entry = CorpusEntry.create(
            "round_trip",
            "SELECT t0.age FROM users AS t0 WHERE t0.age > 30",
            detail="demo",
            seed=7,
            index=12,
            grammar_version="1",
        )
        path = corpus.append(entry)
        assert path is not None and path.exists()
        [loaded] = corpus.entries()
        assert loaded == entry

    def test_append_is_idempotent(self, tmp_path):
        corpus = Corpus(tmp_path)
        entry = CorpusEntry.create("execution", "SELECT 1")
        assert corpus.append(entry) is not None
        assert corpus.append(entry) is None
        assert len(corpus.entries()) == 1

    def test_entry_id_is_content_addressed(self):
        a = CorpusEntry.create("execution", "SELECT 1", detail="x")
        b = CorpusEntry.create("execution", "SELECT 1", detail="y")
        c = CorpusEntry.create("round_trip", "SELECT 1")
        assert a.entry_id == b.entry_id
        assert a.entry_id != c.entry_id

    def test_entry_json_is_deterministic(self):
        entry = CorpusEntry.create("execution", "SELECT 1", seed=3)
        assert entry.to_json() == entry.to_json()
        assert '"entry_id"' in entry.to_json()


class TestReplay:
    def test_corpus_is_not_empty(self):
        # The corpus ships with seeded regression cases; an accidentally
        # emptied directory would silently disable replay coverage.
        assert len(_ENTRIES) >= 3

    @pytest.mark.parametrize(
        "entry", _ENTRIES, ids=[e.entry_id for e in _ENTRIES]
    )
    def test_replay_stays_clean(self, fuzz_db, entry):
        detail = replay_entry(fuzz_db, entry, seed=entry.seed or 0)
        assert detail is None, (
            f"corpus regression {entry.entry_id} resurfaced under oracle "
            f"{entry.oracle!r}: {detail}\nsql: {entry.sql}"
        )

    def test_unknown_oracle_fails_loudly(self, fuzz_db):
        entry = CorpusEntry.create("no_such_oracle", "SELECT 1")
        assert "unknown oracle" in replay_entry(fuzz_db, entry)
