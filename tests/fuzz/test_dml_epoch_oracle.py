"""DmlEpochOracle: planted stale-cache bugs are caught, shrunk, recorded.

The acceptance scenario for the write-path oracle mirrors the read-path
one in ``test_shrink.py``: plant a bug an engine change could realistically
introduce, run the fuzz pipeline over a sprawling DML statement, and
require the oracle to flag it, ddmin to reduce it to a <= 3-clause
reproducer, and the corpus to record it.

Two distinct plants cover both halves of the epoch/invalidate contract:

* ``note_mutation`` commits data but forgets the epoch bump — the cheap
  regression where a new commit path skips invalidation entirely;
* the EXPLAIN cache ignores the epoch — data commits, the epoch moves,
  but cached costings survive invalidation and a post-DML probe serves
  the pre-mutation estimate.
"""

from __future__ import annotations

import json

from repro.fastpath.cache import ExplainCache
from repro.fuzz import (
    Corpus,
    FuzzRunner,
    build_fuzz_database,
    clause_count,
    default_oracles,
)
from repro.fuzz.grammar import GeneratedStatement
from repro.fuzz.oracles import SKIPPED, DmlEpochOracle
from repro.sqldb.catalog import Catalog

PLANTED_UPDATE = (
    "UPDATE users SET age = age + 1, city = 'metropolis' "
    "WHERE (users.age BETWEEN 30 AND 40 AND users.name LIKE 'user_1%') "
    "OR users.city IS NULL"
)

PLANTED_DELETE = (
    "DELETE FROM orders "
    "WHERE (orders.amount > 50.0 AND orders.status IN ('new', 'paid')) "
    "OR orders.item_id IS NULL"
)


def _plant_missing_epoch_bump(monkeypatch):
    """Commit DML without invalidating: ``note_mutation`` runs its data
    publication but the epoch stays put."""
    monkeypatch.setattr(
        Catalog, "bump_statistics_epoch", lambda self: None
    )


def _plant_epoch_blind_cache(monkeypatch):
    """The EXPLAIN cache stops honoring the epoch: entries warmed before a
    mutation survive it and keep being served afterwards."""
    original = ExplainCache.get_or_compute

    def pinned(self, key, epoch, compute):
        return original(self, key, 0, compute)

    monkeypatch.setattr(ExplainCache, "get_or_compute", pinned)


def _run_planted(db, sql, shape, tmp_path):
    corpus = Corpus(tmp_path / "corpus")
    runner = FuzzRunner(
        db=db,
        seed=0,
        oracles=[DmlEpochOracle()],
        corpus=corpus,
        shrink=True,
    )
    gen = GeneratedStatement(index=0, sql=sql, shape=shape)
    runner.grammar.statement = lambda index: gen  # inject the case
    return runner.run(budget=1), tmp_path / "corpus"


class TestMissingEpochBump:
    def test_oracle_catches_and_shrinker_minimizes(self, monkeypatch, tmp_path):
        _plant_missing_epoch_bump(monkeypatch)
        db = build_fuzz_database(0)
        report, corpus_dir = _run_planted(db, PLANTED_UPDATE, "update", tmp_path)

        assert not report.ok
        [disagreement] = report.disagreements
        assert disagreement.oracle == "dml_epoch"
        assert "statistics_epoch did not advance" in disagreement.detail

        shrunk = disagreement.shrunk_sql
        assert shrunk is not None
        assert shrunk.startswith("UPDATE")
        assert clause_count(shrunk) <= 3
        assert len(shrunk) < len(PLANTED_UPDATE)
        # The WHERE noise is gone: any committed DML reproduces the bug.
        for gone in ("BETWEEN", "LIKE", "IS NULL"):
            assert gone not in shrunk, shrunk

        [entry_file] = sorted(corpus_dir.glob("*.json"))
        data = json.loads(entry_file.read_text())
        assert data["sql"] == shrunk
        assert data["oracle"] == "dml_epoch"
        assert data["shrunk_from"] == PLANTED_UPDATE
        assert report.corpus_added == [data["entry_id"]]

    def test_without_bug_the_same_statement_passes(self):
        db = build_fuzz_database(0)
        runner = FuzzRunner(db=db, seed=0, oracles=[DmlEpochOracle()])
        gen = GeneratedStatement(index=0, sql=PLANTED_UPDATE, shape="update")
        runner.grammar.statement = lambda index: gen
        report = runner.run(budget=1)
        assert report.ok, report.to_json()


class TestEpochBlindCache:
    def test_stale_costing_is_flagged_and_shrunk(self, monkeypatch, tmp_path):
        _plant_epoch_blind_cache(monkeypatch)
        db = build_fuzz_database(0)
        report, corpus_dir = _run_planted(db, PLANTED_DELETE, "delete", tmp_path)

        assert not report.ok
        [disagreement] = report.disagreements
        assert disagreement.oracle == "dml_epoch"
        # The epoch itself moved; the stale costing shows up either as a
        # cached-vs-cold probe mismatch or a probe-vs-rowcount mismatch.
        assert "statistics_epoch did not advance" not in disagreement.detail

        shrunk = disagreement.shrunk_sql
        assert shrunk is not None
        assert shrunk.startswith("DELETE")
        assert clause_count(shrunk) <= 3
        for gone in ("BETWEEN", "IN (", "IS NULL"):
            assert gone not in shrunk, shrunk

        [entry_file] = sorted(corpus_dir.glob("*.json"))
        data = json.loads(entry_file.read_text())
        assert data["sql"] == shrunk
        assert data["oracle"] == "dml_epoch"

    def test_without_bug_the_same_statement_passes(self):
        db = build_fuzz_database(0)
        runner = FuzzRunner(db=db, seed=0, oracles=[DmlEpochOracle()])
        gen = GeneratedStatement(index=0, sql=PLANTED_DELETE, shape="delete")
        runner.grammar.statement = lambda index: gen
        report = runner.run(budget=1)
        assert report.ok, report.to_json()


class TestOracleWiring:
    def test_dml_epoch_is_a_default_oracle(self):
        names = [oracle.name for oracle in default_oracles()]
        assert "dml_epoch" in names
        assert len(names) == 7  # the seventh oracle joined the set

    def test_oracle_skips_selects(self):
        db = build_fuzz_database(0)
        runner = FuzzRunner(db=db, seed=0, oracles=[DmlEpochOracle()])
        gen = GeneratedStatement(
            index=0, sql="SELECT t0.user_id FROM users AS t0", shape="simple"
        )
        outcome = DmlEpochOracle().check(runner.ctx, gen)
        assert outcome is SKIPPED
