"""Grammar generator: determinism, validity-by-construction, coverage."""

from __future__ import annotations

from repro.fuzz import FuzzGrammar, build_fuzz_database
from repro.sqldb.parser import parse_select


class TestDeterminism:
    def test_same_seed_same_stream(self, fuzz_db):
        a = FuzzGrammar(fuzz_db.catalog, seed=5).statements(40)
        b = FuzzGrammar(fuzz_db.catalog, seed=5).statements(40)
        assert a == b

    def test_stream_is_prefix_stable(self, fuzz_db):
        grammar = FuzzGrammar(fuzz_db.catalog, seed=5)
        assert grammar.statements(10) == grammar.statements(40)[:10]

    def test_statement_is_index_addressable(self, fuzz_db):
        grammar = FuzzGrammar(fuzz_db.catalog, seed=5)
        assert grammar.statement(17) == grammar.statements(20)[17]

    def test_different_seeds_differ(self, fuzz_db):
        a = FuzzGrammar(fuzz_db.catalog, seed=1).statements(40)
        b = FuzzGrammar(fuzz_db.catalog, seed=2).statements(40)
        assert [g.sql for g in a] != [g.sql for g in b]

    def test_fresh_database_same_stream(self):
        # The stream is a function of (seed, version, schema), not of the
        # Database object identity.
        a = FuzzGrammar(build_fuzz_database(0).catalog, seed=9).statements(15)
        b = FuzzGrammar(build_fuzz_database(0).catalog, seed=9).statements(15)
        assert a == b


class TestValidity:
    def test_every_statement_plans(self, fuzz_db, grammar):
        for gen in grammar.statements(120):
            ok, error = fuzz_db.validate(gen.sql)
            assert ok, f"statement {gen.index} rejected: {error}\n{gen.sql}"
            if gen.tightened_sql is not None:
                ok, error = fuzz_db.validate(gen.tightened_sql)
                assert ok, (
                    f"tightened {gen.index} rejected: {error}\n{gen.tightened_sql}"
                )

    def test_every_statement_parses_standalone(self, grammar):
        for gen in grammar.statements(60):
            parse_select(gen.sql)


class TestCoverage:
    def test_all_shapes_appear(self, grammar):
        shapes = {g.shape for g in grammar.statements(150)}
        assert shapes == {
            "simple",
            "join",
            "aggregate",
            "union",
            "subquery",
            "derived",
        }

    def test_tightened_variants_are_generated(self, grammar):
        tightened = [g for g in grammar.statements(120) if g.tightened_sql]
        assert len(tightened) > 20
        for gen in tightened[:10]:
            assert gen.tightened_sql != gen.sql
