"""Grammar generator: determinism, validity-by-construction, coverage."""

from __future__ import annotations

from repro.fuzz import DML_SHAPES, SELECT_SHAPES, FuzzGrammar, build_fuzz_database
from repro.sqldb import ast_nodes as ast
from repro.sqldb.parser import parse_sql


class TestDeterminism:
    def test_same_seed_same_stream(self, fuzz_db):
        a = FuzzGrammar(fuzz_db.catalog, seed=5).statements(40)
        b = FuzzGrammar(fuzz_db.catalog, seed=5).statements(40)
        assert a == b

    def test_stream_is_prefix_stable(self, fuzz_db):
        grammar = FuzzGrammar(fuzz_db.catalog, seed=5)
        assert grammar.statements(10) == grammar.statements(40)[:10]

    def test_statement_is_index_addressable(self, fuzz_db):
        grammar = FuzzGrammar(fuzz_db.catalog, seed=5)
        assert grammar.statement(17) == grammar.statements(20)[17]

    def test_different_seeds_differ(self, fuzz_db):
        a = FuzzGrammar(fuzz_db.catalog, seed=1).statements(40)
        b = FuzzGrammar(fuzz_db.catalog, seed=2).statements(40)
        assert [g.sql for g in a] != [g.sql for g in b]

    def test_fresh_database_same_stream(self):
        # The stream is a function of (seed, version, schema), not of the
        # Database object identity.
        a = FuzzGrammar(build_fuzz_database(0).catalog, seed=9).statements(15)
        b = FuzzGrammar(build_fuzz_database(0).catalog, seed=9).statements(15)
        assert a == b


class TestValidity:
    def test_every_statement_plans(self, fuzz_db, grammar):
        for gen in grammar.statements(120):
            ok, error = fuzz_db.validate(gen.sql)
            assert ok, f"statement {gen.index} rejected: {error}\n{gen.sql}"
            if gen.tightened_sql is not None:
                ok, error = fuzz_db.validate(gen.tightened_sql)
                assert ok, (
                    f"tightened {gen.index} rejected: {error}\n{gen.tightened_sql}"
                )

    def test_every_statement_parses_standalone(self, grammar):
        for gen in grammar.statements(60):
            parse_sql(gen.sql)


class TestCoverage:
    def test_all_shapes_appear(self, grammar):
        shapes = {g.shape for g in grammar.statements(200)}
        assert shapes == SELECT_SHAPES | DML_SHAPES

    def test_tightened_variants_are_generated(self, grammar):
        tightened = [g for g in grammar.statements(120) if g.tightened_sql]
        assert len(tightened) > 20
        for gen in tightened[:10]:
            assert gen.tightened_sql != gen.sql

    def test_shape_filter_keeps_pure_stream(self, grammar):
        dml = grammar.statements(30, shapes=DML_SHAPES)
        assert len(dml) == 30
        assert {g.shape for g in dml} <= DML_SHAPES
        # Filtering selects from the same pure stream: every filtered
        # statement appears at its own index in the unfiltered stream.
        full = grammar.statements(max(g.index for g in dml) + 1)
        for gen in dml:
            assert full[gen.index] == gen

    def test_select_filter_excludes_dml(self, grammar):
        selects = grammar.statements(40, shapes=SELECT_SHAPES)
        assert {g.shape for g in selects} <= SELECT_SHAPES


class TestDmlShapes:
    """The v2 write-path productions are valid by construction."""

    def dml(self, grammar, count=60):
        return grammar.statements(count, shapes=DML_SHAPES)

    def test_all_dml_shapes_appear(self, grammar):
        assert {g.shape for g in self.dml(grammar)} == set(DML_SHAPES)

    def test_dml_statements_are_never_tightened(self, grammar):
        for gen in self.dml(grammar):
            assert gen.tightened_sql is None, gen.sql

    def test_inserts_cover_every_not_null_column(self, fuzz_db, grammar):
        for gen in self.dml(grammar):
            statement = parse_sql(gen.sql)
            if not isinstance(statement, ast.InsertStatement):
                continue
            meta = fuzz_db.catalog.table(statement.target.name)
            required = {
                c.name
                for c in meta.columns
                if not c.column_type.nullable or c.name in meta.primary_key
            }
            assert required <= set(statement.columns or []), gen.sql

    def test_dml_statements_plan_and_parse(self, fuzz_db, grammar):
        for gen in self.dml(grammar):
            ok, error = fuzz_db.validate(gen.sql)
            assert ok, f"statement {gen.index} rejected: {error}\n{gen.sql}"
            assert ast.is_dml(parse_sql(gen.sql))
