"""Tier-1 fuzz smoke: 200 statements through every oracle, twice.

This is the PR-gate guarantee: the engine's independent implementations
(cold pipeline, compiled templates, EXPLAIN cache, parallel profiler,
executor) agree on 200 grammar-generated statements, and the whole run is
reproducible down to the report bytes.
"""

from __future__ import annotations

from repro.fuzz import FuzzRunner, build_fuzz_database
from repro.obs import Telemetry, use_telemetry


def _run(seed: int, budget: int):
    runner = FuzzRunner(db=build_fuzz_database(0), seed=seed)
    return runner.run(budget)


class TestSmoke:
    def test_200_statements_zero_disagreements(self):
        report = _run(seed=3, budget=200)
        assert report.ok, report.to_json()
        assert report.statements == 200
        assert report.invalid == 0
        assert report.disagreements == []
        # Every oracle actually ran.
        for name in (
            "round_trip",
            "explain_cache",
            "compiled_template",
            "execution",
        ):
            assert report.oracles[name]["checks"] > 0, name
        # The sampled oracle ran its batched finish-phase comparison.
        assert report.oracles["parallel_profiler"]["checks"] >= 2

    def test_repeated_run_reports_are_byte_identical(self):
        first = _run(seed=3, budget=60).to_json()
        second = _run(seed=3, budget=60).to_json()
        assert first == second

    def test_fuzz_counters_are_emitted(self):
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            report = _run(seed=3, budget=20)
        assert report.ok
        metrics = telemetry.metrics
        assert metrics.total("fuzz.statements") == 20
        assert metrics.total("fuzz.checks") > 0
        assert metrics.total("fuzz.runs") == 1
        assert metrics.total("fuzz.disagreements") == 0
