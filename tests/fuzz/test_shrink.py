"""Shrinker: convergence on a planted bug, and the size metric it targets.

The acceptance scenario: an estimator bug is injected (monkeypatched) so
cached EXPLAIN results are corrupted for any statement containing BETWEEN.
The cache oracle must catch the disagreement, and the shrinker must reduce
the sprawling original statement to a <= 3-clause reproducer that lands in
the regression corpus.
"""

from __future__ import annotations

import json

from repro.fastpath.cache import ExplainCache
from repro.fuzz import Corpus, FuzzRunner, build_fuzz_database, clause_count
from repro.fuzz.grammar import GeneratedStatement
from repro.fuzz.oracles import ExplainCacheOracle
from repro.fuzz.shrink import shrink_sql
from repro.sqldb.explain import ExplainResult

PLANTED_SQL = (
    "SELECT t0.age, t0.name, coalesce(t0.city, 'nowhere') AS e2 "
    "FROM users AS t0 "
    "WHERE (t0.age BETWEEN 30 AND 40 AND t0.name LIKE 'user_1%') "
    "OR t0.city IS NULL "
    "ORDER BY 1 DESC, 2 LIMIT 25 OFFSET 3"
)


def _plant_cache_bug(monkeypatch):
    """Corrupt cached estimates for statements containing BETWEEN.

    The cold pipeline (direct plan + explain) stays honest, so the cache
    oracle sees cold vs cached disagree — exactly the class of bug the
    EXPLAIN cache layer could realistically introduce."""
    original = ExplainCache.get_or_compute

    def corrupted(self, key, epoch, compute):
        result = original(self, key, epoch, compute)
        if "BETWEEN" in key:
            return ExplainResult(
                estimated_rows=result.estimated_rows + 1000.0,
                startup_cost=result.startup_cost,
                total_cost=result.total_cost,
                plan_text=result.plan_text,
            )
        return result

    monkeypatch.setattr(ExplainCache, "get_or_compute", corrupted)


class TestPlantedBug:
    def test_oracle_catches_and_shrinker_minimizes(self, monkeypatch, tmp_path):
        _plant_cache_bug(monkeypatch)
        db = build_fuzz_database(0)
        corpus = Corpus(tmp_path / "corpus")
        runner = FuzzRunner(
            db=db,
            seed=0,
            oracles=[ExplainCacheOracle()],
            corpus=corpus,
            shrink=True,
        )
        gen = GeneratedStatement(index=0, sql=PLANTED_SQL, shape="simple")
        runner.grammar.statement = lambda index: gen  # inject the case
        report = runner.run(budget=1)

        assert not report.ok
        [disagreement] = report.disagreements
        assert disagreement.oracle == "explain_cache"
        assert "cold vs cached" in disagreement.detail

        # Shrunk to a minimal reproducer that still contains the trigger.
        shrunk = disagreement.shrunk_sql
        assert shrunk is not None
        assert "BETWEEN" in shrunk
        assert clause_count(shrunk) <= 3
        assert len(shrunk) < len(PLANTED_SQL)
        # The noise is gone.
        for gone in ("LIKE", "IS NULL", "ORDER BY", "LIMIT", "coalesce"):
            assert gone not in shrunk, shrunk

        # ... and landed in the corpus.
        [entry_file] = sorted((tmp_path / "corpus").glob("*.json"))
        data = json.loads(entry_file.read_text())
        assert data["sql"] == shrunk
        assert data["oracle"] == "explain_cache"
        assert data["shrunk_from"] == PLANTED_SQL
        assert report.corpus_added == [data["entry_id"]]

    def test_without_bug_the_same_statement_passes(self):
        db = build_fuzz_database(0)
        runner = FuzzRunner(db=db, seed=0, oracles=[ExplainCacheOracle()])
        gen = GeneratedStatement(index=0, sql=PLANTED_SQL, shape="simple")
        runner.grammar.statement = lambda index: gen
        report = runner.run(budget=1)
        assert report.ok, report.to_json()


class TestShrinkMechanics:
    def test_shrink_is_a_fixpoint_under_monotone_predicates(self, fuzz_db):
        # Predicate: "mentions the orders table" — minimal statement is a
        # bare single-column select from orders.
        sql = (
            "SELECT t0.name, t1.amount FROM users AS t0 "
            "JOIN orders AS t1 ON t0.user_id = t1.user_id "
            "WHERE t1.amount > 10 AND t0.age < 60 ORDER BY 1 LIMIT 5"
        )

        def still_fails(candidate: str) -> bool:
            ok, _ = fuzz_db.validate(candidate)
            return ok and "orders" in candidate

        shrunk = shrink_sql(sql, still_fails)
        assert "orders" in shrunk
        assert "users" not in shrunk
        assert clause_count(shrunk) <= 1

    def test_shrink_returns_input_when_nothing_smaller_fails(self, fuzz_db):
        sql = "SELECT t0.user_id FROM users AS t0"

        def still_fails(candidate: str) -> bool:
            ok, _ = fuzz_db.validate(candidate)
            return ok and candidate == sql

        assert shrink_sql(sql, still_fails) == sql


class TestClauseCount:
    def test_counts_where_leaves_and_joins(self):
        assert clause_count("SELECT a FROM t") == 0
        assert clause_count("SELECT a FROM t WHERE a > 1") == 1
        assert clause_count("SELECT a FROM t WHERE a > 1 AND b < 2") == 2
        assert (
            clause_count(
                "SELECT a FROM t JOIN s ON t.a = s.a WHERE t.a > 1 OR t.b < 2"
            )
            == 3
        )

    def test_counts_order_limit_and_extra_items(self):
        assert clause_count("SELECT a, b FROM t ORDER BY 1 LIMIT 3") == 3
