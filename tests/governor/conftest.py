"""Shared fixtures for the governor suite: the fuzz database plus a
planted template pool whose cross join is guaranteed to bust any sane
row budget before materializing a single row."""

import pytest

from repro.fuzz.runner import build_fuzz_database
from repro.workload import CostDistribution, SqlTemplate


@pytest.fixture(scope="session")
def gov_db():
    return build_fuzz_database(0)


@pytest.fixture()
def planted_templates():
    return [
        SqlTemplate(
            template_id="healthy_users",
            sql="SELECT * FROM users WHERE users.age > {age}",
        ),
        SqlTemplate(
            template_id="healthy_orders",
            sql=(
                "SELECT * FROM orders WHERE orders.amount > {amount} "
                "ORDER BY orders.amount"
            ),
        ),
        SqlTemplate(
            template_id="runaway",
            sql="SELECT * FROM users, orders, items WHERE users.age > {age}",
        ),
    ]


@pytest.fixture()
def rows_distribution():
    return CostDistribution.uniform(0.0, 700.0, 12, 4, cost_type="actual_rows")
