"""QueryGovernor unit behaviour: limits, clocks, cancellation, faults."""

import numpy as np
import pytest

from repro.core import BarberConfig
from repro.governor import (
    EngineFaultModel,
    GovernorLimits,
    QueryGovernor,
    clock_for,
    current_governor,
    use_governor,
)
from repro.resilience.clock import SimulatedClock, SystemClock
from repro.sqldb import (
    MemoryBudgetExceeded,
    QueryCancelled,
    QueryTimeout,
    ResourceExceeded,
    RowBudgetExceeded,
    SqlError,
)


class TestLimits:
    def test_all_none_is_disabled(self):
        assert not GovernorLimits().enabled

    def test_any_ceiling_enables(self):
        assert GovernorLimits(row_budget=10).enabled
        assert GovernorLimits(query_timeout_seconds=1.0).enabled
        assert GovernorLimits(memory_budget_bytes=1).enabled

    def test_from_config_converts_megabytes(self):
        limits = GovernorLimits.from_config(
            BarberConfig(memory_budget_mb=2.0, row_budget=7)
        )
        assert limits.memory_budget_bytes == 2 * 1024 * 1024
        assert limits.row_budget == 7
        assert limits.query_timeout_seconds is None

    def test_clock_for(self):
        assert isinstance(clock_for("simulated"), SimulatedClock)
        assert isinstance(clock_for("system"), SystemClock)


class TestChecks:
    def test_row_budget_trips(self):
        gov = QueryGovernor(
            GovernorLimits(row_budget=100), clock=SimulatedClock()
        )
        gov.charge_rows(100)
        with pytest.raises(RowBudgetExceeded):
            gov.charge_rows(1)

    def test_memory_budget_trips_on_frame(self):
        gov = QueryGovernor(
            GovernorLimits(memory_budget_bytes=1_000), clock=SimulatedClock()
        )
        gov.charge_frame("SeqScanNode", 10, 999)
        with pytest.raises(MemoryBudgetExceeded):
            gov.charge_frame("SortNode", 10, 1_001)
        assert gov.peak_bytes == 1_001

    def test_charged_rows_trip_simulated_deadline(self):
        # 0.01 virtual seconds per row, a 1s deadline: the 101st row is
        # over the line — a pure function of the row count, no wall clock.
        gov = QueryGovernor(
            GovernorLimits(
                query_timeout_seconds=1.0, cost_per_row_seconds=0.01
            ),
            clock=SimulatedClock(),
        )
        gov.charge_rows(99)
        gov.check()
        gov.charge_rows(2)
        with pytest.raises(QueryTimeout):
            gov.check()

    def test_admit_refuses_before_materializing(self):
        gov = QueryGovernor(
            GovernorLimits(row_budget=1_000), clock=SimulatedClock()
        )
        with pytest.raises(RowBudgetExceeded, match="would materialize"):
            gov.admit(10_000, 0, "NestedLoopJoinNode")
        assert gov.rows_processed == 0  # refused, never charged

    def test_admit_projects_charged_deadline(self):
        gov = QueryGovernor(
            GovernorLimits(
                query_timeout_seconds=1.0, cost_per_row_seconds=0.001
            ),
            clock=SimulatedClock(),
        )
        gov.admit(500, 0, "NestedLoopJoinNode")  # 0.5s projected: fine
        with pytest.raises(QueryTimeout, match="charged"):
            gov.admit(2_000, 0, "NestedLoopJoinNode")

    def test_cancel_raises_at_next_check(self):
        gov = QueryGovernor(GovernorLimits(), clock=SimulatedClock())
        gov.check()
        gov.cancel("watchdog says no")
        with pytest.raises(QueryCancelled, match="watchdog says no"):
            gov.check()

    def test_taxonomy_is_sql_error(self):
        # Governor trips travel the engine's error channel: positioned,
        # source-attachable, and catchable as SqlError at the boundary.
        for cls in (
            QueryTimeout, MemoryBudgetExceeded, RowBudgetExceeded,
            QueryCancelled,
        ):
            error = cls("boom")
            assert isinstance(error, ResourceExceeded)
            assert isinstance(error, SqlError)
            attached = error.attach_source("SELECT 1")
            assert "SELECT 1" in attached.context_snippet()


class TestAmbientInstallation:
    def test_default_is_ungoverned(self):
        assert current_governor() is None

    def test_use_governor_scopes(self):
        gov = QueryGovernor(GovernorLimits(), clock=SimulatedClock())
        with use_governor(gov):
            assert current_governor() is gov
        assert current_governor() is None


class TestFaultInjection:
    def _governor(self, seed):
        return QueryGovernor(
            GovernorLimits(),
            clock=SimulatedClock(),
            faults=EngineFaultModel.storm(0.9),
            fault_rng=np.random.default_rng(seed),
        )

    def _drive(self, gov, operators=200):
        outcomes = []
        for _ in range(operators):
            try:
                gov.begin_operator("SeqScanNode")
                outcomes.append("ok")
            except SqlError as error:
                outcomes.append(type(error).__name__)
        return outcomes

    def test_same_seed_same_faults(self):
        a, b = self._governor(42), self._governor(42)
        assert self._drive(a) == self._drive(b)
        assert a.faults_injected == b.faults_injected > 0

    def test_different_seed_different_faults(self):
        assert self._drive(self._governor(1)) != self._drive(self._governor(2))

    def test_slow_operators_charge_not_sleep(self):
        gov = QueryGovernor(
            GovernorLimits(),
            clock=SimulatedClock(),
            faults=EngineFaultModel(slow_operator_rate=1.0),
            fault_rng=np.random.default_rng(0),
        )
        gov.begin_operator("SortNode")
        # The simulated clock never advanced; only charged time did.
        assert gov.elapsed_seconds() > 0.0

    def test_inactive_model_is_dropped(self):
        gov = QueryGovernor(
            GovernorLimits(), clock=SimulatedClock(),
            faults=EngineFaultModel.none(),
        )
        assert gov.faults is None
