"""Resource governance on the write path.

Two contracts under test.  First, statement-level rollback under budgets:
a budget that trips mid-UPDATE/INSERT/DELETE must leave the target table,
its statistics epoch, and its mutation counter exactly as they were —
``note_mutation`` is the single commit point, and the governor always
fires before it.  Second, quarantine decision parity: a write template
that keeps busting its budget is quarantined with the same strikes and
offending bindings whether it is profiled serially or fanned out.
"""

import pytest

from repro.core import BarberConfig
from repro.core.profiler import TemplateProfiler
from repro.fuzz import build_fuzz_database
from repro.governor import GovernorLimits, QueryGovernor, clock_for, use_governor
from repro.sqldb import (
    MemoryBudgetExceeded,
    QueryTimeout,
    RowBudgetExceeded,
)
from repro.workload import SqlTemplate


def governed(**limits):
    return QueryGovernor(
        GovernorLimits(**limits), clock=clock_for("simulated")
    )


def snapshot(db, table):
    """Everything rollback must preserve: rows, epoch, mutation counter."""
    return (
        [tuple(row) for row in db.catalog.data(table).rows()],
        db.catalog.statistics_epoch,
        db.catalog.mutation_count(table),
        db.catalog.table(table).row_count,
    )


@pytest.fixture()
def db():
    # Function-scoped on purpose: these tests commit (or almost commit)
    # real mutations and must not leak state into each other.
    return build_fuzz_database(0)


class TestStatementRollback:
    def test_row_budget_trips_mid_update_table_untouched(self, db):
        before = snapshot(db, "orders")
        with use_governor(governed(row_budget=100)):
            with pytest.raises(RowBudgetExceeded):
                db.execute("UPDATE orders SET amount = orders.amount + 1.0")
        assert snapshot(db, "orders") == before

    def test_write_admission_trips_after_a_clean_scan(self, db):
        # 700 rows admits the full 600-row scan, then the UpdateNode's own
        # pre-admission of 600 written rows busts the budget — after the
        # scan, before the commit.  The table must still be untouched.
        before = snapshot(db, "orders")
        gov = governed(row_budget=700)
        with use_governor(gov):
            with pytest.raises(RowBudgetExceeded):
                db.execute("UPDATE orders SET amount = orders.amount + 1.0")
        assert gov.rows_processed >= 600  # the scan really ran
        assert snapshot(db, "orders") == before

    def test_memory_budget_trips_mid_insert_select(self, db):
        before = snapshot(db, "orders")
        sql = (
            "INSERT INTO orders (order_id, user_id, item_id, amount, "
            "status, order_date) "
            "SELECT s0.order_id, s0.user_id, s0.item_id, s0.amount, "
            "s0.status, s0.order_date FROM orders AS s0"
        )
        with use_governor(governed(memory_budget_bytes=1_000)):
            with pytest.raises(MemoryBudgetExceeded):
                db.execute(sql)
        assert snapshot(db, "orders") == before

    def test_timeout_trips_mid_delete_table_untouched(self, db):
        before = snapshot(db, "orders")
        gov = governed(
            query_timeout_seconds=0.01, cost_per_row_seconds=1e-3
        )
        with use_governor(gov):
            with pytest.raises(QueryTimeout):
                db.execute("DELETE FROM orders WHERE orders.amount > 0.0")
        assert snapshot(db, "orders") == before

    def test_engine_stays_healthy_after_a_trip(self, db):
        epoch = db.catalog.statistics_epoch
        with use_governor(governed(row_budget=100)):
            with pytest.raises(RowBudgetExceeded):
                db.execute("UPDATE orders SET amount = orders.amount + 1.0")
        # The refused statement committed nothing; the next one commits
        # normally and the epoch advances exactly once.
        assert db.catalog.statistics_epoch == epoch
        result = db.execute(
            "UPDATE items SET price = items.price + 1.0 "
            "WHERE items.item_id = 0"
        )
        assert result.row_count == 1
        assert db.catalog.statistics_epoch == epoch + 1

    def test_rows_written_are_charged_like_rows_read(self, db):
        # Both statements scan all 90 items; only one writes.  The charge
        # difference is exactly the 90 written rows.
        no_writes = governed(row_budget=10_000_000)
        with use_governor(no_writes):
            db.execute(
                "UPDATE items SET price = items.price + 1.0 "
                "WHERE items.item_id < 0"
            )
        write = governed(row_budget=10_000_000)
        with use_governor(write):
            db.execute("UPDATE items SET price = items.price + 1.0")
        assert write.rows_processed == no_writes.rows_processed + 90

    def test_generous_limits_leave_dml_results_unchanged(self, db):
        bare = build_fuzz_database(0)
        unruled = bare.execute(
            "DELETE FROM orders WHERE orders.amount > 100.0"
        )
        with use_governor(governed(row_budget=10_000_000)):
            ruled = db.execute(
                "DELETE FROM orders WHERE orders.amount > 100.0"
            )
        assert ruled.row_count == unruled.row_count
        assert snapshot(db, "orders")[0] == snapshot(bare, "orders")[0]


WRITE_TEMPLATES = [
    SqlTemplate(
        template_id="healthy_write",
        sql=(
            "UPDATE items SET price = items.price + {bump} "
            "WHERE items.item_id = 0"
        ),
    ),
    SqlTemplate(
        template_id="runaway_write",
        # Unfiltered: a 600-row scan plus 600 written rows per sample —
        # over the 500-row budget at every binding.
        sql="UPDATE orders SET amount = orders.amount + {bump}",
    ),
]


def profiler(db, **overrides):
    base = dict(
        seed=3,
        row_budget=500,
        query_timeout_seconds=2.0,
        governor_cost_per_row_seconds=1e-4,
        governor_clock="simulated",
        quarantine_after=2,
    )
    base.update(overrides)
    return TemplateProfiler(
        db, BarberConfig(**base), cost_metric="actual_rows"
    )


def decisions(profiles):
    return [
        (
            p.template.template_id,
            p.quarantined,
            p.resource_strikes,
            p.quarantine_reason,
            p.offending_bindings,
            len(p.observations),
        )
        for p in profiles
    ]


class TestWriteTemplateQuarantine:
    def test_runaway_write_template_is_quarantined(self):
        db = build_fuzz_database(0)
        before = snapshot(db, "orders")
        profile = profiler(db).profile(WRITE_TEMPLATES[1])
        assert profile.quarantined
        assert profile.resource_strikes == 2
        assert not profile.is_usable
        assert all("bump" in b for b in profile.offending_bindings)
        # Every strike fired pre-commit: profiling never mutated the table.
        assert snapshot(db, "orders") == before

    def test_healthy_write_template_profiles_and_commits(self):
        db = build_fuzz_database(0)
        profile = profiler(db).profile(WRITE_TEMPLATES[0])
        assert not profile.quarantined
        assert profile.is_usable
        assert profile.observations
        assert db.catalog.mutation_count("items") == len(profile.observations)

    def test_quarantine_decision_parity_serial_vs_parallel(self):
        serial = decisions(
            profiler(build_fuzz_database(0)).profile_many(
                WRITE_TEMPLATES, workers=1
            )
        )
        fanned = decisions(
            profiler(build_fuzz_database(0), workers=3).profile_many(
                WRITE_TEMPLATES, workers=3
            )
        )
        assert serial == fanned
        assert [d[1] for d in serial] == [False, True]

    def test_quarantine_decision_is_repeatable(self):
        first = decisions(
            [profiler(build_fuzz_database(0)).profile(WRITE_TEMPLATES[1])]
        )
        second = decisions(
            [profiler(build_fuzz_database(0)).profile(WRITE_TEMPLATES[1])]
        )
        assert first == second
