"""The executor under governance: operator-boundary checks on real queries."""

import pytest

from repro.governor import GovernorLimits, QueryGovernor, clock_for, use_governor
from repro.sqldb import (
    MemoryBudgetExceeded,
    QueryTimeout,
    ResourceExceeded,
    RowBudgetExceeded,
)

RUNAWAY = "SELECT * FROM users, orders, items WHERE users.age > 30"


def governed(**limits):
    return QueryGovernor(
        GovernorLimits(**limits), clock=clock_for("simulated")
    )


class TestCrossJoinRefusal:
    def test_row_budget_refuses_cross_product(self, gov_db):
        gov = governed(row_budget=10_000)
        with use_governor(gov):
            with pytest.raises(RowBudgetExceeded, match="would materialize"):
                gov_db.execute(RUNAWAY)
        # Refused at pre-admission: well under the full 72k-row product.
        assert gov.rows_processed < 10_000

    def test_error_carries_source_snippet(self, gov_db):
        with use_governor(governed(row_budget=10_000)):
            with pytest.raises(ResourceExceeded) as excinfo:
                gov_db.execute(RUNAWAY)
        assert "SELECT * FROM users" in excinfo.value.context_snippet()

    def test_memory_budget_refuses_cross_product(self, gov_db):
        with use_governor(governed(memory_budget_bytes=64 * 1024)):
            with pytest.raises(MemoryBudgetExceeded):
                gov_db.execute(RUNAWAY)


class TestOperatorBoundaries:
    def test_memory_budget_trips_on_wide_scan(self, gov_db):
        with use_governor(governed(memory_budget_bytes=1_000)):
            with pytest.raises(MemoryBudgetExceeded):
                gov_db.execute("SELECT * FROM orders")

    def test_charged_deadline_trips_deterministically(self, gov_db):
        gov = governed(query_timeout_seconds=0.01, cost_per_row_seconds=1e-3)
        with use_governor(gov):
            with pytest.raises(QueryTimeout):
                gov_db.execute("SELECT * FROM orders ORDER BY orders.amount")

    def test_generous_limits_change_nothing(self, gov_db):
        sql = "SELECT * FROM orders WHERE orders.amount > 50.0"
        bare = gov_db.execute(sql)
        gov = governed(
            query_timeout_seconds=300.0,
            row_budget=10_000_000,
            memory_budget_bytes=1 << 30,
        )
        with use_governor(gov):
            ruled = gov_db.execute(sql)
        assert ruled.row_count == bare.row_count
        assert gov.rows_processed > 0
        assert gov.peak_bytes > 0

    def test_accounting_is_deterministic(self, gov_db):
        stats = []
        for _ in range(2):
            gov = governed(row_budget=10_000_000)
            with use_governor(gov):
                gov_db.execute(
                    "SELECT * FROM orders WHERE orders.amount > 10.0 "
                    "ORDER BY orders.amount"
                )
            stats.append(gov.stats())
        assert stats[0] == stats[1]

    def test_ungoverned_execution_untouched(self, gov_db):
        # No ambient governor: the pathological query is only survivable
        # because the engine materializes it; it must still succeed.
        result = gov_db.execute(
            "SELECT COUNT(*) FROM users WHERE users.age > 30"
        )
        assert result.row_count == 1
