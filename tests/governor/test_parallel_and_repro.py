"""The reproducibility bar: a run with quarantined templates is
bit-identical serial vs fanned-out, and across checkpoint/resume."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import BarberConfig, SQLBarber
from repro.fastpath.parallel import ADMISSION_WINDOW_PER_WORKER, _bounded_map
from repro.llm import SimulatedLLM
from repro.obs import Telemetry
from repro.resilience import InjectedCrash

SEED = 3


def governed_barber(gov_db, **overrides):
    base = dict(
        seed=SEED,
        row_budget=5_000,
        query_timeout_seconds=2.0,
        governor_cost_per_row_seconds=1e-4,
        governor_clock="simulated",
        quarantine_after=2,
    )
    base.update(overrides)
    return SQLBarber(
        gov_db, llm=SimulatedLLM(seed=SEED), config=BarberConfig(**base)
    )


def run(barber, planted_templates, rows_distribution, **kwargs):
    return barber.generate_workload(
        [],  # planted templates skip spec-driven generation
        rows_distribution,
        templates=list(planted_templates),
        telemetry=Telemetry(),
        **kwargs,
    )


class TestBoundedMap:
    def test_results_in_input_order(self):
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = _bounded_map(pool, lambda x: x * x, list(range(20)), 4)
        assert results == [x * x for x in range(20)]

    def test_in_flight_never_exceeds_limit(self):
        lock = threading.Lock()
        state = {"now": 0, "peak": 0}

        def tracked(x):
            with lock:
                state["now"] += 1
                state["peak"] = max(state["peak"], state["now"])
            time.sleep(0.005)
            with lock:
                state["now"] -= 1
            return x

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = _bounded_map(pool, tracked, list(range(30)), 3)
        assert results == list(range(30))
        assert state["peak"] <= 3

    def test_exceptions_propagate(self):
        def boom(x):
            if x == 5:
                raise RuntimeError("item 5")
            return x

        with ThreadPoolExecutor(max_workers=2) as pool:
            with pytest.raises(RuntimeError, match="item 5"):
                _bounded_map(pool, boom, list(range(10)), 2)

    def test_admission_window_is_bounded(self):
        assert ADMISSION_WINDOW_PER_WORKER >= 1


class TestSerialParallelIdentity:
    def test_quarantined_run_identical_across_backends(
        self, gov_db, planted_templates, rows_distribution
    ):
        serial = run(
            governed_barber(gov_db, workers=1),
            planted_templates, rows_distribution,
        )
        fanned = run(
            governed_barber(gov_db, workers=3, parallel_backend="thread"),
            planted_templates, rows_distribution,
        )
        assert serial.quarantined  # the planted runaway was benched
        assert any(
            q.template_id == "runaway" for q in serial.quarantined
        )
        assert serial.fingerprint_json() == fanned.fingerprint_json()
        assert [q.to_dict() for q in serial.quarantined] == [
            q.to_dict() for q in fanned.quarantined
        ]
        assert serial.complete and fanned.complete

    def test_watchdog_armed_run_still_completes(
        self, gov_db, planted_templates, rows_distribution
    ):
        # A generous watchdog must never fire on a healthy run; this pins
        # the arming/disarming plumbing through the parallel profiler.
        result = run(
            governed_barber(
                gov_db, workers=2, watchdog_timeout_seconds=30.0
            ),
            planted_templates, rows_distribution,
        )
        assert result.complete
        totals = result.telemetry.metrics.total(
            "governor.watchdog_cancellations"
        )
        assert totals == 0


class TestCheckpointResume:
    def test_quarantine_survives_kill_and_resume(
        self, gov_db, planted_templates, rows_distribution, tmp_path
    ):
        control = run(
            governed_barber(gov_db),
            planted_templates, rows_distribution,
        )
        assert control.quarantined

        fired = {"saves": 0}

        def killer(_manager, _payload):
            fired["saves"] += 1
            if fired["saves"] == 2:
                raise InjectedCrash("dead after save #2")

        barber = governed_barber(gov_db, checkpoint_every_templates=1)
        with pytest.raises(InjectedCrash):
            run(
                barber, planted_templates, rows_distribution,
                checkpoint_dir=str(tmp_path), on_checkpoint_save=killer,
            )
        resumed = run(
            governed_barber(gov_db, checkpoint_every_templates=1),
            planted_templates, rows_distribution,
            checkpoint_dir=str(tmp_path), resume=True,
        )
        assert resumed.fingerprint_json() == control.fingerprint_json()
        assert [q.to_dict() for q in resumed.quarantined] == [
            q.to_dict() for q in control.quarantined
        ]

    def test_resume_after_profile_stage_keeps_records(
        self, gov_db, planted_templates, rows_distribution, tmp_path
    ):
        # Kill late (after profiling finished) so the quarantine records
        # must come back from the checkpoint, not from re-profiling.
        control = run(
            governed_barber(gov_db),
            planted_templates, rows_distribution,
        )
        fired = {"saves": 0}

        def killer(_manager, payload):
            fired["saves"] += 1
            if payload["state"].get("stage") == "refined":
                raise InjectedCrash("dead after refine")

        barber = governed_barber(gov_db)
        with pytest.raises(InjectedCrash):
            run(
                barber, planted_templates, rows_distribution,
                checkpoint_dir=str(tmp_path), on_checkpoint_save=killer,
            )
        resumed = run(
            governed_barber(gov_db),
            planted_templates, rows_distribution,
            checkpoint_dir=str(tmp_path), resume=True,
        )
        assert resumed.fingerprint_json() == control.fingerprint_json()
        assert [q.to_dict() for q in resumed.quarantined] == [
            q.to_dict() for q in control.quarantined
        ]
