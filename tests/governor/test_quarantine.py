"""Template quarantine: strikes accumulate, the runaway sits out the run."""

import pytest

from repro.core import BarberConfig
from repro.core.profiler import TemplateProfiler
from repro.governor import QuarantineRecord, TemplateGuard, GovernorLimits
from repro.obs import Telemetry, use_telemetry
from repro.workload import SqlTemplate


def governed_config(**overrides):
    base = dict(
        seed=3,
        row_budget=5_000,
        query_timeout_seconds=2.0,
        governor_cost_per_row_seconds=1e-4,
        governor_clock="simulated",
        quarantine_after=2,
    )
    base.update(overrides)
    return BarberConfig(**base)


class TestTemplateGuard:
    def test_three_strikes_quarantines(self):
        guard = TemplateGuard("t", GovernorLimits(row_budget=1), quarantine_after=3)
        error = ValueError("over budget")
        assert guard.strike(error, {"x": 1}) is False
        assert guard.strike(error, {"x": 2}) is False
        assert guard.strike(error, {"x": 3}) is True
        assert guard.quarantined
        record = guard.record()
        assert record.strikes == 3
        assert record.offending_bindings == [{"x": 1}, {"x": 2}, {"x": 3}]
        assert "over budget" in record.reason

    def test_record_roundtrip(self):
        record = QuarantineRecord(
            template_id="t", reason="RowBudgetExceeded: nope", strikes=2,
            offending_bindings=[{"age": 40}], stage="refine",
        )
        assert QuarantineRecord.from_dict(record.to_dict()) == record


class TestProfilerQuarantine:
    def _profiler(self, gov_db, **overrides):
        return TemplateProfiler(
            gov_db, governed_config(**overrides), cost_metric="actual_rows"
        )

    def test_runaway_quarantined_with_bindings(self, gov_db, planted_templates):
        runaway = planted_templates[-1]
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            profile = self._profiler(gov_db).profile(runaway)
        assert profile.quarantined
        assert profile.resource_strikes == 2
        assert len(profile.offending_bindings) == 2
        assert "age" in profile.offending_bindings[0]
        assert profile.quarantine_reason
        assert not profile.is_usable
        metrics = telemetry.metrics
        assert metrics.total("governor.strikes") == 2
        assert metrics.total("governor.quarantines") == 1

    def test_healthy_template_untouched(self, gov_db, planted_templates):
        profile = self._profiler(gov_db).profile(planted_templates[0])
        assert not profile.quarantined
        assert profile.resource_strikes == 0
        assert profile.is_usable
        assert profile.observations

    def test_quarantine_is_deterministic(self, gov_db, planted_templates):
        runaway = planted_templates[-1]
        first = self._profiler(gov_db).profile(runaway)
        second = self._profiler(gov_db).profile(runaway)
        assert first.offending_bindings == second.offending_bindings
        assert first.quarantine_reason == second.quarantine_reason

    def test_ungoverned_config_mints_no_guard(self, gov_db, planted_templates):
        profiler = TemplateProfiler(
            gov_db, BarberConfig(seed=3), cost_metric="actual_rows"
        )
        assert profiler._guard_for(planted_templates[0]) is None

    def test_quarantine_after_is_honoured(self, gov_db, planted_templates):
        profile = self._profiler(
            gov_db, quarantine_after=4
        ).profile(planted_templates[-1])
        assert profile.quarantined
        assert profile.resource_strikes == 4


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"query_timeout_seconds": 0.0}, "query_timeout_seconds"),
            ({"memory_budget_mb": -1.0}, "memory_budget_mb"),
            ({"row_budget": 0}, "row_budget"),
            ({"watchdog_timeout_seconds": -5}, "watchdog_timeout_seconds"),
            ({"quarantine_after": 0}, "quarantine_after"),
            ({"governor_cost_per_row_seconds": -1e-6}, "cost_per_row"),
            ({"governor_clock": "sundial"}, "governor_clock"),
            ({"workers": 0}, "workers"),
            ({"parallel_backend": "carrier-pigeon"}, "parallel_backend"),
            ({"checkpoint_every_templates": 0}, "checkpoint_every_templates"),
            ({"max_tokens": -10}, "max_tokens"),
            ({"time_budget_seconds": 0}, "time_budget_seconds"),
        ],
    )
    def test_nonsensical_limits_rejected(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            BarberConfig(**kwargs)

    def test_limit_errors_suggest_none(self):
        with pytest.raises(ValueError, match="use None to disable"):
            BarberConfig(row_budget=-1)

    def test_none_disables_cleanly(self):
        config = BarberConfig(
            query_timeout_seconds=None, memory_budget_mb=None, row_budget=None
        )
        assert config.quarantine_after == 3

    def test_valid_governed_config_accepted(self):
        config = governed_config()
        assert config.row_budget == 5_000
