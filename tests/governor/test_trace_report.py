"""`repro trace-report` grows a Resource governance section — but only
for traces where the governor actually acted."""

from repro.core import BarberConfig, SQLBarber
from repro.llm import SimulatedLLM
from repro.obs import (
    JsonlSink,
    governor_rows,
    read_events,
    render_report,
    render_report_file,
)


def _span(span_id, parent_id, name, duration, attributes=None):
    return {
        "type": "span", "span_id": span_id, "parent_id": parent_id,
        "name": name, "start_s": 0.0, "duration_s": duration,
        "attributes": attributes or {}, "error": None,
    }


GOVERNED = [
    _span(2, 1, "stage:profile", 0.5, {
        "db_calls": 40, "governor_strikes": 4, "governor_quarantines": 1,
        "governor_peak_bytes": 123_456,
    }),
    _span(3, 1, "stage:refine", 0.2, {"db_calls": 10}),
    _span(1, None, "generate_workload", 1.0),
    {
        "type": "metrics",
        "metrics": {
            "counters": {
                "governor.strikes": 4,
                "governor.quarantines": 1,
                "governor.faults_injected": 9,
            },
            "gauges": {"governor.peak_bytes{template=t1}": 123_456.0},
            "histograms": {},
        },
    },
]

UNGOVERNED = [
    _span(2, 1, "stage:profile", 0.5, {"db_calls": 40}),
    _span(1, None, "generate_workload", 1.0),
    {"type": "metrics",
     "metrics": {"counters": {}, "gauges": {}, "histograms": {}}},
]


class TestGovernorRows:
    def test_only_stages_with_activity(self):
        rows = governor_rows([e for e in GOVERNED if e["type"] == "span"])
        assert len(rows) == 1
        row = rows[0]
        assert row["stage"] == "profile"
        assert row["strikes"] == 4
        assert row["quarantines"] == 1
        assert row["cancellations"] == 0
        assert row["peak_bytes"] == 123_456

    def test_ungoverned_trace_yields_nothing(self):
        assert governor_rows(
            [e for e in UNGOVERNED if e["type"] == "span"]
        ) == []


class TestRenderedSections:
    def test_governed_trace_gets_both_sections(self):
        text = render_report(GOVERNED)
        assert "Resource governance" in text
        assert "Governor counters" in text
        assert "governor.faults_injected" in text

    def test_ungoverned_trace_unchanged(self):
        text = render_report(UNGOVERNED)
        assert "Resource governance" not in text
        assert "Governor counters" not in text


class TestEndToEnd:
    def test_governed_run_trace_renders_section(
        self, gov_db, planted_templates, rows_distribution, tmp_path
    ):
        trace = tmp_path / "trace.jsonl"
        barber = SQLBarber(
            gov_db,
            llm=SimulatedLLM(seed=3),
            config=BarberConfig(
                seed=3,
                row_budget=5_000,
                query_timeout_seconds=2.0,
                governor_cost_per_row_seconds=1e-4,
                governor_clock="simulated",
                quarantine_after=2,
            ),
            sinks=[JsonlSink(str(trace))],
        )
        result = barber.generate_workload(
            [], rows_distribution, templates=list(planted_templates)
        )
        assert result.quarantined
        text = render_report_file(str(trace))
        assert "Resource governance" in text
        assert "governor.quarantines" in text
        rows = governor_rows(
            [e for e in read_events(str(trace)) if e.get("type") == "span"]
        )
        assert any(r["quarantines"] > 0 for r in rows)
        assert any(r["peak_bytes"] > 0 for r in rows)
