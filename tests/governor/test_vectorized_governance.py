"""The governor under the vectorized executor.

The vec executor charges the governor at *batch boundaries*: one
``begin_operator`` per operator, one ``charge_frame`` per output batch.
In single-batch mode (batch size >= table cardinality) the accounting is
bit-identical to the row executor; in multi-batch mode budgets trip with
partial-batch accounting — the charge reflects the batches materialized
so far, never the operator's full output.  Quarantine decisions must not
depend on the executor or on fan-out.
"""

from __future__ import annotations

import contextlib

import pytest

from repro.core import BarberConfig, SQLBarber
from repro.governor import GovernorLimits, QueryGovernor, clock_for, use_governor
from repro.llm import SimulatedLLM
from repro.obs import Telemetry
from repro.sqldb import (
    MemoryBudgetExceeded,
    QueryTimeout,
    RowBudgetExceeded,
)
from repro.sqldb.errors import QueryCancelled

SEED = 3

ORDERS_SCAN = "SELECT * FROM orders WHERE orders.amount > 10.0"
ORDERS_SORTED = ORDERS_SCAN + " ORDER BY orders.amount"
GROUPED = (
    "SELECT orders.status, count(*) AS n, sum(orders.amount) AS total "
    "FROM orders GROUP BY orders.status"
)
JOINED = (
    "SELECT users.name, orders.amount FROM users "
    "JOIN orders ON users.user_id = orders.user_id "
    "WHERE orders.amount > 50.0"
)


def governed(**limits):
    return QueryGovernor(GovernorLimits(**limits), clock=clock_for("simulated"))


@contextlib.contextmanager
def vectorized(db, enabled, batch_size=None):
    db.set_vectorized(enabled, batch_size=batch_size)
    try:
        yield
    finally:
        db.set_vectorized(True, batch_size=1024)


class TestSingleBatchAccountingParity:
    """Batch size >= every table: charges equal the row executor's."""

    @pytest.mark.parametrize(
        "sql", [ORDERS_SCAN, ORDERS_SORTED, GROUPED, JOINED]
    )
    def test_stats_identical_to_row_executor(self, gov_db, sql):
        stats = {}
        for label, vec in (("row", False), ("vec", True)):
            gov = governed(row_budget=10_000_000, memory_budget_bytes=1 << 30)
            with vectorized(gov_db, vec, batch_size=4096):
                with use_governor(gov):
                    result = gov_db.execute(sql)
            stats[label] = (result.row_count, gov.stats())
        assert stats["row"] == stats["vec"], sql
        assert stats["vec"][1]["rows_processed"] > 0

    def test_rows_processed_is_deterministic_under_vec(self, gov_db):
        seen = []
        for _ in range(2):
            gov = governed(row_budget=10_000_000)
            with vectorized(gov_db, True, batch_size=4096):
                with use_governor(gov):
                    gov_db.execute(ORDERS_SORTED)
            seen.append(gov.stats())
        assert seen[0] == seen[1]


class TestBatchBoundaryBudgets:
    """Budgets trip at batch boundaries with partial-batch accounting."""

    def test_row_budget_trips_partway_through_the_scan(self, gov_db):
        gov = governed(row_budget=100)
        with vectorized(gov_db, True, batch_size=16):
            with use_governor(gov):
                with pytest.raises(RowBudgetExceeded):
                    gov_db.execute("SELECT * FROM orders")
        # Partial-batch accounting: only the batches charged before the
        # trip are on the meter — never the full 600-row scan output.
        assert 100 < gov.rows_processed < 600
        # The overshoot is bounded by one batch.
        assert gov.rows_processed <= 100 + 16

    def test_same_error_type_as_the_row_executor(self, gov_db):
        outcomes = {}
        for label, vec in (("row", False), ("vec", True)):
            gov = governed(row_budget=100)
            with vectorized(gov_db, vec, batch_size=16):
                with use_governor(gov):
                    with pytest.raises(RowBudgetExceeded) as excinfo:
                        gov_db.execute("SELECT * FROM orders")
            outcomes[label] = type(excinfo.value).__name__
        assert outcomes["row"] == outcomes["vec"]

    def test_memory_budget_trips_in_single_batch_mode(self, gov_db):
        with vectorized(gov_db, True, batch_size=4096):
            with use_governor(governed(memory_budget_bytes=1_000)):
                with pytest.raises(MemoryBudgetExceeded):
                    gov_db.execute("SELECT * FROM orders")

    def test_charged_deadline_trips_under_vec(self, gov_db):
        gov = governed(query_timeout_seconds=0.01, cost_per_row_seconds=1e-3)
        with vectorized(gov_db, True, batch_size=64):
            with use_governor(gov):
                with pytest.raises(QueryTimeout):
                    gov_db.execute(ORDERS_SORTED)

    def test_generous_limits_change_nothing_under_vec(self, gov_db):
        with vectorized(gov_db, True, batch_size=32):
            bare = gov_db.execute(ORDERS_SCAN)
            gov = governed(
                query_timeout_seconds=300.0,
                row_budget=10_000_000,
                memory_budget_bytes=1 << 30,
            )
            with use_governor(gov):
                ruled = gov_db.execute(ORDERS_SCAN)
        assert ruled.row_count == bare.row_count
        assert gov.rows_processed > 0


class _CancelAtBatch(QueryGovernor):
    """Flips the cooperative-cancel flag after *after* charged batches."""

    def __init__(self, limits, after, **kwargs):
        super().__init__(limits, **kwargs)
        self.charged_batches = 0
        self._after = after

    def charge_frame(self, node_name, rows, est_bytes):
        super().charge_frame(node_name, rows, est_bytes)
        self.charged_batches += 1
        if self.charged_batches == self._after:
            self.cancel("test: batch boundary reached")


class TestCooperativeCancel:
    def test_pre_cancelled_governor_refuses_the_query(self, gov_db):
        gov = governed()
        gov.cancel("benched before start")
        with vectorized(gov_db, True, batch_size=16):
            with use_governor(gov):
                with pytest.raises(QueryCancelled, match="benched"):
                    gov_db.execute("SELECT * FROM orders")

    def test_cancel_lands_at_the_next_batch_boundary(self, gov_db):
        gov = _CancelAtBatch(
            GovernorLimits(row_budget=10_000_000),
            after=3,
            clock=clock_for("simulated"),
        )
        with vectorized(gov_db, True, batch_size=16):
            with use_governor(gov):
                with pytest.raises(QueryCancelled):
                    gov_db.execute("SELECT * FROM orders")
        # Cancelled cooperatively: a handful of batches got charged, the
        # rest of the 600-row scan never did.
        assert gov.charged_batches >= 3
        assert gov.rows_processed < 600


def governed_barber(gov_db, **overrides):
    base = dict(
        seed=SEED,
        row_budget=5_000,
        query_timeout_seconds=2.0,
        governor_cost_per_row_seconds=1e-4,
        governor_clock="simulated",
        quarantine_after=2,
        use_vectorized=True,
        vec_batch_size=64,  # multi-batch on every fuzz-db table
    )
    base.update(overrides)
    return SQLBarber(
        gov_db, llm=SimulatedLLM(seed=SEED), config=BarberConfig(**base)
    )


def run(barber, planted_templates, rows_distribution):
    return barber.generate_workload(
        [],
        rows_distribution,
        templates=list(planted_templates),
        telemetry=Telemetry(),
    )


class TestQuarantineUnderVectorization:
    def test_serial_and_parallel_runs_bit_identical(
        self, gov_db, planted_templates, rows_distribution
    ):
        serial = run(
            governed_barber(gov_db, workers=1),
            planted_templates, rows_distribution,
        )
        fanned = run(
            governed_barber(gov_db, workers=3, parallel_backend="thread"),
            planted_templates, rows_distribution,
        )
        assert any(q.template_id == "runaway" for q in serial.quarantined)
        assert serial.fingerprint_json() == fanned.fingerprint_json()
        assert [q.to_dict() for q in serial.quarantined] == [
            q.to_dict() for q in fanned.quarantined
        ]
        assert serial.complete and fanned.complete

    def test_quarantine_decisions_match_the_row_executor(
        self, gov_db, planted_templates, rows_distribution
    ):
        vec = run(
            governed_barber(gov_db),
            planted_templates, rows_distribution,
        )
        row = run(
            governed_barber(gov_db, use_vectorized=False),
            planted_templates, rows_distribution,
        )
        # Decisions (who got benched, and why-type) match; the embedded
        # trip message may not — partial-batch accounting charges fewer
        # rows before tripping than the row executor's whole-frame charge,
        # and the message quotes that number.
        assert [q.template_id for q in vec.quarantined] == [
            q.template_id for q in row.quarantined
        ]
        assert any(q.template_id == "runaway" for q in vec.quarantined)
        assert vec.complete and row.complete
