"""The out-of-band watchdog: wall-clock, threads, deliberately small scale."""

import time

from repro.governor import (
    GovernorBoard,
    GovernorLimits,
    QueryGovernor,
    Watchdog,
)
from repro.resilience.clock import SystemClock
from repro.sqldb import QueryCancelled


def _governor():
    return QueryGovernor(GovernorLimits(), clock=SystemClock())


class TestWatchdog:
    def test_arms_and_disarms_the_board(self):
        board = GovernorBoard()
        assert not board.armed
        with Watchdog(board, timeout_seconds=5.0):
            assert board.armed
        assert not board.armed

    def test_cancels_overdue_governor(self):
        board = GovernorBoard()
        governor = _governor()
        with Watchdog(board, timeout_seconds=0.05, poll_seconds=0.01) as dog:
            board.register("stuck_template", governor, time.monotonic())
            deadline = time.monotonic() + 2.0
            while not governor.cancelled and time.monotonic() < deadline:
                time.sleep(0.01)
        assert governor.cancelled
        assert dog.cancellations == 1
        try:
            governor.check()
            raise AssertionError("cancelled governor passed check()")
        except QueryCancelled as error:
            assert "watchdog" in str(error)
            assert "stuck_template" in str(error)

    def test_fresh_governor_left_alone(self):
        board = GovernorBoard()
        governor = _governor()
        with Watchdog(board, timeout_seconds=10.0, poll_seconds=0.01):
            ticket = board.register("fine", governor, time.monotonic())
            time.sleep(0.05)
            board.unregister(ticket)
        assert not governor.cancelled

    def test_unregistered_board_is_silent(self):
        board = GovernorBoard()
        with Watchdog(board, timeout_seconds=0.01, poll_seconds=0.01) as dog:
            time.sleep(0.05)
        assert dog.cancellations == 0


class TestBoard:
    def test_register_unregister_snapshot(self):
        board = GovernorBoard()
        governor = _governor()
        ticket = board.register("a", governor, 0.0)
        assert [key for key, _, _ in board.snapshot()] == ["a"]
        board.unregister(ticket)
        assert board.snapshot() == []

    def test_double_unregister_is_harmless(self):
        board = GovernorBoard()
        ticket = board.register("a", _governor(), 0.0)
        board.unregister(ticket)
        board.unregister(ticket)
