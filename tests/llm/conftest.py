"""Shared schema payload used by the LLM-layer tests."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="module")
def schema_payload() -> dict:
    return {
        "tables": [
            {
                "name": "users",
                "rows": 1000,
                "columns": [
                    {"name": "user_id", "type": "integer", "ndv": 1000,
                     "min": 0, "max": 999},
                    {"name": "name", "type": "text", "ndv": 37},
                    {"name": "age", "type": "integer", "ndv": 60,
                     "min": 18, "max": 79},
                ],
            },
            {
                "name": "orders",
                "rows": 5000,
                "columns": [
                    {"name": "order_id", "type": "integer", "ndv": 5000,
                     "min": 0, "max": 4999},
                    {"name": "user_id", "type": "integer", "ndv": 1000,
                     "min": 0, "max": 999},
                    {"name": "amount", "type": "double precision",
                     "ndv": 4500, "min": 0.1, "max": 900.0},
                    {"name": "status", "type": "text", "ndv": 4},
                ],
            },
            {
                "name": "items",
                "rows": 20000,
                "columns": [
                    {"name": "item_id", "type": "integer", "ndv": 20000,
                     "min": 0, "max": 19999},
                    {"name": "order_id", "type": "integer", "ndv": 5000,
                     "min": 0, "max": 4999},
                    {"name": "price", "type": "double precision",
                     "ndv": 9000, "min": 0.5, "max": 100.0},
                ],
            },
        ],
        "join_edges": [
            {"table": "orders", "column": "user_id",
             "ref_table": "users", "ref_column": "user_id"},
            {"table": "items", "column": "order_id",
             "ref_table": "orders", "ref_column": "order_id"},
        ],
    }
