"""Token accounting, pricing, and the client interface."""

import pytest

from repro.llm import (
    O3_MINI_PRICING,
    PricingModel,
    ScriptedLLM,
    UsageMeter,
    count_tokens,
)


class TestCountTokens:
    def test_empty(self):
        assert count_tokens("") == 0

    def test_scales_with_length(self):
        assert count_tokens("a" * 400) == 100

    def test_word_floor(self):
        assert count_tokens("a b c d e") >= 5

    def test_deterministic(self):
        text = "SELECT * FROM users WHERE age > 5"
        assert count_tokens(text) == count_tokens(text)


class TestPricing:
    def test_o3_mini_rates(self):
        assert O3_MINI_PRICING.usd_per_million_input == pytest.approx(1.10)
        assert O3_MINI_PRICING.usd_per_million_output == pytest.approx(4.40)

    def test_cost_formula(self):
        pricing = PricingModel("m", 1.0, 2.0)
        assert pricing.cost_usd(1_000_000, 500_000) == pytest.approx(2.0)


class TestUsageMeter:
    def test_record_accumulates(self):
        meter = UsageMeter()
        meter.record(100, 50, task="generate")
        meter.record(200, 25, task="generate")
        meter.record(10, 5, task="fix")
        assert meter.prompt_tokens == 310
        assert meter.completion_tokens == 80
        assert meter.total_tokens == 390
        assert meter.num_calls == 3
        assert meter.calls_by_task == {"generate": 2, "fix": 1}

    def test_cost(self):
        meter = UsageMeter()
        meter.record(1_000_000, 0)
        assert meter.cost_usd() == pytest.approx(1.10)

    def test_merge(self):
        a, b = UsageMeter(), UsageMeter()
        a.record(10, 10, task="x")
        b.record(5, 5, task="x")
        a.merge(b)
        assert a.total_tokens == 30
        assert a.calls_by_task == {"x": 2}

    def test_snapshot(self):
        meter = UsageMeter()
        meter.record(1, 2, task="t")
        snap = meter.snapshot()
        assert snap["total_tokens"] == 3
        assert snap["calls_by_task"] == {"t": 1}


class TestScriptedClient:
    def test_replays_in_order(self):
        llm = ScriptedLLM(["first", "second"])
        assert llm.complete("a").text == "first"
        assert llm.complete("b").text == "second"

    def test_exhaustion_raises(self):
        llm = ScriptedLLM([])
        with pytest.raises(RuntimeError):
            llm.complete("x")

    def test_usage_recorded(self):
        llm = ScriptedLLM(["hello world response text"])
        response = llm.complete("some prompt text here", task="demo")
        assert response.prompt_tokens > 0
        assert response.completion_tokens > 0
        assert llm.usage.num_calls == 1
        assert llm.usage.calls_by_task == {"demo": 1}
        assert response.total_tokens == llm.usage.total_tokens
