"""Fault injection, repair skills, and the simulated LLM's verb dispatch."""

import json

import numpy as np
import pytest

from repro.llm import (
    FaultModel,
    SimulatedLLM,
    encode_payload,
    extract_json,
    extract_sql,
)
from repro.llm.faults import (
    corrupt_syntax,
    hallucinate_identifier,
    perturb_spec,
    repair_identifier,
    repair_syntax,
)
from repro.sqldb import SqlError
from repro.sqldb.parser import parse_select
from repro.workload import TemplateSpec, check_template

GOOD_SQL = (
    "SELECT t0.status, count(*) FROM orders AS t0 "
    "WHERE t0.amount > {p_1} GROUP BY t0.status"
)


class TestFaultModel:
    def test_decay(self):
        model = FaultModel(semantic_rate=0.8, syntax_rate=0.4, repair_decay=0.5)
        decayed = model.at_attempt(2)
        assert decayed.semantic_rate == pytest.approx(0.2)
        assert decayed.syntax_rate == pytest.approx(0.1)

    def test_attempt_zero_unchanged(self):
        model = FaultModel()
        assert model.at_attempt(0).semantic_rate == model.semantic_rate

    def test_perfect(self):
        perfect = FaultModel.perfect()
        assert perfect.semantic_rate == 0.0
        assert perfect.syntax_rate == 0.0


class TestCorruptions:
    def test_syntax_corruption_breaks_parsing(self):
        rng = np.random.default_rng(0)
        broken = 0
        for _ in range(20):
            corrupted = corrupt_syntax(GOOD_SQL, rng)
            try:
                parse_select(corrupted)
            except SqlError:
                broken += 1
        assert broken >= 15  # corruption is nearly always effective

    def test_hallucination_changes_a_column(self):
        rng = np.random.default_rng(1)
        mutated = hallucinate_identifier(GOOD_SQL, {"status", "amount"}, rng)
        assert mutated != GOOD_SQL

    def test_hallucination_no_known_columns(self):
        rng = np.random.default_rng(2)
        assert hallucinate_identifier(GOOD_SQL, {"zzz"}, rng) == GOOD_SQL

    def test_perturb_spec_changes_constrained_field(self):
        rng = np.random.default_rng(3)
        spec = {"num_joins": 2, "require_group_by": True}
        changed = sum(perturb_spec(spec, rng) != spec for _ in range(10))
        assert changed == 10

    def test_perturb_unconstrained_spec_is_noop(self):
        rng = np.random.default_rng(4)
        assert perturb_spec({}, rng) == {}


class TestRepairs:
    def test_repairs_roundtrip_all_corruption_kinds(self):
        rng = np.random.default_rng(5)
        for _ in range(30):
            corrupted = corrupt_syntax(GOOD_SQL, rng)
            repaired = repair_syntax(corrupted)
            parse_select(repaired)  # must not raise

    def test_identifier_repair_snaps_to_closest(self):
        sql = "SELECT amount_ref FROM orders"
        fixed = repair_identifier(
            sql, 'column "amount_ref" does not exist', {"amount", "status"}
        )
        assert "amount" in fixed and "amount_ref" not in fixed

    def test_identifier_repair_unknown_error_format(self):
        assert repair_identifier(GOOD_SQL, "weird error", {"amount"}) == GOOD_SQL


def make_prompt(task, schema, **kwargs):
    payload = {"task": task, "schema": schema, **kwargs}
    return f"instruction text\n{encode_payload(payload)}"


SPEC = {
    "num_joins": 1,
    "num_aggregations": 1,
    "num_predicates": 2,
    "require_group_by": True,
}


class TestSimulatedLLMVerbs:
    def test_generate_template_perfect(self, schema_payload):
        llm = SimulatedLLM(seed=0, fault_model=FaultModel.perfect())
        response = llm.complete(
            make_prompt("generate_template", schema_payload, spec=SPEC,
                        join_path=None),
            task="generate_template",
        )
        sql = extract_sql(response.text)
        ok, violations = check_template(
            sql, TemplateSpec(num_joins=1, num_aggregations=1,
                              num_predicates=2, require_group_by=True)
        )
        assert ok, violations

    def test_generate_with_faults_often_fails(self, schema_payload):
        llm = SimulatedLLM(seed=1)  # default high fault rates
        failures = 0
        for _ in range(20):
            response = llm.complete(
                make_prompt("generate_template", schema_payload, spec=SPEC,
                            join_path=None),
                task="generate_template",
            )
            sql = extract_sql(response.text)
            ok, _ = check_template(
                sql, TemplateSpec(num_joins=1, num_aggregations=1,
                                  num_predicates=2, require_group_by=True)
            )
            failures += not ok
        assert failures >= 12  # hallucination is the common case at attempt 0

    def test_validate_semantics_ground_truth(self, schema_payload):
        llm = SimulatedLLM(seed=2, validation_noise=0.0)
        response = llm.complete(
            make_prompt(
                "validate_semantics",
                schema_payload,
                spec={"num_joins": 5},
                template=GOOD_SQL,
            ),
            task="validate_semantics",
        )
        verdict = extract_json(response.text)
        assert verdict["satisfied"] is False
        assert any("joins" in v for v in verdict["violations"])

    def test_fix_semantics_converges(self, schema_payload):
        llm = SimulatedLLM(seed=3)
        spec = TemplateSpec(num_joins=1, num_aggregations=1,
                            num_predicates=2, require_group_by=True)
        successes = 0
        for attempt in (3, 4, 5):  # late attempts: decayed fault rates
            response = llm.complete(
                make_prompt("fix_semantics", schema_payload, spec=SPEC,
                            template=GOOD_SQL, violations=["has 0 joins"],
                            attempt=attempt),
                task="fix_semantics",
            )
            ok, _ = check_template(extract_sql(response.text), spec)
            successes += ok
        assert successes >= 2

    def test_fix_execution_repairs_syntax(self, schema_payload):
        llm = SimulatedLLM(seed=4, fault_model=FaultModel.perfect())
        response = llm.complete(
            make_prompt(
                "fix_execution",
                schema_payload,
                template=GOOD_SQL.replace("SELECT", "SELEC"),
                error='syntax error at or near "selec"',
                spec=SPEC,
                attempt=1,
            ),
            task="fix_execution",
        )
        parse_select(extract_sql(response.text))

    def test_fix_execution_repairs_hallucination(self, schema_payload):
        llm = SimulatedLLM(seed=5, fault_model=FaultModel.perfect())
        response = llm.complete(
            make_prompt(
                "fix_execution",
                schema_payload,
                template=GOOD_SQL.replace("amount", "amount_ref"),
                error='column "amount_ref" does not exist',
                spec=SPEC,
                attempt=1,
            ),
            task="fix_execution",
        )
        assert "amount_ref" not in extract_sql(response.text)

    def test_refine_template_moves_heavier(self, schema_payload):
        llm = SimulatedLLM(seed=6, fault_model=FaultModel.perfect())
        sql_with_limit = GOOD_SQL + " LIMIT 10"
        response = llm.complete(
            make_prompt(
                "refine_template",
                schema_payload,
                template=sql_with_limit,
                target_interval=[5000.0, 6000.0],
                cost_summary={"min": 10.0, "max": 50.0, "mean": 30.0},
                history=[],
                cost_type="plan_cost",
            ),
            task="refine_template",
        )
        refined = extract_sql(response.text)
        assert refined != sql_with_limit
        parse_select(refined)

    def test_refine_avoids_history(self, schema_payload):
        llm = SimulatedLLM(seed=7, fault_model=FaultModel.perfect())
        first = extract_sql(
            llm.complete(
                make_prompt(
                    "refine_template", schema_payload, template=GOOD_SQL,
                    target_interval=[5000.0, 6000.0],
                    cost_summary={"min": 1.0, "max": 2.0}, history=[],
                ),
                task="refine_template",
            ).text
        )
        second = extract_sql(
            llm.complete(
                make_prompt(
                    "refine_template", schema_payload, template=GOOD_SQL,
                    target_interval=[5000.0, 6000.0],
                    cost_summary={"min": 1.0, "max": 2.0},
                    history=[{"sql": first}],
                ),
                task="refine_template",
            ).text
        )
        assert second != first

    def test_unknown_task_rejected(self, schema_payload):
        llm = SimulatedLLM(seed=8)
        with pytest.raises(ValueError):
            llm.complete(make_prompt("write_poem", schema_payload))

    def test_usage_metering_accumulates(self, schema_payload):
        llm = SimulatedLLM(seed=9, fault_model=FaultModel.perfect())
        for _ in range(3):
            llm.complete(
                make_prompt("generate_template", schema_payload, spec=SPEC,
                            join_path=None),
                task="generate_template",
            )
        assert llm.usage.num_calls == 3
        assert llm.usage.total_tokens > 0
        assert llm.usage.cost_usd() > 0


class TestExtractors:
    def test_extract_sql_from_fence(self):
        text = "Some prose.\n```sql\nSELECT 1;\n```"
        assert extract_sql(text) == "SELECT 1"

    def test_extract_sql_without_fence(self):
        assert extract_sql("-- comment\nSELECT 2") == "SELECT 2"

    def test_extract_json(self):
        assert extract_json('noise {"a": 1} trailing')["a"] == 1

    def test_extract_json_missing(self):
        with pytest.raises(ValueError):
            extract_json("no json here")
