"""Prompt construction and payload encoding."""

import pytest

from repro.llm import (
    decode_payload,
    encode_payload,
    fix_execution_prompt,
    fix_semantics_prompt,
    refine_template_prompt,
    template_generation_prompt,
    validate_semantics_prompt,
)


class TestPayloadCodec:
    def test_roundtrip(self):
        payload = {"task": "generate_template", "spec": {"num_joins": 2}}
        assert decode_payload(f"prose {encode_payload(payload)}") == payload

    def test_missing_payload_raises(self):
        with pytest.raises(ValueError):
            decode_payload("no payload here")

    def test_sorted_keys_deterministic(self):
        a = encode_payload({"b": 1, "a": 2})
        b = encode_payload({"a": 2, "b": 1})
        assert a == b


class TestPromptBuilders:
    def test_generation_prompt_sections(self, schema_payload):
        prompt = template_generation_prompt(
            schema_payload,
            schema_payload["join_edges"][:1],
            "The SQL template must contain exactly 1 join.",
            {"task": "generate_template"},
        )
        assert "## DATABASE SCHEMA" in prompt
        assert "## SUGGESTED JOIN PATH" in prompt
        assert "## SPECIFICATION" in prompt
        assert "orders.user_id" in prompt
        assert decode_payload(prompt)["task"] == "generate_template"

    def test_generation_prompt_no_joins(self, schema_payload):
        prompt = template_generation_prompt(
            schema_payload, [], "no joins", {"task": "generate_template"}
        )
        assert "single-table template" in prompt

    def test_schema_section_includes_stats(self, schema_payload):
        prompt = template_generation_prompt(
            schema_payload, [], "spec", {"task": "generate_template"}
        )
        assert "ndv=" in prompt
        assert "rows" in prompt

    def test_validate_prompt(self):
        prompt = validate_semantics_prompt(
            "SELECT 1", "must have a join", {"task": "validate_semantics"}
        )
        assert "SELECT 1" in prompt
        assert "satisfied" in prompt

    def test_fix_semantics_prompt_lists_violations(self):
        prompt = fix_semantics_prompt(
            "SELECT 1", "spec", ["has 0 joins, expected 2"],
            {"task": "fix_semantics"},
        )
        assert "has 0 joins, expected 2" in prompt
        assert "## VIOLATIONS" in prompt

    def test_fix_execution_prompt_carries_error(self):
        prompt = fix_execution_prompt(
            "SELEC 1", 'syntax error at or near "selec"',
            {"task": "fix_execution"},
        )
        assert "## DBMS ERROR" in prompt
        assert "selec" in prompt

    def test_refine_prompt_interval_and_history(self):
        prompt = refine_template_prompt(
            "SELECT 1",
            {"min": 5.0, "max": 10.0},
            (100.0, 200.0),
            [{"sql": "SELECT 2", "min_cost": 1, "max_cost": 2}],
            {"task": "refine_template"},
        )
        assert "[100.0, 200.0]" in prompt
        assert "PREVIOUS ATTEMPTS" in prompt
        assert "SELECT 2" in prompt

    def test_refine_prompt_without_history(self):
        prompt = refine_template_prompt(
            "SELECT 1", {}, (1.0, 2.0), None, {"task": "refine_template"}
        )
        assert "PREVIOUS ATTEMPTS" not in prompt
