"""The cost-directed refinement transforms behind RefineTemplate."""

import numpy as np
import pytest

from repro.llm.refine import refine_sql
from repro.sqldb.parser import parse_select
from repro.workload import analyze_sql


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


BASE = (
    "SELECT t0.status, count(*) FROM orders AS t0 "
    "WHERE t0.amount > {p_1} GROUP BY t0.status"
)
PLAIN = "SELECT t0.order_id, t0.amount FROM orders AS t0 WHERE t0.amount > {p_1}"
JOINED = (
    "SELECT t0.amount, t1.name FROM orders AS t0 "
    "JOIN users AS t1 ON t0.user_id = t1.user_id WHERE t0.amount > {p_1}"
)


def summary(lo, hi):
    return {"min": lo, "max": hi, "mean": (lo + hi) / 2}


class TestDirections:
    def test_heavier_output_parses(self, schema_payload, rng):
        out = refine_sql(BASE, schema_payload, (9000.0, 10000.0),
                         summary(10, 50), [], rng)
        assert out != BASE
        parse_select(out)

    def test_heavier_adds_structure(self, schema_payload, rng):
        out = refine_sql(PLAIN, schema_payload, (9000.0, 10000.0),
                         summary(10, 50), [], rng)
        before = analyze_sql(PLAIN)
        after = analyze_sql(out)
        assert (
            after.num_joins > before.num_joins
            or not after.has_limit
        )

    def test_lighter_from_joined(self, schema_payload, rng):
        out = refine_sql(JOINED, schema_payload, (1.0, 5.0),
                         summary(5000, 9000), [], rng)
        after = analyze_sql(out)
        before = analyze_sql(JOINED)
        lighter_markers = (
            after.num_joins < before.num_joins
            or after.has_limit
            or after.has_group_by
            or after.num_predicates > before.num_predicates
        )
        assert lighter_markers, out

    def test_lighter_cardinality_prefers_limit_or_group(self, schema_payload, rng):
        out = refine_sql(PLAIN, schema_payload, (1.0, 10.0),
                         summary(3000, 5000), [], rng,
                         cost_type="cardinality")
        after = analyze_sql(out)
        assert after.has_limit or after.has_group_by

    def test_reshape_when_interval_inside_span(self, schema_payload, rng):
        out = refine_sql(PLAIN, schema_payload, (100.0, 200.0),
                         summary(10, 5000), [], rng)
        assert out != PLAIN
        parse_select(out)

    def test_no_profile_treated_as_reshape(self, schema_payload, rng):
        out = refine_sql(PLAIN, schema_payload, (100.0, 200.0), {}, [], rng)
        parse_select(out)


class TestSelfJoinAmplifier:
    def test_exhausted_graph_adds_self_join(self, schema_payload, rng):
        # Join all three tables first, then ask for far more cost.
        sql = (
            "SELECT t0.item_id FROM items AS t0 "
            "JOIN orders AS t1 ON t0.order_id = t1.order_id "
            "JOIN users AS t2 ON t1.user_id = t2.user_id "
            "WHERE t0.price > {p_1}"
        )
        out = refine_sql(sql, schema_payload, (1e6, 2e6),
                         summary(100, 500), [], rng)
        before = analyze_sql(sql)
        after = analyze_sql(out)
        assert after.num_joins > before.num_joins
        # All three tables were already placed, so the extra join must be a
        # self-join: more scans than distinct tables.
        assert after.num_scans > after.num_tables


class TestHistoryAvoidance:
    def test_history_prevents_repeats(self, schema_payload):
        rng = np.random.default_rng(1)
        outputs = set()
        history = []
        for _ in range(4):
            out = refine_sql(BASE, schema_payload, (9000.0, 10000.0),
                             summary(10, 50), history, rng)
            assert out not in outputs, "refinement repeated a failed attempt"
            outputs.add(out)
            history.append({"sql": out})

    def test_fixed_point_when_everything_tried(self, schema_payload):
        # With an enormous history the refiner may eventually return the
        # input unchanged, but it must never crash.
        rng = np.random.default_rng(2)
        history = []
        sql = BASE
        for _ in range(12):
            out = refine_sql(BASE, schema_payload, (9000.0, 10000.0),
                             summary(10, 50), history, rng)
            history.append({"sql": out})
        parse_select(out)


class TestRobustness:
    def test_keeps_placeholders_valid(self, schema_payload, rng):
        out = refine_sql(PLAIN, schema_payload, (100.0, 200.0),
                         summary(10, 5000), [], rng)
        structure = analyze_sql(out)
        assert structure.num_predicates >= 1

    def test_output_always_reparseable_over_many_seeds(self, schema_payload):
        for seed in range(20):
            rng = np.random.default_rng(seed)
            for interval, obs in (
                ((9000.0, 9500.0), summary(5, 20)),
                ((1.0, 5.0), summary(4000, 9000)),
                ((50.0, 80.0), summary(10, 500)),
            ):
                out = refine_sql(JOINED, schema_payload, interval, obs, [], rng)
                parse_select(out)
