"""The schema-aware template synthesizer honours specs."""

import pytest

from repro.llm import SchemaModel, TemplateSynthesizer
from repro.sqldb.parser import parse_select
from repro.workload import TemplateSpec, analyze_sql, check_template

import numpy as np


class TestSchemaModel:
    def test_tables_indexed(self, schema_payload):
        model = SchemaModel(schema_payload)
        assert set(model.tables) == {"users", "orders", "items"}
        assert model.table("orders").rows == 5000

    def test_column_classification(self, schema_payload):
        orders = SchemaModel(schema_payload).table("orders")
        numeric = {c["name"] for c in orders.numeric_columns}
        assert "amount" in numeric and "status" not in numeric
        assert [c["name"] for c in orders.text_columns] == ["status"]

    def test_edges_touching(self, schema_payload):
        model = SchemaModel(schema_payload)
        edges = model.edges_touching({"users"})
        assert len(edges) == 1
        assert edges[0]["ref_table"] == "users"

    def test_sample_join_path_walk(self, schema_payload):
        model = SchemaModel(schema_payload)
        rng = np.random.default_rng(0)
        for _ in range(20):
            path = model.sample_join_path(2, rng)
            assert len(path) == 2
            # Every edge after the first touches an already-placed table
            placed = {path[0]["table"], path[0]["ref_table"]}
            for edge in path[1:]:
                assert edge["table"] in placed or edge["ref_table"] in placed
                placed.update((edge["table"], edge["ref_table"]))

    def test_sample_zero_joins(self, schema_payload):
        model = SchemaModel(schema_payload)
        assert model.sample_join_path(0, np.random.default_rng(0)) == []


class TestSynthesizer:
    def synth(self, schema_payload, spec, seed=0):
        return TemplateSynthesizer(seed=seed).synthesize(schema_payload, None, spec)

    def test_output_parses(self, schema_payload):
        for seed in range(10):
            sql = self.synth(schema_payload, {}, seed=seed)
            parse_select(sql)  # must not raise

    def test_join_count_honoured(self, schema_payload):
        for joins in (0, 1, 2, 3):
            sql = self.synth(schema_payload, {"num_joins": joins}, seed=joins)
            assert analyze_sql(sql).num_joins == joins, sql

    def test_aggregation_count(self, schema_payload):
        for count in (1, 2, 3):
            sql = self.synth(
                schema_payload,
                {"num_aggregations": count, "require_group_by": True,
                 "num_joins": 1},
                seed=count,
            )
            assert analyze_sql(sql).num_aggregations == count, sql

    def test_predicate_count(self, schema_payload):
        for count in (1, 2, 4):
            sql = self.synth(
                schema_payload, {"num_predicates": count, "num_joins": 1}, seed=count
            )
            assert analyze_sql(sql).num_predicates == count, sql

    def test_nested_subquery(self, schema_payload):
        sql = self.synth(
            schema_payload,
            {"require_nested_subquery": True, "num_joins": 1, "num_predicates": 2},
        )
        assert analyze_sql(sql).has_nested_subquery

    def test_order_and_limit(self, schema_payload):
        sql = self.synth(
            schema_payload,
            {"require_order_by": True, "require_limit": True, "num_joins": 0,
             "num_aggregations": 1, "require_group_by": True},
        )
        structure = analyze_sql(sql)
        assert structure.has_order_by and structure.has_limit

    def test_complex_scalar(self, schema_payload):
        sql = self.synth(
            schema_payload,
            {"require_complex_scalar": True, "num_joins": 0, "num_predicates": 1},
        )
        assert analyze_sql(sql).has_complex_scalar

    def test_full_spec_compliance(self, schema_payload):
        spec = TemplateSpec(
            num_joins=2,
            num_aggregations=2,
            num_predicates=2,
            require_group_by=True,
            require_nested_subquery=True,
        )
        spec_dict = {
            "num_joins": 2, "num_aggregations": 2, "num_predicates": 2,
            "require_group_by": True, "require_nested_subquery": True,
        }
        for seed in range(8):
            sql = self.synth(schema_payload, spec_dict, seed=seed)
            ok, violations = check_template(sql, spec)
            assert ok, (sql, violations)

    def test_deterministic_given_seed(self, schema_payload):
        spec = {"num_joins": 1, "num_predicates": 2}
        a = TemplateSynthesizer(seed=5).synthesize(schema_payload, None, spec)
        b = TemplateSynthesizer(seed=5).synthesize(schema_payload, None, spec)
        assert a == b

    def test_diversity_across_calls(self, schema_payload):
        synth = TemplateSynthesizer(seed=0)
        outputs = {
            synth.synthesize(schema_payload, None, {"num_joins": 1})
            for _ in range(10)
        }
        assert len(outputs) >= 5

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            TemplateSynthesizer().synthesize({"tables": []}, None, {})

    def test_self_join_when_graph_exhausted(self, schema_payload):
        # 5 joins > 2 edges: the synthesizer must produce self-joins.
        sql = self.synth(schema_payload, {"num_joins": 5}, seed=1)
        assert analyze_sql(sql).num_joins == 5, sql
        parse_select(sql)
