"""Property-based spec compliance: random specs -> synthesizer -> analyzer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm import TemplateSynthesizer
from repro.sqldb.parser import parse_select
from repro.workload import TemplateSpec, check_template

SCHEMA = {
    "tables": [
        {"name": "users", "rows": 1000, "columns": [
            {"name": "user_id", "type": "integer", "ndv": 1000,
             "min": 0, "max": 999},
            {"name": "name", "type": "text", "ndv": 37},
            {"name": "age", "type": "integer", "ndv": 60, "min": 18, "max": 79},
        ]},
        {"name": "orders", "rows": 5000, "columns": [
            {"name": "order_id", "type": "integer", "ndv": 5000,
             "min": 0, "max": 4999},
            {"name": "user_id", "type": "integer", "ndv": 1000,
             "min": 0, "max": 999},
            {"name": "amount", "type": "double precision", "ndv": 4500,
             "min": 0.1, "max": 900.0},
            {"name": "status", "type": "text", "ndv": 4},
        ]},
        {"name": "items", "rows": 20000, "columns": [
            {"name": "item_id", "type": "integer", "ndv": 20000,
             "min": 0, "max": 19999},
            {"name": "order_id", "type": "integer", "ndv": 5000,
             "min": 0, "max": 4999},
            {"name": "price", "type": "double precision", "ndv": 9000,
             "min": 0.5, "max": 100.0},
        ]},
    ],
    "join_edges": [
        {"table": "orders", "column": "user_id",
         "ref_table": "users", "ref_column": "user_id"},
        {"table": "items", "column": "order_id",
         "ref_table": "orders", "ref_column": "order_id"},
    ],
}

spec_strategy = st.fixed_dictionaries(
    {},
    optional={
        "num_joins": st.integers(min_value=0, max_value=4),
        "num_aggregations": st.integers(min_value=0, max_value=3),
        "num_predicates": st.integers(min_value=0, max_value=4),
        "require_group_by": st.booleans(),
        "require_nested_subquery": st.booleans(),
        "require_order_by": st.booleans(),
        "require_limit": st.booleans(),
    },
)


def normalize(spec: dict) -> dict:
    """Resolve spec-internal conflicts the way a user-facing API would."""
    spec = dict(spec)
    if spec.get("require_group_by") and spec.get("num_aggregations") == 0:
        # GROUP BY without aggregates is fine; nothing to fix.
        pass
    if spec.get("require_nested_subquery") and spec.get("num_predicates") == 0:
        # The subquery itself may carry a placeholder; zero predicates with
        # a required subquery is still satisfiable (constant inner filter).
        pass
    return spec


@given(spec=spec_strategy, seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=120, deadline=None)
def test_synthesizer_honours_random_specs(spec, seed):
    spec = normalize(spec)
    synthesizer = TemplateSynthesizer(seed=seed)
    sql = synthesizer.synthesize(SCHEMA, None, spec)
    parse_select(sql)  # always valid SQL
    template_spec = TemplateSpec(
        spec_id="prop",
        num_joins=spec.get("num_joins"),
        num_aggregations=spec.get("num_aggregations"),
        num_predicates=spec.get("num_predicates"),
        require_group_by=spec.get("require_group_by"),
        require_nested_subquery=spec.get("require_nested_subquery"),
        require_order_by=spec.get("require_order_by"),
        require_limit=spec.get("require_limit"),
    )
    ok, violations = check_template(sql, template_spec)
    assert ok, (spec, sql, violations)
