"""Event bus, event envelopes, fingerprinting, and the progress renderer."""

import io

import pytest

from repro.core import BarberConfig, SQLBarber
from repro.fuzz.runner import build_fuzz_database
from repro.obs import (
    EventBus,
    InMemoryCollector,
    NullTelemetry,
    ProgressRenderer,
    Telemetry,
    event_fingerprint,
)
from repro.workload import CostDistribution, TemplateSpec


class TestEventBus:
    def test_publishes_to_all_subscribers(self):
        seen_a, seen_b = [], []
        bus = EventBus([seen_a.append])
        bus.subscribe(seen_b.append)
        bus.publish({"event": "x"})
        assert seen_a == seen_b == [{"event": "x"}]

    def test_unsubscribe_stops_delivery(self):
        seen = []
        bus = EventBus()
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        bus.publish({"event": "x"})
        assert seen == []

    def test_crashing_subscriber_is_detached_not_fatal(self):
        seen = []

        def bad(event):
            raise RuntimeError("renderer died")

        bus = EventBus([bad, seen.append])
        bus.publish({"event": "a"})  # must not raise
        bus.publish({"event": "b"})
        assert seen == [{"event": "a"}, {"event": "b"}]
        assert len(bus) == 1

    def test_none_subscribers_filtered_at_construction(self):
        assert len(EventBus([None, None])) == 0


class TestTelemetryEvents:
    def test_event_envelope_and_sequence(self):
        sink = InMemoryCollector()
        telemetry = Telemetry(sinks=[sink])
        telemetry.event("stage_started", stage="profile")
        telemetry.event("stage_finished", stage="profile", seconds=0.5)
        events = [e for e in sink.events if e["type"] == "event"]
        assert [e["seq"] for e in events] == [1, 2]
        assert events[0]["event"] == "stage_started"
        assert events[0]["stage"] == "profile"

    def test_events_reach_bus_subscribers(self):
        seen = []
        telemetry = Telemetry(subscribers=[seen.append])
        telemetry.event("checkpoint_saved", stage="profile", templates_done=2)
        assert len(seen) == 1
        assert seen[0]["templates_done"] == 2

    def test_null_telemetry_event_is_noop(self):
        NullTelemetry().event("stage_started", stage="x")  # must not raise


class TestEventFingerprint:
    def test_keeps_only_event_records(self):
        stream = [
            {"type": "span", "name": "s"},
            {"type": "event", "event": "stage_started", "seq": 1, "stage": "a"},
            {"type": "metrics", "counters": {}},
        ]
        fingerprint = event_fingerprint(stream)
        assert len(fingerprint) == 1
        assert fingerprint[0]["event"] == "stage_started"

    def test_strips_wall_clock_keys_recursively(self):
        stream = [{
            "type": "event", "event": "stage_finished", "seq": 2,
            "stage": "profile", "seconds": 1.23,
            "nested": {"p95": 0.9, "rows": 5, "inner": [{"mean": 1.0, "n": 2}]},
        }]
        fingerprint = event_fingerprint(stream)
        assert fingerprint == [{
            "type": "event", "event": "stage_finished", "seq": 2,
            "stage": "profile", "nested": {"rows": 5, "inner": [{"n": 2}]},
        }]


class TestProgressRenderer:
    def render(self, events, verbose=False):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream, verbose=verbose)
        for event in events:
            renderer(event)
        return stream.getvalue()

    def test_renders_stage_and_template_lines(self):
        output = self.render([
            {"type": "event", "event": "stage_started", "seq": 1,
             "stage": "profile"},
            {"type": "event", "event": "template_profiled", "seq": 2,
             "template_id": "t0", "queries": 8, "errors": 0,
             "quarantined": False},
            {"type": "event", "event": "stage_finished", "seq": 3,
             "stage": "profile", "seconds": 0.25},
        ])
        lines = output.splitlines()
        assert lines[0] == "[profile] started"
        assert lines[1] == "  profiled t0: 8 queries, 0 errors"
        assert lines[2] == "[profile] finished in 0.25s"

    def test_ignores_spans_and_uninteresting_events(self):
        output = self.render([
            {"type": "span", "name": "generate_workload"},
            {"type": "event", "event": "obscure_internal", "seq": 1, "x": 1},
        ])
        assert output == ""

    def test_verbose_renders_unknown_events_generically(self):
        output = self.render(
            [{"type": "event", "event": "obscure_internal", "seq": 1,
              "zebra": 2, "apple": 1}],
            verbose=True,
        )
        assert output.strip() == "obscure_internal apple=1 zebra=2"

    def test_quarantine_and_retry_lines(self):
        output = self.render([
            {"type": "event", "event": "template_quarantined", "seq": 1,
             "template_id": "t3", "reason": "timeout", "strikes": 2},
            {"type": "event", "event": "llm_retry", "seq": 2,
             "task": "refine", "attempt": 1, "error": "LLMTimeoutError"},
        ])
        assert "quarantined t3: timeout" in output
        assert "retry refine attempt 1: LLMTimeoutError" in output


class TestPipelineEventStream:
    """A real generate_workload run publishes the documented progress events
    in a deterministic, monotonically sequenced stream."""

    @pytest.fixture(scope="class")
    def events(self):
        sink = InMemoryCollector()
        barber = SQLBarber(
            build_fuzz_database(0),
            config=BarberConfig(seed=0, checkpoint_every_templates=1),
            sinks=[sink],
        )
        specs = [TemplateSpec(spec_id="a", num_joins=1)]
        distribution = CostDistribution.uniform(0.0, 200.0, 8, 3)
        barber.generate_workload(specs, distribution)
        return [e for e in sink.events if e["type"] == "event"]

    def test_stage_events_bracket_each_stage(self, events):
        names = [e["event"] for e in events]
        for stage in ("templates", "profile", "refine", "search"):
            started = names.index("stage_started")
            assert started >= 0
        starts = [e["stage"] for e in events if e["event"] == "stage_started"]
        finishes = [e["stage"] for e in events if e["event"] == "stage_finished"]
        assert starts == ["templates", "profile", "refine", "search"]
        assert finishes == starts

    def test_template_profiled_events_present(self, events):
        profiled = [e for e in events if e["event"] == "template_profiled"]
        assert profiled
        assert all("template_id" in e and "queries" in e for e in profiled)

    def test_cache_stats_event_last_ish(self, events):
        cache_events = [e for e in events if e["event"] == "cache_stats"]
        assert len(cache_events) == 1
        assert set(cache_events[0]) >= {"hits", "misses", "evictions", "size"}

    def test_seq_strictly_increasing(self, events):
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_stream_fingerprint_reproducible(self):
        def run():
            sink = InMemoryCollector()
            barber = SQLBarber(
                build_fuzz_database(0),
                config=BarberConfig(seed=0),
                sinks=[sink],
            )
            specs = [TemplateSpec(spec_id="a", num_joins=1)]
            distribution = CostDistribution.uniform(0.0, 200.0, 8, 3)
            barber.generate_workload(specs, distribution)
            return event_fingerprint(sink.events)

        assert run() == run()
