"""Counters, gauges, and histogram bucket-edge semantics."""

import pytest

from repro.obs import Histogram, MetricsRegistry, metric_key


class TestMetricKey:
    def test_no_labels(self):
        assert metric_key("llm.calls", {}) == "llm.calls"

    def test_labels_sorted(self):
        key = metric_key("llm.tokens", {"task": "refine", "a": 1})
        assert key == "llm.tokens{a=1,task=refine}"


class TestCounters:
    def test_count_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        registry.count("llm.calls", task="generate")
        registry.count("llm.calls", task="generate")
        registry.count("llm.calls", task="refine")
        assert registry.counter_value("llm.calls", task="generate") == 2
        assert registry.counter_value("llm.calls", task="refine") == 1
        assert registry.counter_value("llm.calls", task="missing") == 0

    def test_total_sums_across_labels(self):
        registry = MetricsRegistry()
        registry.count("llm.tokens.prompt", 10, task="a")
        registry.count("llm.tokens.prompt", 5, task="b")
        registry.count("llm.tokens.promptx", 100)  # prefix must not match
        assert registry.total("llm.tokens.prompt") == 15

    def test_unlabelled_counter_total(self):
        registry = MetricsRegistry()
        registry.count("sqldb.explain.calls", 3)
        assert registry.total("sqldb.explain.calls") == 3


class TestGauges:
    def test_gauge_overwrites(self):
        registry = MetricsRegistry()
        registry.gauge("search.distance", 10.0)
        registry.gauge("search.distance", 4.5)
        assert registry.snapshot()["gauges"]["search.distance"] == 4.5


class TestHistogramBuckets:
    def test_value_on_edge_lands_in_that_bucket(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        hist.observe(2.0)  # exactly an edge: le semantics
        assert hist.counts == [0, 1, 0, 0]

    def test_value_above_edge_goes_to_next_bucket(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        hist.observe(2.0000001)
        assert hist.counts == [0, 0, 1, 0]

    def test_overflow_bucket(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        hist.observe(100.0)
        assert hist.counts == [0, 0, 0, 1]

    def test_below_first_edge(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        hist.observe(0.5)
        assert hist.counts == [1, 0, 0, 0]

    def test_summary_stats(self):
        hist = Histogram(buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(5.0)
        assert hist.mean == pytest.approx(5.0 / 3)
        assert hist.min_value == 0.5
        assert hist.max_value == 3.0

    def test_snapshot_pairs_edges_with_counts(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(1.5)
        snap = hist.snapshot()
        assert snap["buckets"] == [[1.0, 0], [2.0, 1], [float("inf"), 0]]
        assert snap["count"] == 1


class TestRegistryHistograms:
    def test_declared_buckets_are_used(self):
        registry = MetricsRegistry()
        registry.declare_histogram("search.gap", (10.0, 100.0))
        registry.observe("search.gap", 50.0)
        hist = registry.histogram("search.gap")
        assert hist.buckets == (10.0, 100.0)
        assert hist.counts == [0, 1, 0]

    def test_default_buckets_for_undeclared(self):
        registry = MetricsRegistry()
        registry.observe("sqldb.explain.seconds", 0.003)
        hist = registry.histogram("sqldb.explain.seconds")
        assert hist.count == 1

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.count("c", 2, task="x")
        registry.gauge("g", 1.0)
        registry.observe("h", 0.01)
        snap = registry.snapshot()
        assert snap["counters"] == {"c{task=x}": 2}
        assert snap["gauges"] == {"g": 1.0}
        assert snap["histograms"]["h"]["count"] == 1


class TestHistogramQuantiles:
    def test_snapshot_reports_sketch_quantiles(self):
        hist = Histogram(buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 3.0, 3.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["p50"] == pytest.approx(1.5, rel=0.02)
        assert snap["p99"] == pytest.approx(3.0, rel=0.02)

    def test_quantile_delegates_to_sketch(self):
        hist = Histogram(buckets=(1.0,))
        assert hist.quantile(0.5) is None
        hist.observe(2.0)
        assert hist.quantile(0.5) == pytest.approx(2.0, rel=0.02)

    def test_negative_observation_clamped_for_sketch(self):
        # Bucket counts keep the raw value; the sketch floors it at zero.
        hist = Histogram(buckets=(1.0,))
        hist.observe(-0.5)
        assert hist.count == 1
        assert hist.quantile(0.5) == 0.0


class TestHistogramMerge:
    def test_merge_empty_into_nonempty_is_identity(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(1.5)
        before = hist.snapshot()
        hist.merge(Histogram(buckets=(1.0, 2.0)))
        assert hist.snapshot() == before

    def test_merge_nonempty_into_empty_copies_everything(self):
        source = Histogram(buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 9.0):
            source.observe(value)
        target = Histogram(buckets=(1.0, 2.0))
        target.merge(source)
        assert target.snapshot() == source.snapshot()

    def test_mismatched_buckets_raise_without_partial_merge(self):
        target = Histogram(buckets=(1.0, 2.0))
        target.observe(0.5)
        other = Histogram(buckets=(1.0, 4.0))
        other.observe(3.0)
        before = target.snapshot()
        with pytest.raises(ValueError, match="different buckets"):
            target.merge(other)
        assert target.snapshot() == before  # raise happens before any fold

    def test_merge_after_snapshot_keeps_accumulating(self):
        # snapshot() is a pure read: merging afterwards must keep working
        # and the next snapshot must reflect the merged state.
        target = Histogram(buckets=(1.0, 2.0))
        target.observe(0.5)
        first = target.snapshot()
        other = Histogram(buckets=(1.0, 2.0))
        other.observe(1.5)
        target.merge(other)
        second = target.snapshot()
        assert first["count"] == 1
        assert second["count"] == 2
        assert second["p99"] == pytest.approx(1.5, rel=0.02)

    def test_merge_matches_serial_observation(self):
        values = [0.1, 0.9, 1.1, 1.9, 3.5, 0.4, 2.2, 1.0]
        serial = Histogram(buckets=(1.0, 2.0))
        for value in values:
            serial.observe(value)
        a = Histogram(buckets=(1.0, 2.0))
        b = Histogram(buckets=(1.0, 2.0))
        for index, value in enumerate(values):
            (a if index % 2 else b).observe(value)
        a.merge(b)
        assert a.counts == serial.counts
        assert a.sketch.snapshot() == serial.sketch.snapshot()


class TestCanonicalOrdering:
    """Regression: keys and snapshots must be label-order and
    insertion-order insensitive, or parallel merges stop being
    bit-identical."""

    def test_metric_key_ignores_label_insertion_order(self):
        forward = metric_key("m", {"a": 1, "b": 2, "task": "x"})
        backward = metric_key("m", {"task": "x", "b": 2, "a": 1})
        assert forward == backward == "m{a=1,b=2,task=x}"

    def test_counter_labels_in_any_order_hit_one_key(self):
        registry = MetricsRegistry()
        registry.count("calls", task="a", stage="s")
        registry.count("calls", stage="s", task="a")
        assert registry.counter_value("calls", task="a", stage="s") == 2
        assert len(registry.snapshot()["counters"]) == 1

    def test_snapshot_is_insertion_order_insensitive(self):
        first = MetricsRegistry()
        second = MetricsRegistry()
        for name, task in [("x", "t1"), ("y", "t2"), ("x", "t2")]:
            first.count(name, task=task)
        for name, task in [("x", "t2"), ("y", "t2"), ("x", "t1")]:
            second.count(name, task=task)
        first.observe("lat", 0.01, stage="b")
        first.observe("lat", 0.02, stage="a")
        second.observe("lat", 0.02, stage="a")
        second.observe("lat", 0.01, stage="b")
        first.gauge("g", 1.0, z="z")
        second.gauge("g", 1.0, z="z")
        a, b = first.snapshot(), second.snapshot()
        assert a == b
        assert list(a["counters"]) == sorted(a["counters"])
        assert list(a["histograms"]) == sorted(a["histograms"])

    def test_merged_snapshot_sorted_regardless_of_source_order(self):
        base = MetricsRegistry()
        late = MetricsRegistry()
        late.count("zzz.calls")
        late.count("aaa.calls")
        base.count("mmm.calls")
        base.merge(late)
        assert list(base.snapshot()["counters"]) == [
            "aaa.calls", "mmm.calls", "zzz.calls",
        ]
