"""Counters, gauges, and histogram bucket-edge semantics."""

import pytest

from repro.obs import Histogram, MetricsRegistry, metric_key


class TestMetricKey:
    def test_no_labels(self):
        assert metric_key("llm.calls", {}) == "llm.calls"

    def test_labels_sorted(self):
        key = metric_key("llm.tokens", {"task": "refine", "a": 1})
        assert key == "llm.tokens{a=1,task=refine}"


class TestCounters:
    def test_count_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        registry.count("llm.calls", task="generate")
        registry.count("llm.calls", task="generate")
        registry.count("llm.calls", task="refine")
        assert registry.counter_value("llm.calls", task="generate") == 2
        assert registry.counter_value("llm.calls", task="refine") == 1
        assert registry.counter_value("llm.calls", task="missing") == 0

    def test_total_sums_across_labels(self):
        registry = MetricsRegistry()
        registry.count("llm.tokens.prompt", 10, task="a")
        registry.count("llm.tokens.prompt", 5, task="b")
        registry.count("llm.tokens.promptx", 100)  # prefix must not match
        assert registry.total("llm.tokens.prompt") == 15

    def test_unlabelled_counter_total(self):
        registry = MetricsRegistry()
        registry.count("sqldb.explain.calls", 3)
        assert registry.total("sqldb.explain.calls") == 3


class TestGauges:
    def test_gauge_overwrites(self):
        registry = MetricsRegistry()
        registry.gauge("search.distance", 10.0)
        registry.gauge("search.distance", 4.5)
        assert registry.snapshot()["gauges"]["search.distance"] == 4.5


class TestHistogramBuckets:
    def test_value_on_edge_lands_in_that_bucket(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        hist.observe(2.0)  # exactly an edge: le semantics
        assert hist.counts == [0, 1, 0, 0]

    def test_value_above_edge_goes_to_next_bucket(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        hist.observe(2.0000001)
        assert hist.counts == [0, 0, 1, 0]

    def test_overflow_bucket(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        hist.observe(100.0)
        assert hist.counts == [0, 0, 0, 1]

    def test_below_first_edge(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        hist.observe(0.5)
        assert hist.counts == [1, 0, 0, 0]

    def test_summary_stats(self):
        hist = Histogram(buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(5.0)
        assert hist.mean == pytest.approx(5.0 / 3)
        assert hist.min_value == 0.5
        assert hist.max_value == 3.0

    def test_snapshot_pairs_edges_with_counts(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(1.5)
        snap = hist.snapshot()
        assert snap["buckets"] == [[1.0, 0], [2.0, 1], [float("inf"), 0]]
        assert snap["count"] == 1


class TestRegistryHistograms:
    def test_declared_buckets_are_used(self):
        registry = MetricsRegistry()
        registry.declare_histogram("search.gap", (10.0, 100.0))
        registry.observe("search.gap", 50.0)
        hist = registry.histogram("search.gap")
        assert hist.buckets == (10.0, 100.0)
        assert hist.counts == [0, 1, 0]

    def test_default_buckets_for_undeclared(self):
        registry = MetricsRegistry()
        registry.observe("sqldb.explain.seconds", 0.003)
        hist = registry.histogram("sqldb.explain.seconds")
        assert hist.count == 1

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.count("c", 2, task="x")
        registry.gauge("g", 1.0)
        registry.observe("h", 0.01)
        snap = registry.snapshot()
        assert snap["counters"] == {"c{task=x}": 2}
        assert snap["gauges"] == {"g": 1.0}
        assert snap["histograms"]["h"]["count"] == 1
