"""``repro perf-report``: stage, operator, and latency-quantile tables
rendered from a JSONL trace of a profiled run."""

import pytest

from repro.core import BarberConfig, SQLBarber
from repro.fuzz.runner import build_fuzz_database
from repro.obs import (
    JsonlSink,
    Telemetry,
    read_events,
    render_perf_report,
    render_perf_report_file,
)
from repro.workload import CostDistribution, TemplateSpec


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("perf") / "trace.jsonl"
    barber = SQLBarber(
        build_fuzz_database(0),
        config=BarberConfig(seed=0, profile=True),
    )
    telemetry = Telemetry(sinks=[JsonlSink(str(path))], profile=True)
    specs = [TemplateSpec(spec_id="a", num_joins=1)]
    # actual_rows is an executing cost metric: every profiled sample runs
    # the engine, so the operator profiler has plans to record.
    distribution = CostDistribution.uniform(
        0.0, 200.0, 8, 3, cost_type="actual_rows"
    )
    barber.generate_workload(specs, distribution, telemetry=telemetry)
    return str(path)


class TestPerfReport:
    def test_all_three_sections_render(self, trace_path):
        report = render_perf_report_file(trace_path)
        assert "Stage timings" in report
        assert "Operator profile" in report
        assert "Latency quantiles" in report

    def test_stage_rows_cover_pipeline_stages(self, trace_path):
        report = render_perf_report_file(trace_path)
        for stage in ("templates", "profile", "refine", "search"):
            assert stage in report

    def test_operator_rows_present_with_quantiles(self, trace_path):
        report = render_perf_report_file(trace_path)
        assert "p50" in report and "p95" in report and "p99" in report
        # At least a scan shows up in any executed plan.
        assert "Scan" in report

    def test_latency_histograms_listed(self, trace_path):
        report = render_perf_report_file(trace_path)
        assert "sqldb.execute.seconds" in report

    def test_empty_trace_renders_fallback(self):
        assert "no" in render_perf_report([]).lower()

    def test_unprofiled_trace_omits_operator_section(self, tmp_path):
        path = tmp_path / "plain.jsonl"
        telemetry = Telemetry(sinks=[JsonlSink(str(path))])
        telemetry.event("stage_started", stage="x")
        telemetry.finish()
        report = render_perf_report(read_events(str(path)))
        assert "Operator profile" not in report
