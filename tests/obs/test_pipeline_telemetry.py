"""End-to-end telemetry: a generate_workload run emits spans for all four
stages, with token totals consistent between MetricsRegistry and UsageMeter."""

import pytest

from repro.core import BarberConfig, SQLBarber
from repro.datasets import build_tpch
from repro.obs import InMemoryCollector
from repro.workload import CostDistribution, TemplateSpec

STAGES = ("stage:templates", "stage:profile", "stage:refine", "stage:search")


@pytest.fixture(scope="module")
def run_result():
    barber = SQLBarber(
        build_tpch(scale=0.002),
        config=BarberConfig(seed=0),
        sinks=[InMemoryCollector()],
    )
    specs = [
        TemplateSpec.from_natural_language(
            "one join and two predicate values", spec_id="obs_0"
        ),
        TemplateSpec.from_natural_language(
            "an aggregation with a group by", spec_id="obs_1"
        ),
    ]
    distribution = CostDistribution.uniform(0, 800, 12, 3)
    return barber.generate_workload(
        specs, distribution, time_budget_seconds=60
    )


class TestStageSpans:
    def test_all_four_stages_present(self, run_result):
        root = run_result.telemetry.tracer.find("generate_workload")
        assert len(root) == 1
        assert [child.name for child in root[0].children] == list(STAGES)

    def test_stage_seconds_sum_to_elapsed(self, run_result):
        total = sum(run_result.stage_seconds.values())
        assert total == pytest.approx(run_result.elapsed_seconds, rel=0.05)

    def test_stage_seconds_match_span_durations(self, run_result):
        root = run_result.telemetry.tracer.find("generate_workload")[0]
        for child in root.children:
            stage = child.name.removeprefix("stage:")
            assert child.duration == pytest.approx(
                run_result.stage_seconds[stage], abs=0.05
            )

    def test_setup_seconds_excludes_search(self, run_result):
        assert run_result.setup_seconds == pytest.approx(
            sum(
                seconds
                for stage, seconds in run_result.stage_seconds.items()
                if stage != "search"
            )
        )

    def test_distance_trace_offset_by_setup(self, run_result):
        # The distance trace starts exactly at the directly-measured setup
        # boundary (no back-computation from the search trace).
        assert run_result.distance_trace[0][0] == pytest.approx(
            run_result.setup_seconds, abs=1e-6
        )


class TestTokenConsistency:
    def test_metrics_match_usage_meter(self, run_result):
        metrics = run_result.telemetry.metrics
        usage = run_result.llm_usage
        assert metrics.total("llm.tokens.prompt") == usage["prompt_tokens"]
        assert (
            metrics.total("llm.tokens.completion")
            == usage["completion_tokens"]
        )
        assert metrics.total("llm.calls") == usage["num_calls"]

    def test_tokens_by_task_sums_to_totals(self, run_result):
        usage = run_result.llm_usage
        by_task = usage["tokens_by_task"]
        assert sum(
            bucket["prompt_tokens"] for bucket in by_task.values()
        ) == usage["prompt_tokens"]
        assert sum(
            bucket["completion_tokens"] for bucket in by_task.values()
        ) == usage["completion_tokens"]
        assert set(by_task) == set(usage["calls_by_task"])

    def test_stage_span_deltas_cover_all_tokens(self, run_result):
        root = run_result.telemetry.tracer.find("generate_workload")[0]
        stage_tokens = sum(
            child.attributes.get("llm_tokens", 0) for child in root.children
        )
        assert stage_tokens == run_result.llm_usage["total_tokens"]


class TestSubstrateMetrics:
    def test_engine_calls_recorded(self, run_result):
        metrics = run_result.telemetry.metrics
        assert metrics.total("sqldb.explain.calls") > 0
        histogram = metrics.histogram("sqldb.explain.seconds")
        assert histogram is not None
        assert histogram.count == metrics.total("sqldb.explain.calls")

    def test_llm_call_spans_carry_tokens(self, run_result):
        spans = run_result.telemetry.tracer.find("llm.call")
        assert spans, "llm.call spans missing"
        assert sum(
            s.attributes["prompt_tokens"] + s.attributes["completion_tokens"]
            for s in spans
        ) == run_result.llm_usage["total_tokens"]
        assert all("fault_injected" in s.attributes for s in spans)

    def test_profile_spans_nested_under_profile_stage(self, run_result):
        root = run_result.telemetry.tracer.find("generate_workload")[0]
        profile_stage = root.children[1]
        names = {s.name for s in profile_stage.iter_subtree()}
        assert "profile.template" in names

    def test_collector_saw_every_span(self, run_result):
        collector = run_result.telemetry.sinks[0]
        exported = [e for e in collector.events if e["type"] == "span"]
        in_tree = list(run_result.telemetry.tracer.iter_spans())
        assert len(exported) == len(in_tree)

    def test_queries_kept_counter_matches_workload(self, run_result):
        metrics = run_result.telemetry.metrics
        assert metrics.total("search.queries.kept") == len(
            run_result.workload
        )


class TestExplainAnalyzeCacheCounters:
    """Regression: explain_analyze must route its estimate through the same
    cache-aware entry as explain, so cached estimates never re-count as
    fresh engine calls and the seconds histogram stays consistent."""

    def test_analyze_after_explain_is_a_cache_hit(self):
        from repro.obs import Telemetry, use_telemetry

        db = build_tpch(scale=0.002, seed=3)
        sql = "select count(*) from nation where n_regionkey = 1"
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            first = db.explain(sql)
            estimates, execution = db.explain_analyze(sql)
        metrics = telemetry.metrics
        assert estimates == first
        assert execution.row_count == 1
        # One computed estimate (the cold explain); the analyze reused it.
        assert metrics.total("sqldb.explain.calls") == 1
        assert metrics.total("sqldb.explain.cache.misses") == 1
        assert metrics.total("sqldb.explain.cache.hits") == 1
        histogram = metrics.histogram("sqldb.explain.seconds")
        assert histogram.count == metrics.total("sqldb.explain.calls")

    def test_analyze_with_cache_disabled_counts_each_call(self):
        from repro.obs import Telemetry, use_telemetry

        db = build_tpch(scale=0.002, seed=3)
        db.set_explain_cache(False)
        sql = "select count(*) from nation where n_regionkey = 1"
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            db.explain(sql)
            db.explain_analyze(sql)
        metrics = telemetry.metrics
        assert metrics.total("sqldb.explain.calls") == 2
        assert metrics.total("sqldb.explain.cache.hits") == 0
        histogram = metrics.histogram("sqldb.explain.seconds")
        assert histogram.count == 2
