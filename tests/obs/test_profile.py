"""Operator-level executor profiling: trees, aggregation, determinism.

Covers the ``EXPLAIN PROFILE`` surface (``Database.explain_profile`` /
``execute_profiled``), the ambient arming points, the collector's
aggregation and checkpoint transport, and — critically — that the
fingerprint is timing-free and merge-stable.
"""

import pytest

from repro.datasets import build_tpch
from repro.obs import (
    ExecProfileCollector,
    NullTelemetry,
    OperatorProfile,
    Telemetry,
    capture_profile,
    render_profile,
    use_telemetry,
)
from repro.obs.profile import ACTIVE_RUN, _strip_timings


@pytest.fixture(scope="module")
def db():
    return build_tpch(scale=0.002, seed=3)


JOIN_SQL = (
    "select c_name, o_totalprice from customer c "
    "join orders o on c.c_custkey = o.o_custkey "
    "where o.o_totalprice > 1000 order by o_totalprice limit 5"
)


class TestCaptureProfile:
    def test_execute_profiled_returns_result_and_tree(self, db):
        result, profile = db.execute_profiled(
            "select n_name from nation where n_regionkey = 1"
        )
        assert result.row_count == profile.rows_out
        assert profile.batches == 1
        node_types = [node.node_type for node in profile.iter_nodes()]
        assert any("Scan" in t for t in node_types)

    def test_explain_profile_renders_rows_and_times(self, db):
        text = db.explain_profile(JOIN_SQL)
        assert "rows=" in text and "batches=" in text
        assert "self=" in text and "total=" in text
        # Plan shape is visible: the join sits above its inputs.
        lines = text.splitlines()
        assert any("Join" in line for line in lines)
        assert len(lines) >= 3

    def test_rows_out_matches_execution(self, db):
        executed = db.execute(JOIN_SQL)
        _, profile = db.execute_profiled(JOIN_SQL)
        assert profile.rows_out == executed.row_count

    def test_capture_outranks_run_telemetry_collector(self, db):
        telemetry = Telemetry(profile=True)
        with use_telemetry(telemetry):
            db.execute("select n_name from nation")
            with capture_profile() as capture:
                db.execute("select r_name from region")
        assert capture.profile is not None
        # The captured statement did not also land in the run collector.
        assert telemetry.profiler.queries == 1

    def test_total_time_covers_children(self, db):
        _, profile = db.execute_profiled(JOIN_SQL)
        for node in profile.iter_nodes():
            child_total = sum(c.total_seconds for c in node.children)
            assert node.total_seconds >= child_total - 1e-9
            assert node.self_seconds >= 0.0


class TestUnarmedPath:
    def test_unarmed_execution_records_nothing(self, db):
        with use_telemetry(Telemetry()):  # metrics on, profiler off
            db.execute(JOIN_SQL)
        assert ACTIVE_RUN.get() is None

    def test_null_telemetry_has_no_profiler(self):
        assert NullTelemetry().profiler is None

    def test_results_identical_armed_vs_unarmed(self, db):
        plain = db.execute(JOIN_SQL)
        armed, _ = db.execute_profiled(JOIN_SQL)
        assert armed.table.column_names == plain.table.column_names
        for mine, theirs in zip(armed.table.columns, plain.table.columns):
            assert mine.data.tolist() == theirs.data.tolist()


class TestRunTelemetryCollection:
    def test_profile_true_collects_every_statement(self, db):
        telemetry = Telemetry(profile=True)
        with use_telemetry(telemetry):
            db.execute("select n_name from nation")
            db.execute("select n_name from nation")
            db.execute("select r_name from region")
        snapshot = telemetry.profiler.snapshot()
        assert snapshot["queries"] == 3
        # Two identical statements folded into one plan entry.
        plan_queries = sorted(p["queries"] for p in snapshot["plans"])
        assert plan_queries == [1, 2]

    def test_operator_aggregate_reports_quantiles(self, db):
        telemetry = Telemetry(profile=True)
        with use_telemetry(telemetry):
            for _ in range(4):
                db.execute("select n_name from nation where n_regionkey = 0")
        operators = telemetry.profiler.snapshot()["operators"]
        assert operators
        for agg in operators.values():
            assert agg["calls"] >= 4 or agg["calls"] >= 1
            assert set(agg) >= {"calls", "rows", "self_seconds", "p50", "p95", "p99"}


class TestCollectorSemantics:
    def tree(self, rows=5, seconds=0.25):
        child = OperatorProfile(
            "SeqScan", detail="t", est_rows=10.0, rows_out=rows,
            batches=1, self_seconds=seconds / 2, total_seconds=seconds / 2,
        )
        return OperatorProfile(
            "Limit", est_rows=5.0, rows_out=rows, batches=1,
            self_seconds=seconds / 2, total_seconds=seconds,
            children=[child],
        )

    def test_same_shape_trees_merge(self):
        collector = ExecProfileCollector()
        collector.record([self.tree(rows=5)])
        collector.record([self.tree(rows=7)])
        snapshot = collector.snapshot()
        assert snapshot["queries"] == 2
        assert len(snapshot["plans"]) == 1
        assert snapshot["plans"][0]["plan"]["rows_out"] == 12

    def test_collector_merge_matches_serial_record(self):
        serial = ExecProfileCollector()
        a, b = ExecProfileCollector(), ExecProfileCollector()
        for index in range(6):
            tree_for = self.tree(rows=index)
            serial.record([self.tree(rows=index)])
            (a if index % 2 else b).record([tree_for])
        a.merge(b)
        assert a.fingerprint() == serial.fingerprint()

    def test_fingerprint_strips_all_timing_keys(self):
        collector = ExecProfileCollector()
        collector.record([self.tree()])
        fingerprint = collector.fingerprint()

        def walk(value):
            if isinstance(value, dict):
                for key, inner in value.items():
                    assert key not in {
                        "self_seconds", "total_seconds", "p50", "p95", "p99",
                        "min", "max",
                    }
                    walk(inner)
            elif isinstance(value, list):
                for item in value:
                    walk(item)

        walk(fingerprint)
        assert fingerprint["queries"] == 1
        assert fingerprint["plans"][0]["plan"]["rows_out"] == 5

    def test_state_roundtrip_preserves_fingerprint(self):
        collector = ExecProfileCollector()
        collector.record([self.tree(rows=3)])
        collector.record([self.tree(rows=4)])
        restored = ExecProfileCollector.from_state(collector.to_state())
        assert restored.fingerprint() == collector.fingerprint()

    def test_restored_collector_keeps_aggregating_under_same_key(self):
        # The kill/resume property: recording the same plan shape after a
        # restore must fold into the restored entry, not create a second.
        collector = ExecProfileCollector()
        collector.record([self.tree(rows=3)])
        restored = ExecProfileCollector.from_state(collector.to_state())
        restored.record([self.tree(rows=3)])

        reference = ExecProfileCollector()
        reference.record([self.tree(rows=3)])
        reference.record([self.tree(rows=3)])
        assert restored.fingerprint() == reference.fingerprint()

    def test_multi_root_combined_before_keying(self):
        subplan = OperatorProfile("SeqScan", detail="s", rows_out=1, batches=1)
        main = self.tree(rows=2)
        collector = ExecProfileCollector()
        collector.record([subplan, main])
        snapshot = collector.snapshot()
        assert len(snapshot["plans"]) == 1
        assert snapshot["plans"][0]["plan"]["operator"] == "Query"
        restored = ExecProfileCollector.from_state(collector.to_state())
        restored.record(
            [OperatorProfile("SeqScan", detail="s", rows_out=1, batches=1),
             self.tree(rows=2)]
        )
        assert len(restored.snapshot()["plans"]) == 1


class TestRendering:
    def test_render_profile_main_plan_first_subplans_after(self):
        subplan = OperatorProfile("SeqScan", detail="sub", rows_out=1, batches=1)
        main = OperatorProfile("Limit", rows_out=2, batches=1)
        text = render_profile([subplan, main])
        lines = text.splitlines()
        assert lines[0].startswith("Limit")
        assert "SubPlan 1" in text

    def test_strip_timings_handles_nested_lists(self):
        payload = {"a": [{"seconds": 1.0, "rows": 2}], "p95": 0.1}
        assert _strip_timings(payload) == {"a": [{"rows": 2}]}
