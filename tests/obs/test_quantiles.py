"""Streaming quantile sketches: accuracy, and merge() bit-identity.

The sketch backs every histogram's p50/p95/p99 and must satisfy the
parallel-determinism contract: merging per-worker sketches — in any
partitioning, at any worker count — yields a snapshot bit-identical to
the serial one.
"""

import pickle
import random

import pytest

from repro.obs import QuantileSketch


def observed(values):
    sketch = QuantileSketch()
    for value in values:
        sketch.observe(value)
    return sketch


class TestAccuracy:
    def test_relative_error_bound(self):
        rng = random.Random(7)
        values = [rng.uniform(0.001, 50.0) for _ in range(5000)]
        sketch = observed(values)
        ordered = sorted(values)
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = ordered[min(int(q * len(ordered)), len(ordered) - 1)]
            estimate = sketch.quantile(q)
            assert estimate == pytest.approx(exact, rel=0.05)

    def test_single_value(self):
        sketch = observed([3.25])
        for q in (0.0, 0.5, 0.99, 1.0):
            assert sketch.quantile(q) == pytest.approx(3.25, rel=0.02)

    def test_empty_sketch_quantile_is_none(self):
        assert QuantileSketch().quantile(0.5) is None

    def test_zeros_tracked_in_zero_bucket(self):
        sketch = observed([0.0, 0.0, 5.0])
        assert sketch.count == 3
        assert sketch.quantile(0.5) == pytest.approx(0.0, abs=1e-9)

    def test_negative_values_rejected(self):
        # Histogram clamps to zero before feeding the sketch; the sketch
        # itself refuses silently-wrong negatives.
        with pytest.raises(ValueError, match="non-negative"):
            QuantileSketch().observe(-1.0)

    def test_quantile_clamped_to_observed_range(self):
        sketch = observed([1.0, 2.0, 4.0])
        assert sketch.quantile(0.0) >= 1.0
        assert sketch.quantile(1.0) <= 4.0


class TestMergeBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 3, 5, 8])
    def test_partitioned_merge_matches_serial(self, workers):
        rng = random.Random(11)
        values = [rng.expovariate(2.0) for _ in range(2000)]
        serial = observed(values)

        parts = [QuantileSketch() for _ in range(workers)]
        for index, value in enumerate(values):
            parts[index % workers].observe(value)
        merged = QuantileSketch()
        for part in parts:
            merged.merge(part)

        assert merged.snapshot() == serial.snapshot()

    def test_merge_order_is_irrelevant(self):
        rng = random.Random(3)
        values = [rng.uniform(0.01, 9.0) for _ in range(600)]
        a, b, c = observed(values[::3]), observed(values[1::3]), observed(values[2::3])

        forward = QuantileSketch()
        for part in (a, b, c):
            forward.merge(part)
        backward = QuantileSketch()
        for part in (c, b, a):
            backward.merge(part)
        assert forward.snapshot() == backward.snapshot()

    def test_merge_empty_into_nonempty_is_identity(self):
        sketch = observed([1.0, 2.0])
        before = sketch.snapshot()
        sketch.merge(QuantileSketch())
        assert sketch.snapshot() == before

    def test_merge_nonempty_into_empty_copies(self):
        source = observed([0.5, 1.5, 2.5])
        target = QuantileSketch()
        target.merge(source)
        assert target.snapshot() == source.snapshot()

    def test_merge_does_not_alias_source_buckets(self):
        source = observed([1.0])
        target = QuantileSketch()
        target.merge(source)
        target.observe(1.0)
        assert source.count == 1


class TestSnapshotAndPickle:
    def test_snapshot_reports_standard_quantiles(self):
        snap = observed([0.1 * i for i in range(1, 101)]).snapshot()
        assert set(snap) >= {"count", "p50", "p90", "p95", "p99"}
        assert snap["count"] == 100
        assert snap["p50"] <= snap["p95"] <= snap["p99"]

    def test_pickle_roundtrip_preserves_snapshot(self):
        rng = random.Random(5)
        sketch = observed([rng.uniform(0.01, 4.0) for _ in range(50)])
        clone = pickle.loads(pickle.dumps(sketch))
        assert clone.snapshot() == sketch.snapshot()
        clone.observe(1.0)
        assert clone.count == sketch.count + 1
