"""The trace-report builder and CLI subcommand."""

import pytest

from repro.cli import main
from repro.obs import render_report, stage_rows, task_rows


def _span(span_id, parent_id, name, duration, attributes=None):
    return {
        "type": "span",
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "start_s": 0.0,
        "duration_s": duration,
        "attributes": attributes or {},
        "error": None,
    }


SYNTHETIC = [
    _span(2, 1, "stage:templates", 1.0,
          {"llm_calls": 4, "llm_tokens": 600, "db_calls": 0}),
    _span(3, 1, "stage:profile", 0.5,
          {"llm_calls": 0, "llm_tokens": 0, "db_calls": 40}),
    _span(4, 1, "stage:refine", 0.25,
          {"llm_calls": 2, "llm_tokens": 400, "db_calls": 10}),
    _span(5, 1, "stage:search", 2.25,
          {"llm_calls": 0, "llm_tokens": 0, "db_calls": 300}),
    _span(1, None, "generate_workload", 4.0),
    {
        "type": "metrics",
        "metrics": {
            "counters": {
                "llm.calls{task=generate_template}": 4,
                "llm.calls{task=refine_template}": 2,
                "llm.tokens.prompt{task=generate_template}": 500,
                "llm.tokens.completion{task=generate_template}": 100,
                "llm.tokens.prompt{task=refine_template}": 350,
                "llm.tokens.completion{task=refine_template}": 50,
                "sqldb.explain.calls": 350,
            },
            "gauges": {},
            "histograms": {},
        },
    },
]


class TestStageRows:
    def test_rows_and_total(self):
        rows = stage_rows([e for e in SYNTHETIC if e["type"] == "span"])
        assert [r["stage"] for r in rows] == [
            "templates", "profile", "refine", "search", "total"
        ]
        total = rows[-1]
        assert total["seconds"] == pytest.approx(4.0)
        assert total["llm_tokens"] == 1000
        assert total["db_calls"] == 350

    def test_empty_trace(self):
        assert stage_rows([]) == []


class TestTaskRows:
    def test_tasks_aggregated_from_counters(self):
        rows = task_rows(SYNTHETIC[-1]["metrics"])
        by_task = {r["task"]: r for r in rows}
        assert by_task["generate_template"]["calls"] == 4
        assert by_task["generate_template"]["prompt_tokens"] == 500
        assert by_task["refine_template"]["completion_tokens"] == 50
        assert by_task["total"]["prompt_tokens"] == 850


class TestRenderReport:
    def test_sections_present(self):
        text = render_report(SYNTHETIC)
        assert "Per-stage breakdown" in text
        assert "LLM usage by task" in text
        assert "Engine counters" in text
        assert "elapsed=4.000s" in text


class TestCliRoundTrip:
    def test_generate_then_trace_report(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        code = main([
            "generate", "--db", "tpch", "--scale", "0.002",
            "--queries", "12", "--intervals", "3", "--cost-max", "800",
            "--spec", "one join and two predicate values",
            "--time-budget", "60", "--trace-out", str(trace),
        ])
        assert code == 0
        capsys.readouterr()

        assert main(["trace-report", str(trace)]) == 0
        out = capsys.readouterr().out
        for stage in ("templates", "profile", "refine", "search", "total"):
            assert stage in out
        assert "Per-stage breakdown" in out
        assert "generate_template" in out

    def test_report_stage_times_and_tokens_match_summary(
        self, capsys, tmp_path
    ):
        import json

        trace = tmp_path / "trace.jsonl"
        code = main([
            "generate", "--db", "tpch", "--scale", "0.002",
            "--queries", "12", "--intervals", "3", "--cost-max", "800",
            "--spec", "one join and two predicate values",
            "--time-budget", "60", "--trace-out", str(trace),
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)

        from repro.obs import read_events, split_events
        spans, metrics = split_events(read_events(str(trace)))
        rows = stage_rows(spans)
        total = rows[-1]
        # Stage times sum to ~elapsed_seconds.
        assert total["seconds"] == pytest.approx(
            summary["elapsed_seconds"], abs=0.05
        )
        # Trace token totals match WorkloadResult.llm_usage.
        assert total["llm_tokens"] == summary["llm_usage"]["total_tokens"]
        tasks = task_rows(metrics)
        assert tasks[-1]["calls"] == summary["llm_usage"]["num_calls"]
