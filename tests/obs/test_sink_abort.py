"""JSONL trace sinks on abort paths.

A trace that dies with the process is worthless exactly when it matters
most, so :class:`JsonlSink` flushes per record: after an injected crash or
a budget abort the file on disk must end on a complete, parseable line.
"""

import json

import pytest

from repro.core import BarberConfig, SQLBarber
from repro.fuzz.runner import build_fuzz_database
from repro.llm import SimulatedLLM
from repro.obs import JsonlSink, Telemetry, read_events
from repro.resilience import InjectedCrash, ResilientLLMClient
from repro.resilience.clock import SimulatedClock


def run_with_sink(trace_path, tmp_path, kill_at=None, max_tokens=None):
    inner = SimulatedLLM(seed=5)
    llm = inner
    if max_tokens is not None:
        llm = ResilientLLMClient(
            inner, clock=SimulatedClock(), max_tokens=max_tokens
        )
    barber = SQLBarber(
        build_fuzz_database(0),
        llm=llm,
        config=BarberConfig(seed=5, checkpoint_every_templates=1),
    )
    from repro.workload import CostDistribution, TemplateSpec

    specs = [
        TemplateSpec(spec_id="a", num_joins=1),
        TemplateSpec(spec_id="b", num_joins=0),
    ]
    distribution = CostDistribution.uniform(0.0, 200.0, 8, 3)
    saves = {"count": 0}

    def killer(manager, payload):
        saves["count"] += 1
        if kill_at is not None and saves["count"] == kill_at:
            raise InjectedCrash(f"dead after save #{kill_at}")

    telemetry = Telemetry(sinks=[JsonlSink(str(trace_path))])
    return barber.generate_workload(
        specs,
        distribution,
        telemetry=telemetry,
        checkpoint_dir=tmp_path,
        on_checkpoint_save=killer,
    )


class TestJsonlSinkFlushOnAbort:
    @pytest.mark.parametrize("kill_at", [1, 3])
    def test_trace_complete_after_injected_crash(self, tmp_path, kill_at):
        trace = tmp_path / "trace.jsonl"
        with pytest.raises(InjectedCrash):
            run_with_sink(trace, tmp_path / "ckpt", kill_at=kill_at)

        raw = trace.read_text()
        assert raw, "trace empty after crash"
        assert raw.endswith("\n"), "last record truncated mid-line"
        events = read_events(str(trace))
        for event in events:  # every line parsed back as a dict
            assert isinstance(event, dict) and "type" in event
        # Events recorded before the kill made it to disk.  The crash is
        # raised from inside save #kill_at, so exactly the earlier saves
        # produced their checkpoint_saved events.
        names = [e.get("event") for e in events if e.get("type") == "event"]
        assert "stage_started" in names
        assert names.count("checkpoint_saved") == kill_at - 1

    def test_trace_complete_after_budget_abort(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        result = run_with_sink(trace, tmp_path / "ckpt", max_tokens=9_000)
        assert result.aborted
        raw = trace.read_text()
        assert raw.endswith("\n")
        events = read_events(str(trace))
        assert any(e.get("type") == "event" for e in events)

    def test_emit_after_close_is_ignored(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({"type": "event", "event": "a", "seq": 1})
        sink.close()
        sink.emit({"type": "event", "event": "b", "seq": 2})  # no raise
        sink.close()  # idempotent
        assert len(read_events(str(path))) == 1

    def test_every_line_is_valid_json_mid_stream(self, tmp_path):
        # Read the file while the sink is still open: per-record flush means
        # a concurrent reader (tail -f, a dashboard) always sees whole lines.
        path = tmp_path / "live.jsonl"
        sink = JsonlSink(str(path))
        for index in range(5):
            sink.emit({"type": "event", "event": "tick", "seq": index})
            lines = path.read_text().splitlines()
            assert len(lines) == index + 1
            json.loads(lines[-1])
        sink.close()
