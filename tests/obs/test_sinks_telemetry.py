"""Sinks (JSONL round-trip, logging) and the ambient-telemetry runtime."""

import json
import logging

import pytest

from repro.obs import (
    InMemoryCollector,
    JsonlSink,
    LoggingSink,
    NULL,
    Telemetry,
    current,
    read_events,
    use_telemetry,
)


class TestAmbientTelemetry:
    def test_default_is_null(self):
        assert current() is NULL
        assert not current().enabled

    def test_use_telemetry_installs_and_restores(self):
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            assert current() is telemetry
        assert current() is NULL

    def test_null_span_is_reusable_noop(self):
        with NULL.span("anything", a=1) as span:
            span.set(b=2)
        with NULL.span("again") as span2:
            assert span2 is span  # shared singleton
        NULL.count("x")
        NULL.gauge("y", 1.0)
        NULL.observe("z", 0.5)
        NULL.finish()


class TestTelemetry:
    def test_spans_feed_metrics_and_collector(self):
        collector = InMemoryCollector()
        telemetry = Telemetry(sinks=[collector])
        with telemetry.span("outer"):
            with telemetry.span("inner", kind="leaf"):
                telemetry.count("ops")
        telemetry.finish()
        names = [e["name"] for e in collector.spans()]
        assert names == ["inner", "outer"]  # close order
        assert collector.metrics()["counters"] == {"ops": 1}
        assert collector.closed

    def test_finish_is_idempotent(self):
        collector = InMemoryCollector()
        telemetry = Telemetry(sinks=[collector])
        telemetry.finish()
        telemetry.finish()
        assert sum(1 for e in collector.events if e["type"] == "metrics") == 1


class TestJsonlRoundTrip:
    def test_events_survive_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        collector = InMemoryCollector()
        telemetry = Telemetry(sinks=[JsonlSink(path), collector])
        with telemetry.span("generate_workload", db="tpch"):
            with telemetry.span("stage:profile") as span:
                span.set(samples=12)
            telemetry.count("llm.calls", 3, task="generate_template")
            telemetry.observe("sqldb.explain.seconds", 0.004)
        telemetry.finish()

        loaded = read_events(path)
        assert loaded == json.loads(json.dumps(collector.events))
        span_names = [e["name"] for e in loaded if e["type"] == "span"]
        assert span_names == ["stage:profile", "generate_workload"]
        stage = next(e for e in loaded if e["name"] == "stage:profile")
        assert stage["attributes"] == {"samples": 12}
        metrics = loaded[-1]
        assert metrics["type"] == "metrics"
        counters = metrics["metrics"]["counters"]
        assert counters["llm.calls{task=generate_template}"] == 3
        assert (
            metrics["metrics"]["histograms"]["sqldb.explain.seconds"]["count"]
            == 1
        )

    def test_error_spans_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        telemetry = Telemetry(sinks=[JsonlSink(path)])
        with pytest.raises(RuntimeError):
            with telemetry.span("failing"):
                raise RuntimeError("nope")
        telemetry.finish()
        events = read_events(path)
        assert events[0]["error"] == "RuntimeError: nope"


class TestLoggingSink:
    def test_span_events_reach_logger(self, caplog):
        # A logger outside the `repro` hierarchy: setup_logging() (run by
        # CLI tests) disables propagation on `repro`, which would hide
        # these records from caplog's root handler.
        logger = logging.getLogger("obs-sink-test")
        sink = LoggingSink(logger=logger, level=logging.INFO)
        telemetry = Telemetry(sinks=[sink])
        with caplog.at_level(logging.INFO, logger="obs-sink-test"):
            with telemetry.span("llm.call", task="refine"):
                pass
            telemetry.finish()
        text = caplog.text
        assert "span llm.call" in text
        assert "task=refine" in text
        assert "metrics" in text

    def test_disabled_level_emits_nothing(self, caplog):
        logger = logging.getLogger("obs-sink-test2")
        logger.setLevel(logging.WARNING)
        sink = LoggingSink(logger=logger, level=logging.DEBUG)
        telemetry = Telemetry(sinks=[sink])
        with telemetry.span("quiet"):
            pass
        telemetry.finish()
        assert "quiet" not in caplog.text
