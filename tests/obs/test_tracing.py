"""Span nesting, attributes, error capture, and event export."""

import pytest

from repro.obs import Span, Tracer


class TestNesting:
    def test_root_and_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                with tracer.span("leaf"):
                    pass
        assert [s.name for s in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_parent_ids_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.span_id != outer.span_id

    def test_siblings_after_close_attach_to_root(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]

    def test_iter_spans_and_find(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                pass
        assert [s.name for s in tracer.iter_spans()] == ["a", "b", "b"]
        assert len(tracer.find("b")) == 2


class TestAttributes:
    def test_initial_and_set(self):
        tracer = Tracer()
        with tracer.span("op", template_id="t1") as span:
            span.set(samples=12, errors=0)
            span.set(errors=3)
        assert span.attributes == {
            "template_id": "t1", "samples": 12, "errors": 3
        }

    def test_duration_is_monotone(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.end is not None
        assert outer.duration >= inner.duration >= 0.0


class TestErrorCapture:
    def test_exception_is_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("risky"):
                raise ValueError("boom")
        span = tracer.roots[0]
        assert span.error == "ValueError: boom"
        assert span.end is not None
        assert not span.ok

    def test_error_propagates_through_ancestors(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("inner failed")
        outer, inner = tracer.roots[0], tracer.roots[0].children[0]
        assert inner.error == "RuntimeError: inner failed"
        assert outer.error == "RuntimeError: inner failed"

    def test_clean_span_has_no_error(self):
        tracer = Tracer()
        with tracer.span("fine"):
            pass
        assert tracer.roots[0].ok


class TestEvents:
    def test_on_end_fires_inner_first(self):
        ended = []
        tracer = Tracer(on_end=lambda s: ended.append(s.name))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert ended == ["inner", "outer"]

    def test_to_event_shape(self):
        tracer = Tracer()
        with tracer.span("op", key="value") as span:
            pass
        event = span.to_event()
        assert event["type"] == "span"
        assert event["name"] == "op"
        assert event["attributes"] == {"key": "value"}
        assert event["error"] is None
        assert event["duration_s"] >= 0.0
        assert isinstance(event["span_id"], int)

    def test_open_span_duration_is_zero(self):
        span = Span(name="open", span_id=1, parent_id=None, start=5.0)
        assert span.duration == 0.0
