"""Shared fixtures for the resilience suite: a tiny pipeline that runs in
tenths of a second but exercises every stage."""

import pytest

from repro.fuzz.runner import build_fuzz_database
from repro.workload import CostDistribution, TemplateSpec


@pytest.fixture(scope="session")
def chaos_db():
    return build_fuzz_database(0)


@pytest.fixture(scope="session")
def tiny_specs():
    return [
        TemplateSpec(spec_id="a", num_joins=1, num_aggregations=1),
        TemplateSpec(spec_id="b", num_joins=0, require_order_by=True),
    ]


@pytest.fixture(scope="session")
def tiny_distribution():
    return CostDistribution.uniform(0.0, 200.0, 16, 4)
