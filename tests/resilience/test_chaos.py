"""The chaos campaign itself: deterministic, and its bar actually holds."""

import pytest

from repro.resilience import ChaosRunner, InjectedCrash, run_chaos_campaign


class TestInjectedCrash:
    def test_not_catchable_as_exception(self):
        # A simulated SIGKILL must sail through `except Exception` blocks.
        assert not issubclass(InjectedCrash, Exception)
        assert issubclass(InjectedCrash, BaseException)
        with pytest.raises(InjectedCrash):
            try:
                raise InjectedCrash("boom")
            except Exception:  # must NOT catch it
                pytest.fail("InjectedCrash was swallowed by `except Exception`")


class TestCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        # 8 runs = each scenario (storm/kill/budget/engine) exercised twice.
        return run_chaos_campaign(seed=1, runs=8, intensity=0.4)

    def test_campaign_passes(self, report):
        assert report.ok, report.to_json()
        assert report.failures == []
        assert report.mismatches == []

    def test_every_scenario_ran(self, report):
        assert report.scenarios == {
            "storm": 2, "kill": 2, "budget": 2, "engine": 2,
        }

    def test_all_runs_accounted_for(self, report):
        assert report.completed + report.aborted >= report.runs

    def test_storms_actually_injected_faults(self, report):
        assert report.transport_faults_injected > 0
        assert report.retry_attempts > 0

    def test_engine_runs_quarantined_and_identical(self, report):
        # Both engine runs fingerprinted identically across their double
        # invocation, injected engine faults, and benched the runaway.
        assert report.engine_runs_identical == 2
        assert report.engine_faults_injected > 0
        assert report.quarantines > 0

    def test_report_is_byte_identical_across_repeats(self, report):
        again = run_chaos_campaign(seed=1, runs=8, intensity=0.4)
        assert again.to_json() == report.to_json()

    def test_report_json_has_no_environment_leakage(self, report):
        text = report.to_json()
        assert "/tmp" not in text and "repro-chaos-" not in text

    def test_different_seed_different_campaign(self, report):
        other = run_chaos_campaign(seed=2, runs=8, intensity=0.4)
        assert other.ok
        assert other.to_json() != report.to_json()


class TestRunnerPlanning:
    def test_plans_are_deterministic_and_scenario_cycled(self):
        runner = ChaosRunner(seed=3, runs=8)
        plans = [runner._plan(i) for i in range(8)]
        again = [runner._plan(i) for i in range(8)]
        assert plans == again
        assert [p.scenario for p in plans] == [
            "storm", "kill", "budget", "engine",
            "storm", "kill", "budget", "engine",
        ]

    def test_scenario_filter_pins_every_run(self):
        runner = ChaosRunner(seed=3, runs=4, scenario="engine")
        assert [runner._plan(i).scenario for i in range(4)] == ["engine"] * 4

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos scenario"):
            ChaosRunner(seed=3, runs=1, scenario="volcano")

    def test_intensity_scales_the_storm(self):
        calm = ChaosRunner(seed=3, runs=1, intensity=0.1)._plan(0)
        wild = ChaosRunner(seed=3, runs=1, intensity=1.0)._plan(0)
        assert wild.storm.timeout_rate > calm.storm.timeout_rate
        assert (
            wild.engine_faults.slow_operator_rate
            > calm.engine_faults.slow_operator_rate
        )
