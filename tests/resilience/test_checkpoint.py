"""Checkpoint serialization and the CheckpointManager's safety checks."""

import json

import numpy as np
import pytest

from repro.core.check_rewrite import AttemptStatus, RewriteTrace
from repro.llm import UsageMeter
from repro.resilience import (
    CheckpointError,
    CheckpointManager,
    canonical_json,
    content_hash,
    run_key,
    to_jsonable,
)
from repro.resilience.checkpoint import (
    restore_usage,
    template_from_state,
    template_to_state,
    trace_from_state,
    trace_to_state,
    usage_from_state,
    usage_to_state,
)
from repro.workload import SqlTemplate


class TestJsonable:
    def test_numpy_scalars_become_python(self):
        converted = to_jsonable(
            {"i": np.int64(3), "f": np.float64(1.5), "b": np.bool_(True)}
        )
        assert converted == {"i": 3, "f": 1.5, "b": True}
        assert type(converted["i"]) is int
        assert type(converted["f"]) is float
        assert type(converted["b"]) is bool

    def test_arrays_sets_and_tuples(self):
        converted = to_jsonable(
            {"a": np.array([1, 2]), "s": {3, 1, 2}, "t": (4, 5)}
        )
        assert converted == {"a": [1, 2], "s": [1, 2, 3], "t": [4, 5]}

    def test_unserializable_raises_type_error(self):
        with pytest.raises(TypeError, match="object"):
            to_jsonable({"bad": object()})

    def test_canonical_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
        assert content_hash({"b": 1, "a": 2}) == content_hash({"a": 2, "b": 1})
        assert content_hash({"a": 1}) != content_hash({"a": 2})


class TestStateRoundtrips:
    def test_template(self):
        template = SqlTemplate(
            template_id="t1",
            sql="SELECT user_id FROM users WHERE user_id = {v}",
            spec_id="s",
            parent_id="t0",
        )
        back = template_from_state(template_to_state(template))
        assert back.template_id == template.template_id
        assert back.sql == template.sql
        assert back.spec_id == template.spec_id
        assert back.parent_id == template.parent_id

    def test_trace(self):
        trace = RewriteTrace(
            spec_id="s",
            attempts=[
                AttemptStatus(spec_ok=False, syntax_ok=True),
                AttemptStatus(spec_ok=True, syntax_ok=True),
            ],
            rewrites=1,
            final_sql="SELECT 1",
            final_ok=True,
        )
        back = trace_from_state(to_jsonable(trace_to_state(trace)))
        assert back.spec_id == "s"
        assert [(a.spec_ok, a.syntax_ok) for a in back.attempts] == [
            (False, True),
            (True, True),
        ]
        assert back.rewrites == 1
        assert back.final_ok is True

    def test_usage(self):
        meter = UsageMeter()
        meter.record(100, 50, "generate_template")
        meter.record(30, 20, "refine_template")
        back = usage_from_state(usage_to_state(meter))
        assert back.snapshot() == meter.snapshot()

    def test_restore_usage_overwrites_in_place(self):
        source = UsageMeter()
        source.record(10, 5, "t")
        target = UsageMeter()
        target.record(999, 999, "junk")
        restore_usage(target, usage_to_state(source))
        assert target.snapshot() == source.snapshot()


class TestRunKey:
    def _key(self, config):
        from repro.workload import CostDistribution, TemplateSpec

        specs = [TemplateSpec(spec_id="a", num_joins=1)]
        dist = CostDistribution.uniform(0.0, 100.0, 8, 4)
        return run_key(specs, dist, config, "db")

    def test_execution_only_fields_do_not_change_the_key(self):
        from repro.core import BarberConfig

        base = self._key(BarberConfig(seed=1))
        topped_up = self._key(
            BarberConfig(seed=1, max_tokens=5000, max_cost_dollars=1.0)
        )
        recadenced = self._key(BarberConfig(seed=1, checkpoint_every_templates=99))
        assert base == topped_up == recadenced

    def test_seed_and_content_fields_do_change_the_key(self):
        from repro.core import BarberConfig

        assert self._key(BarberConfig(seed=1)) != self._key(BarberConfig(seed=2))
        assert self._key(BarberConfig(seed=1)) != self._key(
            BarberConfig(seed=1, max_rewrite_iterations=9)
        )


class TestManager:
    def test_save_load_roundtrip(self, tmp_path):
        manager = CheckpointManager(tmp_path, run_key="k1")
        state = {"stage": "templates", "templates": [{"sql": "SELECT 1"}]}
        path = manager.save(state)
        assert path == manager.path
        assert manager.saves == 1
        assert CheckpointManager(tmp_path, run_key="k1").load() == state

    def test_missing_checkpoint_loads_none(self, tmp_path):
        assert CheckpointManager(tmp_path, run_key="k1").load() is None

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        manager = CheckpointManager(tmp_path, run_key="k1")
        manager.save({"stage": "templates"})
        assert [p.name for p in tmp_path.iterdir()] == ["checkpoint.json"]

    def test_foreign_run_key_rejected(self, tmp_path):
        CheckpointManager(tmp_path, run_key="k1").save({"stage": "x"})
        with pytest.raises(CheckpointError, match="different run"):
            CheckpointManager(tmp_path, run_key="k2").load()

    def test_corrupted_content_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path, run_key="k1")
        manager.save({"stage": "templates", "value": 1})
        payload = json.loads(manager.path.read_text())
        payload["state"]["value"] = 2  # tampered, hash now stale
        manager.path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="hash"):
            manager.load()

    def test_unparsable_file_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path, run_key="k1")
        manager.directory.mkdir(exist_ok=True)
        manager.path.write_text("{ not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            manager.load()

    def test_wrong_format_version_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path, run_key="k1")
        manager.save({"stage": "x"})
        payload = json.loads(manager.path.read_text())
        payload["format_version"] = 999
        manager.path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="format version"):
            manager.load()

    def test_on_save_fires_after_durable_write(self, tmp_path):
        seen = []

        def hook(manager, payload):
            # The file must already be fully written when the hook runs.
            on_disk = json.loads(manager.path.read_text())
            seen.append(on_disk["state"]["stage"])
            assert on_disk == payload

        manager = CheckpointManager(tmp_path, run_key="k1", on_save=hook)
        manager.save({"stage": "templates"})
        manager.save({"stage": "profile"})
        assert seen == ["templates", "profile"]
