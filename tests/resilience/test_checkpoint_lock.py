"""Directory locking for checkpoint directories.

Covers the lock protocol in isolation (atomic create, contention, stale
takeover, lost-lock release), the CheckpointManager integration
(acquire-on-construct, heartbeat-on-save, close), and the barber-level
behavior (lock held during generate_workload, released on every exit
path including an injected crash).
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.core import BarberConfig, SQLBarber
from repro.llm import SimulatedLLM
from repro.resilience import (
    CheckpointManager,
    DirectoryLock,
    InjectedCrash,
    LockError,
    LockHeld,
)


@pytest.fixture
def lock_dir(tmp_path):
    return tmp_path / "ckpt"


class TestDirectoryLock:
    def test_acquire_creates_lockfile(self, lock_dir):
        lock = DirectoryLock(lock_dir, owner="t1").acquire()
        holder = json.loads(lock.path.read_text())
        assert holder["owner"] == "t1"
        assert holder["pid"] == os.getpid()
        assert holder["token"] == lock.token
        assert lock.held

    def test_live_holder_blocks_second_acquire(self, lock_dir):
        with DirectoryLock(lock_dir, owner="first"):
            with pytest.raises(LockHeld) as excinfo:
                DirectoryLock(lock_dir, owner="second").acquire()
            assert excinfo.value.holder["owner"] == "first"

    def test_release_then_reacquire(self, lock_dir):
        first = DirectoryLock(lock_dir, owner="a").acquire()
        assert first.release() is True
        assert not first.path.exists()
        second = DirectoryLock(lock_dir, owner="b").acquire()
        assert second.takeover_reason is None
        second.release()

    def test_context_manager(self, lock_dir):
        with DirectoryLock(lock_dir, owner="ctx") as lock:
            assert lock.path.exists()
        assert not lock.path.exists()

    def test_double_acquire_same_object_rejected(self, lock_dir):
        lock = DirectoryLock(lock_dir, owner="x").acquire()
        with pytest.raises(LockError):
            lock.acquire()
        lock.release()

    def test_dead_pid_is_taken_over(self, lock_dir):
        # A real process that has already exited: its pid is provably dead
        # (pid reuse inside one test run is effectively impossible).
        proc = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            check=True,
        )
        dead_pid = int(proc.stdout)
        lock_dir.mkdir(parents=True)
        (lock_dir / DirectoryLock.LOCK_NAME).write_text(
            json.dumps(
                {
                    "owner": "crashed",
                    "pid": dead_pid,
                    "token": f"{dead_pid}.1",
                    "heartbeat_unix": time.time(),
                }
            )
        )
        lock = DirectoryLock(lock_dir, owner="survivor").acquire()
        assert lock.takeover_reason == f"holder pid {dead_pid} is dead"
        assert json.loads(lock.path.read_text())["owner"] == "survivor"
        lock.release()

    def test_expired_heartbeat_is_taken_over(self, lock_dir):
        holder = DirectoryLock(lock_dir, owner="slow").acquire()
        stale = json.loads(holder.path.read_text())
        stale["heartbeat_unix"] = time.time() - 1000.0
        holder.path.write_text(json.dumps(stale))
        thief = DirectoryLock(
            lock_dir, owner="thief", stale_after_seconds=5.0
        ).acquire()
        assert "heartbeat" in thief.takeover_reason
        thief.release()

    def test_corrupt_lockfile_is_taken_over(self, lock_dir):
        lock_dir.mkdir(parents=True)
        (lock_dir / DirectoryLock.LOCK_NAME).write_text("{not json")
        lock = DirectoryLock(lock_dir, owner="fixer").acquire()
        assert lock.takeover_reason == "corrupt lockfile"
        lock.release()

    def test_heartbeat_refreshes_timestamp(self, lock_dir):
        lock = DirectoryLock(lock_dir, owner="hb").acquire()
        before = json.loads(lock.path.read_text())["heartbeat_unix"]
        time.sleep(0.01)
        lock.heartbeat()
        after = json.loads(lock.path.read_text())["heartbeat_unix"]
        assert after > before
        lock.release()

    def test_lost_lock_release_is_silent_noop(self, lock_dir):
        # Our heartbeat expired and someone else took over: release must
        # not delete the new holder's lockfile, and must not raise (it
        # runs in finally blocks).
        victim = DirectoryLock(
            lock_dir, owner="victim", stale_after_seconds=5.0
        ).acquire()
        stale = json.loads(victim.path.read_text())
        stale["heartbeat_unix"] = time.time() - 1000.0
        victim.path.write_text(json.dumps(stale))
        thief = DirectoryLock(
            lock_dir, owner="thief", stale_after_seconds=5.0
        ).acquire()
        assert victim.release() is False
        assert json.loads(thief.path.read_text())["owner"] == "thief"
        thief.release()

    def test_lost_lock_heartbeat_raises(self, lock_dir):
        victim = DirectoryLock(lock_dir, owner="victim").acquire()
        victim.path.unlink()
        DirectoryLock(lock_dir, owner="thief").acquire()
        with pytest.raises(LockError, match="taken over"):
            victim.heartbeat()
        assert not victim.held

    def test_break_lock_removes_any_holder(self, lock_dir):
        DirectoryLock(lock_dir, owner="gone").acquire()
        supervisor = DirectoryLock(lock_dir, owner="supervisor")
        assert supervisor.break_lock() is True
        assert supervisor.break_lock() is False
        supervisor.acquire()
        supervisor.release()


class TestManagerIntegration:
    def test_manager_acquires_and_closes(self, lock_dir):
        manager = CheckpointManager(lock_dir, "key", lock_owner="m1")
        assert (lock_dir / DirectoryLock.LOCK_NAME).exists()
        with pytest.raises(LockHeld):
            CheckpointManager(lock_dir, "key", lock_owner="m2")
        manager.close()
        assert not (lock_dir / DirectoryLock.LOCK_NAME).exists()
        second = CheckpointManager(lock_dir, "key", lock_owner="m2")
        second.close()

    def test_lockless_manager_unchanged(self, lock_dir):
        manager = CheckpointManager(lock_dir, "key")
        manager.save({"stage": "x"})
        assert not (lock_dir / DirectoryLock.LOCK_NAME).exists()
        manager.close()  # no-op

    def test_save_heartbeats(self, lock_dir):
        manager = CheckpointManager(lock_dir, "key", lock_owner="m")
        before = json.loads(
            (lock_dir / DirectoryLock.LOCK_NAME).read_text()
        )["heartbeat_unix"]
        time.sleep(0.01)
        manager.save({"stage": "templates"})
        after = json.loads(
            (lock_dir / DirectoryLock.LOCK_NAME).read_text()
        )["heartbeat_unix"]
        assert after > before
        manager.close()


class TestBarberIntegration:
    def _barber(self, chaos_db):
        return SQLBarber(
            chaos_db,
            llm=SimulatedLLM(seed=5),
            config=BarberConfig(seed=5),
        )

    def test_lock_released_after_run(
        self, chaos_db, tiny_specs, tiny_distribution, tmp_path
    ):
        ckpt = tmp_path / "run"
        barber = self._barber(chaos_db)
        barber.generate_workload(
            tiny_specs, tiny_distribution, checkpoint_dir=str(ckpt)
        )
        assert (ckpt / "checkpoint.json").exists()
        assert not (ckpt / DirectoryLock.LOCK_NAME).exists()

    def test_concurrent_run_rejected(
        self, chaos_db, tiny_specs, tiny_distribution, tmp_path
    ):
        ckpt = tmp_path / "run"
        holder = CheckpointManager(ckpt, "other", lock_owner="rival")
        barber = self._barber(chaos_db)
        with pytest.raises(LockHeld):
            barber.generate_workload(
                tiny_specs, tiny_distribution, checkpoint_dir=str(ckpt)
            )
        holder.close()

    def test_injected_crash_releases_lock_and_resume_matches(
        self, chaos_db, tiny_specs, tiny_distribution, tmp_path
    ):
        ckpt = tmp_path / "run"
        baseline = self._barber(chaos_db).generate_workload(
            tiny_specs, tiny_distribution
        )

        def kill_after_first(manager, payload):
            if manager.saves == 1:
                raise InjectedCrash("die after first checkpoint")

        with pytest.raises(InjectedCrash):
            self._barber(chaos_db).generate_workload(
                tiny_specs,
                tiny_distribution,
                checkpoint_dir=str(ckpt),
                on_checkpoint_save=kill_after_first,
            )
        # The crash path released the lock, so resume acquires cleanly.
        assert not (ckpt / DirectoryLock.LOCK_NAME).exists()
        resumed = self._barber(chaos_db).generate_workload(
            tiny_specs,
            tiny_distribution,
            checkpoint_dir=str(ckpt),
            resume=True,
        )
        assert resumed.fingerprint_json() == baseline.fingerprint_json()
