"""Degraded-mode pipeline behaviour: every stage x fault class combination
produces a graceful partial result, never a stack trace.

Transport faults can only surface from the two LLM-calling stages
(templates and refine); interruption of profile/search is covered by the
kill/resume tests, which crash inside those stages' checkpoint saves.
"""

import pytest

from repro.core import BarberConfig, SQLBarber
from repro.core.barber import PIPELINE_STAGES
from repro.llm import (
    LLMRateLimitError,
    LLMServerError,
    LLMTimeoutError,
    SimulatedLLM,
)
from repro.llm.client import LLMClient
from repro.obs import Telemetry
from repro.resilience import ResilientLLMClient
from repro.resilience.client import CircuitBreakerPolicy, RetryPolicy
from repro.resilience.clock import SimulatedClock


class TaskFaultLLM(LLMClient):
    """Delegates to a SimulatedLLM but always fails one task's calls."""

    def __init__(self, inner: SimulatedLLM, fail_task: str, error: Exception):
        self.inner = inner  # before super().__init__, which sets last_faults
        super().__init__(model=inner.model)
        self.fail_task = fail_task
        self.error = error

    @property
    def usage(self):
        return self.inner.usage

    @usage.setter
    def usage(self, value):  # base __init__ assigns; keep it on the inner
        pass

    @property
    def last_faults(self):
        return self.inner.last_faults

    @last_faults.setter
    def last_faults(self, value):
        self.inner.last_faults = value

    def complete(self, prompt, task="unknown"):
        if task == self.fail_task:
            raise self.error
        return self.inner.complete(prompt, task=task)

    def _complete_text(self, prompt):  # pragma: no cover
        raise NotImplementedError

    def rng_state(self):
        return self.inner.rng_state()

    def set_rng_state(self, state):
        self.inner.set_rng_state(state)


FAULTS = [
    LLMTimeoutError("injected timeout"),
    LLMRateLimitError("injected 429", retry_after=0.01),
    LLMServerError("injected 503", status=503),
]

STAGE_BY_TASK = {
    "generate_template": "templates",
    "refine_template": "refine",
}


def run_with_fault(db, specs, distribution, fail_task, error):
    inner = SimulatedLLM(seed=5)
    llm = ResilientLLMClient(
        TaskFaultLLM(inner, fail_task, error),
        retry=RetryPolicy(max_attempts=3, base_delay_seconds=0.001),
        breaker=CircuitBreakerPolicy(failure_threshold=4),
        clock=SimulatedClock(),
    )
    barber = SQLBarber(db, llm=llm, config=BarberConfig(seed=5))
    telemetry = Telemetry()
    result = barber.generate_workload(specs, distribution, telemetry=telemetry)
    return result, telemetry


def assert_graceful_abort(result, telemetry, expected_stage):
    assert result.aborted
    assert result.abort_stage == expected_stage
    assert not result.complete
    assert result.search is None
    assert result.workload.queries == []
    assert result.abort_reason
    # Degraded mode keeps its instrumentation: every stage has a duration
    # (skipped stages report ~0) and the abort is counted.
    assert set(result.stage_seconds) == set(PIPELINE_STAGES)
    assert telemetry.metrics.total("pipeline.aborted") == 1


@pytest.mark.parametrize("fail_task", sorted(STAGE_BY_TASK))
@pytest.mark.parametrize("error", FAULTS, ids=lambda e: type(e).__name__)
class TestStageFaultMatrix:
    def test_persistent_fault_aborts_in_the_failing_stage(
        self, fail_task, error, chaos_db, tiny_specs, tiny_distribution
    ):
        result, telemetry = run_with_fault(
            chaos_db, tiny_specs, tiny_distribution, fail_task, error
        )
        assert_graceful_abort(result, telemetry, STAGE_BY_TASK[fail_task])
        assert "LLMRetryExhausted" in result.abort_reason

    def test_abort_reason_names_the_root_cause(
        self, fail_task, error, chaos_db, tiny_specs, tiny_distribution
    ):
        result, _ = run_with_fault(
            chaos_db, tiny_specs, tiny_distribution, fail_task, error
        )
        assert type(error).__name__ in result.abort_reason


class TestBudgetDegradation:
    def test_tiny_token_budget_aborts_in_templates(
        self, chaos_db, tiny_specs, tiny_distribution
    ):
        barber = SQLBarber(
            chaos_db,
            llm=SimulatedLLM(seed=5),
            config=BarberConfig(seed=5, max_tokens=500),
        )
        telemetry = Telemetry()
        result = barber.generate_workload(
            tiny_specs, tiny_distribution, telemetry=telemetry
        )
        assert_graceful_abort(result, telemetry, "templates")
        assert result.abort_reason.startswith("BudgetExhausted")

    def test_dollar_budget_aborts_gracefully(
        self, chaos_db, tiny_specs, tiny_distribution
    ):
        barber = SQLBarber(
            chaos_db,
            llm=SimulatedLLM(seed=5),
            config=BarberConfig(seed=5, max_cost_dollars=1e-6),
        )
        telemetry = Telemetry()
        result = barber.generate_workload(
            tiny_specs, tiny_distribution, telemetry=telemetry
        )
        assert result.aborted
        assert result.abort_reason.startswith("BudgetExhausted")

    def test_config_budget_auto_wraps_plain_llm(self, chaos_db):
        barber = SQLBarber(
            chaos_db,
            llm=SimulatedLLM(seed=5),
            config=BarberConfig(seed=5, max_tokens=10_000),
        )
        assert isinstance(barber.llm, ResilientLLMClient)
        assert barber.llm.max_tokens == 10_000

    def test_generous_budget_completes(
        self, chaos_db, tiny_specs, tiny_distribution
    ):
        barber = SQLBarber(
            chaos_db,
            llm=SimulatedLLM(seed=5),
            config=BarberConfig(seed=5, max_tokens=10_000_000),
        )
        result = barber.generate_workload(
            tiny_specs, tiny_distribution, telemetry=Telemetry()
        )
        assert not result.aborted
        assert result.workload.queries
