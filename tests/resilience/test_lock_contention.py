"""DirectoryLock contention during recovery: one winner, ever.

The takeover protocol is replace-then-verify: a contender that finds a
stale holder writes its own payload over the lockfile, reads it back,
and claims victory only if its token survived.  These tests pin the
race down deterministically — a barrier holds every contender at the
moment *between* replace and verify, the exact window where two
simultaneous stealers overlap — and assert the protocol's contract:
exactly one winner, every loser gets a clean :class:`LockHeld`.
"""

import json
import subprocess
import sys
import threading
import time

import pytest

from repro.resilience import DirectoryLock, LockHeld
from repro.serve import ServeConfig, ServeCore, TenantQuota


def dead_pid() -> int:
    """A pid that provably belonged to an already-exited process."""
    proc = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True,
        text=True,
        check=True,
    )
    return int(proc.stdout)


def write_dead_holder(directory, pid: int) -> None:
    """The lockfile a service that died mid-flight leaves behind."""
    directory.mkdir(parents=True, exist_ok=True)
    (directory / DirectoryLock.LOCK_NAME).write_text(
        json.dumps(
            {
                "owner": "dead-service",
                "pid": pid,
                "token": f"{pid}.1",
                "heartbeat_unix": time.time(),
            }
        )
    )


class BarrierLock(DirectoryLock):
    """A lock forced through the worst legal takeover interleaving:
    every contender observes the stale holder before any of them
    replaces it, and every replace lands before any verify runs."""

    def __init__(self, *args, barrier: threading.Barrier, **kwargs):
        super().__init__(*args, **kwargs)
        self._barrier = barrier

    def _staleness(self, holder: dict) -> str | None:
        reason = super()._staleness(holder)
        if reason is not None:
            self._barrier.wait(timeout=10.0)
        return reason

    def _write_over(self) -> None:
        super()._write_over()
        self._barrier.wait(timeout=10.0)


def race(contenders):
    """Run every contender's acquire concurrently; collect outcomes."""
    outcomes: dict[int, object] = {}

    def attempt(index, lock):
        try:
            lock.acquire()
            outcomes[index] = lock
        except LockHeld as error:
            outcomes[index] = error

    threads = [
        threading.Thread(target=attempt, args=(i, lock), daemon=True)
        for i, lock in enumerate(contenders)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert len(outcomes) == len(contenders), "a contender never finished"
    return outcomes


class TestTakeoverRace:
    def test_two_racing_stealers_one_winner_one_lockheld(self, tmp_path):
        write_dead_holder(tmp_path, dead_pid())
        barrier = threading.Barrier(2)
        contenders = [
            BarrierLock(tmp_path, owner=f"stealer-{i}", barrier=barrier)
            for i in range(2)
        ]
        outcomes = race(contenders)

        winners = [o for o in outcomes.values() if isinstance(o, DirectoryLock)]
        losers = [o for o in outcomes.values() if isinstance(o, LockHeld)]
        assert len(winners) == 1 and len(losers) == 1
        winner, loser = winners[0], losers[0]
        # The winner's token is on disk and it knows why it took over.
        assert json.loads(winner.path.read_text())["token"] == winner.token
        assert "dead" in winner.takeover_reason
        # The loser saw the *winner's* payload, dropped its claim, and
        # can release harmlessly without touching the winner's file.
        assert loser.holder.get("token") == winner.token
        losing_lock = next(
            c for c in contenders if c.token != winner.token
        )
        assert losing_lock.held is False
        assert losing_lock.release() is False
        assert winner.path.exists()
        winner.release()

    def test_crowd_of_stealers_still_one_winner(self, tmp_path):
        count = 5
        write_dead_holder(tmp_path, dead_pid())
        barrier = threading.Barrier(count)
        outcomes = race(
            [
                BarrierLock(tmp_path, owner=f"s{i}", barrier=barrier)
                for i in range(count)
            ]
        )
        winners = [o for o in outcomes.values() if isinstance(o, DirectoryLock)]
        losers = [o for o in outcomes.values() if isinstance(o, LockHeld)]
        assert len(winners) == 1
        assert len(losers) == count - 1
        surviving = json.loads(winners[0].path.read_text())["token"]
        assert surviving == winners[0].token
        winners[0].release()


class TestReplaceThenVerify:
    def test_contender_that_loses_the_write_window_gets_lockheld(
        self, tmp_path
    ):
        """Single-threaded replay of the loser's exact path: after our
        replace but before our verify, a rival completes its own replace
        — our verify must concede, not claim."""
        write_dead_holder(tmp_path, dead_pid())
        rival = DirectoryLock(tmp_path, owner="rival")

        class LosingLock(DirectoryLock):
            def _write_over(self):
                super()._write_over()
                rival.token = "rival-token"
                DirectoryLock._write_over(rival)

        loser = LosingLock(tmp_path, owner="loser")
        with pytest.raises(LockHeld) as excinfo:
            loser.acquire()
        assert excinfo.value.holder["token"] == "rival-token"
        assert loser.held is False
        # The rival's payload is untouched by the loser's exit path.
        assert json.loads(rival.path.read_text())["owner"] == "rival"

    def test_crashed_mid_takeover_holder_is_taken_over_cleanly(
        self, tmp_path
    ):
        """A stealer that died between replace and verify leaves its own
        payload with a now-dead pid — the next contender must treat that
        exactly like any other dead holder."""
        pid = dead_pid()
        # What a mid-takeover crash leaves: the *stealer's* payload
        # (token written, victory never verified), holder process gone.
        write_dead_holder(tmp_path, pid)
        lock = DirectoryLock(tmp_path, owner="next").acquire()
        assert lock.takeover_reason == f"holder pid {pid} is dead"
        assert json.loads(lock.path.read_text())["owner"] == "next"
        lock.release()
        assert not lock.path.exists()


class TestRecoveryContention:
    def test_two_recoveries_race_one_service_comes_up(self, tmp_path):
        """Two supervisors restart the same dead service concurrently:
        exactly one recovery wins the state dir, the other gets a clean
        LockHeld — never two services journaling into one directory."""
        config = ServeConfig(
            workers=1,
            checkpoint_root=str(tmp_path / "ckpts"),
            state_dir=str(tmp_path / "state"),
            journal_fsync="off",
            default_quota=TenantQuota(max_queued_jobs=16),
        )
        core = ServeCore(config, store=ServeCore.open_store(config))
        status, _ = core.submit(
            {"tenant": "acme", "specs": [{"num_joins": 1}], "seed": 1}
        )
        assert status == 202
        core.close()
        # The dead service's lockfile (its pid no longer runs).
        write_dead_holder(tmp_path / "state", dead_pid())

        barrier = threading.Barrier(2)
        original_write = DirectoryLock._write_over
        original_staleness = DirectoryLock._staleness

        def synchronized_write(self):
            original_write(self)
            barrier.wait(timeout=10.0)

        def synchronized_staleness(self, holder):
            reason = original_staleness(self, holder)
            if reason is not None:
                barrier.wait(timeout=10.0)
            return reason

        outcomes: dict[int, object] = {}

        def recover(index):
            try:
                outcomes[index] = ServeCore.recover(config)
            except LockHeld as error:
                outcomes[index] = error

        DirectoryLock._write_over = synchronized_write
        DirectoryLock._staleness = synchronized_staleness
        try:
            threads = [
                threading.Thread(target=recover, args=(i,), daemon=True)
                for i in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
        finally:
            DirectoryLock._write_over = original_write
            DirectoryLock._staleness = original_staleness

        assert len(outcomes) == 2, "a recovery never finished"
        cores = [o for o in outcomes.values() if isinstance(o, ServeCore)]
        held = [o for o in outcomes.values() if isinstance(o, LockHeld)]
        assert len(cores) == 1 and len(held) == 1
        winner = cores[0]
        try:
            # The winning recovery is complete and sound.
            assert winner.recovery["records_replayed"] >= 1
            assert winner.audit_lost_jobs() == []
            assert len(winner.jobs) == 1
        finally:
            winner.close()
