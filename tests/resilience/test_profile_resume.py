"""Operator profiles across kill/resume.

The collector's state rides in every checkpoint, so a killed-and-resumed
profiled run must produce the same profile fingerprint (and the same
``WorkloadResult.operator_profiles`` determinism surface) as a run that
never crashed.
"""

import pytest

from repro.core import BarberConfig, SQLBarber
from repro.llm import SimulatedLLM
from repro.obs import Telemetry
from repro.obs.profile import _strip_timings
from repro.resilience import InjectedCrash
from repro.workload import CostDistribution

SEED = 5


@pytest.fixture(scope="module")
def exec_distribution():
    # An executing cost metric: profiled samples actually run the engine.
    return CostDistribution.uniform(
        0.0, 200.0, 16, 4, cost_type="actual_rows"
    )


def run_profiled(db, specs, distribution, **kwargs):
    barber = SQLBarber(
        db,
        llm=SimulatedLLM(seed=SEED),
        config=BarberConfig(
            seed=SEED, checkpoint_every_templates=1, profile=True
        ),
    )
    return barber.generate_workload(
        specs, distribution, telemetry=Telemetry(profile=True), **kwargs
    )


class TestProfiledResult:
    def test_result_carries_operator_profiles(
        self, chaos_db, tiny_specs, exec_distribution
    ):
        result = run_profiled(chaos_db, tiny_specs, exec_distribution)
        profiles = result.operator_profiles
        assert profiles is not None
        assert profiles["queries"] > 0
        assert profiles["operators"]
        assert profiles["plans"]

    def test_unprofiled_result_has_none(
        self, chaos_db, tiny_specs, tiny_distribution
    ):
        barber = SQLBarber(
            chaos_db,
            llm=SimulatedLLM(seed=SEED),
            config=BarberConfig(seed=SEED),
        )
        result = barber.generate_workload(tiny_specs, tiny_distribution)
        assert result.operator_profiles is None

    def test_profile_flag_does_not_change_run_key(
        self, tmp_path, chaos_db, tiny_specs, exec_distribution
    ):
        # profile is execution-only config: a checkpoint written by an
        # unprofiled run resumes under a profiled one (and vice versa).
        barber = SQLBarber(
            chaos_db,
            llm=SimulatedLLM(seed=SEED),
            config=BarberConfig(seed=SEED, checkpoint_every_templates=1),
        )
        plain = barber.generate_workload(
            tiny_specs, exec_distribution, checkpoint_dir=tmp_path
        )
        resumed = run_profiled(
            chaos_db, tiny_specs, exec_distribution,
            checkpoint_dir=tmp_path, resume=True,
        )
        assert resumed.fingerprint_json() == plain.fingerprint_json()


class TestKillResumeProfileFingerprint:
    @pytest.mark.parametrize("kill_at", [2, 5, 9])
    def test_profile_fingerprint_survives_kill(
        self, kill_at, tmp_path, chaos_db, tiny_specs, exec_distribution
    ):
        reference = run_profiled(chaos_db, tiny_specs, exec_distribution)
        saves = {"count": 0}

        def killer(manager, payload):
            saves["count"] += 1
            if saves["count"] == kill_at:
                raise InjectedCrash(f"dead after save #{kill_at}")

        try:
            outcome = run_profiled(
                chaos_db, tiny_specs, exec_distribution,
                checkpoint_dir=tmp_path, on_checkpoint_save=killer,
            )
        except InjectedCrash:
            outcome = run_profiled(
                chaos_db, tiny_specs, exec_distribution,
                checkpoint_dir=tmp_path, resume=True,
            )
        assert outcome.fingerprint_json() == reference.fingerprint_json()
        assert _strip_timings(outcome.operator_profiles) == _strip_timings(
            reference.operator_profiles
        )
