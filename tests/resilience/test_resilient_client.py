"""ResilientLLMClient: retry/backoff, circuit breaking, deadlines, budgets.

All timing runs on a :class:`SimulatedClock`, so the exact backoff sequence
is asserted, not approximated.
"""

import pytest

from repro.llm import (
    BudgetExhausted,
    CircuitOpenError,
    LLMMalformedResponseError,
    LLMRateLimitError,
    LLMRetryExhausted,
    LLMServerError,
    LLMTimeoutError,
    ScriptedLLM,
    SimulatedLLM,
)
from repro.llm.client import LLMClient
from repro.resilience import (
    CircuitBreaker,
    CircuitBreakerPolicy,
    ResilientLLMClient,
    RetryPolicy,
    SimulatedClock,
)


class FlakyLLM(LLMClient):
    """Scripted inner client: each item is a response string or an error."""

    def __init__(self, script):
        super().__init__(model="flaky")
        self.script = list(script)
        self.calls = 0

    def _complete_text(self, prompt: str) -> str:
        self.calls += 1
        item = self.script.pop(0)
        if isinstance(item, Exception):
            raise item
        return item


def make_client(script, **kwargs):
    kwargs.setdefault("retry", RetryPolicy(jitter=0.0))
    kwargs.setdefault("clock", SimulatedClock())
    return ResilientLLMClient(FlakyLLM(script), **kwargs)


class TestRetry:
    def test_success_needs_no_retries(self):
        client = make_client(["ok"])
        assert client.complete("p").text == "ok"
        assert client.clock.sleeps == []

    def test_exact_backoff_sequence(self):
        client = make_client(
            [LLMServerError("boom"), LLMServerError("boom"), "ok"],
            retry=RetryPolicy(
                base_delay_seconds=0.05, multiplier=2.0, jitter=0.0
            ),
        )
        assert client.complete("p").text == "ok"
        assert client.clock.sleeps == [pytest.approx(0.05), pytest.approx(0.1)]
        assert client.inner.calls == 3

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(
            base_delay_seconds=1.0, max_delay_seconds=1.5, jitter=0.0
        )
        client = make_client([LLMServerError("x")] * 3 + ["ok"], retry=policy)
        client.complete("p")
        assert client.clock.sleeps == [1.0, 1.5, 1.5]

    def test_retry_after_hint_extends_backoff(self):
        client = make_client(
            [LLMRateLimitError("slow down", retry_after=3.0), "ok"]
        )
        client.complete("p")
        assert client.clock.sleeps == [3.0]

    def test_jitter_shrinks_delay_deterministically(self):
        policy = RetryPolicy(base_delay_seconds=1.0, jitter=0.5)
        first = make_client([LLMServerError("x"), "ok"], retry=policy, jitter_seed=9)
        second = make_client([LLMServerError("x"), "ok"], retry=policy, jitter_seed=9)
        first.complete("p")
        second.complete("p")
        assert first.clock.sleeps == second.clock.sleeps
        assert 0.5 <= first.clock.sleeps[0] <= 1.0

    def test_exhaustion_raises_with_attempt_count(self):
        client = make_client(
            [LLMServerError(f"fail {i}") for i in range(3)],
            retry=RetryPolicy(max_attempts=3, jitter=0.0),
        )
        with pytest.raises(LLMRetryExhausted) as excinfo:
            client.complete("p")
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, LLMServerError)
        assert not excinfo.value.retryable

    def test_non_retryable_error_fails_fast(self):
        error = LLMServerError("fatal")
        error.retryable = False
        client = make_client([error, "never reached"])
        with pytest.raises(LLMRetryExhausted):
            client.complete("p")
        assert client.inner.calls == 1

    def test_malformed_response_is_retried(self):
        client = make_client(["```sql\nSELECT 1", "```sql\nSELECT 1\n```"])
        response = client.complete("p")
        assert response.text == "```sql\nSELECT 1\n```"
        assert client.inner.calls == 2

    def test_validator_disabled_passes_garbage_through(self):
        client = make_client(["```sql\nSELECT 1"], validator=None)
        assert client.complete("p").text == "```sql\nSELECT 1"


class TestCircuitBreaker:
    def test_opens_after_threshold_and_rejects(self):
        policy = CircuitBreakerPolicy(failure_threshold=2, cooldown_seconds=10.0)
        client = make_client(
            [LLMServerError("x")] * 2,
            retry=RetryPolicy(max_attempts=2, jitter=0.0),
            breaker=policy,
        )
        with pytest.raises(LLMRetryExhausted):
            client.complete("p", task="t")
        # Two consecutive failures tripped the task's breaker.
        assert client._breakers["t"].state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError):
            client.complete("p", task="t")

    def test_breakers_are_per_task(self):
        policy = CircuitBreakerPolicy(failure_threshold=1, cooldown_seconds=10.0)
        client = make_client(
            [LLMServerError("x"), "ok"],
            retry=RetryPolicy(max_attempts=1, jitter=0.0),
            breaker=policy,
        )
        with pytest.raises(LLMRetryExhausted):
            client.complete("p", task="bad")
        # A different task has its own closed breaker.
        assert client.complete("p", task="good").text == "ok"

    def test_half_open_then_close_after_cooldown(self):
        clock = SimulatedClock()
        policy = CircuitBreakerPolicy(failure_threshold=1, cooldown_seconds=5.0)
        client = make_client(
            [LLMServerError("x"), "ok"],
            retry=RetryPolicy(max_attempts=1, jitter=0.0),
            breaker=policy,
            clock=clock,
        )
        with pytest.raises(LLMRetryExhausted):
            client.complete("p", task="t")
        breaker = client._breakers["t"]
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(5.0)
        assert client.complete("p", task="t").text == "ok"
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens(self):
        clock = SimulatedClock()
        policy = CircuitBreakerPolicy(failure_threshold=1, cooldown_seconds=5.0)
        breaker = CircuitBreaker(policy, clock, task="t")
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(5.0)
        assert breaker.allow()  # open -> half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()


class TestDeadline:
    def test_deadline_blocks_new_attempts(self):
        clock = SimulatedClock()
        client = make_client(["ok"], clock=clock, deadline=10.0)
        assert client.complete("p").text == "ok"
        clock.advance(11.0)
        with pytest.raises(LLMTimeoutError, match="deadline"):
            client.complete("p")

    def test_deadline_caps_backoff_sleep(self):
        clock = SimulatedClock()
        client = make_client(
            [LLMRateLimitError("wait", retry_after=100.0), "never"],
            clock=clock,
            deadline=5.0,
        )
        with pytest.raises(LLMTimeoutError, match="backoff"):
            client.complete("p")
        # It refused to sleep past the deadline rather than sleeping then failing.
        assert clock.sleeps == []


class TestBudget:
    def test_token_budget_checked_before_call(self):
        client = make_client(["ok"] * 10, max_tokens=1)
        client.complete("some prompt")  # first call spends tokens
        with pytest.raises(BudgetExhausted) as excinfo:
            client.complete("p")
        assert excinfo.value.max_tokens == 1
        assert excinfo.value.tokens >= 1
        assert client.inner.calls == 1  # the guarded call never went out

    def test_dollar_budget(self):
        client = make_client(["ok"] * 10, max_cost_dollars=1e-9)
        client.complete("some prompt")
        with pytest.raises(BudgetExhausted, match="dollar"):
            client.complete("p")

    def test_no_budget_never_raises(self):
        client = make_client(["ok"] * 3)
        for _ in range(3):
            client.complete("p")


class TestDelegation:
    def test_usage_is_the_inner_meter(self):
        client = make_client(["ok"])
        client.complete("hello world")
        assert client.usage is client.inner.usage
        assert client.usage.num_calls == 1

    def test_rng_state_delegates(self):
        inner = ScriptedLLM(["a", "b"])
        client = ResilientLLMClient(inner, clock=SimulatedClock())
        client.complete("p")
        assert client.rng_state() == {"cursor": 1}
        client.set_rng_state({"cursor": 0})
        assert inner._cursor == 0

    def test_fault_free_passthrough_is_identity(self):
        """With no faults, wrapping must not change a single completion."""
        from repro.llm.prompts import encode_payload

        payload = {
            "task": "validate_semantics",
            "spec": {"spec_id": "s", "num_joins": 0},
            "template": "SELECT user_id FROM users WHERE user_id = {v}",
        }
        prompt = "check\n" + encode_payload(payload)
        plain = SimulatedLLM(seed=21)
        wrapped = ResilientLLMClient(SimulatedLLM(seed=21), clock=SimulatedClock())
        for _ in range(6):
            assert plain.complete(prompt).text == wrapped.complete(prompt).text
        assert wrapped.clock.sleeps == []
