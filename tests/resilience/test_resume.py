"""End-to-end checkpoint/resume: resumed runs are bit-identical.

The fingerprint (queries, templates, profiles, distance, usage) of a run
that crashed and resumed must equal the fingerprint of a run that never
crashed — at *every* possible crash point.
"""

import pytest

from repro.core import BarberConfig, SQLBarber
from repro.llm import SimulatedLLM, TransportFaultModel
from repro.obs import Telemetry
from repro.resilience import CheckpointError, InjectedCrash, ResilientLLMClient
from repro.resilience.client import RetryPolicy
from repro.resilience.clock import SimulatedClock

SEED = 5


def make_barber(db, storm=None, max_tokens=None):
    inner = SimulatedLLM(seed=SEED, transport_faults=storm)
    if storm is not None or max_tokens is not None:
        llm = ResilientLLMClient(
            inner,
            retry=RetryPolicy(max_attempts=6, base_delay_seconds=0.01),
            clock=SimulatedClock(),
            jitter_seed=SEED + 1,
            max_tokens=max_tokens,
        )
    else:
        llm = inner
    config = BarberConfig(seed=SEED, checkpoint_every_templates=1)
    return SQLBarber(db, llm=llm, config=config)


def run_pipeline(db, specs, distribution, storm=None, max_tokens=None, **kwargs):
    barber = make_barber(db, storm=storm, max_tokens=max_tokens)
    return barber.generate_workload(
        specs, distribution, telemetry=Telemetry(), **kwargs
    )


class TestCheckpointingIsInvisible:
    def test_checkpointed_run_matches_plain_run(
        self, tmp_path, chaos_db, tiny_specs, tiny_distribution
    ):
        plain = run_pipeline(chaos_db, tiny_specs, tiny_distribution)
        checkpointed = run_pipeline(
            chaos_db,
            tiny_specs,
            tiny_distribution,
            checkpoint_dir=tmp_path,
        )
        assert checkpointed.fingerprint_json() == plain.fingerprint_json()
        assert checkpointed.checkpoint_path == str(tmp_path / "checkpoint.json")
        assert (tmp_path / "checkpoint.json").exists()

    def test_resume_from_finished_checkpoint_matches(
        self, tmp_path, chaos_db, tiny_specs, tiny_distribution
    ):
        plain = run_pipeline(chaos_db, tiny_specs, tiny_distribution)
        run_pipeline(
            chaos_db, tiny_specs, tiny_distribution, checkpoint_dir=tmp_path
        )
        resumed = run_pipeline(
            chaos_db,
            tiny_specs,
            tiny_distribution,
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert resumed.fingerprint_json() == plain.fingerprint_json()


class TestKillAndResume:
    @pytest.mark.parametrize("kill_at", [1, 2, 4, 6, 8, 10, 11])
    def test_resume_after_kill_at_every_save_point(
        self, kill_at, tmp_path, chaos_db, tiny_specs, tiny_distribution
    ):
        reference = run_pipeline(chaos_db, tiny_specs, tiny_distribution)
        saves = {"count": 0}

        def killer(manager, payload):
            saves["count"] += 1
            if saves["count"] == kill_at:
                raise InjectedCrash(f"dead after save #{kill_at}")

        try:
            outcome = run_pipeline(
                chaos_db,
                tiny_specs,
                tiny_distribution,
                checkpoint_dir=tmp_path,
                on_checkpoint_save=killer,
            )
        except InjectedCrash:
            outcome = run_pipeline(
                chaos_db,
                tiny_specs,
                tiny_distribution,
                checkpoint_dir=tmp_path,
                resume=True,
            )
        assert outcome.fingerprint_json() == reference.fingerprint_json()

    def test_kill_under_storm_still_resumes_identically(
        self, tmp_path, chaos_db, tiny_specs, tiny_distribution
    ):
        storm = TransportFaultModel.storm(0.25)
        reference = run_pipeline(chaos_db, tiny_specs, tiny_distribution, storm=storm)

        def killer(manager, payload):
            if manager.saves == 5:
                raise InjectedCrash("dead after save #5")

        try:
            outcome = run_pipeline(
                chaos_db,
                tiny_specs,
                tiny_distribution,
                storm=storm,
                checkpoint_dir=tmp_path,
                on_checkpoint_save=killer,
            )
        except InjectedCrash:
            outcome = run_pipeline(
                chaos_db,
                tiny_specs,
                tiny_distribution,
                storm=storm,
                checkpoint_dir=tmp_path,
                resume=True,
            )
        assert outcome.fingerprint_json() == reference.fingerprint_json()


class TestBudgetTopUp:
    def test_budget_abort_then_topped_up_resume_matches_uncapped_run(
        self, tmp_path, chaos_db, tiny_specs, tiny_distribution
    ):
        uncapped = run_pipeline(chaos_db, tiny_specs, tiny_distribution)
        capped = run_pipeline(
            chaos_db,
            tiny_specs,
            tiny_distribution,
            max_tokens=9_000,
            checkpoint_dir=tmp_path,
        )
        assert capped.aborted
        assert not capped.complete
        # max_tokens is execution-only, so the run key matches and the
        # topped-up resume picks up where the capped run checkpointed.
        resumed = run_pipeline(
            chaos_db,
            tiny_specs,
            tiny_distribution,
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert not resumed.aborted
        assert resumed.fingerprint_json() == uncapped.fingerprint_json()


class TestResumeSafety:
    def test_changed_specs_reject_the_checkpoint(
        self, tmp_path, chaos_db, tiny_specs, tiny_distribution
    ):
        from repro.workload import TemplateSpec

        run_pipeline(
            chaos_db, tiny_specs, tiny_distribution, checkpoint_dir=tmp_path
        )
        other_specs = [TemplateSpec(spec_id="z", num_joins=2)]
        with pytest.raises(CheckpointError, match="different run"):
            run_pipeline(
                chaos_db,
                other_specs,
                tiny_distribution,
                checkpoint_dir=tmp_path,
                resume=True,
            )

    def test_resume_without_checkpoint_runs_fresh(
        self, tmp_path, chaos_db, tiny_specs, tiny_distribution
    ):
        plain = run_pipeline(chaos_db, tiny_specs, tiny_distribution)
        resumed = run_pipeline(
            chaos_db,
            tiny_specs,
            tiny_distribution,
            checkpoint_dir=tmp_path,
            resume=True,
        )
        assert resumed.fingerprint_json() == plain.fingerprint_json()
