"""Checkpoint/kill-resume with a mixed read/write workload.

The mixer is a deterministic post-pass, so a run configured with
``workload_mix`` must fingerprint bit-identically across crash/resume at
any save point, just like the read-only pipeline — and because the mix is
part of the run's identity (not an execution-only knob), a checkpoint
written without it must refuse to resume into a mixed run.
"""

import pytest

from repro.core import BarberConfig, SQLBarber
from repro.llm import SimulatedLLM
from repro.obs import Telemetry
from repro.resilience import CheckpointError, InjectedCrash

SEED = 5
MIX = (0.5, 0.2, 0.2, 0.1)


def run_mixed(db, specs, distribution, mix=MIX, workers=1, **kwargs):
    config = BarberConfig(
        seed=SEED,
        checkpoint_every_templates=1,
        workload_mix=mix,
        workers=workers,
    )
    barber = SQLBarber(db, llm=SimulatedLLM(seed=SEED), config=config)
    return barber.generate_workload(
        specs, distribution, telemetry=Telemetry(), **kwargs
    )


def dml_count(result):
    return sum(
        1
        for q in result.workload.queries
        if (q.template_id or "").startswith("mix_")
    )


class TestMixedResume:
    def test_mixed_run_is_repeatable_and_contains_dml(
        self, chaos_db, tiny_specs, tiny_distribution
    ):
        first = run_mixed(chaos_db, tiny_specs, tiny_distribution)
        second = run_mixed(chaos_db, tiny_specs, tiny_distribution)
        assert first.fingerprint_json() == second.fingerprint_json()
        assert dml_count(first) > 0

    def test_serial_vs_parallel_fingerprints_match(
        self, chaos_db, tiny_specs, tiny_distribution
    ):
        serial = run_mixed(chaos_db, tiny_specs, tiny_distribution, workers=1)
        fanned = run_mixed(chaos_db, tiny_specs, tiny_distribution, workers=3)
        assert serial.fingerprint_json() == fanned.fingerprint_json()

    @pytest.mark.parametrize("kill_at", [1, 3, 5, 8, 11])
    def test_resume_after_kill_matches_uninterrupted_mixed_run(
        self, kill_at, tmp_path, chaos_db, tiny_specs, tiny_distribution
    ):
        reference = run_mixed(chaos_db, tiny_specs, tiny_distribution)
        saves = {"count": 0}

        def killer(manager, payload):
            saves["count"] += 1
            if saves["count"] == kill_at:
                raise InjectedCrash(f"dead after save #{kill_at}")

        try:
            outcome = run_mixed(
                chaos_db,
                tiny_specs,
                tiny_distribution,
                checkpoint_dir=tmp_path,
                on_checkpoint_save=killer,
            )
        except InjectedCrash:
            outcome = run_mixed(
                chaos_db,
                tiny_specs,
                tiny_distribution,
                checkpoint_dir=tmp_path,
                resume=True,
            )
        assert outcome.fingerprint_json() == reference.fingerprint_json()
        assert dml_count(outcome) == dml_count(reference) > 0

    def test_mix_is_part_of_the_run_identity(
        self, tmp_path, chaos_db, tiny_specs, tiny_distribution
    ):
        # A checkpoint from a read-only run must not resume into a mixed
        # run: the mix changes the generated content, not just execution.
        run_mixed(
            chaos_db,
            tiny_specs,
            tiny_distribution,
            mix=None,
            checkpoint_dir=tmp_path,
        )
        with pytest.raises(CheckpointError, match="different run"):
            run_mixed(
                chaos_db,
                tiny_specs,
                tiny_distribution,
                checkpoint_dir=tmp_path,
                resume=True,
            )

    def test_different_mixes_are_different_runs(
        self, tmp_path, chaos_db, tiny_specs, tiny_distribution
    ):
        run_mixed(
            chaos_db, tiny_specs, tiny_distribution, checkpoint_dir=tmp_path
        )
        with pytest.raises(CheckpointError, match="different run"):
            run_mixed(
                chaos_db,
                tiny_specs,
                tiny_distribution,
                mix=(0.25, 0.25, 0.25, 0.25),
                checkpoint_dir=tmp_path,
                resume=True,
            )
