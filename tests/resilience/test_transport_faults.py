"""Transport-fault injection in the simulated LLM (the layer below content
faults), plus the satellite contracts on the base client."""

import numpy as np
import pytest

from repro.llm import (
    LLMExhaustedError,
    LLMTransportError,
    MALFORMED_RESPONSE,
    ScriptedLLM,
    SimulatedLLM,
    TransportFaultModel,
)
from repro.llm.faults import truncate_completion
from repro.llm.prompts import encode_payload
from repro.resilience import default_response_validator


def _prompt(schema: dict | None = None) -> str:
    payload = {
        "task": "validate_semantics",
        "spec": {"spec_id": "s", "num_joins": 0},
        "template": "SELECT user_id FROM users WHERE user_id = {v}",
    }
    return "check this\n" + encode_payload(payload)


class TestTransportFaultModel:
    def test_inactive_by_default(self):
        assert not TransportFaultModel().active
        assert not TransportFaultModel.none().active

    def test_storm_splits_intensity(self):
        storm = TransportFaultModel.storm(0.5)
        assert storm.active
        total = (
            storm.timeout_rate
            + storm.rate_limit_rate
            + storm.server_error_rate
            + storm.truncation_rate
            + storm.malformed_rate
        )
        assert total == pytest.approx(0.5)


class TestInjection:
    def test_zero_rates_leave_content_stream_untouched(self):
        plain = SimulatedLLM(seed=11)
        with_model = SimulatedLLM(seed=11, transport_faults=TransportFaultModel())
        for _ in range(5):
            assert (
                plain.complete(_prompt()).text
                == with_model.complete(_prompt()).text
            )

    def test_storm_is_deterministic_per_seed(self):
        def outcomes(seed):
            llm = SimulatedLLM(
                seed=seed, transport_faults=TransportFaultModel.storm(0.8)
            )
            out = []
            for _ in range(30):
                try:
                    out.append(("ok", llm.complete(_prompt()).text))
                except LLMTransportError as error:
                    out.append(("err", type(error).__name__))
            return out

        first, second = outcomes(3), outcomes(3)
        assert first == second
        kinds = {kind for kind, _ in first}
        assert "err" in kinds  # the storm actually raised something

    def test_raising_fault_resets_last_faults(self):
        llm = SimulatedLLM(
            seed=0,
            transport_faults=TransportFaultModel(timeout_rate=1.0),
        )
        with pytest.raises(LLMTransportError):
            llm.complete(_prompt())
        # A failed call delivered nothing; stale fault labels must not leak.
        assert llm.last_faults == []

    def test_corruption_marks_last_faults(self):
        llm = SimulatedLLM(
            seed=0,
            transport_faults=TransportFaultModel(malformed_rate=1.0),
        )
        response = llm.complete(_prompt())
        assert response.text == MALFORMED_RESPONSE
        assert "transport:malformed" in llm.last_faults

    def test_rng_state_roundtrip(self):
        llm = SimulatedLLM(
            seed=4, transport_faults=TransportFaultModel.storm(0.4)
        )
        for _ in range(7):
            try:
                llm.complete(_prompt())
            except LLMTransportError:
                pass
        state = llm.rng_state()
        twin = SimulatedLLM(
            seed=4, transport_faults=TransportFaultModel.storm(0.4)
        )
        twin.set_rng_state(state)

        def drain(client):
            out = []
            for _ in range(10):
                try:
                    out.append(client.complete(_prompt()).text)
                except LLMTransportError as error:
                    out.append(type(error).__name__)
            return out

        assert drain(llm) == drain(twin)


class TestTruncation:
    def test_fenced_completion_loses_closing_fence(self):
        text = "Here you go\n```sql\nSELECT 1\n```"
        cut = truncate_completion(text, np.random.default_rng(0))
        assert cut != text
        assert text.startswith(cut)
        assert cut.count("```") % 2 == 1

    def test_unfenced_text_loses_tail(self):
        text = "a" * 100
        cut = truncate_completion(text, np.random.default_rng(0))
        assert cut == "a" * 50

    def test_validator_catches_all_corruptions(self):
        assert default_response_validator(MALFORMED_RESPONSE) is not None
        assert default_response_validator("```sql\nSELECT 1") is not None
        assert default_response_validator("") is not None
        assert default_response_validator('{"satisfied": tru') is not None
        assert default_response_validator("```sql\nSELECT 1\n```") is None
        assert default_response_validator('{"satisfied": true}') is None


class TestScriptedExhaustion:
    def test_raises_llm_exhausted(self):
        llm = ScriptedLLM(["one"])
        llm.complete("p")
        with pytest.raises(LLMExhaustedError, match="ran out"):
            llm.complete("p")

    def test_exhaustion_is_still_a_runtime_error(self):
        # Backwards compatibility: older callers matched on RuntimeError.
        llm = ScriptedLLM([])
        with pytest.raises(RuntimeError):
            llm.complete("p")

    def test_exhaustion_resets_last_faults(self):
        llm = ScriptedLLM([])
        llm.last_faults = ["stale"]
        with pytest.raises(LLMExhaustedError):
            llm.complete("p")
        assert llm.last_faults == []

    def test_cursor_state_roundtrip(self):
        llm = ScriptedLLM(["one", "two", "three"])
        llm.complete("p")
        state = llm.rng_state()
        twin = ScriptedLLM(["one", "two", "three"])
        twin.set_rng_state(state)
        assert twin.complete("p").text == "two"
