"""Admission control: explicit verdicts, deterministic retry hints."""

import pytest

from repro.serve import AdmissionController, TenantAccount, TenantQuota


@pytest.fixture
def controller():
    return AdmissionController(
        max_queue_depth=4, workers=2, nominal_job_seconds=2.0
    )


def account(quota=None, **kwargs):
    return TenantAccount(
        tenant="t", quota=quota or TenantQuota(), **kwargs
    )


class TestVerdicts:
    def test_admits_when_everything_has_room(self, controller):
        assert controller.admit(account(), queue_depth=0) is None

    def test_draining_rejects_with_503(self, controller):
        verdict = controller.admit(account(), queue_depth=0, draining=True)
        assert verdict.status == 503
        assert verdict.code == "draining"
        # No retry hint on purpose: drain ends in process exit, not in
        # freed capacity — clients retry after the restart, and the
        # durable store carries every accepted job across it.
        assert verdict.retry_after_seconds is None
        assert "restart" in verdict.reason

    def test_quarantined_spec_rejects_with_422(self, controller):
        verdict = controller.admit(
            account(), queue_depth=0, spec_quarantined=True
        )
        assert verdict.status == 422
        assert verdict.code == "spec_quarantined"

    def test_full_global_queue_rejects_with_429(self, controller):
        verdict = controller.admit(account(), queue_depth=4)
        assert verdict.status == 429
        assert verdict.code == "queue_full"
        assert verdict.retry_after_seconds > 0

    def test_tenant_queue_quota_rejects_with_429(self, controller):
        verdict = controller.admit(
            account(TenantQuota(max_queued_jobs=1), queued=1), queue_depth=0
        )
        assert verdict.code == "tenant_queue_full"
        assert verdict.status == 429

    def test_token_budget_exhaustion_rejects(self, controller):
        acct = account(TenantQuota(max_tokens=100), tokens_spent=100)
        verdict = controller.admit(acct, queue_depth=0)
        assert verdict.code == "tokens_exhausted"
        assert verdict.status == 429

    def test_dollar_budget_exhaustion_rejects(self, controller):
        acct = account(
            TenantQuota(max_cost_dollars=1.0), dollars_spent=1.0
        )
        verdict = controller.admit(acct, queue_depth=0)
        assert verdict.code == "dollars_exhausted"

    def test_partial_budget_still_admits(self, controller):
        acct = account(TenantQuota(max_tokens=100), tokens_spent=99)
        assert controller.admit(acct, queue_depth=0) is None

    def test_draining_wins_over_other_reasons(self, controller):
        verdict = controller.admit(
            account(), queue_depth=10, draining=True, spec_quarantined=True
        )
        assert verdict.code == "draining"


class TestRetryAfter:
    def test_scales_with_queue_depth(self, controller):
        assert controller.retry_after(2) == 2.0  # one drain of 2 workers
        assert controller.retry_after(4) == 4.0
        assert controller.retry_after(5) == 6.0  # ceil(5/2) = 3 drains

    def test_is_deterministic(self, controller):
        assert controller.retry_after(7) == controller.retry_after(7)


class TestAccounts:
    def test_remaining_is_none_when_unlimited(self):
        acct = account()
        assert acct.remaining_tokens() is None
        assert acct.remaining_dollars() is None

    def test_remaining_never_negative(self):
        acct = account(TenantQuota(max_tokens=10), tokens_spent=25)
        assert acct.remaining_tokens() == 0
