"""ServeCore: the lock-guarded job state machine, on a simulated clock."""

import pytest

from repro.resilience.clock import SimulatedClock
from repro.serve import JobState, ServeConfig, ServeCore, TenantQuota


def payload(**overrides):
    body = {
        "tenant": "acme",
        "specs": [{"num_joins": 1}],
        "queries": 8,
        "intervals": 2,
    }
    body.update(overrides)
    return body


@pytest.fixture
def core(tmp_path):
    return ServeCore(
        ServeConfig(
            workers=2,
            max_queue_depth=4,
            checkpoint_root=str(tmp_path / "ckpts"),
            poison_quarantine_after=2,
            max_attempts=3,
        ),
        clock=SimulatedClock(),
    )


class TestSubmit:
    def test_accepts_and_assigns_monotonic_ids(self, core):
        status1, body1 = core.submit(payload())
        status2, body2 = core.submit(payload())
        assert (status1, status2) == (202, 202)
        assert body1["job_id"] == "job-0001"
        assert body2["job_id"] == "job-0002"

    def test_malformed_payload_is_400_not_exception(self, core):
        status, body = core.submit({"tenant": ""})
        assert status == 400
        assert body["error"] == "bad_request"
        status, body = core.submit("not a dict")
        assert status == 400

    def test_queue_full_is_explicit_429_with_retry_hint(self, core):
        for _ in range(4):
            assert core.submit(payload())[0] == 202
        status, body = core.submit(payload())
        assert status == 429
        assert body["code"] == "queue_full"
        assert body["retry_after_seconds"] > 0

    def test_every_rejection_is_counted(self, core):
        core.submit({"tenant": ""})
        for _ in range(5):
            core.submit(payload())
        stats = core.stats()
        assert stats["rejections"]["bad_request"] == 1
        assert stats["rejections"]["queue_full"] == 1

    def test_checkpoint_dir_is_per_job(self, core):
        _, body = core.submit(payload())
        job = core.job(body["job_id"])
        assert job.checkpoint_dir.endswith(body["job_id"])


class TestClaim:
    def test_priority_order_then_fifo(self, core):
        core.submit(payload(priority=1))
        core.submit(payload(priority=9))
        core.submit(payload(priority=9))
        assert core.claim("w").job_id == "job-0002"
        assert core.claim("w").job_id == "job-0003"

    def test_expired_queued_job_is_shed_not_run(self, core):
        core.submit(payload(deadline_seconds=1.0))
        core.clock.advance(2.0)
        assert core.claim("w") is None
        job = core.job("job-0001")
        assert job.state == JobState.EXPIRED
        assert "deadline expired" in job.error

    def test_tenant_concurrency_quota_defers_but_keeps_job(self, core):
        core.admission.default_quota = TenantQuota(max_concurrent_jobs=1)
        core.accounts.clear()
        core.submit(payload())
        core.submit(payload())
        first = core.claim("w1")
        assert first is not None
        assert core.claim("w2") is None  # deferred, not lost
        core.finish(first, {"error": None, "result": {}})
        assert core.claim("w2").job_id == "job-0002"

    def test_budget_ceiling_frozen_at_first_claim(self, core):
        core.admission.default_quota = TenantQuota(max_tokens=1000)
        core.accounts.clear()
        core.submit(payload(max_tokens=5000))
        job = core.claim("w")
        assert core.effective_max_tokens(job) == 1000
        # Later spend must not move the frozen ceiling.
        core.requeue_after_crash(job, {"tokens": 400})
        job = core.claim("w")
        assert core.effective_max_tokens(job) == 1000


class TestLifecycle:
    def test_finish_completes_and_bills(self, core):
        core.submit(payload())
        job = core.claim("w")
        core.finish(
            job, {"error": None, "tokens": 50, "dollars": 0.5, "result": {"queries": 8}}
        )
        assert job.state == JobState.COMPLETED
        account = core.accounts["acme"]
        assert account.tokens_spent == 50
        assert account.running == 0
        assert account.jobs_completed == 1

    def test_failed_attempt_still_bills(self, core):
        core.submit(payload())
        job = core.claim("w")
        core.finish(job, {"error": "boom", "tokens": 30})
        assert job.state == JobState.FAILED
        assert core.accounts["acme"].tokens_spent == 30

    def test_crash_requeues_flagged_for_resume(self, core):
        core.submit(payload())
        job = core.claim("w")
        core.requeue_after_crash(job)
        assert job.state == JobState.QUEUED
        assert job.resume is True
        again = core.claim("w2")
        assert again.job_id == job.job_id
        assert again.attempts == 2

    def test_repeated_crashes_fail_and_strike_spec(self, core):
        core.submit(payload())
        for _ in range(3):
            job = core.claim("w")
            core.requeue_after_crash(job)
        assert job.state == JobState.FAILED
        assert "gave up after 3 attempts" in job.error
        assert core.spec_strikes  # the poison-pill spec took a strike

    def test_poison_outcomes_quarantine_the_spec(self, core):
        spec = payload(cost_min=500.0, cost_max=100.0)
        for _ in range(2):
            _, body = core.submit(spec)
            job = core.claim("w")
            core.finish(job, {"error": "poisoned spec: ...", "poison": True})
        status, body = core.submit(spec)
        assert status == 422
        assert body["code"] == "spec_quarantined"
        # A different spec pack is unaffected.
        assert core.submit(payload(seed=99))[0] == 202

    def test_terminal_jobs_cannot_transition(self, core):
        core.submit(payload())
        job = core.claim("w")
        core.finish(job, {"error": None, "result": {}})
        with pytest.raises(ValueError, match="terminal"):
            job.transition(JobState.RUNNING, 0.0)


class TestDrain:
    def test_drain_stops_admission(self, core):
        core.submit(payload())
        summary = core.drain()
        assert summary["queued"] == 1
        status, body = core.submit(payload())
        assert status == 503
        assert body["code"] == "draining"

    def test_checkpoint_for_drain_marks_resumable(self, core):
        core.submit(payload())
        job = core.claim("w")
        core.checkpoint_for_drain(job, {"tokens": 10})
        assert job.state == JobState.CHECKPOINTED
        assert job.resume is True
        assert core.accounts["acme"].tokens_spent == 10


class TestAudit:
    def test_no_lost_jobs_through_the_full_lifecycle(self, core):
        core.submit(payload())
        core.submit(payload(priority=9))
        assert core.audit_lost_jobs() == []
        job = core.claim("w")
        assert core.audit_lost_jobs() == []
        core.requeue_after_crash(job)
        assert core.audit_lost_jobs() == []
        job = core.claim("w")
        core.finish(job, {"error": None, "result": {}})
        job2 = core.claim("w")
        core.checkpoint_for_drain(job2)
        assert core.audit_lost_jobs() == []

    def test_audit_catches_a_vanished_job(self, core):
        core.submit(payload())
        job = core.claim("w")
        # Corrupt the state machine behind the core's back.
        job.state = JobState.QUEUED
        assert core.audit_lost_jobs() == [job.job_id]

    def test_stats_snapshot_shape(self, core):
        core.submit(payload())
        stats = core.stats()
        assert stats["queue_depth"] == 1
        assert stats["jobs"] == {"queued": 1}
        assert "acme" in stats["tenants"]
