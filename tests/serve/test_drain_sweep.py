"""The kill sweep: die at EVERY interruption point, lose nothing.

For one representative job, enumerate every point the runner can be
interrupted at — the named :data:`KILL_POINTS` plus every dynamic
``checkpoint_save:<n>`` the job actually performs — and at each one:

* kill the worker there (:class:`WorkerKilled`) → the core must requeue
  the job (never lose it) and the resumed execution must fingerprint
  bit-identically to an uninterrupted baseline;
* drain there (:class:`DrainRequested`, save points only — drain lands
  only on durable state) → the job must be CHECKPOINTED and a fresh
  process resuming its checkpoint dir must fingerprint identically.
"""

import pytest

from repro.resilience.clock import SimulatedClock
from repro.serve import (
    KILL_POINTS,
    DrainRequested,
    Job,
    JobRequest,
    JobRunner,
    JobState,
    ServeConfig,
    ServeCore,
    WorkerKilled,
)

REQUEST = JobRequest(
    tenant="sweep",
    seed=11,
    specs=({"num_joins": 1, "num_aggregations": 1},),
    queries=8,
    intervals=2,
)


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """One uninterrupted run: the reference fingerprint + the save points."""
    seen = []
    outcome = JobRunner(clock=SimulatedClock(), on_point=seen.append).run(
        Job(
            job_id="baseline",
            request=REQUEST,
            checkpoint_dir=str(tmp_path_factory.mktemp("base") / "ckpt"),
        )
    )
    assert outcome.error is None
    save_points = tuple(
        p for p in seen if p.startswith("checkpoint_save:")
    )
    assert save_points, "checkpointing must always be on"
    return outcome.result["fingerprint"], save_points


def all_points(baseline):
    return list(KILL_POINTS) + list(baseline[1])


def make_core(tmp_path):
    return ServeCore(
        ServeConfig(
            workers=1,
            max_queue_depth=4,
            checkpoint_root=str(tmp_path / "ckpts"),
            max_attempts=3,
        ),
        clock=SimulatedClock(),
    )


def kill_at(target):
    def on_point(point):
        if point == target:
            raise WorkerKilled(point)

    return on_point


def drain_at(target):
    def on_point(point):
        if point == target:
            raise DrainRequested(point)

    return on_point


class TestKillSweep:
    def test_every_point_requeues_and_resumes_identically(
        self, baseline, tmp_path
    ):
        reference, _saves = baseline
        for index, point in enumerate(all_points(baseline)):
            core = make_core(tmp_path / f"kill-{index}")
            status, body = core.submit(REQUEST.to_payload())
            assert status == 202
            job = core.claim("victim")
            runner = JobRunner(clock=core.clock, on_point=kill_at(point))
            with pytest.raises(WorkerKilled):
                runner.run(job, resume=job.resume)
            core.requeue_after_crash(job)
            # Invariant 1: the job is never lost, at any kill point.
            assert core.audit_lost_jobs() == [], f"lost at {point}"
            assert job.state == JobState.QUEUED
            # Invariant 2: the resume completes bit-identically.
            job = core.claim("successor")
            assert job is not None, f"no job to resume at {point}"
            assert job.resume is True
            outcome = JobRunner(clock=core.clock).run(job, resume=True)
            assert outcome.error is None, f"resume failed at {point}"
            assert (
                outcome.result["fingerprint"] == reference
            ), f"fingerprint diverged after kill at {point}"
            core.finish(job, outcome.to_core())
            assert job.state == JobState.COMPLETED
            assert core.audit_lost_jobs() == []


class TestDrainSweep:
    def test_every_save_point_checkpoints_and_resumes_identically(
        self, baseline, tmp_path
    ):
        reference, save_points = baseline
        for index, point in enumerate(save_points):
            core = make_core(tmp_path / f"drain-{index}")
            core.submit(REQUEST.to_payload())
            job = core.claim("drainee")
            runner = JobRunner(clock=core.clock, on_point=drain_at(point))
            with pytest.raises(DrainRequested):
                runner.run(job, resume=job.resume)
            core.checkpoint_for_drain(job)
            assert job.state == JobState.CHECKPOINTED
            assert core.audit_lost_jobs() == [], f"lost at {point}"
            # A "new process" resumes the same checkpoint directory.
            revived = Job(
                job_id=job.job_id,
                request=job.request,
                checkpoint_dir=job.checkpoint_dir,
            )
            outcome = JobRunner(clock=SimulatedClock()).run(
                revived, resume=True
            )
            assert outcome.error is None, f"revive failed at {point}"
            assert (
                outcome.result["fingerprint"] == reference
            ), f"fingerprint diverged after drain at {point}"
