"""The HTTP front door, end-to-end on a real asyncio server.

Each fixture spins a :class:`BackgroundServer` on an ephemeral port and
talks to it with the stdlib client — the same path curl takes.
"""

import threading

import pytest

from repro.serve import (
    BackgroundServer,
    Job,
    JobRequest,
    JobRunner,
    ServeClient,
    ServeConfig,
    ServeCore,
    ServeServer,
    WorkerKilled,
)


def make_server(tmp_path, runner_factory=None, **config_overrides):
    config = dict(
        workers=2,
        max_queue_depth=8,
        checkpoint_root=str(tmp_path / "ckpts"),
    )
    config.update(config_overrides)
    server = ServeServer(
        ServeCore(ServeConfig(**config)),
        port=0,
        runner_factory=runner_factory,
        worker_poll_seconds=0.01,
    )
    return BackgroundServer(server)


def job_payload(**overrides):
    body = {
        "tenant": "acme",
        "specs": [{"num_joins": 1}],
        "queries": 8,
        "intervals": 2,
        "seed": 3,
    }
    body.update(overrides)
    return body


@pytest.fixture
def service(tmp_path):
    background = make_server(tmp_path)
    url = background.start()
    client = ServeClient(url)
    yield client, background
    background.drain_and_stop()


class TestProtocol:
    def test_healthz(self, service):
        client, _ = service
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2

    def test_submit_and_complete(self, service):
        client, _ = service
        status, body, _headers = client.submit(job_payload())
        assert status == 202
        final = client.wait_for(body["job_id"])
        assert final["state"] == "completed"
        assert final["result"]["queries"] >= 1
        assert len(final["result"]["fingerprint"]) == 64

    def test_job_table_and_single_lookup(self, service):
        client, _ = service
        _, body, _ = client.submit(job_payload())
        client.wait_for(body["job_id"])
        table = client.jobs()
        assert any(j["job_id"] == body["job_id"] for j in table)
        status, one = client.job(body["job_id"])
        assert status == 200
        assert one["tenant"] == "acme"

    def test_unknown_job_is_404(self, service):
        client, _ = service
        status, body = client.job("job-9999")
        assert status == 404

    def test_bad_payload_is_400(self, service):
        client, _ = service
        status, body, _ = client.submit({"tenant": ""})
        assert status == 400
        assert body["error"] == "bad_request"

    def test_unknown_route_is_404_and_wrong_method_405(self, service):
        client, _ = service
        assert client.request("GET", "/nope")[0] == 404
        assert client.request("DELETE", "/v1/jobs")[0] == 405

    def test_stats_exposes_counters(self, service):
        client, _ = service
        stats = client.stats()
        assert "queue_depth" in stats
        assert "rejections" in stats


class TestBackpressure:
    def test_queue_full_sets_retry_after_header(self, tmp_path):
        background = make_server(tmp_path, max_queue_depth=0)
        client = ServeClient(background.start())
        try:
            status, body, headers = client.submit(job_payload())
            assert status == 429
            assert body["code"] == "queue_full"
            assert float(headers["retry-after"]) > 0
        finally:
            background.drain_and_stop()


class TestWorkerCrash:
    def test_killed_worker_requeues_and_another_resumes(self, tmp_path):
        kills = {"remaining": 1}
        lock = threading.Lock()

        def killing_runner(server):
            def factory(worker):
                def on_point(point):
                    with lock:
                        if (
                            point.startswith("checkpoint_save:")
                            and kills["remaining"] > 0
                        ):
                            kills["remaining"] -= 1
                            raise WorkerKilled(point)

                return JobRunner(
                    clock=server.core.clock, on_point=on_point
                )

            return factory

        background = make_server(tmp_path)
        background.server._runner_factory = killing_runner(background.server)
        client = ServeClient(background.start())
        try:
            _, body, _ = client.submit(job_payload())
            final = client.wait_for(body["job_id"], timeout_seconds=90.0)
            assert final["state"] == "completed"
            assert final["attempts"] == 2  # killed once, resumed once
            # Bit-identical to an uninterrupted run of the same request.
            baseline = JobRunner().run(
                Job(
                    job_id="baseline",
                    request=JobRequest.from_payload(job_payload()),
                    checkpoint_dir=str(tmp_path / "baseline"),
                )
            )
            assert (
                final["result"]["fingerprint"]
                == baseline.result["fingerprint"]
            )
        finally:
            background.drain_and_stop()


class TestDrain:
    def test_drain_rejects_new_submissions_with_503(self, service):
        client, _ = service
        summary = client.drain()
        assert summary["draining"] is True
        status, body, headers = client.submit(job_payload())
        assert status == 503
        assert body["code"] == "draining"
        # Deliberately no Retry-After: drain ends in process exit, not
        # freed capacity — the body says to retry after the restart.
        assert "retry-after" not in headers
        assert body["retry_after_seconds"] is None
        assert "restart" in body["reason"]
        assert client.health()["status"] == "draining"

    def test_graceful_stop_accounts_every_job(self, tmp_path):
        background = make_server(tmp_path, workers=1)
        client = ServeClient(background.start())
        for seed in range(3):
            client.submit(job_payload(seed=seed))
        summary = background.drain_and_stop()
        assert summary["draining"] is True
        core = background.server.core
        assert core.audit_lost_jobs() == []
        states = {j.state for j in core.jobs.values()}
        assert states <= {"completed", "checkpointed", "queued"}
