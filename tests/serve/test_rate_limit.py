"""Time-windowed rate limiting: deterministic buckets, exact hints."""

import pytest

from repro.resilience.clock import SimulatedClock
from repro.serve import (
    CONSUMING_REJECTION_CODES,
    RateLimiter,
    ServeConfig,
    ServeCore,
    TenantQuota,
)


def quota(**overrides):
    settings = dict(requests_per_window=2, window_seconds=10.0)
    settings.update(overrides)
    return TenantQuota(**settings)


def make_core(tmp_path=None, clock=None, **config_overrides):
    settings = dict(
        workers=2,
        max_queue_depth=32,
        default_quota=quota(max_queued_jobs=32, max_concurrent_jobs=8),
        checkpoint_root=str(tmp_path / "ckpts") if tmp_path else "ckpts",
        state_dir=str(tmp_path / "state") if tmp_path else None,
        journal_fsync="off",
    )
    settings.update(config_overrides)
    config = ServeConfig(**settings)
    clock = clock or SimulatedClock()
    store = ServeCore.open_store(config) if tmp_path else None
    return ServeCore(config, clock, store)


def payload(**overrides):
    body = {"tenant": "acme", "specs": [{"num_joins": 1}], "seed": 3}
    body.update(overrides)
    return body


class TestBucketMath:
    def test_unarmed_quota_never_limits(self):
        limiter = RateLimiter()
        for step in range(100):
            assert limiter.check("t", TenantQuota(), float(step)) is None

    def test_exact_retry_after_on_empty_bucket(self):
        limiter = RateLimiter()
        q = quota()  # 2 per 10s -> 0.2 tokens/s
        assert limiter.check("t", q, 0.0) is None
        assert limiter.check("t", q, 0.0) is None
        # Bucket empty: one full token is 1 / 0.2 = 5 seconds away.
        assert limiter.check("t", q, 0.0) == 5.0

    def test_refill_is_linear_in_elapsed_time(self):
        limiter = RateLimiter()
        q = quota()
        limiter.check("t", q, 0.0)
        limiter.check("t", q, 0.0)
        assert limiter.check("t", q, 2.5) == pytest.approx(2.5)
        assert limiter.check("t", q, 5.0) is None  # one token back
        assert limiter.check("t", q, 5.0) == 5.0

    def test_burst_overrides_capacity(self):
        limiter = RateLimiter()
        q = quota(burst=5)
        for _ in range(5):
            assert limiter.check("t", q, 0.0) is None
        assert limiter.check("t", q, 0.0) == 5.0

    def test_capacity_never_exceeds_burst(self):
        limiter = RateLimiter()
        q = quota()
        limiter.check("t", q, 0.0)
        # A long quiet period refills to capacity, not beyond.
        for _ in range(2):
            assert limiter.check("t", q, 1000.0) is None
        assert limiter.check("t", q, 1000.0) == 5.0

    def test_tenants_have_independent_buckets(self):
        limiter = RateLimiter()
        q = quota()
        limiter.check("a", q, 0.0)
        limiter.check("a", q, 0.0)
        assert limiter.check("a", q, 0.0) is not None
        assert limiter.check("b", q, 0.0) is None

    def test_state_roundtrip_and_shift(self):
        limiter = RateLimiter()
        q = quota()
        limiter.check("t", q, 7.0)
        twin = RateLimiter()
        twin.restore(limiter.state())
        twin.shift(-7.0)
        # Same elapsed time since the consumption -> same verdicts.
        assert limiter.check("t", q, 7.0) is None
        assert twin.check("t", q, 0.0) is None
        assert limiter.check("t", q, 7.0) == twin.check("t", q, 0.0) == 5.0


class TestCoreIntegration:
    def test_third_submission_in_window_gets_429(self, tmp_path):
        core = make_core(tmp_path)
        for seed in range(2):
            status, _body = core.submit(payload(seed=seed))
            assert status == 202
        status, body = core.submit(payload(seed=9))
        core.close()
        assert status == 429
        assert body["code"] == "rate_limited"
        assert body["retry_after_seconds"] == 5.0
        assert "2 requests per 10s window" in body["reason"]

    def test_window_passes_and_tenant_is_welcome_again(self, tmp_path):
        clock = SimulatedClock()
        core = make_core(tmp_path, clock=clock)
        for seed in range(2):
            core.submit(payload(seed=seed))
        assert core.submit(payload(seed=8))[0] == 429
        clock.advance(5.0)
        assert core.submit(payload(seed=9))[0] == 202
        core.close()

    def test_rate_check_runs_before_queue_capacity(self, tmp_path):
        core = make_core(tmp_path, max_queue_depth=0)
        status, body = core.submit(payload(seed=1))
        assert (status, body["code"]) == (429, "queue_full")
        # queue_full consumed the second-to-last token...
        status, body = core.submit(payload(seed=2))
        assert (status, body["code"]) == (429, "queue_full")
        # ...so the bucket, not the queue, rejects the third attempt.
        status, body = core.submit(payload(seed=3))
        assert (status, body["code"]) == (429, "rate_limited")
        core.close()

    def test_rate_limited_rejection_consumes_no_token(self):
        core = make_core()
        for seed in range(2):
            core.submit(payload(seed=seed))
        before = core.admission.limiter.state()["acme"]
        core.submit(payload(seed=8))  # 429 rate_limited
        assert core.admission.limiter.state()["acme"] == before
        assert "rate_limited" not in CONSUMING_REJECTION_CODES

    def test_verdict_sequence_is_deterministic(self):
        def run():
            clock = SimulatedClock()
            core = make_core(clock=clock)
            seen = []
            for step in range(8):
                status, body = core.submit(payload(seed=step))
                seen.append((status, body.get("retry_after_seconds")))
                clock.advance(1.5)
            return seen

        assert run() == run()


class TestReplay:
    def test_bucket_state_survives_restart(self, tmp_path):
        clock = SimulatedClock()
        core = make_core(tmp_path, clock=clock)
        for seed in range(2):
            core.submit(payload(seed=seed))
        assert core.submit(payload(seed=8))[0] == 429
        core.close()

        config = core.config
        recovered = ServeCore.recover(config, SimulatedClock())
        try:
            # Same instant (rebased): still throttled, same exact hint.
            status, body = recovered.submit(payload(seed=9))
            assert (status, body["code"]) == (429, "rate_limited")
            assert body["retry_after_seconds"] == 5.0
            recovered.clock.advance(5.0)
            assert recovered.submit(payload(seed=10))[0] == 202
        finally:
            recovered.close()

    def test_recovered_core_agrees_with_surviving_twin(self, tmp_path):
        """Crash vs. no crash must yield identical future verdicts."""
        timeline = [0.0, 0.4, 0.9, 3.0, 6.5]
        probes = [7.0, 8.0, 12.0, 13.0]

        def drive(core, clock):
            for step, at in enumerate(timeline):
                clock.advance(at - clock.now())
                core.submit(payload(seed=step))

        survivor_clock = SimulatedClock()
        survivor = make_core(clock=survivor_clock)
        drive(survivor, survivor_clock)

        crash_clock = SimulatedClock()
        crashed = make_core(tmp_path, clock=crash_clock)
        drive(crashed, crash_clock)
        crashed.close()
        recovered = ServeCore.recover(
            crashed.config, SimulatedClock(start=crash_clock.now())
        )
        try:
            for at in probes:
                survivor_clock.advance(at - survivor_clock.now())
                recovered.clock.advance(at - recovered.clock.now())
                expected = survivor.submit(payload(seed=int(at)))
                actual = recovered.submit(payload(seed=int(at)))
                assert actual[0] == expected[0], at
                assert (
                    actual[1].get("retry_after_seconds")
                    == expected[1].get("retry_after_seconds")
                ), at
        finally:
            recovered.close()
