"""Service recovery: a fresh process carries the dead one's exact state."""

import pytest

from repro.resilience.clock import SimulatedClock
from repro.serve import (
    DrainRequested,
    JobRunner,
    ServeConfig,
    ServeCore,
    TenantQuota,
)
from repro.serve.jobs import Job, JobState


def make_config(tmp_path, **overrides):
    settings = dict(
        workers=2,
        max_queue_depth=32,
        checkpoint_root=str(tmp_path / "ckpts"),
        state_dir=str(tmp_path / "state"),
        journal_fsync="off",
        default_quota=TenantQuota(
            max_concurrent_jobs=8, max_queued_jobs=32
        ),
    )
    settings.update(overrides)
    return ServeConfig(**settings)


def payload(**overrides):
    body = {
        "tenant": "acme",
        "specs": [{"num_joins": 1}],
        "queries": 8,
        "intervals": 2,
        "seed": 3,
    }
    body.update(overrides)
    return body


def submit_ok(core, **overrides):
    status, body = core.submit(payload(**overrides))
    assert status == 202, body
    return body["job_id"]


def drain_to_checkpoint(core, runner_clock):
    """Claim one job and drain it at its first checkpoint save."""
    job = core.claim("w0")
    assert job is not None

    def on_point(point):
        if point.startswith("checkpoint_save:"):
            raise DrainRequested(point)

    runner = JobRunner(clock=runner_clock, on_point=on_point)
    with pytest.raises(DrainRequested):
        runner.run(job, resume=job.resume, max_tokens=None)
    core.checkpoint_for_drain(job, {"tokens": 10, "dollars": 0.01})
    return job


class TestQueueOrder:
    def test_priority_fifo_order_survives_restart(self, tmp_path):
        config = make_config(tmp_path)
        core = ServeCore(config, SimulatedClock(), ServeCore.open_store(config))
        ids = {
            "low": submit_ok(core, priority=1, seed=1),
            "mid_first": submit_ok(core, priority=5, seed=2),
            "mid_second": submit_ok(core, priority=5, seed=4),
            "high": submit_ok(core, priority=9, seed=5),
        }
        core.close()

        recovered = ServeCore.recover(config, SimulatedClock())
        try:
            claim_order = [
                recovered.claim(f"w{n}").job_id for n in range(4)
            ]
            assert claim_order == [
                ids["high"], ids["mid_first"], ids["mid_second"], ids["low"]
            ]
            assert recovered.audit_lost_jobs() == []
        finally:
            recovered.close()


class TestRunningJobs:
    def test_running_job_is_requeued_for_resume(self, tmp_path):
        config = make_config(tmp_path)
        core = ServeCore(config, SimulatedClock(), ServeCore.open_store(config))
        job_id = submit_ok(core)
        assert core.claim("w0").job_id == job_id  # dies RUNNING
        core.close()

        recovered = ServeCore.recover(config, SimulatedClock())
        try:
            job = recovered.job(job_id)
            assert job.state == JobState.QUEUED
            assert job.resume is True
            assert job.attempts == 1  # the lost attempt still counts
            assert recovered.recovery["requeued_running"] == 1
            assert recovered.audit_lost_jobs() == []
            account = recovered.accounts["acme"]
            assert (account.queued, account.running) == (1, 0)
        finally:
            recovered.close()

    def test_budget_freeze_survives_the_crash(self, tmp_path):
        config = make_config(
            tmp_path,
            quotas={"acme": TenantQuota(max_tokens=500, max_queued_jobs=8)},
        )
        core = ServeCore(config, SimulatedClock(), ServeCore.open_store(config))
        job_id = submit_ok(core, max_tokens=900)
        frozen = core.claim("w0").effective_max_tokens
        assert frozen == 500  # min(request cap, tenant remaining)
        core.close()

        recovered = ServeCore.recover(config, SimulatedClock())
        try:
            job = recovered.job(job_id)
            assert job.budget_frozen is True
            assert job.effective_max_tokens == frozen
        finally:
            recovered.close()

    def test_service_killing_job_poisons_out(self, tmp_path):
        config = make_config(
            tmp_path, max_attempts=1, poison_quarantine_after=1
        )
        core = ServeCore(config, SimulatedClock(), ServeCore.open_store(config))
        job_id = submit_ok(core)
        job = core.claim("w0")
        spec_key = job.request.spec_key()
        core.close()

        recovered = ServeCore.recover(config, SimulatedClock())
        try:
            job = recovered.job(job_id)
            assert job.state == JobState.FAILED
            assert "gave up" in job.error
            assert recovered.spec_strikes[spec_key] == 1
            assert spec_key in recovered.quarantined_specs
            # The quarantine now refuses the same spec from anyone.
            status, body = recovered.submit(payload(tenant="rival"))
            assert (status, body["code"]) == (422, "spec_quarantined")
            assert recovered.audit_lost_jobs() == []
        finally:
            recovered.close()


class TestCheckpointedJobs:
    def test_resume_fingerprint_matches_uninterrupted_run(self, tmp_path):
        config = make_config(tmp_path)
        clock = SimulatedClock()
        core = ServeCore(config, clock, ServeCore.open_store(config))
        job_id = submit_ok(core)
        drain_to_checkpoint(core, clock)
        assert core.job(job_id).state == JobState.CHECKPOINTED
        core.close()

        recovered = ServeCore.recover(config, SimulatedClock())
        try:
            assert recovered.recovery["resumed_checkpointed"] == 1
            job = recovered.claim("w0")
            assert job.job_id == job_id and job.resume is True
            outcome = JobRunner(clock=recovered.clock).run(
                job,
                resume=True,
                max_tokens=recovered.effective_max_tokens(job),
            )
            recovered.finish(job, outcome.to_core())
            assert job.state == JobState.COMPLETED

            baseline = JobRunner().run(
                Job(
                    job_id="baseline",
                    request=job.request,
                    checkpoint_dir=str(tmp_path / "twin-ckpt"),
                )
            )
            assert (
                job.result["fingerprint"]
                == baseline.result["fingerprint"]
            )
        finally:
            recovered.close()


class TestLedgers:
    def test_billing_strikes_and_rejections_reconstructed(self, tmp_path):
        config = make_config(
            tmp_path,
            poison_quarantine_after=1,
            quotas={"bob": TenantQuota(max_queued_jobs=1)},
        )
        core = ServeCore(config, SimulatedClock(), ServeCore.open_store(config))
        done = submit_ok(core, seed=1)
        core.finish(
            core.claim("w0"),
            {"result": {"fingerprint": "f" * 64}, "tokens": 40,
             "dollars": 0.25},
        )
        poisoned = submit_ok(core, seed=2, cost_min=50.0, cost_max=1.0)
        core.finish(
            core.claim("w1"),
            {"error": "poisoned spec: inverted cost range", "poison": True,
             "tokens": 5, "dollars": 0.01},
        )
        submit_ok(core, tenant="bob")
        status, body = core.submit(payload(tenant="bob"))
        assert (status, body["code"]) == (429, "tenant_queue_full")
        core.submit({"tenant": ""})  # 400, journaled as a rejection too
        expected = {
            key: core.state_snapshot()[key]
            for key in ("accounts", "spec_strikes", "quarantined_specs",
                        "rejections")
        }
        core.close()

        recovered = ServeCore.recover(config, SimulatedClock())
        try:
            snapshot = recovered.state_snapshot()
            for key, value in expected.items():
                assert snapshot[key] == value, key
            assert recovered.job(done).state == JobState.COMPLETED
            assert recovered.job(done).result["fingerprint"] == "f" * 64
            assert recovered.job(poisoned).state == JobState.FAILED
            assert recovered.audit_lost_jobs() == []
        finally:
            recovered.close()


class TestCleanShutdown:
    def test_drained_record_marks_clean_shutdown(self, tmp_path):
        config = make_config(tmp_path)
        core = ServeCore(config, SimulatedClock(), ServeCore.open_store(config))
        submit_ok(core)
        core.drain()
        core.mark_drained()
        core.close()

        recovered = ServeCore.recover(config, SimulatedClock())
        try:
            assert recovered.recovery["clean_shutdown"] is True
            assert recovered.recovery["was_draining"] is True
            # The new lifetime accepts work again.
            assert recovered.draining is False and recovered.drained is False
            submit_ok(recovered, seed=9)
        finally:
            recovered.close()

    def test_crash_without_drained_record_is_not_clean(self, tmp_path):
        config = make_config(tmp_path)
        core = ServeCore(config, SimulatedClock(), ServeCore.open_store(config))
        submit_ok(core)
        core.drain()  # died mid-drain: no terminal record
        core.close()

        recovered = ServeCore.recover(config, SimulatedClock())
        try:
            assert recovered.recovery["was_draining"] is True
            assert recovered.recovery["clean_shutdown"] is False
        finally:
            recovered.close()


class TestClockRebasing:
    def test_deadline_keeps_remaining_budget(self, tmp_path):
        config = make_config(tmp_path)
        clock = SimulatedClock()
        core = ServeCore(config, clock, ServeCore.open_store(config))
        clock.advance(5.0)
        job_id = submit_ok(core, deadline_seconds=10.0)
        assert core.job(job_id).deadline_at == 15.0
        core.close()

        # The new process clock starts at zero: the journal's last event
        # (the submission, at t=5) anchors the shift, so the job keeps
        # its full 10s remaining.
        recovered = ServeCore.recover(config, SimulatedClock())
        try:
            assert recovered.job(job_id).deadline_at == pytest.approx(10.0)
            recovered.clock.advance(10.5)
            assert recovered.claim("w0") is None
            assert recovered.job(job_id).state == JobState.EXPIRED
            assert recovered.audit_lost_jobs() == []
        finally:
            recovered.close()


class TestDamageTolerance:
    def test_orphan_record_is_quarantined_not_fatal(self, tmp_path):
        config = make_config(tmp_path)
        core = ServeCore(config, SimulatedClock(), ServeCore.open_store(config))
        submit_ok(core)
        # A record whose submission was lost to (simulated) damage.
        core.store.append(
            "finished",
            {"job_id": "job-9999", "state": "completed", "tokens": 1},
        )
        core.close()

        recovered = ServeCore.recover(config, SimulatedClock())
        try:
            counts = recovered.recovery["quarantined_counts"]
            assert counts.get("unreplayable_record") == 1
            assert "job-9999" not in recovered.jobs
            assert recovered.audit_lost_jobs() == []
            assert recovered.stats()["recovery"]["quarantined_counts"] == counts
        finally:
            recovered.close()


class TestIdempotence:
    def test_second_recovery_is_byte_identical(self, tmp_path):
        from repro.resilience.checkpoint import canonical_json

        config = make_config(tmp_path)
        clock = SimulatedClock()
        core = ServeCore(config, clock, ServeCore.open_store(config))
        for seed in range(3):
            submit_ok(core, seed=seed, priority=seed * 3)
        core.claim("w0")  # one job dies RUNNING
        drain_to_checkpoint(core, clock)  # one dies CHECKPOINTED
        core.close()

        first = ServeCore.recover(config, SimulatedClock())
        state_one = canonical_json(first.state_snapshot())
        first.close()
        second = ServeCore.recover(config, SimulatedClock())
        state_two = canonical_json(second.state_snapshot())
        second.close()
        assert state_one == state_two
