"""The restart chaos campaign: kill the whole service, lose nothing.

Each sweep point truncates the journal to the exact bytes that existed
at one lifecycle transition — recovery from every prefix must produce
byte-identical state twice, resume checkpointed jobs to bit-identical
fingerprints, and quarantine (never crash on) injected journal damage.
"""

from repro.resilience import run_chaos_campaign
from repro.serve import RestartChaosRunner, run_restart_chaos


class TestDeterminism:
    def test_two_campaigns_are_byte_identical(self):
        first = run_restart_chaos(seed=0, runs=1)
        second = run_restart_chaos(seed=0, runs=1)
        assert first.to_json() == second.to_json()

    def test_different_seeds_differ(self):
        assert (
            run_restart_chaos(seed=0, runs=1).to_json()
            != run_restart_chaos(seed=1, runs=1).to_json()
        )

    def test_no_wall_clock_or_paths_in_report(self):
        report = run_restart_chaos(seed=0, runs=1)
        text = report.to_json()
        assert "/tmp" not in text
        assert "repro-restart-chaos" not in text


class TestInvariants:
    def test_every_journaled_transition_recovers_identically(self):
        report = run_restart_chaos(seed=0, runs=2)
        assert report.ok, report.to_json()
        assert report.failures == []
        assert report.mismatches == []
        assert report.lost_jobs == []
        # The sweep visited every append, recovered each point twice,
        # and the two recoveries never disagreed.
        assert report.sweep_points > 0
        assert report.recovery_pairs >= report.sweep_points
        assert report.pairs_identical == report.recovery_pairs
        # Full recoveries ran jobs to completion against known-good
        # fingerprints (uninterrupted twins), bit-identically.
        assert report.completions_checked > 0
        assert report.fingerprints_identical == report.completions_checked
        assert report.resumed_from_checkpoint > 0
        # Recovering a recovered store changes nothing.
        assert report.idempotent_recoveries > 0

    def test_fault_injection_quarantines_every_kind(self):
        report = run_restart_chaos(seed=0, runs=2)
        assert set(report.faults) == {
            "torn_tail", "truncated_segment", "bit_flip"
        }
        for kind, counts in report.faults.items():
            assert counts["injected"] > 0, kind
            # Detectable damage lands in quarantine; none of it may
            # surface as a recovery failure (checked via report.ok).
            assert counts["quarantined"] > 0, kind

    def test_drained_runs_report_clean_shutdown(self):
        # Seed 0's plans include at least one run that drains fully.
        report = run_restart_chaos(seed=0, runs=2)
        assert report.clean_shutdowns > 0

    def test_every_submission_got_an_explicit_answer(self):
        report = run_restart_chaos(seed=0, runs=1)
        answered = report.accepted + sum(report.rejections.values())
        assert answered == report.submitted


class TestDispatch:
    def test_campaign_dispatches_restart_scenario(self):
        via_campaign = run_chaos_campaign(seed=0, runs=1, scenario="restart")
        direct = run_restart_chaos(seed=0, runs=1)
        assert via_campaign.to_json() == direct.to_json()

    def test_runner_is_plain_object(self):
        runner = RestartChaosRunner(seed=1, runs=1, intensity=0.5)
        assert runner.intensity == 0.5
