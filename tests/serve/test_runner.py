"""JobRunner: one job through SQLBarber behind the serving guard rails."""

import pytest

from repro.resilience.clock import SimulatedClock
from repro.serve import Job, JobOutcome, JobRequest, JobRunner, WorkerKilled


def request(**overrides):
    fields = {
        "tenant": "t",
        "seed": 7,
        "specs": ({"num_joins": 1},),
        "queries": 8,
        "intervals": 2,
    }
    fields.update(overrides)
    return JobRequest(**fields)


def job(tmp_path=None, **overrides):
    return Job(
        job_id="job-0001",
        request=request(**overrides),
        checkpoint_dir=str(tmp_path / "ckpt") if tmp_path else None,
    )


class TestOutcomes:
    def test_successful_run_produces_fingerprint(self, tmp_path):
        outcome = JobRunner(clock=SimulatedClock()).run(job(tmp_path))
        assert outcome.error is None
        assert outcome.result["queries"] == 8
        assert len(outcome.result["fingerprint"]) == 64
        assert outcome.tokens > 0

    def test_same_request_same_fingerprint(self, tmp_path):
        first = JobRunner(clock=SimulatedClock()).run(
            job(tmp_path / "a")
        )
        second = JobRunner(clock=SimulatedClock()).run(
            job(tmp_path / "b")
        )
        assert (
            first.result["fingerprint"] == second.result["fingerprint"]
        )

    def test_inverted_cost_range_is_poison_not_crash(self, tmp_path):
        outcome = JobRunner(clock=SimulatedClock()).run(
            job(tmp_path, cost_min=500.0, cost_max=100.0)
        )
        assert outcome.poison is True
        assert "poisoned spec" in outcome.error
        assert outcome.result is None

    def test_deadline_in_the_past_aborts_gracefully(self, tmp_path):
        clock = SimulatedClock(start=100.0)
        j = job(tmp_path)
        j.deadline_at = 50.0  # already lapsed: the LLM client refuses calls
        outcome = JobRunner(clock=clock).run(j)
        # The pipeline converts deadline pressure into an aborted-but-
        # valid partial result, not an exception.
        assert outcome.error is None
        assert outcome.result["aborted"] is True

    def test_to_core_round_trip(self):
        outcome = JobOutcome(tokens=5, dollars=0.1, result={"x": 1})
        assert outcome.to_core() == {
            "error": None,
            "poison": False,
            "tokens": 5,
            "dollars": 0.1,
            "result": {"x": 1},
        }


class TestKillPoints:
    def test_named_points_fire_in_order(self, tmp_path):
        seen = []
        runner = JobRunner(clock=SimulatedClock(), on_point=seen.append)
        runner.run(job(tmp_path))
        named = [p for p in seen if not p.startswith("checkpoint_save:")]
        assert named == [
            "claimed",
            "db_built",
            "client_built",
            "pipeline_done",
            "outcome_built",
        ]
        saves = [p for p in seen if p.startswith("checkpoint_save:")]
        assert saves, "checkpointing must always be on"

    def test_worker_killed_escapes_uncaught(self, tmp_path):
        def kill(point):
            if point == "db_built":
                raise WorkerKilled(point)

        runner = JobRunner(clock=SimulatedClock(), on_point=kill)
        with pytest.raises(WorkerKilled):
            runner.run(job(tmp_path))

    def test_worker_killed_is_not_an_exception(self):
        assert not issubclass(WorkerKilled, Exception)
        assert issubclass(WorkerKilled, BaseException)


class TestResume:
    def test_resume_after_kill_fingerprints_identically(self, tmp_path):
        baseline = JobRunner(clock=SimulatedClock()).run(
            job(tmp_path / "base")
        )

        def kill(point):
            if point == "checkpoint_save:2":
                raise WorkerKilled(point)

        victim = job(tmp_path / "killed")
        with pytest.raises(WorkerKilled):
            JobRunner(clock=SimulatedClock(), on_point=kill).run(victim)
        resumed = JobRunner(clock=SimulatedClock()).run(victim, resume=True)
        assert resumed.error is None
        assert (
            resumed.result["fingerprint"] == baseline.result["fingerprint"]
        )
