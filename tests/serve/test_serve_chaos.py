"""The serve chaos campaign: deterministic, exhaustive, zero lost jobs.

Seed 10 is the CI seed: at runs=4 it exercises every disruption class —
worker kills with verified resumes, queue-full storms, a deadline expiry,
poisoned specs through to quarantine rejection, and a mid-campaign drain.
"""

from repro.resilience import run_chaos_campaign
from repro.serve import ServeChaosRunner, run_serve_chaos


class TestDeterminism:
    def test_two_campaigns_are_byte_identical(self):
        first = run_serve_chaos(seed=10, runs=2)
        second = run_serve_chaos(seed=10, runs=2)
        assert first.to_json() == second.to_json()

    def test_different_seeds_differ(self):
        assert (
            run_serve_chaos(seed=10, runs=1).to_json()
            != run_serve_chaos(seed=11, runs=1).to_json()
        )

    def test_no_wall_clock_or_paths_in_report(self):
        report = run_serve_chaos(seed=10, runs=1)
        text = report.to_json()
        assert "/tmp" not in text
        assert "time" not in report.to_dict()


class TestInvariants:
    def test_ci_seed_covers_every_disruption_class(self):
        report = run_serve_chaos(seed=10, runs=4)
        assert report.ok, report.to_json()
        assert report.lost_jobs == []
        assert report.mismatches == []
        assert report.kills_fired > 0
        assert report.kills_fired == report.resumed_identical
        assert report.expired > 0
        assert report.poisoned > 0
        assert report.quarantine_rejections > 0
        assert report.drained_runs > 0
        assert report.rejections.get("queue_full", 0) > 0

    def test_every_submission_got_an_explicit_answer(self):
        report = run_serve_chaos(seed=10, runs=2)
        answered = report.accepted + sum(report.rejections.values())
        assert answered == report.submitted

    def test_cli_compat_surface(self):
        """cmd_chaos reads these attributes off every scenario's report."""
        report = run_serve_chaos(seed=10, runs=1)
        assert isinstance(report.aborted, int)
        assert isinstance(report.completed, int)
        assert isinstance(report.failures, list)
        assert report.to_json().endswith("\n")


class TestDispatch:
    def test_campaign_dispatches_serve_scenario(self):
        via_campaign = run_chaos_campaign(seed=10, runs=1, scenario="serve")
        direct = run_serve_chaos(seed=10, runs=1)
        assert via_campaign.to_json() == direct.to_json()

    def test_runner_is_plain_object(self):
        runner = ServeChaosRunner(seed=1, runs=1, intensity=0.5)
        assert runner.intensity == 0.5
