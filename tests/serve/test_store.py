"""JobStore: journal segments, checksums, compaction, damage tolerance."""

import json
import os

import pytest

from repro.resilience.lock import LockHeld
from repro.serve import JobStore, StoreFaultModel
from repro.serve.store import decode_record, encode_record


def open_store(path, **kwargs):
    kwargs.setdefault("fsync_policy", "off")
    return JobStore(path, **kwargs)


def record_types(records):
    return [r["t"] for r in records]


class TestRecords:
    def test_encode_decode_roundtrip(self):
        line = encode_record(3, "submitted", 1.5, {"job_id": "job-0001"})
        record = decode_record(line.rstrip(b"\n"))
        assert record["n"] == 3
        assert record["t"] == "submitted"
        assert record["at"] == 1.5
        assert record["d"] == {"job_id": "job-0001"}

    def test_checksum_catches_any_flipped_bit(self):
        line = bytearray(encode_record(0, "finished", 2.0, {"tokens": 40}))
        for index in range(len(line) - 1):  # skip the newline
            flipped = bytearray(line)
            flipped[index] ^= 0x01
            if flipped == line:
                continue
            assert decode_record(bytes(flipped).rstrip(b"\n")) is None

    def test_garbage_is_rejected_not_raised(self):
        assert decode_record(b"not json at all") is None
        assert decode_record(b'{"n": 0}') is None
        assert decode_record(b'["a", "list"]') is None


class TestAppendRecover:
    def test_appended_records_come_back_in_order(self, tmp_path):
        store = open_store(tmp_path / "s")
        for index in range(5):
            store.append("submitted", {"i": index}, at=float(index))
        store.close()
        reopened = open_store(tmp_path / "s")
        snapshot, records, quarantined = reopened.recover()
        reopened.close()
        assert snapshot is None
        assert quarantined == []
        assert [r["d"]["i"] for r in records] == [0, 1, 2, 3, 4]

    def test_rotation_seals_and_recovery_spans_segments(self, tmp_path):
        store = open_store(tmp_path / "s", segment_max_records=3)
        for index in range(8):
            store.append("submitted", {"i": index})
        store.close()
        names = sorted(
            n for n in os.listdir(tmp_path / "s") if n.startswith("journal-")
        )
        assert len(names) >= 3
        reopened = open_store(tmp_path / "s", segment_max_records=3)
        _snapshot, records, quarantined = reopened.recover()
        reopened.close()
        assert quarantined == []
        assert [r["d"]["i"] for r in records] == list(range(8))

    def test_fresh_open_never_appends_to_history(self, tmp_path):
        store = open_store(tmp_path / "s")
        store.append("submitted", {"i": 0})
        store.close()
        reopened = open_store(tmp_path / "s")
        reopened.append("submitted", {"i": 1})
        third = open_store(tmp_path / "s", takeover=True)
        _snapshot, records, _q = third.recover()
        third.close()
        reopened.close()
        # Each process lifetime owns its own segment file.
        assert [r["d"]["i"] for r in records] == [0, 1]

    def test_invalid_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync_policy"):
            JobStore(tmp_path / "s", fsync_policy="sometimes")

    @pytest.mark.parametrize("policy", ["always", "rotate", "off"])
    def test_all_policies_roundtrip(self, tmp_path, policy):
        store = JobStore(tmp_path / policy, fsync_policy=policy)
        store.append("submitted", {"p": policy})
        store.close()
        reopened = open_store(tmp_path / policy)
        _s, records, q = reopened.recover()
        reopened.close()
        assert q == []
        assert records[0]["d"] == {"p": policy}


class TestLocking:
    def test_second_opener_gets_lock_held(self, tmp_path):
        store = open_store(tmp_path / "s")
        with pytest.raises(LockHeld):
            open_store(tmp_path / "s")
        store.close()

    def test_takeover_breaks_a_same_pid_lock(self, tmp_path):
        store = open_store(tmp_path / "s")
        taken = open_store(tmp_path / "s", takeover=True)
        taken.close()
        store.close()

    def test_close_is_idempotent_and_releases(self, tmp_path):
        store = open_store(tmp_path / "s")
        store.close()
        store.close()
        reopened = open_store(tmp_path / "s")  # no LockHeld
        reopened.close()


class TestDamage:
    def test_torn_tail_is_quarantined_rest_replayed(self, tmp_path):
        store = open_store(tmp_path / "s")
        for index in range(4):
            store.append("submitted", {"i": index})
        store.close()
        segment = tmp_path / "s" / "journal-000001.jsonl"
        raw = segment.read_bytes().rstrip(b"\n")
        segment.write_bytes(raw[:-7])  # tear the final line mid-record
        reopened = open_store(tmp_path / "s")
        _s, records, quarantined = reopened.recover()
        reopened.close()
        assert [r["d"]["i"] for r in records] == [0, 1, 2]
        assert [q["kind"] for q in quarantined] == ["torn_tail"]

    def test_complete_line_missing_newline_is_kept(self, tmp_path):
        store = open_store(tmp_path / "s")
        for index in range(2):
            store.append("submitted", {"i": index})
        store.close()
        segment = tmp_path / "s" / "journal-000001.jsonl"
        segment.write_bytes(segment.read_bytes().rstrip(b"\n"))
        reopened = open_store(tmp_path / "s")
        _s, records, quarantined = reopened.recover()
        reopened.close()
        assert [r["d"]["i"] for r in records] == [0, 1]
        assert quarantined == []

    def test_midstream_corruption_skips_only_that_record(self, tmp_path):
        store = open_store(tmp_path / "s")
        for index in range(4):
            store.append("submitted", {"i": index})
        store.close()
        segment = tmp_path / "s" / "journal-000001.jsonl"
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"broken": true}\n'
        segment.write_bytes(b"".join(lines))
        reopened = open_store(tmp_path / "s")
        _s, records, quarantined = reopened.recover()
        reopened.close()
        assert [r["d"]["i"] for r in records] == [0, 2, 3]
        assert [q["kind"] for q in quarantined] == ["corrupt_record"]

    def test_truncated_sealed_segment_is_reported(self, tmp_path):
        store = open_store(tmp_path / "s", segment_max_records=3)
        for index in range(7):
            store.append("submitted", {"i": index})
        store.close()
        first = tmp_path / "s" / "journal-000001.jsonl"
        lines = first.read_bytes().splitlines(keepends=True)
        first.write_bytes(b"".join(lines[:2]))  # drop a record + the seal
        reopened = open_store(tmp_path / "s", segment_max_records=3)
        _s, records, quarantined = reopened.recover()
        reopened.close()
        assert "truncated_segment" in [q["kind"] for q in quarantined]
        # Later segments still replay in full.
        assert [r["d"]["i"] for r in records] == [0, 1, 3, 4, 5, 6]


class TestCompaction:
    def test_compact_folds_sealed_segments_into_one_snapshot(self, tmp_path):
        store = open_store(tmp_path / "s", segment_max_records=2)
        for index in range(5):
            store.append("submitted", {"i": index})
        path = store.compact({"jobs": {"job-0001": {"state": "queued"}}})
        store.append("submitted", {"i": 5})
        store.close()
        assert path.exists()
        names = os.listdir(tmp_path / "s")
        assert sum(1 for n in names if n.startswith("snapshot-")) == 1
        reopened = open_store(tmp_path / "s", segment_max_records=2)
        snapshot, records, quarantined = reopened.recover()
        reopened.close()
        assert quarantined == []
        assert snapshot == {"jobs": {"job-0001": {"state": "queued"}}}
        # Only records after the snapshot replay on top of it.
        assert [r["d"]["i"] for r in records] == [5]

    def test_corrupt_snapshot_quarantined_full_replay_survives(self, tmp_path):
        store = open_store(tmp_path / "s")
        for index in range(3):
            store.append("submitted", {"i": index})
        store.close()
        # A tampered snapshot claiming to supersede everything.
        fake = {
            "format_version": 1,
            "sealed_through": 99,
            "content_hash": "0" * 64,
            "state": {"jobs": {}},
        }
        (tmp_path / "s" / "snapshot-deadbeefdeadbeef.json").write_text(
            json.dumps(fake)
        )
        reopened = open_store(tmp_path / "s")
        snapshot, records, quarantined = reopened.recover()
        reopened.close()
        assert snapshot is None
        assert [q["kind"] for q in quarantined] == ["snapshot_corrupt"]
        assert [r["d"]["i"] for r in records] == [0, 1, 2]

    def test_auto_compaction_triggers_from_rotation(self, tmp_path):
        store = open_store(
            tmp_path / "s", segment_max_records=2, compact_after_segments=2
        )
        store.snapshot_provider = lambda: {"marker": store.appends}
        for index in range(9):
            store.append("submitted", {"i": index})
        store.close()
        names = os.listdir(tmp_path / "s")
        assert any(n.startswith("snapshot-") for n in names)
        reopened = open_store(tmp_path / "s", segment_max_records=2)
        snapshot, _records, quarantined = reopened.recover()
        reopened.close()
        assert quarantined == []
        assert snapshot is not None and "marker" in snapshot


class TestFaultModel:
    def test_same_seed_same_damage(self, tmp_path):
        results = []
        for attempt in range(2):
            directory = tmp_path / f"s{attempt}"
            store = open_store(directory)
            for index in range(6):
                store.append("submitted", {"i": index})
            store.close()
            (directory / "lock.json").unlink(missing_ok=True)
            faults = StoreFaultModel(seed=7)
            results.append(
                [
                    faults.torn_tail(directory),
                    faults.truncated_segment(directory),
                    faults.bit_flip(directory),
                ]
            )
        assert results[0] == results[1]
        assert all(r is not None for r in results[0])

    def test_every_kind_recovers_with_quarantine(self, tmp_path):
        for kind in StoreFaultModel.KINDS:
            directory = tmp_path / kind
            store = open_store(directory, segment_max_records=3)
            for index in range(8):
                store.append("submitted", {"i": index})
            store.close()
            injected = getattr(StoreFaultModel(seed=3), kind)(directory)
            assert injected is not None, kind
            newest = max(
                n for n in os.listdir(directory) if n.startswith("journal-")
            )
            reopened = open_store(directory, segment_max_records=3)
            _s, _records, quarantined = reopened.recover()
            reopened.close()
            if kind == "truncated_segment" and injected["where"] == newest:
                # Whole records cleanly dropped from the unsealed tail
                # segment are indistinguishable from a shorter history —
                # exactly the loss window the "rotate" fsync policy
                # documents for OS/power crashes.
                continue
            assert quarantined, f"{kind} produced no quarantine entry"
