"""Shared fixtures: a small, deterministic demo database."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sqldb import Database, SqlType, Table


@pytest.fixture(scope="module")
def db() -> Database:
    """A two-table users/orders database with known, deterministic content."""
    database = Database("demo")
    rng = np.random.default_rng(42)
    n_users, n_orders = 200, 1000
    users = Table.from_dict(
        "users",
        {
            "user_id": list(range(n_users)),
            "name": [f"user_{i % 23}" for i in range(n_users)],
            "age": rng.integers(18, 80, n_users).tolist(),
            "city": [
                None if i % 17 == 0 else f"city_{i % 7}" for i in range(n_users)
            ],
        },
        {
            "user_id": SqlType.INTEGER,
            "name": SqlType.TEXT,
            "age": SqlType.INTEGER,
            "city": SqlType.TEXT,
        },
    )
    database.create_table(users, primary_key=["user_id"])
    orders = Table.from_dict(
        "orders",
        {
            "order_id": list(range(n_orders)),
            "user_id": rng.integers(0, n_users, n_orders).tolist(),
            "amount": rng.exponential(100.0, n_orders).round(2).tolist(),
            "status": [
                ["new", "paid", "shipped", "done"][i % 4] for i in range(n_orders)
            ],
            "order_date": [11000 + (i % 365) for i in range(n_orders)],
        },
        {
            "order_id": SqlType.INTEGER,
            "user_id": SqlType.INTEGER,
            "amount": SqlType.DOUBLE,
            "status": SqlType.TEXT,
            "order_date": SqlType.DATE,
        },
    )
    database.create_table(orders, primary_key=["order_id"])
    database.add_foreign_key("orders", "user_id", "users", "user_id")
    return database
