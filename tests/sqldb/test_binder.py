"""Binder: name resolution, type inference, and PostgreSQL-style errors."""

import pytest

from repro.sqldb import SqlType
from repro.sqldb.binder import Binder
from repro.sqldb.errors import BindError
from repro.sqldb.parser import parse_select


@pytest.fixture()
def binder(db):
    return Binder(db.catalog)


def bind(binder, sql):
    return binder.bind(parse_select(sql))


class TestResolution:
    def test_unqualified_column_gets_qualified(self, binder):
        bound = bind(binder, "SELECT age FROM users")
        assert bound.statement.select_items[0].expression.table == "users"

    def test_alias_binding(self, binder):
        bound = bind(binder, "SELECT u.age FROM users u")
        assert bound.output_types == [SqlType.INTEGER]

    def test_unknown_column(self, binder):
        with pytest.raises(BindError, match='column "nope" does not exist'):
            bind(binder, "SELECT nope FROM users")

    def test_unknown_table(self, binder):
        with pytest.raises(BindError, match='relation "ghosts" does not exist'):
            bind(binder, "SELECT a FROM ghosts")

    def test_unknown_qualifier(self, binder):
        with pytest.raises(BindError, match="missing FROM-clause entry"):
            bind(binder, "SELECT x.age FROM users")

    def test_ambiguous_column(self, binder):
        with pytest.raises(BindError, match="ambiguous"):
            bind(binder, "SELECT user_id FROM users JOIN orders ON users.user_id = orders.user_id")

    def test_duplicate_binding(self, binder):
        with pytest.raises(BindError, match="more than once"):
            bind(binder, "SELECT 1 FROM users, users")

    def test_self_join_with_aliases_ok(self, binder):
        bind(binder, "SELECT a.age FROM users a JOIN users b ON a.user_id = b.user_id")


class TestStarExpansion:
    def test_star_expands_to_all_columns(self, binder):
        bound = bind(binder, "SELECT * FROM users")
        assert bound.output_names == ["user_id", "name", "age", "city"]

    def test_qualified_star(self, binder):
        bound = bind(
            binder,
            "SELECT u.* FROM users u JOIN orders o ON u.user_id = o.user_id",
        )
        assert bound.output_names == ["user_id", "name", "age", "city"]

    def test_star_without_from(self, binder):
        with pytest.raises(BindError):
            bind(binder, "SELECT *")

    def test_join_star_concatenates(self, binder):
        bound = bind(
            binder,
            "SELECT * FROM users u JOIN orders o ON u.user_id = o.user_id",
        )
        assert len(bound.output_names) == 4 + 5
        # duplicate names are disambiguated
        assert "user_id_1" in bound.output_names


class TestTypeInference:
    def cases(self):
        return [
            ("SELECT age + 1 FROM users", SqlType.INTEGER),
            ("SELECT age / 2 FROM users", SqlType.DOUBLE),
            ("SELECT amount * 2 FROM orders", SqlType.DOUBLE),
            ("SELECT name || '!' FROM users", SqlType.TEXT),
            ("SELECT age > 5 FROM users", SqlType.BOOLEAN),
            ("SELECT count(*) FROM users", SqlType.BIGINT),
            ("SELECT avg(age) FROM users", SqlType.DOUBLE),
            ("SELECT sum(age) FROM users", SqlType.BIGINT),
            ("SELECT sum(amount) FROM orders", SqlType.DOUBLE),
            ("SELECT min(name) FROM users", SqlType.TEXT),
            ("SELECT CAST(age AS text) FROM users", SqlType.TEXT),
            ("SELECT order_date - 30 FROM orders", SqlType.DATE),
            ("SELECT CASE WHEN age > 30 THEN 1 ELSE 0 END FROM users", SqlType.INTEGER),
        ]

    def test_output_types(self, binder):
        for sql, expected in self.cases():
            bound = bind(binder, sql)
            assert bound.output_types[0] is expected, sql


class TestSemanticChecks:
    def test_aggregate_in_where_rejected(self, binder):
        with pytest.raises(BindError, match="not allowed"):
            bind(binder, "SELECT age FROM users WHERE count(*) > 1")

    def test_ungrouped_column_rejected(self, binder):
        with pytest.raises(BindError, match="GROUP BY"):
            bind(binder, "SELECT name, age FROM users GROUP BY name")

    def test_grouped_column_ok(self, binder):
        bind(binder, "SELECT name, count(*) FROM users GROUP BY name")

    def test_group_by_expression_match(self, binder):
        bind(binder, "SELECT age + 1, count(*) FROM users GROUP BY age + 1")

    def test_sum_of_text_rejected(self, binder):
        with pytest.raises(BindError, match="numeric"):
            bind(binder, "SELECT sum(name) FROM users")

    def test_unknown_function(self, binder):
        with pytest.raises(BindError, match="does not exist"):
            bind(binder, "SELECT frobnicate(age) FROM users")

    def test_incomparable_types(self, binder):
        with pytest.raises(BindError, match="cannot compare"):
            bind(binder, "SELECT 1 FROM users WHERE name > 5")

    def test_arithmetic_on_text_rejected(self, binder):
        with pytest.raises(BindError):
            bind(binder, "SELECT name + 1 FROM users")

    def test_placeholder_rejected(self, binder):
        with pytest.raises(BindError, match="placeholder"):
            bind(binder, "SELECT age FROM users WHERE age > {p_1}")


class TestSubqueries:
    def test_in_subquery_binds(self, binder):
        bind(
            binder,
            "SELECT name FROM users WHERE user_id IN (SELECT user_id FROM orders)",
        )

    def test_scalar_subquery_type(self, binder):
        bound = bind(binder, "SELECT (SELECT max(age) FROM users) FROM orders")
        assert bound.output_types[0] is SqlType.INTEGER

    def test_subquery_column_count_checked(self, binder):
        with pytest.raises(BindError, match="1 column"):
            bind(
                binder,
                "SELECT 1 FROM users WHERE user_id IN (SELECT user_id, age FROM users)",
            )

    def test_correlated_subquery_gets_hint(self, binder):
        with pytest.raises(BindError, match="correlated"):
            bind(
                binder,
                "SELECT name FROM users u WHERE EXISTS "
                "(SELECT 1 FROM orders o WHERE o.user_id = u.user_id)",
            )

    def test_derived_table_schema(self, binder):
        bound = bind(
            binder,
            "SELECT sub.c FROM (SELECT count(*) AS c FROM users) sub",
        )
        assert bound.output_types == [SqlType.BIGINT]


class TestOrderByBinding:
    def test_order_by_alias_allowed(self, binder):
        bind(binder, "SELECT age AS a FROM users ORDER BY a")

    def test_order_by_position_allowed(self, binder):
        bind(binder, "SELECT age FROM users ORDER BY 1")

    def test_order_by_bad_position(self, binder):
        with pytest.raises(BindError, match="position"):
            bind(binder, "SELECT age FROM users ORDER BY 3")

    def test_order_by_unknown_column(self, binder):
        with pytest.raises(BindError):
            bind(binder, "SELECT age FROM users ORDER BY salary")


class TestErrorPositions:
    """Bind errors carry the source offset of the offending token, and
    Database.plan attaches line/column plus a caret snippet."""

    def test_unknown_column_position(self, binder):
        sql = "SELECT nope FROM users"
        with pytest.raises(BindError) as excinfo:
            bind(binder, sql)
        assert excinfo.value.position == sql.index("nope")

    def test_unknown_table_position(self, binder):
        sql = "SELECT age FROM ghosts"
        with pytest.raises(BindError) as excinfo:
            bind(binder, sql)
        assert excinfo.value.position == sql.index("ghosts")

    def test_unknown_function_position(self, binder):
        sql = "SELECT frobnicate(age) FROM users"
        with pytest.raises(BindError) as excinfo:
            bind(binder, sql)
        assert excinfo.value.position == sql.index("frobnicate")

    def test_ambiguous_column_position(self, binder):
        sql = (
            "SELECT user_id FROM users "
            "JOIN orders ON users.user_id = orders.user_id"
        )
        with pytest.raises(BindError) as excinfo:
            bind(binder, sql)
        assert excinfo.value.position == sql.index("user_id")

    def test_database_plan_attaches_line_column(self, db):
        sql = "SELECT age,\n       nope\nFROM users"
        with pytest.raises(BindError) as excinfo:
            db.plan(sql)
        err = excinfo.value
        assert (err.line, err.column) == (2, 8)
        snippet = err.context_snippet()
        assert snippet.startswith("LINE 2:        nope")
        assert snippet.splitlines()[1].index("^") == len("LINE 2: ") + 7
