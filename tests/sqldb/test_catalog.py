"""Catalog registration, constraints, and metadata."""

import pytest

from repro.sqldb import CatalogError, Database, SqlType, Table
from repro.sqldb.catalog import Catalog, ForeignKey, IndexMeta


def users_table():
    return Table.from_dict(
        "users",
        {"id": [1, 2, 3], "name": ["a", "b", "c"]},
        {"id": SqlType.INTEGER, "name": SqlType.TEXT},
    )


def orders_table():
    return Table.from_dict(
        "orders",
        {"oid": [1, 2], "uid": [1, 2]},
        {"oid": SqlType.INTEGER, "uid": SqlType.INTEGER},
    )


class TestRegistration:
    def test_register_and_lookup(self):
        catalog = Catalog()
        catalog.register_table(users_table(), primary_key=["id"])
        meta = catalog.table("users")
        assert meta.row_count == 3
        assert meta.column_names == ["id", "name"]
        assert meta.primary_key == ["id"]

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.register_table(users_table())
        with pytest.raises(CatalogError, match="already exists"):
            catalog.register_table(users_table())

    def test_unknown_table(self):
        with pytest.raises(CatalogError, match="does not exist"):
            Catalog().table("ghosts")

    def test_stats_analyzed_on_registration(self):
        catalog = Catalog()
        catalog.register_table(users_table())
        stats = catalog.column_stats("users", "id")
        assert stats is not None
        assert stats.distinct_count == 3

    def test_analyze_can_be_skipped(self):
        catalog = Catalog()
        catalog.register_table(users_table(), analyze=False)
        assert catalog.column_stats("users", "id") is None

    def test_page_count_positive(self):
        catalog = Catalog()
        catalog.register_table(users_table())
        assert catalog.table("users").page_count >= 1


class TestConstraints:
    def make_catalog(self):
        catalog = Catalog()
        catalog.register_table(users_table(), primary_key=["id"])
        catalog.register_table(orders_table(), primary_key=["oid"])
        return catalog

    def test_pk_creates_unique_index(self):
        catalog = self.make_catalog()
        index = catalog.index_on("users", "id")
        assert index is not None and index.unique

    def test_fk_validates_both_ends(self):
        catalog = self.make_catalog()
        with pytest.raises(CatalogError):
            catalog.add_foreign_key(ForeignKey("orders", "nope", "users", "id"))
        with pytest.raises(CatalogError):
            catalog.add_foreign_key(ForeignKey("orders", "uid", "users", "nope"))

    def test_fk_creates_index(self):
        catalog = self.make_catalog()
        catalog.add_foreign_key(ForeignKey("orders", "uid", "users", "id"))
        assert catalog.index_on("orders", "uid") is not None
        assert catalog.foreign_keys_of("orders") == [
            ForeignKey("orders", "uid", "users", "id")
        ]

    def test_duplicate_index_name_rejected(self):
        catalog = self.make_catalog()
        catalog.add_index(IndexMeta("i1", "users", "name"))
        with pytest.raises(CatalogError, match="already exists"):
            catalog.add_index(IndexMeta("i1", "users", "name"))

    def test_fk_string_rendering(self):
        fk = ForeignKey("orders", "uid", "users", "id")
        assert str(fk) == "orders.uid -> users.id"


class TestDatabaseFacade:
    def test_add_index_helper(self):
        db = Database()
        db.create_table(users_table())
        db.add_index("users", "name")
        assert db.catalog.index_on("users", "name") is not None

    def test_add_foreign_key_helper(self):
        db = Database()
        db.create_table(users_table(), primary_key=["id"])
        db.create_table(orders_table(), primary_key=["oid"])
        db.add_foreign_key("orders", "uid", "users", "id")
        assert len(db.catalog.foreign_keys) == 1
