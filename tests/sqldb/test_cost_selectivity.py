"""Cost-model formulas and AST-level selectivity estimation."""

import pytest

from repro.sqldb import cost
from repro.sqldb.parser import parse_select
from repro.sqldb.selectivity import (
    constant_value,
    count_operators,
    estimate_selectivity,
)
from repro.sqldb.stats import ColumnStats, analyze_column
from repro.sqldb.storage import Column
from repro.sqldb.types import SqlType


class TestCostFormulas:
    def test_seq_scan_scales_with_pages(self):
        small = cost.seq_scan_cost(10, 1000, 1)
        large = cost.seq_scan_cost(100, 1000, 1)
        assert large.total > small.total

    def test_seq_scan_scales_with_quals(self):
        one = cost.seq_scan_cost(10, 1000, 1)
        five = cost.seq_scan_cost(10, 1000, 5)
        assert five.total > one.total

    def test_index_scan_cheap_when_selective(self):
        seq = cost.seq_scan_cost(500, 50_000, 1)
        index = cost.index_scan_cost(500, 50_000, 0.001, 1)
        assert index.total < seq.total

    def test_index_scan_expensive_when_unselective(self):
        seq = cost.seq_scan_cost(500, 50_000, 1)
        index = cost.index_scan_cost(500, 50_000, 0.9, 1)
        assert index.total > seq.total

    def test_index_scan_monotone_in_selectivity(self):
        costs = [
            cost.index_scan_cost(500, 50_000, s, 1).total
            for s in (0.001, 0.01, 0.1, 0.5, 1.0)
        ]
        assert costs == sorted(costs)

    def test_hash_join_startup_includes_build(self):
        child = cost.Cost(0.0, 100.0)
        join = cost.hash_join_cost(child, child, 1000, 1000, 1000)
        assert join.startup > child.total
        assert join.total > join.startup

    def test_nested_loop_quadratic_term(self):
        child = cost.Cost(0.0, 10.0)
        small = cost.nested_loop_cost(child, child, 10, 10, 100)
        big = cost.nested_loop_cost(child, child, 1000, 1000, 100)
        assert big.total > small.total * 100

    def test_sort_superlinear(self):
        child = cost.Cost(0.0, 0.0)
        small = cost.sort_cost(child, 1000)
        big = cost.sort_cost(child, 100_000)
        assert big.total > small.total * 100

    def test_limit_scales_run_cost(self):
        child = cost.Cost(10.0, 110.0)
        limited = cost.limit_cost(child, 1000, 10)
        assert limited.total == pytest.approx(10.0 + 100.0 * 0.01)

    def test_limit_fraction_capped(self):
        child = cost.Cost(0.0, 100.0)
        assert cost.limit_cost(child, 10, 100).total == pytest.approx(100.0)

    def test_cost_addition(self):
        total = cost.Cost(1.0, 2.0) + cost.Cost(3.0, 4.0)
        assert (total.startup, total.total) == (4.0, 6.0)


def stats_for(values):
    return analyze_column(Column.from_values("x", SqlType.INTEGER, values))


def make_resolver(**column_stats):
    def resolve(binding, column):
        return column_stats.get(column)

    return resolve


def where_of(sql_condition):
    return parse_select(f"SELECT 1 FROM t WHERE {sql_condition}").where


class TestConstantFolding:
    def test_literal(self):
        assert constant_value(where_of("a = 5").right) == 5

    def test_negative(self):
        assert constant_value(where_of("a = -5").right) == -5

    def test_arithmetic(self):
        assert constant_value(where_of("a = 2 + 3 * 4").right) == 14

    def test_date_string(self):
        value = constant_value(where_of("a = '1970-01-11'").right)
        assert value == 10  # days since epoch

    def test_non_date_string_stays_string(self):
        assert constant_value(where_of("a = 'hello'").right) == "hello"

    def test_column_is_dynamic(self):
        assert constant_value(where_of("a = b").right) is None


class TestEstimateSelectivity:
    def setup_method(self):
        self.stats = stats_for(list(range(1000)))
        self.resolve = make_resolver(a=self.stats)

    def sel(self, condition):
        return estimate_selectivity(where_of(condition), self.resolve)

    def test_none_is_one(self):
        assert estimate_selectivity(None, self.resolve) == 1.0

    def test_range(self):
        assert self.sel("a < 500") == pytest.approx(0.5, abs=0.05)

    def test_flipped_comparison(self):
        assert self.sel("500 > a") == pytest.approx(self.sel("a < 500"), abs=0.02)

    def test_conjunction_multiplies(self):
        both = self.sel("a < 500 AND a < 500")
        assert both == pytest.approx(0.25, abs=0.05)

    def test_disjunction(self):
        either = self.sel("a < 500 OR a < 500")
        assert either == pytest.approx(0.75, abs=0.05)

    def test_negation(self):
        assert self.sel("NOT a < 500") == pytest.approx(0.5, abs=0.05)

    def test_between(self):
        assert self.sel("a BETWEEN 250 AND 750") == pytest.approx(0.5, abs=0.05)

    def test_in_list_sums(self):
        assert self.sel("a IN (1, 2, 3, 4)") == pytest.approx(0.004, abs=0.002)

    def test_unknown_column_uses_default(self):
        sel = self.sel("z = 42")
        assert 0.0 < sel < 0.05

    def test_always_clamped(self):
        for condition in ("a < 500", "a IN (1,2)", "NOT a > 0", "a LIKE 'x%'"):
            assert 0.0 <= self.sel(condition) <= 1.0


class TestCountOperators:
    def test_simple(self):
        assert count_operators(where_of("a > 1")) == 1

    def test_conjunction_counts_each(self):
        assert count_operators(where_of("a > 1 AND b < 2")) == 3

    def test_in_list_counts_items(self):
        assert count_operators(where_of("a IN (1,2,3)")) == 3

    def test_none_is_zero(self):
        assert count_operators(None) == 0
