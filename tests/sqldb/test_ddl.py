"""DDL scripts: CREATE TABLE, INSERT INTO, CREATE INDEX."""

import pytest

from repro.sqldb import (
    Database,
    SqlSyntaxError,
    SqlType,
    UnsupportedSqlError,
    run_script,
    split_statements,
)
from repro.sqldb.ddl import CreateIndex, CreateTable, Insert, parse_ddl

SCRIPT = """
CREATE TABLE users (
    id integer PRIMARY KEY,
    name text NOT NULL,
    age integer,
    joined date
);
CREATE TABLE orders (
    oid integer PRIMARY KEY,
    uid integer REFERENCES users(id),
    amount double precision
);
INSERT INTO users VALUES
    (1, 'ann', 34, '2020-01-05'),
    (2, 'bob', NULL, '2021-06-30'),
    (3, 'cho', 29, '2019-11-11');
INSERT INTO orders (oid, uid, amount) VALUES (10, 1, 99.5), (11, 3, 12.0);
INSERT INTO orders VALUES (12, 1, -7.25);
CREATE INDEX users_age_idx ON users (age);
"""


@pytest.fixture()
def scripted_db():
    return run_script(Database("scripted"), SCRIPT)


class TestSplitStatements:
    def test_splits_on_semicolons(self):
        assert len(split_statements(SCRIPT)) == 6

    def test_semicolon_in_string_preserved(self):
        parts = split_statements("INSERT INTO t VALUES ('a;b'); SELECT 1")
        assert len(parts) == 2
        assert "'a;b'" in parts[0]

    def test_trailing_statement_without_semicolon(self):
        assert split_statements("CREATE TABLE t (a integer)") != []


class TestParse:
    def test_create_table_shape(self):
        statement = parse_ddl(
            "CREATE TABLE t (a integer PRIMARY KEY, b text, "
            "FOREIGN KEY (b) REFERENCES s(x))"
        )
        assert isinstance(statement, CreateTable)
        assert [c.name for c in statement.columns] == ["a", "b"]
        assert statement.primary_key == ["a"]
        assert statement.foreign_keys == [("b", "s", "x")]

    def test_varchar_length_ignored(self):
        statement = parse_ddl("CREATE TABLE t (s varchar(25))")
        assert statement.columns[0].sql_type is SqlType.TEXT

    def test_insert_with_negatives_and_nulls(self):
        statement = parse_ddl("INSERT INTO t VALUES (-3, NULL, 'x', TRUE)")
        assert isinstance(statement, Insert)
        assert statement.rows == [[-3, None, "x", True]]

    def test_create_unique_index(self):
        statement = parse_ddl("CREATE UNIQUE INDEX i ON t (a)")
        assert isinstance(statement, CreateIndex)
        assert statement.unique

    def test_unknown_statement(self):
        with pytest.raises(UnsupportedSqlError):
            parse_ddl("DROP TABLE t")

    def test_unknown_type(self):
        with pytest.raises(SqlSyntaxError):
            parse_ddl("CREATE TABLE t (a blob)")


class TestRunScript:
    def test_tables_created_with_rows(self, scripted_db):
        assert scripted_db.catalog.table("users").row_count == 3
        assert scripted_db.catalog.table("orders").row_count == 3

    def test_types_coerced(self, scripted_db):
        result = scripted_db.execute(
            "SELECT name FROM users WHERE joined < '2020-06-01'"
        )
        assert list(result.table.rows()) == [("ann",), ("cho",)]

    def test_null_inserted(self, scripted_db):
        result = scripted_db.execute("SELECT count(*) FROM users WHERE age IS NULL")
        assert list(result.table.rows()) == [(1,)]

    def test_foreign_key_registered(self, scripted_db):
        fks = scripted_db.catalog.foreign_keys_of("orders")
        assert len(fks) == 1 and fks[0].ref_table == "users"

    def test_joins_work_on_scripted_schema(self, scripted_db):
        result = scripted_db.execute(
            "SELECT u.name, sum(o.amount) FROM users u "
            "JOIN orders o ON o.uid = u.id GROUP BY u.name ORDER BY u.name"
        )
        assert list(result.table.rows()) == [
            ("ann", pytest.approx(92.25)), ("cho", pytest.approx(12.0)),
        ]

    def test_statistics_analyzed(self, scripted_db):
        stats = scripted_db.catalog.column_stats("users", "age")
        assert stats is not None and stats.null_fraction > 0

    def test_index_created(self, scripted_db):
        assert scripted_db.catalog.index_on("users", "age") is not None

    def test_not_null_enforced(self):
        with pytest.raises(SqlSyntaxError, match="NOT NULL"):
            run_script(
                Database(),
                "CREATE TABLE t (a text NOT NULL); INSERT INTO t VALUES (NULL)",
            )

    def test_insert_into_unknown_table(self):
        with pytest.raises(SqlSyntaxError, match="unknown table"):
            run_script(Database(), "INSERT INTO ghosts VALUES (1)")

    def test_column_count_mismatch(self):
        with pytest.raises(SqlSyntaxError, match="expected 2 values"):
            run_script(
                Database(),
                "CREATE TABLE t (a integer, b integer); "
                "INSERT INTO t VALUES (1)",
            )

    def test_duplicate_table(self):
        with pytest.raises(SqlSyntaxError, match="already exists"):
            run_script(
                Database(),
                "CREATE TABLE t (a integer); CREATE TABLE t (a integer)",
            )

    def test_sqlbarber_runs_on_scripted_database(self, scripted_db):
        from repro.core import BarberConfig, SQLBarber
        from repro.workload import CostDistribution, TemplateSpec

        barber = SQLBarber(scripted_db, config=BarberConfig(seed=0))
        templates, report = barber.generate_templates(
            [TemplateSpec(spec_id="s", num_joins=1, num_predicates=1)]
        )
        assert report.alignment_accuracy > 0
        assert templates
