"""Differential testing: the engine vs. a naive Python reference evaluator.

Random queries are generated over a small table, executed by the engine,
and re-evaluated with plain Python over the same rows.  Any mismatch is an
engine bug.  The query generator covers filters (comparisons, BETWEEN, IN,
NULL handling), global aggregates, and GROUP BY aggregates.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.sqldb import Database, SqlType, Table

N_ROWS = 300


@pytest.fixture(scope="module")
def db_and_rows():
    rng = np.random.default_rng(99)
    values = {
        "id": list(range(N_ROWS)),
        "v": rng.integers(0, 100, N_ROWS).tolist(),
        "w": [
            None if rng.random() < 0.1 else float(rng.normal(50, 20))
            for _ in range(N_ROWS)
        ],
        "tag": rng.choice(["red", "green", "blue", "black"], N_ROWS).tolist(),
    }
    db = Database("diff")
    db.create_table(
        Table.from_dict(
            "t",
            values,
            {
                "id": SqlType.INTEGER,
                "v": SqlType.INTEGER,
                "w": SqlType.DOUBLE,
                "tag": SqlType.TEXT,
            },
        ),
        primary_key=["id"],
    )
    rows = [
        {
            "id": values["id"][i],
            "v": values["v"][i],
            "w": values["w"][i],
            "tag": values["tag"][i],
        }
        for i in range(N_ROWS)
    ]
    return db, rows


def predicate_cases():
    """(SQL condition, python predicate) pairs; None values never match."""
    return [
        ("v > 50", lambda r: r["v"] > 50),
        ("v <= 17", lambda r: r["v"] <= 17),
        ("v = 42", lambda r: r["v"] == 42),
        ("v <> 42", lambda r: r["v"] != 42),
        ("v BETWEEN 20 AND 60", lambda r: 20 <= r["v"] <= 60),
        ("v NOT BETWEEN 20 AND 60", lambda r: not 20 <= r["v"] <= 60),
        ("tag = 'red'", lambda r: r["tag"] == "red"),
        ("tag IN ('red', 'blue')", lambda r: r["tag"] in ("red", "blue")),
        ("tag NOT IN ('red', 'blue')", lambda r: r["tag"] not in ("red", "blue")),
        ("tag LIKE 'b%'", lambda r: r["tag"].startswith("b")),
        ("w IS NULL", lambda r: r["w"] is None),
        ("w IS NOT NULL", lambda r: r["w"] is not None),
        ("w > 50", lambda r: r["w"] is not None and r["w"] > 50),
        (
            "v > 30 AND tag = 'green'",
            lambda r: r["v"] > 30 and r["tag"] == "green",
        ),
        (
            "v < 10 OR v > 90",
            lambda r: r["v"] < 10 or r["v"] > 90,
        ),
        (
            "NOT (v > 30 AND v < 70)",
            lambda r: not (30 < r["v"] < 70),
        ),
        (
            "w > 40 OR tag = 'red'",
            lambda r: (r["w"] is not None and r["w"] > 40) or r["tag"] == "red",
        ),
        ("v % 7 = 0", lambda r: r["v"] % 7 == 0),
        ("v * 2 + 1 > 99", lambda r: r["v"] * 2 + 1 > 99),
    ]


class TestFilters:
    @pytest.mark.parametrize(
        "condition,reference",
        predicate_cases(),
        ids=[c for c, _ in predicate_cases()],
    )
    def test_filter_matches_reference(self, db_and_rows, condition, reference):
        db, rows = db_and_rows
        got = db.execute(f"SELECT id FROM t WHERE {condition}")
        engine_ids = sorted(r[0] for r in got.table.rows())
        expected_ids = sorted(r["id"] for r in rows if reference(r))
        assert engine_ids == expected_ids, condition


class TestGlobalAggregates:
    def test_count_sum_min_max_avg(self, db_and_rows):
        db, rows = db_and_rows
        got = list(
            db.execute(
                "SELECT count(*), count(w), sum(v), min(v), max(v), avg(v) FROM t"
            ).table.rows()
        )[0]
        ws = [r["w"] for r in rows if r["w"] is not None]
        vs = [r["v"] for r in rows]
        assert got[0] == len(rows)
        assert got[1] == len(ws)
        assert got[2] == sum(vs)
        assert got[3] == min(vs)
        assert got[4] == max(vs)
        assert got[5] == pytest.approx(sum(vs) / len(vs))

    def test_sum_of_nullable(self, db_and_rows):
        db, rows = db_and_rows
        got = list(db.execute("SELECT sum(w) FROM t").table.rows())[0][0]
        expected = sum(r["w"] for r in rows if r["w"] is not None)
        assert got == pytest.approx(expected)

    def test_filtered_aggregate(self, db_and_rows):
        db, rows = db_and_rows
        got = list(
            db.execute("SELECT count(*) FROM t WHERE v > 50 AND tag = 'red'")
            .table.rows()
        )[0][0]
        expected = sum(1 for r in rows if r["v"] > 50 and r["tag"] == "red")
        assert got == expected


class TestGroupedAggregates:
    def test_group_by_matches_reference(self, db_and_rows):
        db, rows = db_and_rows
        got = {
            r[0]: (r[1], r[2])
            for r in db.execute(
                "SELECT tag, count(*), sum(v) FROM t GROUP BY tag"
            ).table.rows()
        }
        expected: dict[str, list[int]] = {}
        for row in rows:
            expected.setdefault(row["tag"], []).append(row["v"])
        assert set(got) == set(expected)
        for tag, values in expected.items():
            assert got[tag] == (len(values), sum(values))

    def test_having_matches_reference(self, db_and_rows):
        db, rows = db_and_rows
        got = {
            r[0]
            for r in db.execute(
                "SELECT tag FROM t GROUP BY tag HAVING avg(v) > 50"
            ).table.rows()
        }
        groups: dict[str, list[int]] = {}
        for row in rows:
            groups.setdefault(row["tag"], []).append(row["v"])
        expected = {
            tag for tag, vs in groups.items() if sum(vs) / len(vs) > 50
        }
        assert got == expected

    def test_group_by_expression(self, db_and_rows):
        db, rows = db_and_rows
        got = {
            r[0]: r[1]
            for r in db.execute(
                "SELECT v % 10, count(*) FROM t GROUP BY v % 10"
            ).table.rows()
        }
        expected: dict[int, int] = {}
        for row in rows:
            expected[row["v"] % 10] = expected.get(row["v"] % 10, 0) + 1
        assert got == expected


class TestOrderLimitDistinct:
    def test_order_by_limit(self, db_and_rows):
        db, rows = db_and_rows
        got = [
            r[0]
            for r in db.execute(
                "SELECT id FROM t ORDER BY v, id LIMIT 25"
            ).table.rows()
        ]
        expected = [
            r["id"] for r in sorted(rows, key=lambda r: (r["v"], r["id"]))
        ][:25]
        assert got == expected

    def test_distinct_matches_set(self, db_and_rows):
        db, rows = db_and_rows
        got = {r[0] for r in db.execute("SELECT DISTINCT tag FROM t").table.rows()}
        assert got == {r["tag"] for r in rows}

    def test_distinct_count_expression(self, db_and_rows):
        db, rows = db_and_rows
        got = list(
            db.execute("SELECT count(DISTINCT v % 10) FROM t").table.rows()
        )[0][0]
        assert got == len({r["v"] % 10 for r in rows})


class TestRandomizedConjunctions:
    def test_random_two_clause_filters(self, db_and_rows):
        db, rows = db_and_rows
        rng = np.random.default_rng(5)
        comparators = {
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }
        for _ in range(30):
            op1, f1 = list(comparators.items())[int(rng.integers(4))]
            op2, f2 = list(comparators.items())[int(rng.integers(4))]
            c1 = int(rng.integers(0, 100))
            c2 = int(rng.integers(0, 100))
            connective = "AND" if rng.random() < 0.5 else "OR"
            sql = f"SELECT count(*) FROM t WHERE v {op1} {c1} {connective} id {op2} {c2}"
            got = list(db.execute(sql).table.rows())[0][0]
            if connective == "AND":
                expected = sum(
                    1 for r in rows if f1(r["v"], c1) and f2(r["id"], c2)
                )
            else:
                expected = sum(
                    1 for r in rows if f1(r["v"], c1) or f2(r["id"], c2)
                )
            assert got == expected, sql
