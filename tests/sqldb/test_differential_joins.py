"""Differential testing of joins: engine vs. a naive Python reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sqldb import Database, SqlType, Table

N_LEFT, N_RIGHT = 120, 80


@pytest.fixture(scope="module")
def jdb():
    rng = np.random.default_rng(17)
    left = {
        "lid": list(range(N_LEFT)),
        "key": rng.integers(0, 40, N_LEFT).tolist(),
        "lv": rng.integers(0, 100, N_LEFT).tolist(),
    }
    right = {
        "rid": list(range(N_RIGHT)),
        "key": rng.integers(0, 40, N_RIGHT).tolist(),
        "rv": rng.integers(0, 100, N_RIGHT).tolist(),
    }
    db = Database("joins")
    db.create_table(
        Table.from_dict("l", left, {
            "lid": SqlType.INTEGER, "key": SqlType.INTEGER,
            "lv": SqlType.INTEGER,
        }),
        primary_key=["lid"],
    )
    db.create_table(
        Table.from_dict("r", right, {
            "rid": SqlType.INTEGER, "key": SqlType.INTEGER,
            "rv": SqlType.INTEGER,
        }),
        primary_key=["rid"],
    )
    left_rows = [dict(zip(left.keys(), row)) for row in zip(*left.values())]
    right_rows = [dict(zip(right.keys(), row)) for row in zip(*right.values())]
    return db, left_rows, right_rows


def reference_inner(left_rows, right_rows, predicate=lambda l, r: True):
    return sorted(
        (l["lid"], r["rid"])
        for l in left_rows
        for r in right_rows
        if l["key"] == r["key"] and predicate(l, r)
    )


class TestInnerJoin:
    def test_plain_equi_join(self, jdb):
        db, left_rows, right_rows = jdb
        got = sorted(
            db.execute(
                "SELECT l.lid, r.rid FROM l JOIN r ON l.key = r.key"
            ).table.rows()
        )
        assert got == reference_inner(left_rows, right_rows)

    def test_join_with_filters(self, jdb):
        db, left_rows, right_rows = jdb
        got = sorted(
            db.execute(
                "SELECT l.lid, r.rid FROM l JOIN r ON l.key = r.key "
                "WHERE l.lv > 50 AND r.rv < 40"
            ).table.rows()
        )
        expected = reference_inner(
            left_rows, right_rows,
            lambda l, r: l["lv"] > 50 and r["rv"] < 40,
        )
        assert got == expected

    def test_join_with_cross_table_residual(self, jdb):
        db, left_rows, right_rows = jdb
        got = sorted(
            db.execute(
                "SELECT l.lid, r.rid FROM l JOIN r ON l.key = r.key "
                "WHERE l.lv > r.rv"
            ).table.rows()
        )
        expected = reference_inner(
            left_rows, right_rows, lambda l, r: l["lv"] > r["rv"]
        )
        assert got == expected

    def test_join_aggregate(self, jdb):
        db, left_rows, right_rows = jdb
        got = {
            row[0]: row[1]
            for row in db.execute(
                "SELECT l.key, count(*) FROM l JOIN r ON l.key = r.key "
                "GROUP BY l.key"
            ).table.rows()
        }
        expected: dict[int, int] = {}
        for lid, rid in reference_inner(left_rows, right_rows):
            key = left_rows[lid]["key"]
            expected[key] = expected.get(key, 0) + 1
        assert got == expected


class TestOuterJoins:
    def test_left_join_row_count(self, jdb):
        db, left_rows, right_rows = jdb
        got = db.execute(
            "SELECT l.lid, r.rid FROM l LEFT JOIN r ON l.key = r.key"
        )
        matches = reference_inner(left_rows, right_rows)
        matched_lids = {lid for lid, _ in matches}
        expected_count = len(matches) + (N_LEFT - len(matched_lids))
        assert got.row_count == expected_count

    def test_left_join_unmatched_are_null(self, jdb):
        db, left_rows, right_rows = jdb
        rows = list(
            db.execute(
                "SELECT l.lid, r.rid FROM l LEFT JOIN r ON l.key = r.key"
            ).table.rows()
        )
        matched_lids = {l for l, _ in reference_inner(left_rows, right_rows)}
        for lid, rid in rows:
            if lid not in matched_lids:
                assert rid is None

    def test_full_join_covers_both_sides(self, jdb):
        db, left_rows, right_rows = jdb
        rows = list(
            db.execute(
                "SELECT l.lid, r.rid FROM l FULL JOIN r ON l.key = r.key"
            ).table.rows()
        )
        left_seen = {lid for lid, _ in rows if lid is not None}
        right_seen = {rid for _, rid in rows if rid is not None}
        assert left_seen == set(range(N_LEFT))
        assert right_seen == set(range(N_RIGHT))


class TestSemiJoinEquivalence:
    def test_in_subquery_equals_distinct_join(self, jdb):
        db, left_rows, right_rows = jdb
        via_in = sorted(
            r[0]
            for r in db.execute(
                "SELECT lid FROM l WHERE key IN (SELECT key FROM r WHERE rv > 60)"
            ).table.rows()
        )
        keys = {r["key"] for r in right_rows if r["rv"] > 60}
        expected = sorted(l["lid"] for l in left_rows if l["key"] in keys)
        assert via_in == expected

    def test_cross_join_cardinality(self, jdb):
        db, *_ = jdb
        got = db.execute("SELECT count(*) FROM l, r")
        assert list(got.table.rows()) == [(N_LEFT * N_RIGHT,)]

    def test_self_join(self, jdb):
        db, left_rows, _ = jdb
        got = list(
            db.execute(
                "SELECT count(*) FROM l a JOIN l b ON a.key = b.key"
            ).table.rows()
        )[0][0]
        by_key: dict[int, int] = {}
        for row in left_rows:
            by_key[row["key"]] = by_key.get(row["key"], 0) + 1
        assert got == sum(v * v for v in by_key.values())
