"""The DML engine: parser, binder, executor semantics, and the
epoch/invalidate + index-maintenance contract.

The write path is statement-level atomic: every statement materializes its
full effect first and publishes through ``Catalog.note_mutation`` last, so
any error — constraint violation, bad cast, governor trip — leaves the
table, the statistics epoch, and the mutation counter untouched.
"""

from __future__ import annotations

import pytest

from repro.sqldb import (
    BindError,
    ColumnType,
    ConstraintError,
    Database,
    SqlType,
    SqlSyntaxError,
    Table,
    is_dml,
    parse_select,
    parse_sql,
)
from repro.sqldb import ast_nodes as ast
from repro.sqldb.sql_render import render_statement


@pytest.fixture()
def mdb() -> Database:
    """A small mutable database, fresh per test (DML mutates it)."""
    db = Database("mutable")
    people = Table.from_dict(
        "people",
        {
            "person_id": [1, 2, 3, 4, 5],
            "name": ["ann", "bo", "cy", "di", "ed"],
            "age": [30, None, 44, 22, 61],
            "joined": [11000, 11010, 11020, 11030, 11040],
        },
        {
            "person_id": SqlType.INTEGER,
            "name": SqlType.TEXT,
            "age": SqlType.INTEGER,
            "joined": SqlType.DATE,
        },
    )
    db.create_table(
        people,
        primary_key=["person_id"],
        column_types={
            "person_id": ColumnType(SqlType.INTEGER, nullable=False),
            "name": ColumnType(SqlType.TEXT, nullable=False),
            "age": ColumnType(SqlType.INTEGER),
            "joined": ColumnType(SqlType.DATE),
        },
    )
    scores = Table.from_dict(
        "scores",
        {
            "person_id": [1, 1, 2, 3, 3],
            "points": [10.0, 7.5, 3.0, None, 12.25],
        },
        {"person_id": SqlType.INTEGER, "points": SqlType.DOUBLE},
    )
    db.create_table(scores)
    return db


def rows(db: Database, sql: str) -> list[tuple]:
    return list(db.execute(sql).table.rows())


def affected(db: Database, sql: str) -> int:
    result = db.execute(sql)
    assert result.table.column_names == ["rows_affected"]
    [(count,)] = result.table.rows()
    return count


class TestParser:
    def test_insert_values_round_trips(self):
        sql = "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)"
        statement = parse_sql(sql)
        assert isinstance(statement, ast.InsertStatement)
        assert statement.columns == ["a", "b"]
        assert len(statement.rows) == 2
        assert parse_sql(render_statement(statement)) == statement

    def test_insert_without_column_list(self):
        statement = parse_sql("INSERT INTO t VALUES (1, 2)")
        assert statement.columns is None

    def test_insert_select_source(self):
        statement = parse_sql(
            "INSERT INTO t (a) SELECT s.a FROM s WHERE s.a > 3"
        )
        assert isinstance(statement.source, ast.SelectStatement)
        assert statement.rows == []
        assert parse_sql(render_statement(statement)) == statement

    def test_update_round_trips(self):
        sql = "UPDATE t SET a = a + 1, b = 'x' WHERE t.a > 2"
        statement = parse_sql(sql)
        assert isinstance(statement, ast.UpdateStatement)
        assert [a.column for a in statement.assignments] == ["a", "b"]
        assert parse_sql(render_statement(statement)) == statement

    def test_delete_round_trips(self):
        for sql in ("DELETE FROM t", "DELETE FROM t WHERE t.a IS NULL"):
            statement = parse_sql(sql)
            assert isinstance(statement, ast.DeleteStatement)
            assert parse_sql(render_statement(statement)) == statement

    def test_parse_select_still_rejects_dml(self):
        with pytest.raises(SqlSyntaxError, match="SELECT"):
            parse_select("DELETE FROM t")

    def test_parse_sql_is_parse_select_for_selects(self):
        sql = "SELECT t.a FROM t WHERE t.a BETWEEN 1 AND 2"
        assert parse_sql(sql) == parse_select(sql)

    def test_syntax_errors_carry_source(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse_sql("UPDATE t a = 1")
        assert "UPDATE t a = 1" in excinfo.value.context_snippet()

    def test_is_dml(self):
        assert is_dml(parse_sql("DELETE FROM t"))
        assert not is_dml(parse_sql("SELECT 1"))


class TestBinder:
    def test_unknown_target_table(self, mdb):
        with pytest.raises(BindError, match="does not exist"):
            mdb.plan("INSERT INTO nope (a) VALUES (1)")

    def test_unknown_insert_column(self, mdb):
        with pytest.raises(BindError, match='column "zzz"'):
            mdb.plan("INSERT INTO people (zzz) VALUES (1)")

    def test_duplicate_insert_column(self, mdb):
        with pytest.raises(BindError, match="more than once"):
            mdb.plan("INSERT INTO people (person_id, person_id) VALUES (1, 2)")

    def test_insert_arity_mismatch(self, mdb):
        with pytest.raises(BindError, match="target columns"):
            mdb.plan("INSERT INTO people (person_id, name) VALUES (1)")

    def test_insert_select_arity_mismatch(self, mdb):
        with pytest.raises(BindError, match="target columns"):
            mdb.plan(
                "INSERT INTO people (person_id) "
                "SELECT s.person_id, s.points FROM scores AS s"
            )

    def test_static_type_mismatch(self, mdb):
        with pytest.raises(BindError, match="of type integer"):
            mdb.plan("INSERT INTO people (person_id, name) VALUES ('x', 'y')")

    def test_null_literal_is_statically_writable(self, mdb):
        # Nullability is a runtime constraint, not a binder one.
        assert mdb.validate("UPDATE people SET name = NULL")[0]

    def test_unknown_update_column(self, mdb):
        with pytest.raises(BindError, match='column "zzz"'):
            mdb.plan("UPDATE people SET zzz = 1")

    def test_duplicate_assignment(self, mdb):
        with pytest.raises(BindError, match="multiple assignments"):
            mdb.plan("UPDATE people SET age = 1, age = 2")

    def test_dml_binds_to_rows_affected_schema(self, mdb):
        for sql in (
            "INSERT INTO people (person_id, name) VALUES (9, 'zz')",
            "UPDATE people SET age = 1",
            "DELETE FROM people",
        ):
            plan = mdb.plan(sql)
            assert plan.output_names == ["rows_affected"]
            assert plan.output_types == [SqlType.BIGINT]
            assert plan.use_vectorized is False


class TestInsert:
    def test_values_append(self, mdb):
        assert affected(
            mdb,
            "INSERT INTO people (person_id, name, age) "
            "VALUES (6, 'fi', 28), (7, 'gus', NULL)",
        ) == 2
        assert rows(
            mdb,
            "SELECT people.name, people.age FROM people "
            "WHERE people.person_id >= 6 ORDER BY people.person_id",
        ) == [("fi", 28), ("gus", None)]

    def test_missing_nullable_columns_default_to_null(self, mdb):
        affected(mdb, "INSERT INTO people (person_id, name) VALUES (6, 'fi')")
        assert rows(
            mdb,
            "SELECT people.age, people.joined FROM people "
            "WHERE people.person_id = 6",
        ) == [(None, None)]

    def test_insert_select(self, mdb):
        count = affected(
            mdb,
            "INSERT INTO scores (person_id, points) "
            "SELECT s.person_id, s.points FROM scores AS s "
            "WHERE s.points > 5.0",
        )
        assert count == 3
        assert mdb.catalog.table("scores").row_count == 8

    def test_date_text_coercion(self, mdb):
        affected(
            mdb,
            "INSERT INTO people (person_id, name, joined) "
            "VALUES (6, 'fi', '2001-06-01')",
        )
        [(joined,)] = rows(
            mdb,
            "SELECT people.joined FROM people WHERE people.person_id = 6",
        )
        assert joined == 11474  # 2001-06-01 as days since the epoch

    def test_not_null_violation_rolls_back(self, mdb):
        with pytest.raises(ConstraintError, match="not-null"):
            mdb.execute("INSERT INTO people (person_id, name) VALUES (6, NULL)")
        assert mdb.catalog.table("people").row_count == 5

    def test_omitting_a_required_column_is_a_constraint_error(self, mdb):
        with pytest.raises(ConstraintError, match="not-null"):
            mdb.execute("INSERT INTO people (person_id) VALUES (6)")

    def test_bad_date_text_is_a_constraint_error(self, mdb):
        with pytest.raises(ConstraintError, match="invalid value"):
            mdb.execute(
                "INSERT INTO people (person_id, name, joined) "
                "VALUES (6, 'fi', 'not-a-date')"
            )


class TestUniqueness:
    """PK/unique-index enforcement on the write path.

    Like every other constraint, a violation is raised before the
    statement's result is published, so the table (and its mutation
    counter) is left exactly as it was.
    """

    def test_insert_duplicate_primary_key(self, mdb):
        with pytest.raises(ConstraintError, match='"people_pkey"'):
            mdb.execute("INSERT INTO people (person_id, name) VALUES (3, 'zz')")
        assert mdb.catalog.table("people").row_count == 5
        assert mdb.catalog.mutation_count("people") == 0

    def test_insert_duplicate_within_batch(self, mdb):
        with pytest.raises(ConstraintError, match="duplicate key"):
            mdb.execute(
                "INSERT INTO people (person_id, name) "
                "VALUES (6, 'fi'), (6, 'gus')"
            )
        assert mdb.catalog.table("people").row_count == 5

    def test_insert_select_duplicating_pk_rolls_back(self, mdb):
        with pytest.raises(ConstraintError, match="people_pkey"):
            mdb.execute(
                "INSERT INTO people (person_id, name) "
                "SELECT s0.person_id, s0.name FROM people AS s0"
            )
        assert mdb.catalog.table("people").row_count == 5

    def test_fresh_pk_values_are_accepted(self, mdb):
        assert affected(
            mdb,
            "INSERT INTO people (person_id, name) VALUES (6, 'fi'), (7, 'gus')",
        ) == 2

    def test_update_into_duplicate_pk(self, mdb):
        with pytest.raises(ConstraintError, match="people_pkey"):
            mdb.execute(
                "UPDATE people SET person_id = 1 WHERE people.person_id = 2"
            )
        assert rows(
            mdb, "SELECT people.person_id FROM people ORDER BY people.person_id"
        ) == [(1,), (2,), (3,), (4,), (5,)]

    def test_update_not_touching_key_columns_is_unchecked(self, mdb):
        # Both matched rows get the same age — fine, age is not a key.
        assert affected(
            mdb, "UPDATE people SET age = 50 WHERE people.person_id <= 2"
        ) == 2

    def test_pk_swap_within_one_statement_still_conflicts(self, mdb):
        # Unlike deferred constraints, enforcement sees the statement's
        # final table: setting two rows to the same value trips even though
        # each row's old value is vacated.
        with pytest.raises(ConstraintError, match="people_pkey"):
            mdb.execute("UPDATE people SET person_id = 9")

    def test_unique_index_enforced_and_nulls_never_conflict(self, mdb):
        mdb.add_index("people", "age", unique=True)
        # Two NULL ages already exist? No — one (person 2).  Add another:
        assert affected(
            mdb, "INSERT INTO people (person_id, name) VALUES (6, 'fi')"
        ) == 1  # age NULL, no conflict with person 2's NULL age
        with pytest.raises(ConstraintError, match="people_age_idx"):
            mdb.execute(
                "INSERT INTO people (person_id, name, age) VALUES (7, 'gus', 44)"
            )

    def test_non_unique_index_allows_duplicates(self, mdb):
        mdb.add_index("scores", "person_id")
        assert affected(
            mdb, "INSERT INTO scores (person_id, points) VALUES (1, 2.0)"
        ) == 1

    def test_violation_is_positioned_with_source(self, mdb):
        try:
            mdb.execute("INSERT INTO people (person_id, name) VALUES (3, 'zz')")
        except ConstraintError as error:
            assert error.position == 0
            assert error.line == 1
            snippet = error.context_snippet()
            assert snippet is not None and snippet.startswith("LINE 1:")
        else:  # pragma: no cover
            raise AssertionError("duplicate PK was accepted")


class TestUpdate:
    def test_in_place_update(self, mdb):
        assert affected(
            mdb, "UPDATE people SET age = age + 1 WHERE people.age > 40"
        ) == 2
        assert rows(
            mdb,
            "SELECT people.person_id, people.age FROM people "
            "ORDER BY people.person_id",
        ) == [(1, 30), (2, None), (3, 45), (4, 22), (5, 62)]

    def test_unfiltered_update_touches_every_row(self, mdb):
        assert affected(mdb, "UPDATE scores SET points = 0.0") == 5
        assert {r[0] for r in rows(mdb, "SELECT scores.points FROM scores")} == {0.0}

    def test_set_null(self, mdb):
        affected(mdb, "UPDATE people SET age = NULL WHERE people.person_id = 1")
        assert rows(
            mdb, "SELECT people.age FROM people WHERE people.person_id = 1"
        ) == [(None,)]

    def test_assignments_only_evaluate_on_matched_rows(self, mdb):
        # 10 / points errors on points = 0; rows where points IS NULL or
        # points <> 0 are safe, and the WHERE excludes the zero row.
        affected(mdb, "UPDATE scores SET points = 0.0 WHERE scores.person_id = 2")
        count = affected(
            mdb,
            "UPDATE scores SET points = 10.0 / points "
            "WHERE scores.points > 1.0",
        )
        assert count == 3

    def test_null_into_not_null_rolls_back(self, mdb):
        before = rows(mdb, "SELECT people.name FROM people ORDER BY 1")
        with pytest.raises(ConstraintError, match="not-null"):
            mdb.execute("UPDATE people SET name = NULL WHERE people.age > 40")
        assert rows(mdb, "SELECT people.name FROM people ORDER BY 1") == before

    def test_primary_key_is_implicitly_not_null(self, mdb):
        with pytest.raises(ConstraintError, match="not-null"):
            mdb.execute("UPDATE people SET person_id = NULL")

    def test_failed_update_does_not_bump_epoch_or_counter(self, mdb):
        epoch = mdb.catalog.statistics_epoch
        mutations = mdb.catalog.mutation_count("people")
        with pytest.raises(ConstraintError):
            mdb.execute("UPDATE people SET name = NULL")
        assert mdb.catalog.statistics_epoch == epoch
        assert mdb.catalog.mutation_count("people") == mutations


class TestDelete:
    def test_filtered_delete(self, mdb):
        assert affected(
            mdb, "DELETE FROM people WHERE people.age IS NULL"
        ) == 1
        assert mdb.catalog.table("people").row_count == 4

    def test_unfiltered_delete_empties_the_table(self, mdb):
        assert affected(mdb, "DELETE FROM scores") == 5
        assert mdb.catalog.table("scores").row_count == 0
        assert rows(mdb, "SELECT COUNT(*) FROM scores") == [(0,)]

    def test_insert_after_full_delete(self, mdb):
        affected(mdb, "DELETE FROM scores")
        affected(mdb, "INSERT INTO scores (person_id, points) VALUES (9, 1.5)")
        assert rows(mdb, "SELECT scores.person_id, scores.points FROM scores") == [
            (9, 1.5)
        ]


class TestEpochContract:
    """Every committed DML bumps the epoch; caches re-cost, never stale."""

    def test_each_committed_dml_bumps_epoch(self, mdb):
        epochs = [mdb.catalog.statistics_epoch]
        for sql in (
            "INSERT INTO scores (person_id, points) VALUES (8, 2.0)",
            "UPDATE scores SET points = 1.0 WHERE scores.person_id = 8",
            "DELETE FROM scores WHERE scores.person_id = 8",
        ):
            mdb.execute(sql)
            epochs.append(mdb.catalog.statistics_epoch)
        assert epochs == sorted(set(epochs)), "epoch must strictly increase"

    def test_mutation_counter_tracks_committed_statements(self, mdb):
        assert mdb.catalog.mutation_count("scores") == 0
        mdb.execute("INSERT INTO scores (person_id, points) VALUES (8, 2.0)")
        mdb.execute("DELETE FROM scores WHERE scores.person_id = 8")
        assert mdb.catalog.mutation_count("scores") == 2
        assert mdb.catalog.mutation_count("people") == 0

    def test_cached_explain_recosts_after_dml(self, mdb):
        probe = "SELECT * FROM scores"
        before = mdb.explain_estimates(probe)
        assert round(before.estimated_rows) == 5
        mdb.execute("DELETE FROM scores WHERE scores.points IS NULL")
        after = mdb.explain_estimates(probe)
        assert round(after.estimated_rows) == 4, "stale cached costing served"

    def test_stats_stay_stale_until_reanalyze(self, mdb):
        # Row counts refresh on commit, but column statistics do not —
        # reanalyze is the explicit refresh, like ANALYZE.
        stats_before = mdb.catalog.table("scores").column("points").stats
        mdb.execute("UPDATE scores SET points = 99.0")
        assert mdb.catalog.table("scores").column("points").stats is stats_before
        mdb.catalog.reanalyze("scores")
        stats_after = mdb.catalog.table("scores").column("points").stats
        assert stats_after is not stats_before


class TestIndexMaintenance:
    def test_insert_extends_index_incrementally(self, mdb):
        assert mdb.catalog.index_lookup("people", "name", "ann") == [0]
        mdb.execute("INSERT INTO people (person_id, name) VALUES (6, 'ann')")
        assert mdb.catalog.index_lookup("people", "name", "ann") == [0, 5]

    def test_update_invalidates_assigned_column_only(self, mdb):
        mdb.catalog.index_lookup("people", "name", "ann")
        mdb.catalog.index_lookup("people", "age", 44)
        mdb.execute("UPDATE people SET name = 'zed' WHERE people.person_id = 1")
        assert mdb.catalog.index_lookup("people", "name", "ann") == []
        assert mdb.catalog.index_lookup("people", "name", "zed") == [0]
        assert mdb.catalog.index_lookup("people", "age", 44) == [2]

    def test_delete_renumbers_positions(self, mdb):
        assert mdb.catalog.index_lookup("people", "name", "ed") == [4]
        mdb.execute("DELETE FROM people WHERE people.person_id = 1")
        assert mdb.catalog.index_lookup("people", "name", "ed") == [3]
        assert mdb.catalog.index_lookup("people", "name", "ann") == []

    def test_null_positions_tracked(self, mdb):
        assert mdb.catalog.index_lookup("people", "age", None) == [1]
        mdb.execute("UPDATE people SET age = NULL WHERE people.person_id = 5")
        assert mdb.catalog.index_lookup("people", "age", None) == [1, 4]
