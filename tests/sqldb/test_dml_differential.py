"""Write-path differential battery: the DML engine vs a naive dict model.

A reference model holds every table as a plain list of ``{column: value}``
dicts and implements INSERT/UPDATE/DELETE (plus the three-valued WHERE
logic the fuzz grammar can generate) in straight-line Python — no numpy,
no shared engine code beyond the AST and the date<->days convention.
After every grammar-fuzzed DML statement the battery compares, against the
engine:

* the reported ``rows_affected`` count;
* the *full* contents of the target table (floats via ``repr``, so the
  comparison is bit-level);
* every physical index of the mutated table — each distinct value's row
  positions plus the NULL positions — exercising the three maintenance
  paths (incremental append on INSERT, per-column drop on UPDATE, full
  drop on DELETE), with a periodic all-tables audit.

The acceptance bar is a 500-statement sweep with zero divergences.
"""

from __future__ import annotations

import re

import pytest

from repro.fuzz import DML_SHAPES, FuzzGrammar, build_fuzz_database
from repro.sqldb import SqlType, date_to_days, parse_sql
from repro.sqldb import ast_nodes as ast
from repro.sqldb.errors import SqlError

SWEEP = 500
SEED = 71


# -- the reference model ----------------------------------------------------------


class RefConstraint(Exception):
    """The reference model's NOT NULL / bad-cast rejection."""


class RefModel:
    """Tables as lists of dicts; DML as loops; NULL as ``None``."""

    def __init__(self, db):
        self.types: dict[str, dict[str, SqlType]] = {}
        self.required: dict[str, set[str]] = {}
        self.order: dict[str, list[str]] = {}
        self.tables: dict[str, list[dict]] = {}
        self.unique: dict[str, list[tuple[str, ...]]] = {}
        for name in db.catalog.table_names:
            meta = db.catalog.table(name)
            self.order[name] = list(meta.column_names)
            self.types[name] = {c.name: c.sql_type for c in meta.columns}
            self.required[name] = {
                c.name
                for c in meta.columns
                if not c.column_type.nullable or c.name in meta.primary_key
            }
            self.tables[name] = [
                dict(zip(meta.column_names, row))
                for row in db.catalog.data(name).rows()
            ]
            # Uniqueness constraints, mirroring the engine's folding rule:
            # the (possibly composite) primary key plus every unique index
            # that is not just a restatement of a single-column PK.
            keys: list[tuple[str, ...]] = []
            if meta.primary_key:
                keys.append(tuple(meta.primary_key))
            for index in db.catalog.indexes_of(name):
                if index.unique and tuple(meta.primary_key) != (index.column,):
                    keys.append((index.column,))
            self.unique[name] = keys

    # -- statement application --------------------------------------------------

    def apply(self, statement) -> int:
        if isinstance(statement, ast.InsertStatement):
            return self._insert(statement)
        if isinstance(statement, ast.UpdateStatement):
            return self._update(statement)
        if isinstance(statement, ast.DeleteStatement):
            return self._delete(statement)
        raise AssertionError(f"not DML: {statement!r}")

    def _insert(self, statement: ast.InsertStatement) -> int:
        name = statement.target.name
        targets = statement.columns or self.order[name]
        if statement.source is not None:
            incoming = self._select(statement.source)
        else:
            incoming = [
                [_eval(value, {}, {})[0] for value in row]
                for row in statement.rows
            ]
        staged = []
        for values in incoming:
            row = {column: None for column in self.order[name]}
            for column, value in zip(targets, values):
                row[column] = self._coerce(name, column, value)
            staged.append(row)
        for row in staged:  # all-or-nothing, like the engine
            for column in self.required[name]:
                if row[column] is None:
                    raise RefConstraint(f"{name}.{column} is NOT NULL")
        self._check_unique(name, self.tables[name] + staged)
        self.tables[name].extend(staged)
        return len(staged)

    def _update(self, statement: ast.UpdateStatement) -> int:
        name = statement.target.name
        types = self.types[name]
        matched = self._matching(name, statement.where)
        staged: list[tuple[int, dict]] = []
        for position in matched:
            old = self.tables[name][position]
            changes = {}
            for assignment in statement.assignments:
                value, _ = _eval(assignment.value, old, types)
                changes[assignment.column] = self._coerce(
                    name, assignment.column, value
                )
            staged.append((position, changes))
        for _, changes in staged:
            for column, value in changes.items():
                if value is None and column in self.required[name]:
                    raise RefConstraint(f"{name}.{column} is NOT NULL")
        assigned = {a.column for a in statement.assignments}
        updated = list(self.tables[name])
        for position, changes in staged:
            updated[position] = {**updated[position], **changes}
        self._check_unique(name, updated, changed=assigned)
        self.tables[name] = updated
        return len(staged)

    def _delete(self, statement: ast.DeleteStatement) -> int:
        name = statement.target.name
        matched = set(self._matching(name, statement.where))
        before = len(self.tables[name])
        self.tables[name] = [
            row
            for position, row in enumerate(self.tables[name])
            if position not in matched
        ]
        return before - len(self.tables[name])

    def _select(self, select: ast.SelectStatement) -> list[list]:
        """The one SELECT shape INSERT sources use: plain column refs over a
        single table, optional WHERE, optional LIMIT, table order."""
        assert isinstance(select.from_clause, ast.TableRef)
        name = select.from_clause.name
        types = self.types[name]
        out = []
        for row in list(self.tables[name]):  # snapshot: source may be target
            if select.where is not None:
                if _eval(select.where, row, types)[0] is not True:
                    continue
            out.append(
                [
                    _eval(item.expression, row, types)[0]
                    for item in select.select_items
                ]
            )
        if select.limit is not None:
            out = out[: select.limit]
        return out

    def _matching(self, name: str, where) -> list[int]:
        types = self.types[name]
        return [
            position
            for position, row in enumerate(self.tables[name])
            if where is None or _eval(where, row, types)[0] is True
        ]

    def _check_unique(
        self, name: str, rows: list[dict], changed: set[str] | None = None
    ) -> None:
        """PK/unique-index enforcement over the would-be final table.

        NULL-containing keys never conflict; with *changed* given (UPDATE)
        constraints over untouched columns are skipped, like the engine.
        """
        for key_columns in self.unique[name]:
            if changed is not None and not (set(key_columns) & changed):
                continue
            seen = set()
            for row in rows:
                key = tuple(row[column] for column in key_columns)
                if any(value is None for value in key):
                    continue
                if key in seen:
                    raise RefConstraint(
                        f"duplicate key {key!r} in {name}{key_columns}"
                    )
                seen.add(key)

    def _coerce(self, table: str, column: str, value):
        """Mirror of the engine's write-side storage coercions."""
        sql_type = self.types[table][column]
        if value is None:
            return None
        try:
            if sql_type is SqlType.DATE:
                return date_to_days(value) if isinstance(value, str) else int(value)
            if sql_type in (SqlType.INTEGER, SqlType.BIGINT):
                return int(value)
            if sql_type is SqlType.DOUBLE:
                return float(value)
            if sql_type is SqlType.BOOLEAN:
                return bool(value)
            if not isinstance(value, str):
                raise ValueError(value)
            return value
        except ValueError:
            raise RefConstraint(f"bad cast into {table}.{column}") from None

    # -- index views ------------------------------------------------------------

    def index_of(self, table: str, column: str) -> tuple[dict, list[int]]:
        """(value -> ascending positions, NULL positions) for one column."""
        entries: dict = {}
        nulls: list[int] = []
        for position, row in enumerate(self.tables[table]):
            value = row[column]
            if value is None:
                nulls.append(position)
            else:
                entries.setdefault(value, []).append(position)
        return entries, nulls


# -- the tiny three-valued expression evaluator -----------------------------------
#
# Covers exactly what the DML productions can generate: literals, column
# refs, AND/OR/NOT, the six comparisons, + and - arithmetic, IS [NOT] NULL,
# [NOT] BETWEEN, [NOT] IN (list), [NOT] [I]LIKE.  Values are (value, type)
# pairs so DATE columns (ints) compare against ISO-string literals.


def _eval(expr, row: dict, types: dict):
    if isinstance(expr, ast.Literal):
        return expr.value, None
    if isinstance(expr, ast.ColumnRef):
        return row[expr.column], types.get(expr.column)
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "not":
            value, _ = _eval(expr.operand, row, types)
            return (None if value is None else not value), SqlType.BOOLEAN
        value, sql_type = _eval(expr.operand, row, types)
        return (None if value is None else -value), sql_type
    if isinstance(expr, ast.BinaryOp):
        return _eval_binary(expr, row, types)
    if isinstance(expr, ast.IsNull):
        value, _ = _eval(expr.operand, row, types)
        result = value is None
        return (not result if expr.negated else result), SqlType.BOOLEAN
    if isinstance(expr, ast.Between):
        return _eval_between(expr, row, types)
    if isinstance(expr, ast.InList):
        return _eval_in_list(expr, row, types)
    if isinstance(expr, ast.Like):
        return _eval_like(expr, row, types)
    raise AssertionError(f"reference model cannot evaluate {type(expr).__name__}")


def _eval_binary(expr: ast.BinaryOp, row, types):
    op = expr.op
    if op in ("and", "or"):
        left, _ = _eval(expr.left, row, types)
        right, _ = _eval(expr.right, row, types)
        if op == "and":
            if left is False or right is False:
                return False, SqlType.BOOLEAN
            if left is None or right is None:
                return None, SqlType.BOOLEAN
            return True, SqlType.BOOLEAN
        if left is True or right is True:
            return True, SqlType.BOOLEAN
        if left is None or right is None:
            return None, SqlType.BOOLEAN
        return False, SqlType.BOOLEAN
    left, left_type = _eval(expr.left, row, types)
    right, right_type = _eval(expr.right, row, types)
    if op in ("+", "-", "*", "/"):
        if left is None or right is None:
            return None, left_type or right_type
        if op == "+":
            return left + right, left_type or right_type
        if op == "-":
            return left - right, left_type or right_type
        if op == "*":
            return left * right, left_type or right_type
        return left / right, SqlType.DOUBLE
    return _compare(op, left, left_type, right, right_type), SqlType.BOOLEAN


def _compare(op, left, left_type, right, right_type):
    if left is None or right is None:
        return None
    left, right = _date_align(left, left_type, right, right_type)
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise AssertionError(op)


def _date_align(left, left_type, right, right_type):
    """ISO text literals compare against DATE columns as epoch days."""
    if left_type is SqlType.DATE and isinstance(right, str):
        right = date_to_days(right)
    if right_type is SqlType.DATE and isinstance(left, str):
        left = date_to_days(left)
    return left, right


def _eval_between(expr: ast.Between, row, types):
    operand, operand_type = _eval(expr.operand, row, types)
    low, low_type = _eval(expr.low, row, types)
    high, high_type = _eval(expr.high, row, types)
    lower = _compare(">=", operand, operand_type, low, low_type)
    upper = _compare("<=", operand, operand_type, high, high_type)
    if lower is False or upper is False:
        result = False
    elif lower is None or upper is None:
        result = None
    else:
        result = True
    if expr.negated:
        result = None if result is None else not result
    return result, SqlType.BOOLEAN


def _eval_in_list(expr: ast.InList, row, types):
    operand, operand_type = _eval(expr.operand, row, types)
    any_null = operand is None
    hit = False
    for item in expr.items:
        value, value_type = _eval(item, row, types)
        equal = _compare("=", operand, operand_type, value, value_type)
        if equal is True:
            hit = True
        elif equal is None:
            any_null = True
    result = True if hit else (None if any_null else False)
    if expr.negated:
        result = None if result is None else not result
    return result, SqlType.BOOLEAN


def _eval_like(expr: ast.Like, row, types):
    operand, _ = _eval(expr.operand, row, types)
    pattern, _ = _eval(expr.pattern, row, types)
    if operand is None or pattern is None:
        return None, SqlType.BOOLEAN
    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
        for ch in pattern
    )
    flags = re.DOTALL | (re.IGNORECASE if expr.case_insensitive else 0)
    result = re.match(f"^{regex}$", str(operand), flags) is not None
    return (not result if expr.negated else result), SqlType.BOOLEAN


# -- comparison helpers -----------------------------------------------------------


def norm(value):
    """Bit-level comparable form: floats via repr, numpy scalars unboxed."""
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return repr(value)
    return value


def engine_rows(db, table: str) -> list[tuple]:
    return [tuple(norm(v) for v in row) for row in db.catalog.data(table).rows()]


def model_rows(model: RefModel, table: str) -> list[tuple]:
    return [
        tuple(norm(row[column]) for column in model.order[table])
        for row in model.tables[table]
    ]


def assert_indexes_match(db, model: RefModel, table: str):
    for column in model.order[table]:
        entries, nulls = model.index_of(table, column)
        assert db.catalog.index_lookup(table, column, None) == nulls, (
            f"NULL index positions diverged on {table}.{column}"
        )
        for value, positions in entries.items():
            got = db.catalog.index_lookup(table, column, value)
            assert got == positions, (
                f"index {table}.{column} @ {value!r}: engine {got} "
                f"!= model {positions}"
            )


# -- the battery ------------------------------------------------------------------


@pytest.fixture(scope="module")
def sweep_outcome():
    """Run the full sweep once; individual tests assert on slices of it."""
    db = build_fuzz_database(0)
    model = RefModel(db)
    grammar = FuzzGrammar(db.catalog, seed=SEED)
    statements = grammar.statements(SWEEP, shapes=DML_SHAPES)
    # Warm every physical index up front so the sweep exercises the
    # *maintenance* paths (incremental append / targeted drop), not just
    # lazy rebuilds over final data.
    for table in sorted(db.catalog.table_names):
        for column in model.order[table]:
            db.catalog.index_lookup(table, column, None)
    divergences = []
    shapes_run = {shape: 0 for shape in DML_SHAPES}
    errors = 0
    for step, gen in enumerate(statements):
        statement = parse_sql(gen.sql)
        target = statement.target.name
        engine_error = model_error = None
        count = ref_count = None
        try:
            result = db.execute(gen.sql)
            [(count,)] = result.table.rows()
        except SqlError as exc:
            engine_error = type(exc).__name__
        try:
            ref_count = model.apply(statement)
        except RefConstraint:
            model_error = "RefConstraint"
        shapes_run[gen.shape] += 1
        if (engine_error is None) != (model_error is None):
            divergences.append(
                f"#{gen.index} error parity: engine={engine_error} "
                f"model={model_error}: {gen.sql}"
            )
            continue
        if engine_error is not None:
            errors += 1
        elif count != ref_count:
            divergences.append(
                f"#{gen.index} rows_affected {count} != {ref_count}: {gen.sql}"
            )
            continue
        try:
            assert engine_rows(db, target) == model_rows(model, target)
            assert_indexes_match(db, model, target)
            if step % 25 == 0:  # periodic full audit of untouched tables
                for table in sorted(db.catalog.table_names):
                    assert engine_rows(db, table) == model_rows(model, table)
                    assert_indexes_match(db, model, table)
        except AssertionError as exc:
            divergences.append(f"#{gen.index} {exc}\n  {gen.sql}")
    return db, model, divergences, shapes_run, errors


class TestDifferentialSweep:
    def test_500_statements_zero_divergences(self, sweep_outcome):
        _, _, divergences, _, _ = sweep_outcome
        assert not divergences, (
            f"{len(divergences)} divergences, first:\n{divergences[0]}"
        )

    def test_sweep_covers_every_dml_shape(self, sweep_outcome):
        _, _, _, shapes_run, _ = sweep_outcome
        assert set(shapes_run) == set(DML_SHAPES)
        for shape, executed in shapes_run.items():
            assert executed >= 20, f"only {executed} {shape} statements"

    def test_sweep_actually_mutated_every_table(self, sweep_outcome):
        db, _, _, _, _ = sweep_outcome
        for table in sorted(db.catalog.table_names):
            assert db.catalog.mutation_count(table) > 0, table

    def test_final_state_agrees_everywhere(self, sweep_outcome):
        db, model, _, _, _ = sweep_outcome
        for table in sorted(db.catalog.table_names):
            assert engine_rows(db, table) == model_rows(model, table), table
            assert_indexes_match(db, model, table)


class TestReferenceModelSanity:
    """The model itself behaves — quick direct checks, no engine."""

    def test_insert_update_delete_roundtrip(self):
        db = build_fuzz_database(0)
        model = RefModel(db)
        n = len(model.tables["items"])
        assert model.apply(
            parse_sql("INSERT INTO items (item_id, label, price) "
                      "VALUES (900, 'zz', 3.5)")
        ) == 1
        assert len(model.tables["items"]) == n + 1
        assert model.apply(
            parse_sql("UPDATE items SET price = price + 1 "
                      "WHERE items.item_id = 900")
        ) == 1
        assert model.tables["items"][-1]["price"] == 4.5
        assert model.apply(
            parse_sql("DELETE FROM items WHERE items.item_id = 900")
        ) == 1
        assert len(model.tables["items"]) == n

    def test_three_valued_where_skips_null_rows(self):
        db = build_fuzz_database(0)
        model = RefModel(db)
        nulls = sum(1 for r in model.tables["users"] if r["age"] is None)
        assert nulls > 0
        matched = model.apply(parse_sql("UPDATE users SET age = age"))
        # Unfiltered UPDATE touches every row, including NULL ages...
        assert matched == len(model.tables["users"])
        # ...but a WHERE over age leaves UNKNOWN rows alone.
        touched = model.apply(
            parse_sql("UPDATE users SET age = age WHERE users.age >= 0")
        )
        assert touched == len(model.tables["users"]) - nulls

    def test_not_null_rejection(self):
        db = build_fuzz_database(0)
        model = RefModel(db)
        with pytest.raises(RefConstraint):
            model.apply(
                parse_sql("INSERT INTO users (user_id, name) VALUES (NULL, 'x')")
            )
