"""Property-based invariants of the whole engine (hypothesis-driven)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqldb import Database, SqlType, Table


@pytest.fixture(scope="module")
def pdb():
    db = Database("props")
    rng = np.random.default_rng(7)
    n = 500
    db.create_table(
        Table.from_dict(
            "items",
            {
                "id": list(range(n)),
                "value": rng.integers(0, 1000, n).tolist(),
                "bucket": rng.integers(0, 10, n).tolist(),
            },
            {
                "id": SqlType.INTEGER,
                "value": SqlType.INTEGER,
                "bucket": SqlType.INTEGER,
            },
        ),
        primary_key=["id"],
    )
    return db


class TestFilterPartition:
    def test_partition_examples(self, pdb):
        for v in (-50, 0, 123, 500, 999, 1100):
            below = pdb.execute(f"SELECT count(*) FROM items WHERE value <= {v}")
            above = pdb.execute(f"SELECT count(*) FROM items WHERE value > {v}")
            total = pdb.execute("SELECT count(*) FROM items")
            assert (
                list(below.table.rows())[0][0] + list(above.table.rows())[0][0]
                == list(total.table.rows())[0][0]
            )

    def test_between_equals_two_comparisons(self, pdb):
        for low, high in ((0, 100), (250, 750), (900, 2000), (700, 100)):
            between = pdb.execute(
                f"SELECT count(*) FROM items WHERE value BETWEEN {low} AND {high}"
            )
            pair = pdb.execute(
                f"SELECT count(*) FROM items WHERE value >= {low} AND value <= {high}"
            )
            assert list(between.table.rows()) == list(pair.table.rows())


class TestAggregationInvariants:
    def test_group_counts_sum_to_total(self, pdb):
        per_group = pdb.execute(
            "SELECT bucket, count(*) AS c FROM items GROUP BY bucket"
        )
        total = sum(row[1] for row in per_group.table.rows())
        assert total == 500

    def test_group_sums_match_global_sum(self, pdb):
        per_group = pdb.execute(
            "SELECT bucket, sum(value) AS s FROM items GROUP BY bucket"
        )
        global_sum = list(
            pdb.execute("SELECT sum(value) FROM items").table.rows()
        )[0][0]
        assert sum(row[1] for row in per_group.table.rows()) == global_sum

    def test_min_le_avg_le_max_per_group(self, pdb):
        result = pdb.execute(
            "SELECT bucket, min(value), avg(value), max(value) FROM items "
            "GROUP BY bucket"
        )
        for _, mn, avg, mx in result.table.rows():
            assert mn <= avg <= mx

    def test_distinct_count_bounded(self, pdb):
        distinct = pdb.execute("SELECT count(DISTINCT value) FROM items")
        total = pdb.execute("SELECT count(value) FROM items")
        assert (
            list(distinct.table.rows())[0][0] <= list(total.table.rows())[0][0]
        )


class TestOrderingInvariants:
    def test_order_by_produces_sorted_output(self, pdb):
        result = pdb.execute("SELECT value FROM items ORDER BY value")
        got = [row[0] for row in result.table.rows()]
        assert got == sorted(got)

    def test_order_desc_is_reverse(self, pdb):
        asc = [r[0] for r in pdb.execute(
            "SELECT id FROM items ORDER BY value, id").table.rows()]
        desc = [r[0] for r in pdb.execute(
            "SELECT id FROM items ORDER BY value DESC, id DESC").table.rows()]
        assert asc == list(reversed(desc))

    def test_limit_is_prefix_of_full_result(self, pdb):
        full = [r[0] for r in pdb.execute(
            "SELECT id FROM items ORDER BY value, id").table.rows()]
        limited = [r[0] for r in pdb.execute(
            "SELECT id FROM items ORDER BY value, id LIMIT 17").table.rows()]
        assert limited == full[:17]


class TestExplainExecuteConsistency:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_explain_never_crashes_where_execute_works(self, threshold):
        # Build a tiny db inline: hypothesis cannot use module fixtures.
        db = _tiny_db()
        sql = f"SELECT count(*) FROM t WHERE v > {threshold}"
        explain = db.explain(sql)
        assert explain.total_cost > 0
        result = db.execute(sql)
        assert result.row_count == 1

    @given(
        st.integers(min_value=0, max_value=999),
        st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=25, deadline=None)
    def test_range_estimates_monotone(self, a, b):
        db = _tiny_db()
        low, high = min(a, b), max(a, b)
        narrow = db.explain(f"SELECT * FROM t WHERE v > {high}").estimated_rows
        wide = db.explain(f"SELECT * FROM t WHERE v > {low}").estimated_rows
        assert wide >= narrow - 1e-6


_CACHED_DB = None


def _tiny_db():
    global _CACHED_DB
    if _CACHED_DB is None:
        db = Database("hyp")
        rng = np.random.default_rng(3)
        db.create_table(
            Table.from_dict(
                "t",
                {"id": list(range(300)), "v": rng.integers(0, 1000, 300).tolist()},
                {"id": SqlType.INTEGER, "v": SqlType.INTEGER},
            ),
            primary_key=["id"],
        )
        _CACHED_DB = db
    return _CACHED_DB
