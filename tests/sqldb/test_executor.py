"""End-to-end execution correctness against hand-computed expectations."""

import pytest

from repro.sqldb import Database, ExecutionError, SqlType, Table


def rows(db, sql):
    return list(db.execute(sql).table.rows())


@pytest.fixture(scope="module")
def tiny():
    """A database small enough to verify results by hand."""
    db = Database("tiny")
    db.create_table(
        Table.from_dict(
            "emp",
            {
                "id": [1, 2, 3, 4, 5],
                "dept": ["eng", "eng", "ops", "ops", None],
                "salary": [100.0, 200.0, 150.0, None, 50.0],
                "hired": [10, 20, 30, 40, 50],
            },
            {
                "id": SqlType.INTEGER,
                "dept": SqlType.TEXT,
                "salary": SqlType.DOUBLE,
                "hired": SqlType.DATE,
            },
        ),
        primary_key=["id"],
    )
    db.create_table(
        Table.from_dict(
            "dept",
            {"name": ["eng", "ops", "hr"], "budget": [1000, 500, 200]},
            {"name": SqlType.TEXT, "budget": SqlType.INTEGER},
        ),
        primary_key=["name"],
    )
    return db


class TestScansAndFilters:
    def test_full_scan(self, tiny):
        assert len(rows(tiny, "SELECT id FROM emp")) == 5

    def test_comparison_filter(self, tiny):
        assert rows(tiny, "SELECT id FROM emp WHERE salary > 120 ORDER BY id") == [
            (2,), (3,),
        ]

    def test_null_never_matches_comparison(self, tiny):
        # id=4 has NULL salary: excluded from both sides
        low = rows(tiny, "SELECT id FROM emp WHERE salary <= 120")
        high = rows(tiny, "SELECT id FROM emp WHERE salary > 120")
        assert len(low) + len(high) == 4

    def test_is_null(self, tiny):
        assert rows(tiny, "SELECT id FROM emp WHERE salary IS NULL") == [(4,)]

    def test_is_not_null(self, tiny):
        assert len(rows(tiny, "SELECT id FROM emp WHERE salary IS NOT NULL")) == 4

    def test_between(self, tiny):
        assert rows(
            tiny, "SELECT id FROM emp WHERE salary BETWEEN 100 AND 150 ORDER BY id"
        ) == [(1,), (3,)]

    def test_in_list(self, tiny):
        assert rows(tiny, "SELECT id FROM emp WHERE id IN (1, 3, 9)") == [(1,), (3,)]

    def test_not_in_list(self, tiny):
        assert rows(
            tiny, "SELECT id FROM emp WHERE id NOT IN (1, 3) ORDER BY id"
        ) == [(2,), (4,), (5,)]

    def test_like(self, tiny):
        assert rows(tiny, "SELECT name FROM dept WHERE name LIKE 'e%'") == [("eng",)]

    def test_not_like(self, tiny):
        got = rows(tiny, "SELECT name FROM dept WHERE name NOT LIKE 'e%' ORDER BY name")
        assert got == [("hr",), ("ops",)]

    def test_and_or(self, tiny):
        got = rows(
            tiny,
            "SELECT id FROM emp WHERE dept = 'eng' OR (dept = 'ops' AND salary > 140) "
            "ORDER BY id",
        )
        assert got == [(1,), (2,), (3,)]

    def test_case_expression(self, tiny):
        got = rows(
            tiny,
            "SELECT id, CASE WHEN salary >= 150 THEN 'high' WHEN salary IS NULL "
            "THEN 'unknown' ELSE 'low' END FROM emp ORDER BY id",
        )
        assert got == [
            (1, "low"), (2, "high"), (3, "high"), (4, "unknown"), (5, "low"),
        ]


class TestArithmetic:
    def test_expressions(self, tiny):
        got = rows(tiny, "SELECT salary * 2 + 1 FROM emp WHERE id = 1")
        assert got == [(201.0,)]

    def test_division_is_float(self, tiny):
        assert rows(tiny, "SELECT 5 / 2 FROM dept LIMIT 1") == [(2.5,)]

    def test_division_by_zero_raises(self, tiny):
        with pytest.raises(ExecutionError, match="division by zero"):
            tiny.execute("SELECT budget / 0 FROM dept")

    def test_modulo(self, tiny):
        assert rows(tiny, "SELECT mod(budget, 300) FROM dept WHERE name = 'eng'") == [
            (100,)
        ]

    def test_null_propagates(self, tiny):
        assert rows(tiny, "SELECT salary + 1 FROM emp WHERE id = 4") == [(None,)]

    def test_concat(self, tiny):
        assert rows(tiny, "SELECT name || '-x' FROM dept WHERE name = 'hr'") == [
            ("hr-x",)
        ]

    def test_scalar_functions(self, tiny):
        assert rows(tiny, "SELECT abs(-5), upper('ab'), length('abc') FROM dept LIMIT 1") == [
            (5, "AB", 3)
        ]

    def test_coalesce(self, tiny):
        got = rows(tiny, "SELECT coalesce(salary, 0.0) FROM emp WHERE id = 4")
        assert got == [(0.0,)]


class TestJoins:
    def test_inner_join(self, tiny):
        got = rows(
            tiny,
            "SELECT e.id, d.budget FROM emp e JOIN dept d ON e.dept = d.name "
            "ORDER BY e.id",
        )
        assert got == [(1, 1000), (2, 1000), (3, 500), (4, 500)]

    def test_null_join_keys_do_not_match(self, tiny):
        got = rows(
            tiny, "SELECT e.id FROM emp e JOIN dept d ON e.dept = d.name"
        )
        assert (5,) not in got

    def test_left_join_preserves_unmatched(self, tiny):
        got = rows(
            tiny,
            "SELECT e.id, d.budget FROM emp e LEFT JOIN dept d ON e.dept = d.name "
            "ORDER BY e.id",
        )
        assert (5, None) in got
        assert len(got) == 5

    def test_right_join(self, tiny):
        got = rows(
            tiny,
            "SELECT d.name, e.id FROM emp e RIGHT JOIN dept d ON e.dept = d.name",
        )
        assert ("hr", None) in got

    def test_full_join(self, tiny):
        got = rows(
            tiny,
            "SELECT e.id, d.name FROM emp e FULL JOIN dept d ON e.dept = d.name",
        )
        assert (5, None) in got
        assert (None, "hr") in got

    def test_cross_join_count(self, tiny):
        assert len(rows(tiny, "SELECT 1 FROM emp, dept")) == 15

    def test_join_with_residual_filter(self, tiny):
        got = rows(
            tiny,
            "SELECT e.id FROM emp e JOIN dept d ON e.dept = d.name "
            "WHERE e.salary > d.budget / 5 ORDER BY e.id",
        )
        # eng budget/5=200 -> salary>200: none; ops budget/5=100 -> salary>100: id=3
        assert got == [(3,)]

    def test_three_way_join(self, tiny):
        got = rows(
            tiny,
            "SELECT count(*) FROM emp e JOIN dept d ON e.dept = d.name "
            "JOIN emp e2 ON e2.dept = d.name",
        )
        assert got == [(8,)]  # eng 2x2 + ops 2x2


class TestAggregation:
    def test_count_star(self, tiny):
        assert rows(tiny, "SELECT count(*) FROM emp") == [(5,)]

    def test_count_column_skips_nulls(self, tiny):
        assert rows(tiny, "SELECT count(salary) FROM emp") == [(4,)]

    def test_count_distinct(self, tiny):
        assert rows(tiny, "SELECT count(DISTINCT dept) FROM emp") == [(2,)]

    def test_sum_avg_min_max(self, tiny):
        got = rows(
            tiny, "SELECT sum(salary), avg(salary), min(salary), max(salary) FROM emp"
        )
        assert got == [(500.0, 125.0, 50.0, 200.0)]

    def test_group_by(self, tiny):
        got = rows(
            tiny,
            "SELECT dept, count(*), sum(salary) FROM emp "
            "WHERE dept IS NOT NULL GROUP BY dept ORDER BY dept",
        )
        assert got == [("eng", 2, 300.0), ("ops", 2, 150.0)]

    def test_group_with_null_key(self, tiny):
        got = rows(tiny, "SELECT dept, count(*) FROM emp GROUP BY dept")
        assert len(got) == 3  # eng, ops, NULL group

    def test_having(self, tiny):
        got = rows(
            tiny,
            "SELECT dept FROM emp GROUP BY dept HAVING sum(salary) > 200",
        )
        assert got == [("eng",)]

    def test_sum_empty_is_null(self, tiny):
        assert rows(tiny, "SELECT sum(salary) FROM emp WHERE id > 100") == [(None,)]

    def test_count_empty_is_zero(self, tiny):
        assert rows(tiny, "SELECT count(*) FROM emp WHERE id > 100") == [(0,)]

    def test_group_by_expression(self, tiny):
        got = rows(
            tiny,
            "SELECT id % 2, count(*) FROM emp GROUP BY id % 2 ORDER BY 1",
        )
        assert got == [(0, 2), (1, 3)]

    def test_min_max_text(self, tiny):
        assert rows(tiny, "SELECT min(name), max(name) FROM dept") == [("eng", "ops")]


class TestSortDistinctLimit:
    def test_order_desc(self, tiny):
        got = rows(tiny, "SELECT id FROM emp ORDER BY salary DESC")
        # DESC puts NULL first (PostgreSQL default)
        assert got[0] == (4,)
        assert got[1] == (2,)

    def test_order_asc_nulls_last(self, tiny):
        got = rows(tiny, "SELECT id FROM emp ORDER BY salary")
        assert got[-1] == (4,)

    def test_multi_key_sort(self, tiny):
        got = rows(tiny, "SELECT dept, id FROM emp WHERE dept IS NOT NULL "
                         "ORDER BY dept, id DESC")
        assert got == [("eng", 2), ("eng", 1), ("ops", 4), ("ops", 3)]

    def test_order_by_alias(self, tiny):
        got = rows(tiny, "SELECT salary * 2 AS double_pay FROM emp "
                         "WHERE salary IS NOT NULL ORDER BY double_pay")
        assert got[0] == (100.0,)

    def test_distinct(self, tiny):
        got = rows(tiny, "SELECT DISTINCT dept FROM emp WHERE dept IS NOT NULL "
                         "ORDER BY dept")
        assert got == [("eng",), ("ops",)]

    def test_limit(self, tiny):
        assert len(rows(tiny, "SELECT id FROM emp LIMIT 2")) == 2

    def test_offset(self, tiny):
        got = rows(tiny, "SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 3")
        assert got == [(4,), (5,)]

    def test_limit_zero(self, tiny):
        assert rows(tiny, "SELECT id FROM emp LIMIT 0") == []


class TestSubqueries:
    def test_in_subquery(self, tiny):
        got = rows(
            tiny,
            "SELECT name FROM dept WHERE name IN (SELECT dept FROM emp) ORDER BY name",
        )
        assert got == [("eng",), ("ops",)]

    def test_not_in_subquery_with_nulls_is_empty(self, tiny):
        # emp.dept contains NULL, so NOT IN returns no rows (SQL semantics)
        got = rows(tiny, "SELECT name FROM dept WHERE name NOT IN (SELECT dept FROM emp)")
        assert got == []

    def test_exists(self, tiny):
        got = rows(tiny, "SELECT count(*) FROM dept WHERE EXISTS (SELECT 1 FROM emp)")
        assert got == [(3,)]

    def test_not_exists_empty_subquery(self, tiny):
        got = rows(
            tiny,
            "SELECT count(*) FROM dept WHERE NOT EXISTS "
            "(SELECT 1 FROM emp WHERE id > 99)",
        )
        assert got == [(3,)]

    def test_scalar_subquery(self, tiny):
        got = rows(
            tiny,
            "SELECT id FROM emp WHERE salary = (SELECT max(salary) FROM emp)",
        )
        assert got == [(2,)]

    def test_scalar_subquery_multiple_rows_raises(self, tiny):
        with pytest.raises(ExecutionError, match="more than one row"):
            tiny.execute("SELECT id FROM emp WHERE salary = (SELECT salary FROM emp)")

    def test_derived_table(self, tiny):
        got = rows(
            tiny,
            "SELECT sub.d, sub.c FROM (SELECT dept AS d, count(*) AS c FROM emp "
            "GROUP BY dept) sub WHERE sub.c > 1 AND sub.d IS NOT NULL ORDER BY sub.d",
        )
        assert got == [("eng", 2), ("ops", 2)]

    def test_nested_subquery(self, tiny):
        got = rows(
            tiny,
            "SELECT name FROM dept WHERE name IN (SELECT dept FROM emp WHERE salary > "
            "(SELECT avg(salary) FROM emp))",
        )
        assert got == [("eng",)] or got == [("eng",), ("ops",)]


class TestDates:
    def test_date_comparison_with_iso_string(self, tiny):
        # hired stored as day numbers 10..50 => 1970-01-11 .. 1970-02-20
        got = rows(tiny, "SELECT id FROM emp WHERE hired < '1970-02-01' ORDER BY id")
        assert got == [(1,), (2,), (3,)]

    def test_extract_year(self, tiny):
        got = rows(tiny, "SELECT extract(year FROM hired) FROM emp WHERE id = 1")
        assert got == [(1970,)]

    def test_date_arithmetic(self, tiny):
        got = rows(tiny, "SELECT hired - 5 FROM emp WHERE id = 1")
        assert got == [(5,)]
