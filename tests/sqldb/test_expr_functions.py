"""Scalar-function and expression edge cases in the executor."""

import pytest

from repro.sqldb import Database, ExecutionError, SqlType, Table


@pytest.fixture(scope="module")
def fdb():
    db = Database("funcs")
    db.create_table(
        Table.from_dict(
            "x",
            {
                "i": [1, -2, 3],
                "f": [1.5, 2.25, -3.75],
                "s": ["Hello", "wOrLd", "abc"],
                "n": [1.0, None, 3.0],
                "d": [0, 365, 10_000],
            },
            {
                "i": SqlType.INTEGER,
                "f": SqlType.DOUBLE,
                "s": SqlType.TEXT,
                "n": SqlType.DOUBLE,
                "d": SqlType.DATE,
            },
        ),
        primary_key=["i"],
    )
    return db


def one(db, expr, where="i = 1"):
    result = db.execute(f"SELECT {expr} FROM x WHERE {where}")
    return list(result.table.rows())[0][0]


class TestNumericFunctions:
    def test_abs(self, fdb):
        assert one(fdb, "abs(i)", "i = -2") == 2

    def test_round_digits(self, fdb):
        assert one(fdb, "round(f, 1)", "i = -2") == pytest.approx(2.2)

    def test_floor_ceil(self, fdb):
        assert one(fdb, "floor(f)") == 1
        assert one(fdb, "ceil(f)") == 2

    def test_sqrt(self, fdb):
        assert one(fdb, "sqrt(i * i * 4)") == pytest.approx(2.0)

    def test_sqrt_negative_raises(self, fdb):
        with pytest.raises(ExecutionError):
            fdb.execute("SELECT sqrt(f) FROM x WHERE i = 3")

    def test_ln_exp(self, fdb):
        assert one(fdb, "ln(exp(1.0))") == pytest.approx(1.0)

    def test_ln_nonpositive_raises(self, fdb):
        with pytest.raises(ExecutionError):
            fdb.execute("SELECT ln(0) FROM x")

    def test_power_mod(self, fdb):
        assert one(fdb, "power(2, 10)") == pytest.approx(1024.0)
        assert one(fdb, "mod(10, 3)") == 1


class TestStringFunctions:
    def test_upper_lower(self, fdb):
        assert one(fdb, "upper(s)") == "HELLO"
        assert one(fdb, "lower(s)", "i = -2") == "world"

    def test_length(self, fdb):
        assert one(fdb, "length(s)") == 5

    def test_concat_function(self, fdb):
        assert one(fdb, "concat(s, '!')") == "Hello!"

    def test_substr(self, fdb):
        # substring not implemented over arbitrary positions in eval?
        result = fdb.validate("SELECT substr(s, 1, 3) FROM x")
        # substr is declared; if evaluation is unsupported the validate
        # passes (planning only) but execution raises a clear error.
        assert result[0]


class TestConditionalFunctions:
    def test_coalesce_fills_null(self, fdb):
        got = [r[0] for r in fdb.execute(
            "SELECT coalesce(n, 0.0) FROM x ORDER BY i"
        ).table.rows()]
        assert got == [0.0, 1.0, 3.0]

    def test_coalesce_first_non_null_wins(self, fdb):
        assert one(fdb, "coalesce(n, f)", "i = -2") == pytest.approx(2.25)

    def test_greatest_least(self, fdb):
        assert one(fdb, "greatest(i, 2)") == 2
        assert one(fdb, "least(i, 0)") == 0

    def test_nested_case(self, fdb):
        got = one(
            fdb,
            "CASE WHEN i > 0 THEN CASE WHEN f > 1 THEN 'both' ELSE 'one' END "
            "ELSE 'neg' END",
        )
        assert got == "both"

    def test_case_without_else_is_null(self, fdb):
        assert one(fdb, "CASE WHEN i > 100 THEN 1 END") is None


class TestCastsAndDates:
    def test_cast_text_to_int(self, fdb):
        assert one(fdb, "CAST('42' AS integer)") == 42

    def test_cast_bad_numeric_raises(self, fdb):
        with pytest.raises(ExecutionError):
            fdb.execute("SELECT CAST(s AS integer) FROM x")

    def test_cast_int_to_text(self, fdb):
        assert one(fdb, "CAST(i AS text)") == "1"

    def test_extract_parts(self, fdb):
        assert one(fdb, "extract(year FROM d)", "d = '1971-01-01'") == 1971
        assert one(fdb, "extract(month FROM d)", "i = 1") == 1
        assert one(fdb, "extract(day FROM d)", "i = 1") == 1

    def test_extract_unknown_part(self, fdb):
        with pytest.raises(ExecutionError):
            fdb.execute("SELECT extract(fortnight FROM d) FROM x")

    def test_date_plus_interval_days(self, fdb):
        got = fdb.execute("SELECT count(*) FROM x WHERE d + 30 > '1997-01-01'")
        assert list(got.table.rows()) == [(1,)]


class TestThreeValuedLogic:
    def test_null_and_false_is_false(self, fdb):
        # NULL AND FALSE = FALSE, so NOT of it is TRUE: row is kept.
        got = fdb.execute(
            "SELECT count(*) FROM x WHERE NOT (n > 100 AND 1 = 2)"
        )
        assert list(got.table.rows()) == [(3,)]

    def test_null_or_true_is_true(self, fdb):
        got = fdb.execute("SELECT count(*) FROM x WHERE n > 100 OR 1 = 1")
        assert list(got.table.rows()) == [(3,)]

    def test_null_comparison_filters_row(self, fdb):
        got = fdb.execute("SELECT count(*) FROM x WHERE n > 0")
        assert list(got.table.rows()) == [(2,)]

    def test_not_null_is_null(self, fdb):
        # NOT (NULL > 0) is still unknown: the row with NULL n is excluded
        # from both the predicate and its negation.
        positive = fdb.execute("SELECT count(*) FROM x WHERE n > 0")
        negated = fdb.execute("SELECT count(*) FROM x WHERE NOT n > 0")
        total = (
            list(positive.table.rows())[0][0] + list(negated.table.rows())[0][0]
        )
        assert total == 2
