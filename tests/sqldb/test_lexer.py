"""Tokenizer behaviour, including placeholders, comments, and errors."""

import pytest

from repro.sqldb.errors import SqlSyntaxError
from repro.sqldb.lexer import TokenType, tokenize


def kinds(sql):
    return [t.type for t in tokenize(sql)[:-1]]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("SELECT sElEcT select")
        assert all(t.value == "select" for t in tokens[:-1])
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_lowercased(self):
        assert values("MyTable") == ["mytable"]
        assert kinds("MyTable") == [TokenType.IDENTIFIER]

    def test_quoted_identifier(self):
        tokens = tokenize('"Weird Name"')
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "weird name"

    def test_eof_token_present(self):
        assert tokenize("")[0].type is TokenType.EOF

    def test_punctuation_and_operators(self):
        assert values("(a, b);") == ["(", "a", ",", "b", ")", ";"]
        assert values("a <> b != c <= d >= e || f") == [
            "a", "<>", "b", "!=", "c", "<=", "d", ">=", "e", "||", "f",
        ]


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.NUMBER
        assert token.value == "42"

    def test_float(self):
        assert tokenize("3.14")[0].value == "3.14"

    def test_leading_dot(self):
        assert tokenize(".5")[0].value == ".5"

    def test_scientific(self):
        assert tokenize("1e6")[0].value == "1e6"
        assert tokenize("2.5E-3")[0].value == "2.5E-3"

    def test_e_not_exponent(self):
        # "1e" followed by an identifier char is a number then identifier
        tokens = tokenize("1efoo")
        assert tokens[0].value == "1"
        assert tokens[1].value == "efoo"


class TestStrings:
    def test_simple_string(self):
        token = tokenize("'hello'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "hello"

    def test_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_string_preserves_case(self):
        assert tokenize("'MiXeD'")[0].value == "MiXeD"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")


class TestPlaceholders:
    def test_placeholder_token(self):
        token = tokenize("{p_1}")[0]
        assert token.type is TokenType.PLACEHOLDER
        assert token.value == "p_1"

    def test_placeholder_in_context(self):
        tokens = tokenize("WHERE amount > {p_1}")
        assert tokens[-2].type is TokenType.PLACEHOLDER

    def test_unterminated_placeholder(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("{p_1")

    def test_empty_placeholder(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("{ }")


class TestComments:
    def test_line_comment(self):
        assert values("a -- comment\n b") == ["a", "b"]

    def test_line_comment_at_end(self):
        assert values("a -- trailing") == ["a"]

    def test_block_comment(self):
        assert values("a /* hi\n there */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("a /* oops")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            tokenize("a @ b")
        assert "@" in str(excinfo.value)

    def test_error_carries_position(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            tokenize("ab @")
        assert excinfo.value.position == 3
