"""Property tests for NULL three-valued logic, driven by the fuzz grammar.

SQL's WHERE clause keeps a row iff the predicate is TRUE — FALSE and
UNKNOWN both drop it.  Kleene logic therefore implies machine-checkable
laws over *any* predicate P:

* partition: every row is exactly one of P, NOT P, or (P) IS NULL;
* double negation: NOT NOT P keeps exactly the rows P keeps;
* De Morgan: NOT (P AND Q) == (NOT P) OR (NOT Q), likewise for OR.

The predicates come from the fuzz grammar's expression production
(:meth:`FuzzGrammar.predicate`), so the laws are exercised over the same
operator mix (LIKE, IN, BETWEEN, IS NULL, nested NOT/AND/OR...) the fuzzer
generates, against columns with real NULLs.
"""

from __future__ import annotations

import random

import pytest

from repro.fuzz import FuzzGrammar
from repro.sqldb import ast_nodes as ast
from repro.sqldb.sql_render import render_expression

N_USERS = 200  # rows in the conftest users table; city is NULL every 17th


def _count(db, predicate_sql: str) -> int:
    sql = f"SELECT count(*) AS n FROM users AS t0 WHERE {predicate_sql}"
    table = db.execute(sql).table
    return int(table.columns[0].data[0])


def _signature(db, predicate_sql: str) -> tuple:
    """A strong row-set fingerprint: count plus user_id aggregates."""
    sql = (
        "SELECT count(*) AS n, min(t0.user_id) AS lo, max(t0.user_id) AS hi, "
        f"sum(t0.user_id) AS s FROM users AS t0 WHERE {predicate_sql}"
    )
    table = db.execute(sql).table
    return tuple(
        None
        if column.null_mask is not None and column.null_mask[0]
        else column.data[0]
        for column in table.columns
    )


def _predicates(db, count: int = 25) -> list[str]:
    grammar = FuzzGrammar(db.catalog, seed=29)
    scope = grammar.columns_of("users", "t0")
    out = []
    for i in range(count):
        rng = random.Random(f"null3vl:{i}")
        expr = grammar.predicate(scope, rng, allow_subqueries=False)
        out.append(render_expression(expr))
    return out


class TestPartitionLaw:
    """P, NOT P, and (P) IS NULL partition the table."""

    def test_grammar_predicates_partition_all_rows(self, db):
        for pred in _predicates(db):
            true_n = _count(db, f"({pred})")
            false_n = _count(db, f"NOT ({pred})")
            unknown_n = _count(db, f"({pred}) IS NULL")
            assert true_n + false_n + unknown_n == N_USERS, pred

    def test_some_generated_predicate_is_unknown_somewhere(self, db):
        # The grammar must actually exercise the UNKNOWN branch (NULL
        # comparisons, IS NULL over nullable columns...), otherwise the
        # partition law above degenerates to two-valued logic.
        assert any(
            _count(db, f"({pred}) IS NULL") > 0 for pred in _predicates(db)
        )


class TestNegationLaws:
    def test_double_negation_preserves_the_row_set(self, db):
        for pred in _predicates(db, count=15):
            assert _signature(db, f"({pred})") == _signature(
                db, f"NOT (NOT ({pred}))"
            ), pred

    def test_negation_never_overlaps(self, db):
        for pred in _predicates(db, count=15):
            both = _count(db, f"({pred}) AND NOT ({pred})")
            assert both == 0, pred


class TestDeMorgan:
    def _pairs(self, db):
        preds = _predicates(db, count=16)
        return list(zip(preds[::2], preds[1::2]))

    def test_de_morgan_for_and(self, db):
        for p, q in self._pairs(db):
            lhs = _signature(db, f"NOT (({p}) AND ({q}))")
            rhs = _signature(db, f"(NOT ({p})) OR (NOT ({q}))")
            assert lhs == rhs, (p, q)

    def test_de_morgan_for_or(self, db):
        for p, q in self._pairs(db):
            lhs = _signature(db, f"NOT (({p}) OR ({q}))")
            rhs = _signature(db, f"(NOT ({p})) AND (NOT ({q}))")
            assert lhs == rhs, (p, q)


class TestKleeneTruthTable:
    """Pin the three-valued AND/OR/NOT tables with explicit operands."""

    TRUE = "t0.user_id >= 0"
    FALSE = "t0.user_id < 0"
    UNKNOWN = "t0.city = NULL"  # NULL = anything is UNKNOWN for every row

    @pytest.mark.parametrize(
        "expr, expected",
        [
            # AND: UNKNOWN dominates TRUE, FALSE dominates UNKNOWN.
            ("%u% AND %t%", 0),
            ("%u% AND %f%", 0),
            ("%u% AND %u%", 0),
            # OR: TRUE dominates UNKNOWN, UNKNOWN dominates FALSE.
            ("%u% OR %t%", N_USERS),
            ("%u% OR %f%", 0),
            ("%u% OR %u%", 0),
            # NOT UNKNOWN is UNKNOWN.
            ("NOT %u%", 0),
            # UNKNOWN is detectable only via IS NULL.
            ("(%u%) IS NULL", N_USERS),
            ("(%u%) IS NOT NULL", 0),
        ],
    )
    def test_truth_table(self, db, expr, expected):
        spelled = (
            expr.replace("%u%", f"({self.UNKNOWN})")
            .replace("%t%", f"({self.TRUE})")
            .replace("%f%", f"({self.FALSE})")
        )
        assert _count(db, spelled) == expected, spelled

    def test_where_keeps_only_true_rows(self, db):
        # FALSE and UNKNOWN are both filtered: the partition law's SQL
        # reading.  city IS NULL every 17th row => 12 NULL cities.
        nulls = _count(db, "t0.city IS NULL")
        not_null = _count(db, "t0.city IS NOT NULL")
        assert nulls + not_null == N_USERS
        eq_self = _count(db, "t0.city = t0.city")  # UNKNOWN on NULL rows
        assert eq_self == not_null

    def test_null_in_in_list_is_never_true(self, db):
        # x IN (a, NULL) is TRUE if x = a, else UNKNOWN — never FALSE, so
        # NOT IN with a NULL in the list drops every row.
        n_match = _count(db, "t0.city IN ('city_1', NULL)")
        assert n_match == _count(db, "t0.city = 'city_1'")
        assert _count(db, "t0.city NOT IN ('city_1', NULL)") == 0


def test_predicate_production_is_deterministic(db):
    grammar = FuzzGrammar(db.catalog, seed=29)
    scope = grammar.columns_of("users", "t0")
    a = grammar.predicate(scope, random.Random("x"), allow_subqueries=False)
    b = grammar.predicate(scope, random.Random("x"), allow_subqueries=False)
    assert isinstance(a, ast.Expression)
    assert a == b
