"""Parser coverage: clause structure, precedence, subqueries, templates."""

import pytest

from repro.sqldb import ast_nodes as ast
from repro.sqldb.errors import SqlSyntaxError, UnsupportedSqlError
from repro.sqldb.parser import parse_select


class TestSelectStructure:
    def test_minimal_select(self):
        stmt = parse_select("SELECT 1")
        assert stmt.from_clause is None
        assert isinstance(stmt.select_items[0].expression, ast.Literal)

    def test_select_star(self):
        stmt = parse_select("SELECT * FROM t")
        assert isinstance(stmt.select_items[0].expression, ast.Star)

    def test_qualified_star(self):
        stmt = parse_select("SELECT t.* FROM t")
        star = stmt.select_items[0].expression
        assert isinstance(star, ast.Star)
        assert star.table == "t"

    def test_aliases(self):
        stmt = parse_select("SELECT a AS x, b y FROM t")
        assert stmt.select_items[0].alias == "x"
        assert stmt.select_items[1].alias == "y"

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct
        assert not parse_select("SELECT ALL a FROM t").distinct

    def test_limit_offset(self):
        stmt = parse_select("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert stmt.limit == 10
        assert stmt.offset == 5

    def test_limit_requires_integer(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT a FROM t LIMIT 1.5")

    def test_group_by_having(self):
        stmt = parse_select(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by_direction(self):
        stmt = parse_select("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [o.descending for o in stmt.order_by] == [True, False, False]

    def test_trailing_semicolon_ok(self):
        parse_select("SELECT 1;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT 1 1")

    def test_union_parses_as_compound(self):
        statement = parse_select("SELECT a FROM t UNION SELECT b FROM s")
        assert isinstance(statement, ast.CompoundSelect)
        assert statement.ops == ["union"]
        assert statement.deduplicates

    def test_union_all_chain(self):
        statement = parse_select(
            "SELECT a FROM t UNION ALL SELECT b FROM s UNION ALL SELECT c FROM u"
        )
        assert len(statement.selects) == 3
        assert not statement.deduplicates

    def test_intersect_unsupported(self):
        with pytest.raises(UnsupportedSqlError):
            parse_select("SELECT a FROM t INTERSECT SELECT b FROM s")

    def test_union_in_subquery_unsupported(self):
        with pytest.raises(UnsupportedSqlError):
            parse_select(
                "SELECT 1 FROM t WHERE a IN "
                "(SELECT b FROM s UNION SELECT c FROM u)"
            )


class TestJoins:
    def test_inner_join(self):
        stmt = parse_select("SELECT * FROM a JOIN b ON a.x = b.x")
        join = stmt.from_clause
        assert isinstance(join, ast.Join)
        assert join.join_type == "inner"
        assert join.condition is not None

    def test_left_outer_join(self):
        stmt = parse_select("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x")
        assert stmt.from_clause.join_type == "left"

    def test_cross_join(self):
        stmt = parse_select("SELECT * FROM a CROSS JOIN b")
        assert stmt.from_clause.join_type == "cross"
        assert stmt.from_clause.condition is None

    def test_comma_join_is_cross(self):
        stmt = parse_select("SELECT * FROM a, b")
        assert stmt.from_clause.join_type == "cross"

    def test_join_chain(self):
        stmt = parse_select(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y"
        )
        outer = stmt.from_clause
        assert isinstance(outer.left, ast.Join)

    def test_table_aliases(self):
        stmt = parse_select("SELECT * FROM orders AS o JOIN users u ON o.a = u.a")
        join = stmt.from_clause
        assert join.left.alias == "o"
        assert join.right.alias == "u"

    def test_derived_table(self):
        stmt = parse_select("SELECT * FROM (SELECT a FROM t) AS sub")
        derived = stmt.from_clause
        assert isinstance(derived, ast.DerivedTable)
        assert derived.alias == "sub"

    def test_join_requires_on(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT * FROM a JOIN b")


class TestExpressions:
    def where(self, condition):
        return parse_select(f"SELECT a FROM t WHERE {condition}").where

    def test_precedence_and_or(self):
        expr = self.where("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "or"
        assert expr.right.op == "and"

    def test_precedence_arithmetic(self):
        expr = self.where("a + b * c = 1")
        left = expr.left
        assert left.op == "+"
        assert left.right.op == "*"

    def test_parentheses(self):
        expr = self.where("(a + b) * c = 1")
        assert expr.left.op == "*"

    def test_not(self):
        expr = self.where("NOT a = 1")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "not"

    def test_between(self):
        expr = self.where("a BETWEEN 1 AND 10")
        assert isinstance(expr, ast.Between)

    def test_not_between(self):
        assert self.where("a NOT BETWEEN 1 AND 10").negated

    def test_in_list(self):
        expr = self.where("a IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_in_subquery(self):
        expr = self.where("a IN (SELECT b FROM s)")
        assert isinstance(expr, ast.InSubquery)

    def test_not_in(self):
        assert self.where("a NOT IN (1)").negated

    def test_exists(self):
        expr = self.where("EXISTS (SELECT 1 FROM s)")
        assert isinstance(expr, ast.Exists)

    def test_scalar_subquery(self):
        expr = self.where("a > (SELECT max(b) FROM s)")
        assert isinstance(expr.right, ast.ScalarSubquery)

    def test_like(self):
        expr = self.where("name LIKE 'a%'")
        assert isinstance(expr, ast.Like)
        assert not expr.case_insensitive

    def test_ilike(self):
        assert self.where("name ILIKE 'a%'").case_insensitive

    def test_is_null(self):
        expr = self.where("a IS NULL")
        assert isinstance(expr, ast.IsNull) and not expr.negated

    def test_is_not_null(self):
        assert self.where("a IS NOT NULL").negated

    def test_case_when(self):
        expr = parse_select(
            "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t"
        ).select_items[0].expression
        assert isinstance(expr, ast.CaseWhen)
        assert expr.default is not None

    def test_case_requires_when(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT CASE ELSE 1 END FROM t")

    def test_cast(self):
        expr = parse_select("SELECT CAST(a AS double precision) FROM t")
        cast = expr.select_items[0].expression
        assert isinstance(cast, ast.Cast)
        assert cast.type_name == "double precision"

    def test_extract(self):
        expr = parse_select("SELECT EXTRACT(year FROM d) FROM t")
        call = expr.select_items[0].expression
        assert isinstance(call, ast.FunctionCall)
        assert call.name == "extract"

    def test_unary_minus(self):
        expr = self.where("a = -5")
        assert isinstance(expr.right, ast.UnaryOp)

    def test_neq_normalized(self):
        assert self.where("a != 1").op == "<>"

    def test_concat_operator(self):
        expr = parse_select("SELECT a || b FROM t").select_items[0].expression
        assert expr.op == "||"


class TestAggregatesAndFunctions:
    def test_count_star(self):
        call = parse_select("SELECT count(*) FROM t").select_items[0].expression
        assert call.is_aggregate
        assert isinstance(call.args[0], ast.Star)

    def test_count_distinct(self):
        call = parse_select("SELECT count(DISTINCT a) FROM t").select_items[0].expression
        assert call.distinct

    def test_nested_function(self):
        call = parse_select("SELECT sum(abs(a)) FROM t").select_items[0].expression
        assert call.name == "sum"
        assert call.args[0].name == "abs"


class TestTemplates:
    def test_placeholder_expression(self):
        stmt = parse_select("SELECT a FROM t WHERE a > {p_1}")
        assert isinstance(stmt.where.right, ast.Placeholder)

    def test_find_placeholders_order_and_dedup(self):
        stmt = parse_select(
            "SELECT a FROM t WHERE a > {p_2} AND b < {p_1} AND c = {p_2}"
        )
        assert ast.find_placeholders(stmt) == ["p_2", "p_1"]

    def test_placeholder_in_in_list(self):
        stmt = parse_select("SELECT a FROM t WHERE a IN ({p_1}, {p_2})")
        assert len(ast.find_placeholders(stmt)) == 2


class TestWalk:
    def test_walk_reaches_subquery(self):
        stmt = parse_select("SELECT a FROM t WHERE a IN (SELECT b FROM s WHERE c = 1)")
        tables = [n.name for n in stmt.walk() if isinstance(n, ast.TableRef)]
        assert set(tables) == {"t", "s"}

    def test_walk_case_children(self):
        stmt = parse_select("SELECT CASE WHEN a = 1 THEN b ELSE c END FROM t")
        refs = [n.column for n in stmt.walk() if isinstance(n, ast.ColumnRef)]
        assert set(refs) == {"a", "b", "c"}


class TestErrorPositions:
    """Syntax errors point at the offending token (offset + line/column)."""

    def test_position_and_line_column(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse_select("select from t")
        err = excinfo.value
        assert err.position == 7  # the FROM keyword
        assert (err.line, err.column) == (1, 8)

    def test_multiline_position(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse_select("select a\nfrom t\nwhere a >")
        err = excinfo.value
        assert err.position == len("select a\nfrom t\nwhere a >")
        assert err.line == 3

    def test_context_snippet_caret(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse_select("select a,, b from t")
        snippet = excinfo.value.context_snippet()
        assert snippet is not None
        line, caret = snippet.split("\n")
        assert line == "LINE 1: select a,, b from t"
        # The caret column lines up with the second comma.
        assert caret.index("^") == len("LINE 1: ") + line[len("LINE 1: "):].index(",,") + 1

    def test_trailing_input_position(self):
        sql = "select a from t banana extra"
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse_select(sql)
        assert excinfo.value.position == sql.index("extra")
