"""Planner behaviour: estimates, cost monotonicity, plan shapes, EXPLAIN."""

import pytest

from repro.sqldb.plan_nodes import (
    AggregateNode,
    HashJoinNode,
    IndexScanNode,
    LimitNode,
    SeqScanNode,
)


def find_nodes(root, node_type):
    found = []
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, node_type):
            found.append(node)
        stack.extend(node.children())
    return found


class TestEstimates:
    def test_full_scan_rows(self, db):
        result = db.explain("SELECT * FROM orders")
        assert result.estimated_rows == pytest.approx(1000, rel=0.01)

    def test_filter_reduces_estimate(self, db):
        full = db.explain("SELECT * FROM orders").estimated_rows
        filtered = db.explain("SELECT * FROM orders WHERE amount > 200").estimated_rows
        assert 0 < filtered < full

    def test_estimate_close_to_actual_for_range(self, db):
        estimated = db.explain("SELECT * FROM orders WHERE amount < 100").estimated_rows
        actual = db.execute("SELECT * FROM orders WHERE amount < 100").row_count
        assert estimated == pytest.approx(actual, rel=0.25)

    def test_eq_estimate_uses_ndv(self, db):
        estimated = db.explain("SELECT * FROM orders WHERE status = 'paid'").estimated_rows
        assert estimated == pytest.approx(250, rel=0.2)

    def test_join_estimate_reasonable(self, db):
        estimated = db.explain(
            "SELECT * FROM users u JOIN orders o ON u.user_id = o.user_id"
        ).estimated_rows
        actual = db.execute(
            "SELECT * FROM users u JOIN orders o ON u.user_id = o.user_id"
        ).row_count
        assert estimated == pytest.approx(actual, rel=0.3)

    def test_limit_caps_estimate(self, db):
        result = db.explain("SELECT * FROM orders LIMIT 7")
        assert result.estimated_rows == 7

    def test_group_by_estimate_uses_ndv(self, db):
        result = db.explain("SELECT status, count(*) FROM orders GROUP BY status")
        assert result.estimated_rows == pytest.approx(4, rel=0.01)

    def test_distinct_estimate(self, db):
        result = db.explain("SELECT DISTINCT name FROM users")
        assert result.estimated_rows == pytest.approx(23, rel=0.01)


class TestCostMonotonicity:
    def test_cost_grows_with_selectivity(self, db):
        # A more selective predicate must not cost more at the top (the
        # downstream operators see fewer rows).
        costs = [
            db.explain(f"SELECT * FROM orders WHERE amount > {v}").total_cost
            for v in (0, 100, 300, 600)
        ]
        assert costs == sorted(costs, reverse=True)

    def test_join_more_expensive_than_scan(self, db):
        scan = db.explain("SELECT * FROM orders").total_cost
        join = db.explain(
            "SELECT * FROM users u JOIN orders o ON u.user_id = o.user_id"
        ).total_cost
        assert join > scan

    def test_sort_adds_cost(self, db):
        plain = db.explain("SELECT * FROM orders").total_cost
        sorted_cost = db.explain("SELECT * FROM orders ORDER BY amount").total_cost
        assert sorted_cost > plain

    def test_subquery_cost_included(self, db):
        plain = db.explain("SELECT * FROM users").total_cost
        with_sub = db.explain(
            "SELECT * FROM users WHERE user_id IN (SELECT user_id FROM orders)"
        ).total_cost
        assert with_sub > plain

    def test_limit_reduces_cost(self, db):
        full = db.explain("SELECT * FROM orders").total_cost
        limited = db.explain("SELECT * FROM orders LIMIT 1").total_cost
        assert limited < full


class TestPlanShapes:
    def test_equi_join_uses_hash_join(self, db):
        plan = db.plan(
            "SELECT * FROM users u JOIN orders o ON u.user_id = o.user_id"
        )
        assert find_nodes(plan.root, HashJoinNode)

    def test_pk_point_lookup_uses_index(self, db):
        plan = db.plan("SELECT * FROM orders WHERE order_id = 5")
        assert find_nodes(plan.root, IndexScanNode)

    def test_unselective_predicate_uses_seq_scan(self, db):
        plan = db.plan("SELECT * FROM orders WHERE order_id > 0")
        assert find_nodes(plan.root, SeqScanNode)

    def test_filter_pushed_into_scan(self, db):
        plan = db.plan(
            "SELECT * FROM users u JOIN orders o ON u.user_id = o.user_id "
            "WHERE o.amount > 500"
        )
        scans = find_nodes(plan.root, (SeqScanNode, IndexScanNode))
        order_scans = [s for s in scans if s.table_name == "orders"]
        assert order_scans and order_scans[0].filter is not None

    def test_aggregate_node_present(self, db):
        plan = db.plan("SELECT status, count(*) FROM orders GROUP BY status")
        assert find_nodes(plan.root, AggregateNode)

    def test_limit_node_on_top(self, db):
        plan = db.plan("SELECT * FROM orders LIMIT 3")
        assert isinstance(plan.root, LimitNode)

    def test_greedy_ordering_starts_with_filtered_side(self, db):
        # Join ordering should prefer the heavily-filtered orders side first;
        # we only check that the plan estimate stays near the truth.
        plan = db.plan(
            "SELECT * FROM users u JOIN orders o ON u.user_id = o.user_id "
            "WHERE o.amount > 600"
        )
        assert plan.est_rows < 100


class TestExplainOutput:
    def test_plan_text_structure(self, db):
        result = db.explain(
            "SELECT status, count(*) FROM orders GROUP BY status ORDER BY status"
        )
        text = result.plan_text
        assert "HashAggregate" in text
        assert "Seq Scan on orders" in text
        assert "cost=" in text and "rows=" in text

    def test_subplan_rendered(self, db):
        result = db.explain(
            "SELECT * FROM users WHERE user_id IN (SELECT user_id FROM orders)"
        )
        assert "SubPlan 1 (in)" in result.plan_text

    def test_cardinality_alias(self, db):
        result = db.explain("SELECT * FROM users")
        assert result.cardinality == result.estimated_rows

    def test_index_scan_named_in_text(self, db):
        result = db.explain("SELECT * FROM orders WHERE order_id = 5")
        assert "Index Scan using" in result.plan_text


class TestOuterJoinPlanning:
    def test_left_join_estimate_at_least_left(self, db):
        result = db.explain(
            "SELECT * FROM users u LEFT JOIN orders o ON u.user_id = o.user_id "
            "AND o.amount > 100000"
        )
        assert result.estimated_rows >= 200

    def test_outer_join_tree_not_reordered(self, db):
        plan = db.plan(
            "SELECT * FROM users u LEFT JOIN orders o ON u.user_id = o.user_id"
        )
        joins = find_nodes(plan.root, HashJoinNode)
        assert joins and joins[0].join_type == "left"
