"""AST -> SQL rendering: round-trips through the parser."""

import numpy as np
import pytest

from repro.llm import TemplateSynthesizer
from repro.sqldb import ast_nodes as ast
from repro.sqldb.parser import parse_select
from repro.sqldb.sql_render import render_expression, render_statement


def roundtrip(sql: str) -> str:
    """parse -> render -> parse -> render must be a fixed point."""
    once = render_statement(parse_select(sql))
    twice = render_statement(parse_select(once))
    assert once == twice, (sql, once, twice)
    return once


CASES = [
    "SELECT 1",
    "SELECT a, b AS x FROM t",
    "SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 5 OFFSET 2",
    "SELECT * FROM t WHERE a > 1 AND b < 2 OR c = 3",
    "SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c ON b.z = c.z",
    "SELECT * FROM a CROSS JOIN b",
    "SELECT count(*), sum(x), count(DISTINCT y) FROM t GROUP BY z HAVING count(*) > 2",
    "SELECT CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END FROM t",
    "SELECT CAST(a AS text) FROM t",
    "SELECT * FROM t WHERE a BETWEEN 1 AND 2",
    "SELECT * FROM t WHERE a NOT IN (1, 2, 3)",
    "SELECT * FROM t WHERE name LIKE 'x%' AND other NOT ILIKE '%y'",
    "SELECT * FROM t WHERE a IS NULL OR b IS NOT NULL",
    "SELECT * FROM t WHERE a IN (SELECT b FROM s WHERE c > 1)",
    "SELECT * FROM t WHERE EXISTS (SELECT 1 FROM s)",
    "SELECT * FROM t WHERE x = (SELECT max(y) FROM s)",
    "SELECT * FROM (SELECT a FROM t) AS sub WHERE sub.a > 0",
    "SELECT a + b * c - d / e FROM t",
    "SELECT (a + b) * c FROM t",
    "SELECT -a FROM t",
    "SELECT NOT a = 1 FROM t",
    "SELECT a || '-' || b FROM t",
    "SELECT EXTRACT(year FROM d) FROM t",
    "SELECT * FROM t WHERE a > {p_1} AND s = {p_2}",
    "SELECT upper(name), round(x, 2), coalesce(a, b, 0) FROM t",
]


@pytest.mark.parametrize("sql", CASES)
def test_roundtrip_fixed_point(sql):
    roundtrip(sql)


class TestStructuralEquivalence:
    def test_precedence_preserved(self):
        # (a + b) * c must keep its parentheses through the round trip.
        rendered = render_statement(parse_select("SELECT (a + b) * c FROM t"))
        stmt = parse_select(rendered)
        expr = stmt.select_items[0].expression
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_or_inside_and(self):
        rendered = render_statement(
            parse_select("SELECT 1 FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        )
        stmt = parse_select(rendered)
        assert stmt.where.op == "and"
        assert stmt.where.left.op == "or"

    def test_placeholders_preserved(self):
        rendered = render_statement(
            parse_select("SELECT 1 FROM t WHERE a > {p_1}")
        )
        assert "{p_1}" in rendered

    def test_string_escaping(self):
        rendered = render_statement(parse_select("SELECT 'it''s' FROM t"))
        assert "''" in rendered
        parse_select(rendered)

    def test_render_expression_standalone(self):
        expr = parse_select("SELECT 1 FROM t WHERE a > 1 AND b < 2").where
        text = render_expression(expr)
        assert text == "a > 1 AND b < 2"


class TestSynthesizedTemplatesRoundtrip:
    def test_random_templates_roundtrip(self, synth_schema=None):
        schema = {
            "tables": [
                {"name": "users", "rows": 100, "columns": [
                    {"name": "id", "type": "integer", "ndv": 100,
                     "min": 0, "max": 99},
                    {"name": "name", "type": "text", "ndv": 10}]},
                {"name": "orders", "rows": 500, "columns": [
                    {"name": "oid", "type": "integer", "ndv": 500,
                     "min": 0, "max": 499},
                    {"name": "uid", "type": "integer", "ndv": 100,
                     "min": 0, "max": 99},
                    {"name": "amt", "type": "double precision", "ndv": 400,
                     "min": 0.0, "max": 1e4}]},
            ],
            "join_edges": [{"table": "orders", "column": "uid",
                            "ref_table": "users", "ref_column": "id"}],
        }
        synth = TemplateSynthesizer(seed=123)
        rng = np.random.default_rng(0)
        for _ in range(25):
            spec = {
                "num_joins": int(rng.integers(0, 3)),
                "num_predicates": int(rng.integers(0, 4)),
                "require_group_by": bool(rng.random() < 0.4),
                "require_nested_subquery": bool(rng.random() < 0.3),
                "require_order_by": bool(rng.random() < 0.3),
                "require_limit": bool(rng.random() < 0.3),
            }
            if spec["require_group_by"]:
                spec["num_aggregations"] = int(rng.integers(1, 3))
            sql = synth.synthesize(schema, None, spec)
            roundtrip(sql)
