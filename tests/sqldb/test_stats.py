"""Statistics and selectivity estimation, including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqldb.stats import (
    ColumnStats,
    Histogram,
    analyze_column,
    join_selectivity,
    like_selectivity,
)
from repro.sqldb.storage import Column
from repro.sqldb.types import SqlType


def int_column(values):
    return Column.from_values("x", SqlType.INTEGER, values)


class TestAnalyzeColumn:
    def test_basic_fields(self):
        stats = analyze_column(int_column(list(range(100))))
        assert stats.row_count == 100
        assert stats.distinct_count == 100
        assert stats.null_fraction == 0.0
        assert stats.min_value == 0
        assert stats.max_value == 99
        assert stats.histogram is not None

    def test_null_fraction(self):
        stats = analyze_column(int_column([1, 2, None, None]))
        assert stats.null_fraction == pytest.approx(0.5)

    def test_all_null_column(self):
        stats = analyze_column(int_column([None, None]))
        assert stats.null_fraction == 1.0
        assert stats.distinct_count == 0.0

    def test_empty_column(self):
        stats = analyze_column(int_column([]))
        assert stats.row_count == 0

    def test_mcv_detection(self):
        # 7 is massively overrepresented
        values = [7] * 500 + list(range(100))  # 7 occurs 501 times in total
        stats = analyze_column(int_column(values))
        assert 7 in stats.mcv_values
        index = stats.mcv_values.index(7)
        assert stats.mcv_fractions[index] == pytest.approx(501 / 600)

    def test_uniform_column_has_no_mcvs(self):
        stats = analyze_column(int_column(list(range(1000))))
        assert stats.mcv_values == []

    def test_text_column(self):
        col = Column.from_values("s", SqlType.TEXT, ["b", "a", "c", "a"])
        stats = analyze_column(col)
        assert stats.min_value == "a"
        assert stats.max_value == "c"
        assert stats.distinct_count == 3
        assert stats.histogram is None


class TestEqSelectivity:
    def test_mcv_hit_is_exact(self):
        stats = analyze_column(int_column([7] * 90 + [1] * 10))
        assert stats.eq_selectivity(7) == pytest.approx(0.9)

    def test_non_mcv_uses_remaining_mass(self):
        stats = analyze_column(int_column(list(range(100))))
        assert stats.eq_selectivity(50) == pytest.approx(0.01, rel=0.5)

    def test_out_of_range_is_zero(self):
        stats = analyze_column(int_column(list(range(100))))
        assert stats.eq_selectivity(1000) == 0.0

    def test_null_value_is_zero(self):
        stats = analyze_column(int_column([1, 2, 3]))
        assert stats.eq_selectivity(None) == 0.0


class TestRangeSelectivity:
    @pytest.fixture()
    def stats(self):
        return analyze_column(int_column(list(range(1000))))

    def test_below_min(self, stats):
        assert stats.range_selectivity("<", -5) == pytest.approx(0.0, abs=0.01)

    def test_above_max(self, stats):
        assert stats.range_selectivity("<", 5000) == pytest.approx(1.0, abs=0.01)

    def test_median(self, stats):
        assert stats.range_selectivity("<", 500) == pytest.approx(0.5, abs=0.05)

    def test_complements_sum_to_one(self, stats):
        below = stats.range_selectivity("<=", 300)
        above = stats.range_selectivity(">", 300)
        assert below + above == pytest.approx(1.0, abs=0.02)

    def test_between(self, stats):
        sel = stats.between_selectivity(250, 750)
        assert sel == pytest.approx(0.5, abs=0.05)

    def test_between_inverted_bounds_zero(self, stats):
        assert stats.between_selectivity(750, 250) == pytest.approx(0.0, abs=0.01)

    @given(st.integers(min_value=-100, max_value=1100))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_value(self, value):
        stats = analyze_column(int_column(list(range(1000))))
        sel_a = stats.range_selectivity("<", value)
        sel_b = stats.range_selectivity("<", value + 10)
        assert sel_b >= sel_a - 1e-9

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=2, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_selectivity_always_in_unit_interval(self, values):
        stats = analyze_column(int_column(values))
        for op in ("<", "<=", ">", ">="):
            for probe in (min(values) - 1, values[0], max(values) + 1):
                sel = stats.range_selectivity(op, probe)
                assert 0.0 <= sel <= 1.0


class TestHistogram:
    def test_fraction_below_bounds(self):
        hist = Histogram(bounds=np.array([0.0, 10.0, 20.0]))
        assert hist.fraction_below(-1) == 0.0
        assert hist.fraction_below(100) == 1.0
        assert hist.fraction_below(10.0) == pytest.approx(0.5)

    def test_interpolation_within_bucket(self):
        hist = Histogram(bounds=np.array([0.0, 10.0]))
        assert hist.fraction_below(2.5) == pytest.approx(0.25)

    def test_empty_histogram(self):
        hist = Histogram(bounds=np.array([]))
        assert hist.fraction_below(1.0) == 0.5


class TestLikeSelectivity:
    def test_all_wildcard_is_one(self):
        assert like_selectivity("%") == 1.0

    def test_more_literals_more_selective(self):
        assert like_selectivity("%abcdef%") <= like_selectivity("%ab%")

    def test_bounds(self):
        for pattern in ("%", "a", "%x%", "a_b%c"):
            assert 0.0 < like_selectivity(pattern) <= 1.0

    def test_none_pattern(self):
        assert like_selectivity(None) == 0.0


class TestJoinSelectivity:
    def test_uses_larger_ndv(self):
        a = ColumnStats(0.0, 100.0, 0, 99)
        b = ColumnStats(0.0, 10.0, 0, 9)
        assert join_selectivity(a, b) == pytest.approx(1 / 100)

    def test_missing_stats(self):
        assert join_selectivity(None, None) == 1.0
