"""Type system and columnar storage behaviour."""

import datetime

import numpy as np
import pytest

from repro.sqldb.errors import CatalogError
from repro.sqldb.storage import Column, Table
from repro.sqldb.types import (
    SqlType,
    common_numeric_type,
    date_to_days,
    days_to_date,
    parse_type_name,
)


class TestSqlType:
    def test_numeric_flags(self):
        assert SqlType.INTEGER.is_numeric
        assert SqlType.DOUBLE.is_numeric
        assert not SqlType.TEXT.is_numeric

    def test_orderable(self):
        assert SqlType.DATE.is_orderable
        assert not SqlType.BOOLEAN.is_orderable

    def test_dtypes(self):
        assert SqlType.INTEGER.numpy_dtype == np.dtype(np.int64)
        assert SqlType.TEXT.numpy_dtype == np.dtype(object)

    def test_byte_widths_positive(self):
        for t in SqlType:
            assert t.byte_width > 0

    def test_parse_type_aliases(self):
        assert parse_type_name("varchar(25)") is SqlType.TEXT
        assert parse_type_name("INT") is SqlType.INTEGER
        assert parse_type_name("double precision") is SqlType.DOUBLE
        assert parse_type_name("decimal(12,2)") is SqlType.DOUBLE

    def test_parse_unknown_type(self):
        with pytest.raises(ValueError):
            parse_type_name("blob")

    def test_common_numeric(self):
        assert common_numeric_type(SqlType.INTEGER, SqlType.DOUBLE) is SqlType.DOUBLE
        assert common_numeric_type(SqlType.INTEGER, SqlType.BIGINT) is SqlType.BIGINT
        with pytest.raises(ValueError):
            common_numeric_type(SqlType.TEXT, SqlType.INTEGER)


class TestDates:
    def test_roundtrip(self):
        d = datetime.date(2024, 2, 29)
        assert days_to_date(date_to_days(d)) == d

    def test_epoch_is_zero(self):
        assert date_to_days(datetime.date(1970, 1, 1)) == 0

    def test_iso_string(self):
        assert date_to_days("1970-01-02") == 1


class TestColumn:
    def test_from_values_with_nulls(self):
        col = Column.from_values("x", SqlType.INTEGER, [1, None, 3])
        assert col.has_nulls
        assert col.null_mask.tolist() == [False, True, False]
        assert col.non_null_values().tolist() == [1, 3]

    def test_from_values_no_nulls_has_no_mask(self):
        col = Column.from_values("x", SqlType.INTEGER, [1, 2])
        assert col.null_mask is None

    def test_take_preserves_nulls(self):
        col = Column.from_values("x", SqlType.INTEGER, [1, None, 3])
        taken = col.take(np.array([1, 2]))
        assert taken.null_mask.tolist() == [True, False]

    def test_filter(self):
        col = Column.from_values("x", SqlType.INTEGER, [1, 2, 3])
        kept = col.filter(np.array([True, False, True]))
        assert kept.data.tolist() == [1, 3]

    def test_mask_length_mismatch(self):
        with pytest.raises(ValueError):
            Column("x", SqlType.INTEGER, np.array([1, 2]), np.array([True]))

    def test_text_column(self):
        col = Column.from_values("s", SqlType.TEXT, ["a", None, "c"])
        assert col.data.dtype == object
        assert list(col.non_null_values()) == ["a", "c"]


class TestTable:
    def make(self):
        return Table.from_dict(
            "t",
            {"a": [1, 2, 3], "b": ["x", "y", "z"]},
            {"a": SqlType.INTEGER, "b": SqlType.TEXT},
        )

    def test_row_count(self):
        assert self.make().row_count == 3

    def test_column_lookup(self):
        assert self.make().column("a").data.tolist() == [1, 2, 3]

    def test_missing_column(self):
        with pytest.raises(CatalogError):
            self.make().column("nope")

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            Table("bad", [
                Column.from_values("a", SqlType.INTEGER, [1]),
                Column.from_values("b", SqlType.INTEGER, [1, 2]),
            ])

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            Table("bad", [
                Column.from_values("a", SqlType.INTEGER, [1]),
                Column.from_values("a", SqlType.INTEGER, [2]),
            ])

    def test_rows_iteration(self):
        assert list(self.make().rows()) == [(1, "x"), (2, "y"), (3, "z")]

    def test_rows_null_becomes_none(self):
        table = Table.from_dict(
            "t", {"a": [1, None]}, {"a": SqlType.INTEGER}
        )
        assert list(table.rows()) == [(1,), (None,)]

    def test_head(self):
        assert self.make().head(2).row_count == 2

    def test_take(self):
        taken = self.make().take(np.array([2, 0]))
        assert list(taken.rows()) == [(3, "z"), (1, "x")]
