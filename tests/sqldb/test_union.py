"""UNION / UNION ALL end-to-end behaviour."""

import pytest

from repro.sqldb import BindError, Database, SqlType, Table
from repro.sqldb.parser import parse_select
from repro.sqldb.sql_render import render_statement


@pytest.fixture(scope="module")
def udb():
    db = Database("uniondb")
    db.create_table(
        Table.from_dict(
            "a",
            {"x": [1, 2, 3, 3], "s": ["p", "q", "r", "r"]},
            {"x": SqlType.INTEGER, "s": SqlType.TEXT},
        )
    )
    db.create_table(
        Table.from_dict(
            "b",
            {"y": [3, 4], "t": ["r", "s"]},
            {"y": SqlType.INTEGER, "t": SqlType.TEXT},
        )
    )
    return db


def rows(db, sql):
    return sorted(db.execute(sql).table.rows())


class TestExecution:
    def test_union_all_keeps_duplicates(self, udb):
        got = rows(udb, "SELECT x FROM a UNION ALL SELECT y FROM b")
        assert got == [(1,), (2,), (3,), (3,), (3,), (4,)]

    def test_union_deduplicates(self, udb):
        got = rows(udb, "SELECT x FROM a UNION SELECT y FROM b")
        assert got == [(1,), (2,), (3,), (4,)]

    def test_multi_column_union(self, udb):
        got = rows(udb, "SELECT x, s FROM a UNION SELECT y, t FROM b")
        assert got == [(1, "p"), (2, "q"), (3, "r"), (4, "s")]

    def test_union_with_filters_and_aggregates(self, udb):
        got = rows(
            udb,
            "SELECT count(*) FROM a WHERE x > 1 "
            "UNION ALL SELECT count(*) FROM b",
        )
        assert got == [(2,), (3,)]

    def test_mixed_numeric_types_widen(self, udb):
        got = rows(udb, "SELECT x FROM a UNION ALL SELECT y * 1.5 FROM b")
        assert (4.5 in {v[0] for v in got}) and (1.0 in {v[0] for v in got})

    def test_output_names_from_first_branch(self, udb):
        result = udb.execute("SELECT x AS value FROM a UNION ALL SELECT y FROM b")
        assert result.table.column_names == ["value"]


class TestBinding:
    def test_column_count_mismatch(self, udb):
        with pytest.raises(BindError, match="same number of columns"):
            udb.execute("SELECT x, s FROM a UNION SELECT y FROM b")

    def test_type_mismatch(self, udb):
        with pytest.raises(BindError, match="mismatched types"):
            udb.execute("SELECT x FROM a UNION SELECT t FROM b")


class TestPlanning:
    def test_explain_shows_append(self, udb):
        plan_text = udb.explain(
            "SELECT x FROM a UNION ALL SELECT y FROM b"
        ).plan_text
        assert "Append" in plan_text
        assert plan_text.count("Seq Scan") == 2

    def test_union_all_estimate_is_sum(self, udb):
        estimate = udb.explain(
            "SELECT x FROM a UNION ALL SELECT y FROM b"
        ).estimated_rows
        assert estimate == pytest.approx(6, rel=0.01)

    def test_union_estimate_below_sum(self, udb):
        dedup = udb.explain("SELECT x FROM a UNION SELECT y FROM b")
        keep = udb.explain("SELECT x FROM a UNION ALL SELECT y FROM b")
        assert dedup.estimated_rows < keep.estimated_rows
        assert dedup.total_cost > keep.total_cost


class TestRendering:
    def test_roundtrip(self):
        sql = "SELECT x FROM a UNION ALL SELECT y FROM b UNION SELECT z FROM c"
        once = render_statement(parse_select(sql))
        assert render_statement(parse_select(once)) == once
        assert "UNION ALL" in once and " UNION SELECT" in once


class TestTemplatesWithUnion:
    def test_placeholders_across_branches(self, udb):
        from repro.workload import SqlTemplate, infer_placeholder_bindings

        template = SqlTemplate(
            "t_union",
            "SELECT x FROM a WHERE x > {p_1} UNION ALL "
            "SELECT y FROM b WHERE y < {p_2}",
        )
        infos = infer_placeholder_bindings(template.parse(), udb.catalog)
        assert [i.name for i in infos] == ["p_1", "p_2"]
        assert infos[0].table == "a" and infos[1].table == "b"
        sql = template.instantiate({"p_1": 1, "p_2": 4})
        assert udb.execute(sql).row_count == 4
