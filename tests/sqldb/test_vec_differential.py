"""Row-vs-vectorized differential battery (the vec tentpole's proof).

Every statement in the fuzz regression corpus plus a >=500-statement
grammar sweep runs through both executors; any semantic divergence fails.
The comparison is strict: identical rows *in order*, identical column
names, SQL types and numpy dtypes, identical NULL masks (``Table.rows``
yields ``None`` for NULL), and identical telemetry-visible rowcounts
(per-operator ``rows_out`` from the operator profiler).

Batch-size sensitivity is covered by a sweep over tiny batch sizes: row
sets must stay identical at any batch size.  Error parity is strict
(type and message) in single-batch mode; a multi-batch run may surface a
different batch's error first, so the sweep compares errors by type only.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.fuzz import SELECT_SHAPES, FuzzGrammar, build_fuzz_database
from repro.sqldb.errors import SqlError
from repro.sqldb.plan_nodes import HashJoinNode
from repro.sqldb.vec import supports as vec_supports

CORPUS_DIR = Path(__file__).resolve().parent.parent / "fuzz" / "corpus"
GRAMMAR_SWEEP = 500
SMALL_BATCH_SIZES = (1, 3, 7)
SMALL_BATCH_STATEMENTS = 60


@pytest.fixture(scope="module")
def db():
    return build_fuzz_database(0)


@pytest.fixture(scope="module")
def sweep(db):
    # Read-only shapes: this battery compares the two *read* executors, and
    # a DML statement would mutate the shared fixture database mid-sweep.
    # The write path has its own differential net (test_dml_differential).
    return FuzzGrammar(db.catalog, seed=23).statements(
        GRAMMAR_SWEEP, shapes=SELECT_SHAPES
    )


def corpus_sqls() -> list[str]:
    sqls = []
    for path in sorted(CORPUS_DIR.glob("*.json")):
        entry = json.loads(path.read_text())
        sqls.append(entry["sql"])
        if entry.get("tightened_sql"):
            sqls.append(entry["tightened_sql"])
    return sqls


def run_one(db, sql, vectorized, batch_size=1024):
    """Execute *sql* under one executor; outcome is comparable data."""
    db.set_vectorized(vectorized, batch_size=batch_size)
    try:
        table = db.execute(sql).table
    except SqlError as exc:
        return ("error", type(exc).__name__, str(exc))
    finally:
        db.set_vectorized(True, batch_size=1024)
    return ("ok", fingerprint(table))


def fingerprint(table):
    """Everything the battery pins: names, types, dtypes, ordered rows.

    Floats go through ``repr`` so the comparison is bit-level (NaN equals
    NaN, ``-0.0`` differs from ``0.0``) instead of IEEE ``==``.
    """
    return (
        tuple(table.column_names),
        tuple(c.sql_type for c in table.columns),
        tuple(str(c.data.dtype) for c in table.columns),
        tuple(
            tuple(repr(v) if isinstance(v, float) else v for v in row)
            for row in table.rows()
        ),
    )


def assert_equivalent(db, sql, batch_size=1024, strict_errors=True):
    row = run_one(db, sql, vectorized=False)
    vec = run_one(db, sql, vectorized=True, batch_size=batch_size)
    if row[0] == "error" or vec[0] == "error":
        assert row[0] == vec[0] == "error", (sql, row[0], vec[0])
        if strict_errors:
            assert row[1:] == vec[1:], sql
        else:
            assert row[1] == vec[1], sql  # same error type, any batch
        return
    assert row == vec, sql


class TestCorpusReplay:
    def test_corpus_has_entries(self):
        assert corpus_sqls(), "fuzz regression corpus is empty"

    @pytest.mark.parametrize(
        "sql", corpus_sqls(), ids=[f"corpus_{i}" for i in range(len(corpus_sqls()))]
    )
    def test_corpus_statement_row_vs_vec(self, db, sql):
        assert_equivalent(db, sql)


class TestGrammarSweep:
    def test_sweep_size(self, sweep):
        assert len(sweep) >= 500

    def test_sweep_row_vs_vec(self, db, sweep):
        divergences = []
        for gen in sweep:
            try:
                assert_equivalent(db, gen.sql)
            except AssertionError:
                divergences.append(gen.sql)
        assert not divergences, (
            f"{len(divergences)} divergences, first: {divergences[0]!r}"
        )

    def test_sweep_actually_exercises_the_vec_path(self, db, sweep):
        # The gate matters only if a healthy share of generated plans is
        # actually eligible for the vectorized executor.
        eligible = sum(1 for gen in sweep if vec_supports(db.plan(gen.sql)))
        assert eligible >= len(sweep) // 4, f"only {eligible} eligible plans"

    def test_sweep_covers_joins_and_aggregates(self, db, sweep):
        def has_join(node):
            if isinstance(node, HashJoinNode):
                return True
            return any(has_join(c) for c in node.children())

        joined = sum(
            1
            for gen in sweep[:120]
            if vec_supports(plan := db.plan(gen.sql)) and has_join(plan.root)
        )
        assert joined > 0, "no vectorizable join in the sweep prefix"


class TestBatchSizeSweep:
    @pytest.mark.parametrize("batch_size", SMALL_BATCH_SIZES)
    def test_tiny_batches_preserve_results(self, db, sweep, batch_size):
        for gen in sweep[:SMALL_BATCH_STATEMENTS]:
            assert_equivalent(
                db, gen.sql, batch_size=batch_size, strict_errors=False
            )

    def test_batch_size_one_on_corpus(self, db):
        for sql in corpus_sqls():
            assert_equivalent(db, sql, batch_size=1, strict_errors=False)


class TestTelemetryRowcounts:
    """Per-operator rows_out (the telemetry-visible rowcounts) match."""

    CASES = [
        "SELECT t0.user_id, t0.age FROM users AS t0 WHERE t0.age > 40",
        "SELECT t0.city, count(*) AS n FROM users AS t0 GROUP BY t0.city",
        "SELECT t0.name, t1.amount FROM users AS t0 "
        "JOIN orders AS t1 ON t0.user_id = t1.user_id "
        "WHERE t1.amount > 100.0 ORDER BY t1.amount DESC LIMIT 25",
        "SELECT DISTINCT t0.status FROM orders AS t0",
    ]

    def rows_tree(self, profile):
        return (
            profile.node_type,
            profile.rows_out,
            tuple(self.rows_tree(c) for c in profile.children),
        )

    @pytest.mark.parametrize("sql", CASES)
    def test_profiled_rowcounts_match(self, db, sql):
        db.set_vectorized(False)
        try:
            _, row_profile = db.execute_profiled(sql)
        finally:
            db.set_vectorized(True, batch_size=1024)
        _, vec_profile = db.execute_profiled(sql)
        assert self.rows_tree(vec_profile) == self.rows_tree(row_profile), sql

    def test_vec_records_multiple_batches(self, db, sql=CASES[0]):
        db.set_vectorized(True, batch_size=16)
        try:
            _, profile = db.execute_profiled(sql)
        finally:
            db.set_vectorized(True, batch_size=1024)

        def max_batches(p):
            return max([p.batches] + [max_batches(c) for c in p.children])

        # users has 120 rows: a 16-row batch size must show > 1 batch on
        # at least one operator, proving the profiler counts real batches.
        assert max_batches(profile) > 1
