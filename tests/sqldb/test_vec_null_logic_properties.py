"""Kleene 3VL laws for the *vectorized* expression evaluator.

Mirror of ``test_null_logic_properties.py``: the same machine-checkable
laws (partition, double negation, De Morgan, predicate-tightening
monotonicity), but asserted against the vectorized executor and — where
the law is about the evaluator itself — directly against the batch 3VL
kernels (:func:`logical_and` / :func:`logical_or` / :func:`negate_bool` /
:func:`truthy`).  Both evaluators must satisfy the same laws; the
differential battery then pins them equal statement-by-statement.
"""

from __future__ import annotations

import random

import pytest

from repro.fuzz import FuzzGrammar
from repro.sqldb.sql_render import render_expression
from repro.sqldb.types import SqlType
from repro.sqldb.vec import (
    VecColumn,
    logical_and,
    logical_or,
    negate_bool,
    truthy,
)
from repro.sqldb.vec.batch import KIND_BOOL

N_USERS = 200  # conftest demo db; city is NULL every 17th row

# Three-valued operand encoding for the kernel-level truth tables:
# (value, is_null) — TRUE, FALSE, UNKNOWN.
T, F, U = (True, False), (False, False), (False, True)


def tv(cell: tuple) -> str:
    value, null = cell
    return "U" if null else ("T" if value else "F")


def bool_column(cells: list[tuple]) -> VecColumn:
    mask = [null for _, null in cells]
    return VecColumn(
        [value for value, _ in cells],
        mask if any(mask) else None,
        SqlType.BOOLEAN,
        KIND_BOOL,
    )


def read_back(column: VecColumn) -> list[str]:
    mask = column.mask if column.mask is not None else [False] * len(column)
    return [tv((bool(v), bool(m))) for v, m in zip(column.values, mask)]


class TestKernelTruthTables:
    """The batch kernels implement exactly Kleene's strong 3VL tables."""

    OPERANDS = [T, F, U]

    def test_and_table(self):
        expected = {
            ("T", "T"): "T", ("T", "F"): "F", ("T", "U"): "U",
            ("F", "T"): "F", ("F", "F"): "F", ("F", "U"): "F",
            ("U", "T"): "U", ("U", "F"): "F", ("U", "U"): "U",
        }
        cells = [(a, b) for a in self.OPERANDS for b in self.OPERANDS]
        got = read_back(
            logical_and(
                bool_column([a for a, _ in cells]),
                bool_column([b for _, b in cells]),
            )
        )
        assert got == [expected[(tv(a), tv(b))] for a, b in cells]

    def test_or_table(self):
        expected = {
            ("T", "T"): "T", ("T", "F"): "T", ("T", "U"): "T",
            ("F", "T"): "T", ("F", "F"): "F", ("F", "U"): "U",
            ("U", "T"): "T", ("U", "F"): "U", ("U", "U"): "U",
        }
        cells = [(a, b) for a in self.OPERANDS for b in self.OPERANDS]
        got = read_back(
            logical_or(
                bool_column([a for a, _ in cells]),
                bool_column([b for _, b in cells]),
            )
        )
        assert got == [expected[(tv(a), tv(b))] for a, b in cells]

    def test_not_table(self):
        got = read_back(negate_bool(bool_column([T, F, U])))
        assert got == ["F", "T", "U"]

    def test_truthy_drops_false_and_unknown(self):
        assert truthy(bool_column([T, F, U, T])) == [True, False, False, True]

    def test_de_morgan_at_the_kernel_level(self):
        cells = [(a, b) for a in self.OPERANDS for b in self.OPERANDS]
        a = bool_column([x for x, _ in cells])
        b = bool_column([y for _, y in cells])
        lhs = negate_bool(logical_and(a, b))
        rhs = logical_or(negate_bool(a), negate_bool(b))
        assert read_back(lhs) == read_back(rhs)
        lhs = negate_bool(logical_or(a, b))
        rhs = logical_and(negate_bool(a), negate_bool(b))
        assert read_back(lhs) == read_back(rhs)

    def test_masks_collapse_to_none_when_no_unknowns(self):
        # Mask-presence parity with the row evaluator: an all-valid result
        # must drop its mask entirely (the differential battery compares
        # null masks through Table.rows).
        out = logical_and(bool_column([T, F]), bool_column([F, T]))
        assert out.mask is None


def _count(db, predicate_sql: str, vectorized: bool) -> int:
    sql = f"SELECT count(*) AS n FROM users AS t0 WHERE {predicate_sql}"
    db.set_vectorized(vectorized)
    try:
        table = db.execute(sql).table
    finally:
        db.set_vectorized(True)
    return int(table.columns[0].data[0])


def _predicates(db, count: int = 20) -> list[str]:
    grammar = FuzzGrammar(db.catalog, seed=31)
    scope = grammar.columns_of("users", "t0")
    out = []
    for i in range(count):
        rng = random.Random(f"vec3vl:{i}")
        expr = grammar.predicate(scope, rng, allow_subqueries=False)
        out.append(render_expression(expr))
    return out


class TestVectorizedStatementLaws:
    """The SQL-level laws, executed through the vectorized path."""

    def test_partition_law(self, db):
        for pred in _predicates(db):
            true_n = _count(db, f"({pred})", vectorized=True)
            false_n = _count(db, f"NOT ({pred})", vectorized=True)
            unknown_n = _count(db, f"({pred}) IS NULL", vectorized=True)
            assert true_n + false_n + unknown_n == N_USERS, pred

    def test_double_negation(self, db):
        for pred in _predicates(db, count=12):
            assert _count(db, f"({pred})", True) == _count(
                db, f"NOT (NOT ({pred}))", True
            ), pred

    def test_de_morgan(self, db):
        preds = _predicates(db, count=12)
        for p, q in zip(preds[::2], preds[1::2]):
            assert _count(db, f"NOT (({p}) AND ({q}))", True) == _count(
                db, f"(NOT ({p})) OR (NOT ({q}))", True
            ), (p, q)

    def test_predicate_tightening_is_monotone(self, db):
        # ANDing any conjunct can only shrink the row set — the law the
        # profiling loop's cost model leans on.
        for p, q in zip(_predicates(db, 8), _predicates(db, 16)[8:]):
            assert _count(db, f"({p}) AND ({q})", True) <= _count(
                db, f"({p})", True
            ), (p, q)

    def test_row_and_vec_agree_on_every_law_input(self, db):
        for pred in _predicates(db):
            for spelled in (f"({pred})", f"NOT ({pred})", f"({pred}) IS NULL"):
                assert _count(db, spelled, True) == _count(
                    db, spelled, False
                ), spelled

    @pytest.mark.parametrize(
        "expr, expected",
        [
            ("(t0.city = NULL) AND (t0.user_id >= 0)", 0),
            ("(t0.city = NULL) OR (t0.user_id >= 0)", N_USERS),
            ("NOT (t0.city = NULL)", 0),
            ("((t0.city = NULL)) IS NULL", N_USERS),
        ],
    )
    def test_pinned_truth_table_rows(self, db, expr, expected):
        assert _count(db, expr, vectorized=True) == expected, expr
