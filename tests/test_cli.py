"""The command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.db == "tpch"
        assert args.queries == 100
        assert args.shape == "uniform"

    def test_unknown_db_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schema", "--db", "oracle"])


class TestCommands:
    def test_benchmarks_lists_table1(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "Redset_Cost_Hard" in out
        assert "Snowset_Card_1_Medium" in out

    def test_schema(self, capsys):
        assert main(["schema", "--db", "tpch", "--scale", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "lineitem" in out
        assert "Foreign keys" in out

    def test_generate_writes_jsonl(self, capsys, tmp_path):
        output = tmp_path / "w.jsonl"
        code = main([
            "generate", "--db", "tpch", "--scale", "0.002",
            "--queries", "12", "--intervals", "3", "--cost-max", "800",
            "--spec", "one join and two predicate values",
            "--time-budget", "60", "-o", str(output),
        ])
        assert code == 0
        lines = output.read_text().splitlines()
        assert len(lines) == 12
        record = json.loads(lines[0])
        assert "sql" in record and "cost" in record
        # Stdout is machine-clean: exactly one JSON summary object.
        summary = json.loads(capsys.readouterr().out)
        assert summary["wasserstein_distance"] == 0.0
        assert summary["generated"] == 12
        assert set(summary["stage_seconds"]) == {
            "templates", "profile", "refine", "search"
        }

    def test_generate_diagnostics_go_to_stderr(self, capsys):
        code = main([
            "generate", "--db", "tpch", "--scale", "0.002",
            "--queries", "8", "--intervals", "2", "--cost-max", "600",
            "--spec", "one join and two predicate values",
            "--time-budget", "60",
        ])
        assert code == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout parses as pure JSON
        assert "target distribution" in captured.err
        assert "Wasserstein distance" in captured.err

    def test_generate_trace_out(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        code = main([
            "generate", "--db", "tpch", "--scale", "0.002",
            "--queries", "8", "--intervals", "2", "--cost-max", "600",
            "--spec", "one join and two predicate values",
            "--time-budget", "60", "--trace-out", str(trace),
        ])
        assert code == 0
        events = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        names = {e.get("name") for e in events if e["type"] == "span"}
        assert "generate_workload" in names
        assert {"stage:templates", "stage:search"} <= names
        assert events[-1]["type"] == "metrics"

    def test_generate_with_specs_file(self, capsys, tmp_path):
        specs_file = tmp_path / "specs.json"
        specs_file.write_text(json.dumps([
            {"num_joins": 1, "num_aggregations": 1, "group_by": True},
        ]))
        code = main([
            "generate", "--db", "tpch", "--scale", "0.002",
            "--queries", "8", "--intervals", "2", "--cost-max", "600",
            "--specs-file", str(specs_file), "--time-budget", "60",
        ])
        assert code == 0

    def test_generate_fleet_shape(self, capsys):
        code = main([
            "generate", "--db", "tpch", "--scale", "0.002",
            "--queries", "10", "--intervals", "2", "--cost-max", "800",
            "--shape", "redset_cost", "--time-budget", "60",
        ])
        assert code == 0

    def test_run_benchmark_json_output(self, capsys):
        code = main([
            "run-benchmark", "--name", "uniform", "--db", "tpch",
            "--method", "sqlbarber", "--queries", "15",
            "--time-budget", "60",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "sqlbarber"
        assert payload["complete"] is True

    def test_run_benchmark_unknown_name(self):
        with pytest.raises(KeyError):
            main(["run-benchmark", "--name", "nope"])


class TestFuzz:
    def test_fuzz_reports_json_and_exits_zero(self, capsys):
        assert main(["fuzz", "--seed", "7", "--budget", "25"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["statements"] == 25
        assert payload["disagreements"] == []
        assert set(payload["oracles"]) >= {"round_trip", "explain_cache"}

    def test_fuzz_report_is_reproducible(self, capsys):
        assert main(["fuzz", "--seed", "11", "--budget", "15"]) == 0
        first = capsys.readouterr().out
        assert main(["fuzz", "--seed", "11", "--budget", "15"]) == 0
        assert capsys.readouterr().out == first

    def test_fuzz_writes_corpus_dir(self, capsys, tmp_path):
        corpus_dir = tmp_path / "corpus"
        code = main([
            "fuzz", "--seed", "7", "--budget", "5",
            "--corpus", str(corpus_dir), "--no-shrink",
        ])
        assert code == 0
        # Clean run: no entries written, directory untouched or empty.
        assert not list(corpus_dir.glob("*.json")) if corpus_dir.exists() else True


class TestObservabilityCli:
    GENERATE_BASE = [
        "generate", "--db", "tpch", "--scale", "0.002",
        "--queries", "8", "--intervals", "2", "--cost-max", "600",
        "--spec", "one join and two predicate values",
        "--time-budget", "60",
    ]

    def test_generate_profile_adds_operator_summary(self, capsys):
        code = main([
            *self.GENERATE_BASE, "--cost-type", "actual_rows", "--profile",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert "operator_profiles" in summary
        operators = summary["operator_profiles"]
        assert operators  # actual_rows executes, so plans were profiled
        for agg in operators.values():
            assert {"calls", "rows", "p95"} <= set(agg)

    def test_generate_without_profile_has_no_operator_summary(self, capsys):
        assert main(list(self.GENERATE_BASE)) == 0
        summary = json.loads(capsys.readouterr().out)
        assert "operator_profiles" not in summary

    def test_generate_progress_renders_stages_to_stderr(self, capsys):
        code = main([*self.GENERATE_BASE, "--progress"])
        assert code == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout stays machine-clean
        assert "[templates] started" in captured.err
        assert "[search] finished" in captured.err
        assert "profiled" in captured.err

    def test_profile_events_in_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        code = main([
            *self.GENERATE_BASE, "--cost-type", "actual_rows",
            "--profile", "--trace-out", str(trace),
        ])
        assert code == 0
        events = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        types = [e["type"] for e in events]
        assert "event" in types and "profile" in types
        profile = next(e for e in events if e["type"] == "profile")
        assert profile["profile"]["queries"] > 0

    def test_perf_report_renders_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main([
            *self.GENERATE_BASE, "--cost-type", "actual_rows",
            "--profile", "--trace-out", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["perf-report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Stage timings" in out
        assert "Operator profile" in out
        assert "p95" in out

    def test_perf_report_missing_file_errors(self, capsys):
        assert main(["perf-report", "/nonexistent/trace.jsonl"]) == 1
        assert "error" in capsys.readouterr().err.lower()

    def test_fuzz_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "fuzz.jsonl"
        code = main([
            "fuzz", "--seed", "7", "--budget", "30",
            "--trace-out", str(trace),
        ])
        assert code == 0
        events = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert any(e["type"] == "metrics" for e in events)

    def test_chaos_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "chaos.jsonl"
        code = main([
            "chaos", "--seed", "7", "--runs", "2", "--intensity", "0.3",
            "--trace-out", str(trace),
        ])
        assert code == 0
        events = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert events, "chaos trace empty"
        names = [e.get("event") for e in events if e["type"] == "event"]
        assert "stage_started" in names
