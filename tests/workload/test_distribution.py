"""Cost distributions, trackers, and the Wasserstein metric."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import CostDistribution, DistributionTracker, GeneratedQuery, Workload


class TestConstruction:
    def test_uniform_counts(self):
        dist = CostDistribution.uniform(0, 100, 103, 10)
        assert dist.total_queries == 103
        assert max(dist.target_counts) - min(dist.target_counts) <= 1

    def test_normal_is_peaked_in_middle(self):
        dist = CostDistribution.normal(0, 100, 1000, 10)
        counts = dist.target_counts
        assert counts[4] + counts[5] > counts[0] + counts[9]
        assert dist.total_queries == 1000

    def test_from_weights_exact_total(self):
        dist = CostDistribution.from_weights(0, 10, [1, 2, 3], 100)
        assert dist.total_queries == 100

    def test_from_samples(self):
        samples = np.concatenate([np.full(90, 5.0), np.full(10, 95.0)])
        dist = CostDistribution.from_samples(samples, 0, 100, 200, 10)
        assert dist.target_counts[0] == 180
        assert dist.target_counts[9] == 20

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            CostDistribution(10, 10, (1,))

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            CostDistribution(0, 10, (1, -1))

    def test_scaled_to_preserves_shape(self):
        dist = CostDistribution.normal(0, 100, 1000, 10)
        scaled = dist.scaled_to(100)
        assert scaled.total_queries == 100
        assert np.argmax(scaled.target_counts) in (4, 5)

    def test_with_intervals_rebins(self):
        dist = CostDistribution.uniform(0, 100, 1000, 10)
        rebinned = dist.with_intervals(20)
        assert rebinned.num_intervals == 20
        assert rebinned.total_queries == 1000


class TestGeometry:
    dist = CostDistribution.uniform(0, 100, 100, 10)

    def test_interval_of_interior(self):
        assert self.dist.interval_of(25) == 2

    def test_interval_of_boundary_goes_right(self):
        assert self.dist.interval_of(10) == 1

    def test_upper_bound_in_last_interval(self):
        assert self.dist.interval_of(100) == 9

    def test_out_of_range(self):
        assert self.dist.interval_of(-1) is None
        assert self.dist.interval_of(101) is None

    def test_interval_bounds(self):
        assert self.dist.interval_bounds(0) == (0.0, 10.0)
        assert self.dist.interval_bounds(9) == (90.0, 100.0)

    def test_midpoints(self):
        assert self.dist.midpoints[0] == pytest.approx(5.0)


class TestCoverageAndDistance:
    dist = CostDistribution.uniform(0, 100, 100, 10)

    def perfect_costs(self):
        costs = []
        for i, count in enumerate(self.dist.target_counts):
            low, high = self.dist.interval_bounds(i)
            costs.extend(np.linspace(low, high - 0.01, count))
        return costs

    def test_coverage_counts(self):
        coverage = self.dist.coverage([5, 15, 15, 95])
        assert coverage[0] == 1 and coverage[1] == 2 and coverage[9] == 1

    def test_out_of_range_dropped(self):
        assert self.dist.coverage([-5, 105]).sum() == 0

    def test_exact_match_distance_zero(self):
        assert self.dist.wasserstein(self.perfect_costs()) == pytest.approx(0.0)

    def test_empty_costs_max_distance(self):
        assert self.dist.wasserstein([]) > 0

    def test_distance_decreases_as_target_fills(self):
        costs = self.perfect_costs()
        partial = self.dist.wasserstein(costs[: len(costs) // 2])
        full = self.dist.wasserstein(costs)
        assert full < partial or full == pytest.approx(0.0)

    def test_count_distance_zero_iff_exact(self):
        assert self.dist.count_distance(self.perfect_costs()) == 0
        assert self.dist.count_distance([]) == 100

    def test_deficits(self):
        deficits = self.dist.deficits([5.0] * 10)
        assert deficits[0] == 0
        assert deficits[1] == 10

    def test_is_satisfied_by(self):
        assert self.dist.is_satisfied_by(self.perfect_costs())
        assert not self.dist.is_satisfied_by([])

    @given(st.lists(st.floats(min_value=0, max_value=100), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_wasserstein_nonnegative_and_bounded(self, costs):
        dist = CostDistribution.uniform(0, 100, 50, 10)
        value = dist.wasserstein(costs)
        assert 0.0 <= value <= 100.0


class TestTracker:
    def test_add_reports_interval(self):
        tracker = DistributionTracker(CostDistribution.uniform(0, 10, 10, 2))
        assert tracker.add(2.0) == 0
        assert tracker.add(7.0) == 1
        assert tracker.add(99.0) is None

    def test_complete_flag(self):
        dist = CostDistribution(0, 10, (1, 1))
        tracker = DistributionTracker(dist)
        assert not tracker.complete
        tracker.add_many([2.0, 7.0])
        assert tracker.complete

    def test_wasserstein_delegates(self):
        dist = CostDistribution(0, 10, (1, 1))
        tracker = DistributionTracker(dist)
        tracker.add_many([2.0, 7.0])
        assert tracker.wasserstein == pytest.approx(0.0)


class TestWorkloadContainer:
    def test_jsonl_roundtrip(self):
        workload = Workload(name="w")
        workload.add(
            GeneratedQuery(
                sql="SELECT 1",
                cost=12.5,
                template_id="t1",
                predicate_values={"p_1": 3},
            )
        )
        workload.add(GeneratedQuery(sql="SELECT 2", cost=99.0))
        restored = Workload.from_jsonl(workload.to_jsonl())
        assert len(restored) == 2
        assert restored.queries[0].predicate_values == {"p_1": 3}
        assert restored.costs == [12.5, 99.0]

    def test_template_ids(self):
        workload = Workload()
        workload.extend(
            [
                GeneratedQuery("SELECT 1", 1.0, template_id="a"),
                GeneratedQuery("SELECT 2", 2.0, template_id="a"),
                GeneratedQuery("SELECT 3", 3.0),
            ]
        )
        assert workload.template_ids == {"a"}
