"""The workload mixer: parsing, determinism, side-effect freedom.

The ``--workload-mix`` contract: the keep-or-replace decision and the
replacement DML at position *i* are a pure function of ``(seed, i)`` and
the schema.  Mixing therefore commutes with everything — prefix-stable,
byte-identical across runs, invariant to how the SELECTs were produced —
and costs its DML through EXPLAIN only, so it can never mutate the
database it mixes against.
"""

import pytest

from repro.core import BarberConfig
from repro.fuzz import build_fuzz_database
from repro.sqldb import parse_sql
from repro.sqldb import ast_nodes as ast
from repro.workload import (
    STATEMENT_KINDS,
    GeneratedQuery,
    Workload,
    WorkloadMixer,
    parse_mix,
    validate_mix,
)

MIX = (0.5, 0.2, 0.2, 0.1)


def select_workload(n=60):
    return Workload(
        queries=[
            GeneratedQuery(
                sql=f"SELECT t0.user_id FROM users AS t0 WHERE t0.age > {20 + i}",
                cost=float(i),
                template_id=f"sel_{i}",
                cost_type="estimated_rows",
            )
            for i in range(n)
        ],
        name="reads",
    )


class TestParseMix:
    def test_parses_the_documented_example(self):
        assert parse_mix("0.5,0.2,0.2,0.1") == MIX

    def test_whitespace_tolerated(self):
        assert parse_mix(" 0.5 , 0.2 ,0.2, 0.1 ") == MIX

    @pytest.mark.parametrize(
        "text, match",
        [
            ("0.5,0.5", "four comma-separated"),
            ("0.5,0.2,0.2,0.1,0.0", "four comma-separated"),
            ("a,b,c,d", "non-numeric"),
            ("0.5,0.2,0.2,0.2", "sum to 1"),
            ("1.2,-0.2,0.0,0.0", "non-negative"),
        ],
    )
    def test_malformed_input_rejected(self, text, match):
        with pytest.raises(ValueError, match=match):
            parse_mix(text)

    def test_validate_accepts_lists_and_tuples(self):
        assert validate_mix([1.0, 0.0, 0.0, 0.0]) == (1.0, 0.0, 0.0, 0.0)

    def test_config_validates_the_mix(self):
        with pytest.raises(ValueError, match="workload_mix"):
            BarberConfig(workload_mix=(0.9, 0.9, 0.0, 0.0))
        assert BarberConfig(workload_mix=MIX).workload_mix == MIX


class TestMixing:
    @pytest.fixture(scope="class")
    def db(self):
        return build_fuzz_database(0)

    def test_mix_is_deterministic(self, db):
        a = WorkloadMixer(db, seed=7).mix(select_workload(), MIX)
        b = WorkloadMixer(db, seed=7).mix(select_workload(), MIX)
        assert [q.to_json() for q in a.queries] == [
            q.to_json() for q in b.queries
        ]

    def test_different_seeds_differ(self, db):
        a = WorkloadMixer(db, seed=1).mix(select_workload(), MIX)
        b = WorkloadMixer(db, seed=2).mix(select_workload(), MIX)
        assert [q.sql for q in a.queries] != [q.sql for q in b.queries]

    def test_mix_is_prefix_stable(self, db):
        short = WorkloadMixer(db, seed=7).mix(select_workload(20), MIX)
        long = WorkloadMixer(db, seed=7).mix(select_workload(60), MIX)
        assert [q.to_json() for q in short.queries] == [
            q.to_json() for q in long.queries[:20]
        ]

    def test_kept_selects_are_shared_untouched(self, db):
        source = select_workload()
        mixed = WorkloadMixer(db, seed=7).mix(source, MIX)
        assert len(mixed.queries) == len(source.queries)
        kept = [
            (i, q)
            for i, q in enumerate(mixed.queries)
            if not (q.template_id or "").startswith("mix_")
        ]
        assert kept
        for i, query in kept:
            assert query is source.queries[i]  # same frozen object

    def test_replacements_are_valid_dml_with_position_ids(self, db):
        mixed = WorkloadMixer(db, seed=7).mix(select_workload(), MIX)
        swapped = [
            (i, q)
            for i, q in enumerate(mixed.queries)
            if (q.template_id or "").startswith("mix_")
        ]
        assert swapped
        for i, query in swapped:
            kind = query.template_id.split("_")[1]
            assert kind in STATEMENT_KINDS[1:]
            assert query.template_id == f"mix_{kind}_{i}"
            assert ast.is_dml(parse_sql(query.sql))
            ok, error = db.validate(query.sql)
            assert ok, f"{error}\n{query.sql}"
            assert query.cost_type == "estimated_rows"

    def test_fractions_are_respected_at_scale(self, db):
        n = 600
        mixed = WorkloadMixer(db, seed=7).mix(select_workload(n), MIX)
        counts = {kind: 0 for kind in STATEMENT_KINDS}
        for query in mixed.queries:
            if (query.template_id or "").startswith("mix_"):
                counts[query.template_id.split("_")[1]] += 1
            else:
                counts["select"] += 1
        for kind, fraction in zip(STATEMENT_KINDS, MIX):
            assert counts[kind] == pytest.approx(n * fraction, rel=0.35), counts

    def test_all_select_mix_is_identity(self, db):
        source = select_workload()
        mixed = WorkloadMixer(db, seed=7).mix(source, (1.0, 0.0, 0.0, 0.0))
        assert mixed.queries == source.queries

    def test_mixing_never_mutates_the_database(self, db):
        epoch = db.catalog.statistics_epoch
        counters = {
            t: db.catalog.mutation_count(t) for t in db.catalog.table_names
        }
        rows = {
            t: db.catalog.table(t).row_count for t in db.catalog.table_names
        }
        WorkloadMixer(db, seed=7).mix(select_workload(200), (0.0, 0.4, 0.3, 0.3))
        assert db.catalog.statistics_epoch == epoch
        for table in db.catalog.table_names:
            assert db.catalog.mutation_count(table) == counters[table]
            assert db.catalog.table(table).row_count == rows[table]

    def test_input_workload_is_not_modified(self, db):
        source = select_workload()
        before = [q.to_json() for q in source.queries]
        WorkloadMixer(db, seed=7).mix(source, MIX)
        assert [q.to_json() for q in source.queries] == before
