"""Workload replay against the engine."""

import pytest

from repro.sqldb import Database, SqlType, Table
from repro.workload import GeneratedQuery, Workload, replay_workload


@pytest.fixture(scope="module")
def db():
    database = Database("replaydb")
    database.create_table(
        Table.from_dict(
            "t",
            {"id": list(range(100)), "v": [i % 10 for i in range(100)]},
            {"id": SqlType.INTEGER, "v": SqlType.INTEGER},
        ),
        primary_key=["id"],
    )
    return database


def make_workload(*sqls):
    workload = Workload(name="replay")
    for index, sql in enumerate(sqls):
        workload.add(GeneratedQuery(sql=sql, cost=1.0, template_id=f"t{index}"))
    return workload


class TestReplay:
    def test_all_succeed(self, db):
        report = replay_workload(
            make_workload(
                "SELECT count(*) FROM t",
                "SELECT id FROM t WHERE v = 3",
                "SELECT v, count(*) FROM t GROUP BY v",
            ),
            db,
        )
        assert report.succeeded == 3
        assert report.failed == 0
        assert report.success_rate == 1.0
        assert report.total_seconds > 0

    def test_outcomes_carry_measurements(self, db):
        report = replay_workload(
            make_workload("SELECT id FROM t WHERE v = 3"), db
        )
        outcome = report.outcomes[0]
        assert outcome.rows == 10
        assert outcome.estimated_rows > 0
        assert outcome.estimated_cost > 0
        assert outcome.elapsed_seconds > 0

    def test_q_error_exact_estimate(self, db):
        report = replay_workload(make_workload("SELECT count(*) FROM t"), db)
        assert report.outcomes[0].q_error >= 1.0

    def test_failures_recorded(self, db):
        report = replay_workload(
            make_workload("SELECT ghost FROM t", "SELECT count(*) FROM t"), db
        )
        assert report.failed == 1
        assert report.succeeded == 1
        assert "does not exist" in report.outcomes[0].error

    def test_fail_fast(self, db):
        report = replay_workload(
            make_workload("SELECT ghost FROM t", "SELECT count(*) FROM t"),
            db,
            fail_fast=True,
        )
        assert len(report.outcomes) == 1

    def test_percentiles_and_worst(self, db):
        report = replay_workload(
            make_workload(
                "SELECT id FROM t WHERE v = 1",
                "SELECT id FROM t WHERE v = 2 AND id > 50",
            ),
            db,
        )
        percentiles = report.q_error_percentiles()
        assert percentiles["p50"] >= 1.0
        assert len(report.worst_estimates(1)) == 1

    def test_text_summary(self, db):
        report = replay_workload(make_workload("SELECT count(*) FROM t"), db)
        text = report.to_text()
        assert "1 ok" in text and "q-error" in text

    def test_empty_workload(self, db):
        report = replay_workload(Workload(), db)
        assert report.success_rate == 0.0
        assert report.q_error_percentiles()["max"] == 0.0

    def test_generated_workload_replays_cleanly(self):
        from repro.core import BarberConfig, SQLBarber
        from repro.datasets import build_tpch, redset_spec_workload
        from repro.workload import CostDistribution

        tpch = build_tpch(scale=0.002)
        barber = SQLBarber(tpch, config=BarberConfig(seed=0))
        result = barber.generate_workload(
            redset_spec_workload(num_specs=3),
            CostDistribution.uniform(0, 800, 12, 3),
            time_budget_seconds=60,
        )
        report = replay_workload(result.workload, tpch)
        assert report.success_rate == 1.0  # every generated query executes
