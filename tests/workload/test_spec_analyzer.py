"""Specs (JSON + natural language) and the ground-truth analyzer."""

import pytest

from repro.workload import TemplateSpec, analyze_sql, check_template, parse_instructions


class TestParseInstructions:
    def test_join_count(self):
        assert parse_instructions("I want 5 joins")["num_joins"] == 5

    def test_word_numbers(self):
        assert parse_instructions("use three aggregations")["num_aggregations"] == 3

    def test_no_joins(self):
        assert parse_instructions("no joins but complex scalar expressions") == {
            "num_joins": 0,
            "require_complex_scalar": True,
        }

    def test_nested_subquery(self):
        assert parse_instructions("have a nested subquery")[
            "require_nested_subquery"
        ]

    def test_without_subquery(self):
        fields = parse_instructions("without a nested subquery")
        assert fields["require_nested_subquery"] is False

    def test_group_by(self):
        assert parse_instructions("use the GROUP BY operator")["require_group_by"]

    def test_tables(self):
        assert parse_instructions("accesses 3 tables")["num_tables"] == 3

    def test_predicates(self):
        assert parse_instructions("have two predicate values")["num_predicates"] == 2

    def test_unparseable_text_yields_nothing(self):
        assert parse_instructions("make it interesting") == {}


class TestTemplateSpec:
    def test_from_json_aliases(self):
        spec = TemplateSpec.from_json(
            {"template_id": 7, "num_tables_accessed": 2, "num_joins": 1,
             "num_aggregations": 3}
        )
        assert spec.spec_id == "7"
        assert spec.num_tables == 2
        assert spec.num_joins == 1
        assert spec.num_aggregations == 3

    def test_from_json_with_instructions(self):
        spec = TemplateSpec.from_json(
            {"num_joins": 2, "instructions": ["have a nested subquery"]}
        )
        assert spec.require_nested_subquery
        assert spec.instructions == ("have a nested subquery",)

    def test_from_natural_language(self):
        spec = TemplateSpec.from_natural_language(
            "a complex template with 2 joins and one aggregation"
        )
        assert spec.num_joins == 2
        assert spec.num_aggregations == 1

    def test_merged_with_instructions_does_not_override(self):
        spec = TemplateSpec(num_joins=5).merged_with_instructions("no joins")
        assert spec.num_joins == 5  # explicit field wins

    def test_prompt_text_mentions_constraints(self):
        text = TemplateSpec(
            num_joins=2, require_group_by=True, instructions=("keep it simple",)
        ).to_prompt_text()
        assert "2 join" in text
        assert "GROUP BY" in text
        assert "keep it simple" in text


JOIN_AGG_SQL = """
SELECT u.name, count(*) AS c, sum(o.amount) AS s
FROM users u
JOIN orders o ON u.user_id = o.user_id
WHERE o.amount > {p_1}
GROUP BY u.name
HAVING count(*) > {p_2}
ORDER BY s DESC
LIMIT 10
"""


class TestAnalyzer:
    def test_join_agg_features(self):
        s = analyze_sql(JOIN_AGG_SQL)
        assert s.num_tables == 2
        assert s.num_joins == 1
        assert s.num_aggregations == 3  # count, sum, count in HAVING
        assert s.num_predicates == 2
        assert s.has_group_by
        assert s.has_order_by
        assert s.has_limit
        assert not s.has_nested_subquery

    def test_nested_subquery_detected(self):
        s = analyze_sql(
            "SELECT a FROM t WHERE a IN (SELECT b FROM s WHERE c > {p})"
        )
        assert s.has_nested_subquery
        assert s.num_tables == 2

    def test_self_join_counts_one_table(self):
        s = analyze_sql("SELECT 1 FROM t a JOIN t b ON a.x = b.x")
        assert s.num_tables == 1
        assert s.num_scans == 2
        assert s.num_joins == 1

    def test_no_joins(self):
        assert analyze_sql("SELECT a FROM t").num_joins == 0

    def test_complex_scalar_detection(self):
        simple = analyze_sql("SELECT a FROM t")
        complex_ = analyze_sql(
            "SELECT CASE WHEN a > 1 THEN upper(b) ELSE lower(b) END || '!' FROM t"
        )
        assert not simple.has_complex_scalar
        assert complex_.has_complex_scalar


class TestCheckTemplate:
    def test_satisfying_template(self):
        ok, violations = check_template(
            JOIN_AGG_SQL,
            TemplateSpec(num_joins=1, num_tables=2, require_group_by=True),
        )
        assert ok and violations == []

    def test_violations_are_descriptive(self):
        ok, violations = check_template(
            JOIN_AGG_SQL, TemplateSpec(num_joins=3, require_nested_subquery=True)
        )
        assert not ok
        assert any("joins" in v for v in violations)
        assert any("subquery" in v for v in violations)

    def test_forbidden_feature(self):
        ok, violations = check_template(
            JOIN_AGG_SQL, TemplateSpec(require_group_by=False)
        )
        assert not ok
        assert any("must not use GROUP BY" in v for v in violations)

    def test_unparseable_sql(self):
        ok, violations = check_template("SELEC oops", TemplateSpec())
        assert not ok
        assert "could not parse" in violations[0]
