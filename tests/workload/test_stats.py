"""Workload-level statistics and reporting."""

import pytest

from repro.workload import (
    CostDistribution,
    CostSummary,
    GeneratedQuery,
    Workload,
    describe_workload,
)


def make_workload():
    workload = Workload(name="w")
    workload.extend(
        [
            GeneratedQuery(
                "SELECT a FROM t WHERE a > 1", 10.0, template_id="t1"
            ),
            GeneratedQuery(
                "SELECT a, count(*) FROM t GROUP BY a", 20.0, template_id="t1"
            ),
            GeneratedQuery(
                "SELECT * FROM t JOIN s ON t.a = s.a ORDER BY t.a LIMIT 5",
                90.0,
                template_id="t2",
            ),
            GeneratedQuery(
                "SELECT a FROM t WHERE a IN (SELECT b FROM s)", 40.0,
                template_id="t2",
            ),
        ]
    )
    return workload


class TestCostSummary:
    def test_empty(self):
        summary = CostSummary.of([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_values(self):
        summary = CostSummary.of([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)


class TestDescribeWorkload:
    def test_structure_counts(self):
        report = describe_workload(make_workload())
        assert report.structure.joins == {0: 3, 1: 1}
        assert report.structure.with_group_by == 1
        assert report.structure.with_subquery == 1
        assert report.structure.with_order_by == 1
        assert report.structure.with_limit == 1
        assert report.structure.unparseable == 0

    def test_per_template(self):
        report = describe_workload(make_workload())
        assert report.queries_per_template == {"t1": 2, "t2": 2}

    def test_alignment_with_target(self):
        target = CostDistribution.uniform(0, 100, 4, 2)
        report = describe_workload(make_workload(), target=target)
        assert report.alignment is not None
        assert report.alignment >= 0.0

    def test_unparseable_counted(self):
        workload = Workload()
        workload.add(GeneratedQuery("SELEC garbage", 1.0))
        report = describe_workload(workload)
        assert report.structure.unparseable == 1

    def test_text_rendering(self):
        target = CostDistribution.uniform(0, 100, 4, 2)
        text = describe_workload(make_workload(), target=target).to_text()
        assert "4 queries" in text
        assert "Wasserstein" in text
        assert "templates used: 2" in text
