"""Templates, literal rendering, and placeholder inference."""

import datetime

import pytest

from repro.sqldb import Database, SqlType, Table
from repro.workload import (
    SqlTemplate,
    infer_placeholder_bindings,
    render_literal,
)


class TestRenderLiteral:
    def test_integers(self):
        assert render_literal(42) == "42"

    def test_floats(self):
        assert render_literal(2.5) == "2.5"

    def test_float_coerced_to_int_type(self):
        assert render_literal(2.6, SqlType.INTEGER) == "3"

    def test_strings_quoted(self):
        assert render_literal("abc") == "'abc'"

    def test_quote_escaping(self):
        assert render_literal("it's") == "'it''s'"

    def test_null(self):
        assert render_literal(None) == "NULL"

    def test_booleans(self):
        assert render_literal(True) == "TRUE"

    def test_date_object(self):
        assert render_literal(datetime.date(2020, 1, 2)) == "'2020-01-02'"

    def test_int_as_date_type(self):
        assert render_literal(1, SqlType.DATE) == "'1970-01-02'"

    def test_int_as_double_type(self):
        assert render_literal(3, SqlType.DOUBLE) == "3.0"


class TestSqlTemplate:
    def make(self):
        return SqlTemplate(
            template_id="t1",
            sql="SELECT a FROM t WHERE a > {p_1} AND b < {p_2}",
        )

    def test_placeholder_names(self):
        assert self.make().placeholder_names == ["p_1", "p_2"]

    def test_instantiate(self):
        sql = self.make().instantiate({"p_1": 10, "p_2": 20})
        assert sql == "SELECT a FROM t WHERE a > 10 AND b < 20"

    def test_instantiate_missing_value(self):
        with pytest.raises(KeyError):
            self.make().instantiate({"p_1": 10})

    def test_instantiate_string_value(self):
        template = SqlTemplate("t", "SELECT 1 FROM t WHERE s = {p_1}")
        assert template.instantiate({"p_1": "x"}) == "SELECT 1 FROM t WHERE s = 'x'"

    def test_repeated_placeholder(self):
        template = SqlTemplate("t", "SELECT 1 FROM t WHERE a > {p} AND b > {p}")
        assert template.instantiate({"p": 5}).count("5") == 2

    def test_parse_caches(self):
        template = self.make()
        assert template.parse() is template.parse()

    def test_with_sql_records_parent(self):
        child = self.make().with_sql("SELECT 1", "t2")
        assert child.parent_id == "t1"
        assert child.template_id == "t2"


@pytest.fixture(scope="module")
def catalog_db():
    db = Database("ph")
    db.create_table(
        Table.from_dict(
            "sales",
            {
                "sale_id": [1, 2, 3],
                "price": [1.0, 2.0, 3.0],
                "region": ["n", "s", "e"],
                "sold_on": [10, 20, 30],
            },
            {
                "sale_id": SqlType.INTEGER,
                "price": SqlType.DOUBLE,
                "region": SqlType.TEXT,
                "sold_on": SqlType.DATE,
            },
        ),
        primary_key=["sale_id"],
    )
    db.create_table(
        Table.from_dict(
            "stores",
            {"store_id": [1, 2], "city": ["a", "b"]},
            {"store_id": SqlType.INTEGER, "city": SqlType.TEXT},
        ),
        primary_key=["store_id"],
    )
    return db


class TestPlaceholderInference:
    def infer(self, db, sql):
        template = SqlTemplate("t", sql)
        return infer_placeholder_bindings(template.parse(), db.catalog)

    def test_simple_comparison(self, catalog_db):
        infos = self.infer(catalog_db, "SELECT 1 FROM sales WHERE price > {p_1}")
        assert infos[0].table == "sales"
        assert infos[0].column == "price"
        assert infos[0].sql_type is SqlType.DOUBLE
        assert infos[0].operator == ">"

    def test_reversed_comparison(self, catalog_db):
        infos = self.infer(catalog_db, "SELECT 1 FROM sales WHERE {p_1} < price")
        assert infos[0].column == "price"

    def test_between(self, catalog_db):
        infos = self.infer(
            catalog_db, "SELECT 1 FROM sales WHERE price BETWEEN {lo} AND {hi}"
        )
        assert [i.operator for i in infos] == ["between", "between"]
        assert all(i.column == "price" for i in infos)

    def test_in_list(self, catalog_db):
        infos = self.infer(
            catalog_db, "SELECT 1 FROM sales WHERE region IN ({a}, {b})"
        )
        assert all(i.column == "region" for i in infos)
        assert infos[0].sql_type is SqlType.TEXT

    def test_like(self, catalog_db):
        infos = self.infer(catalog_db, "SELECT 1 FROM sales WHERE region LIKE {p}")
        assert infos[0].operator == "like"

    def test_qualified_with_alias(self, catalog_db):
        infos = self.infer(
            catalog_db,
            "SELECT 1 FROM sales s JOIN stores t ON s.sale_id = t.store_id "
            "WHERE t.city = {p}",
        )
        assert infos[0].table == "stores"
        assert infos[0].column == "city"

    def test_placeholder_in_subquery(self, catalog_db):
        infos = self.infer(
            catalog_db,
            "SELECT 1 FROM stores WHERE store_id IN "
            "(SELECT sale_id FROM sales WHERE price > {p})",
        )
        assert infos[0].column == "price"

    def test_placeholder_in_having(self, catalog_db):
        infos = self.infer(
            catalog_db,
            "SELECT region, count(*) FROM sales GROUP BY region "
            "HAVING count(*) > {p}",
        )
        # count(*) is not a base column; the placeholder stays unbound
        assert infos[0].table is None

    def test_arithmetic_around_placeholder(self, catalog_db):
        infos = self.infer(
            catalog_db, "SELECT 1 FROM sales WHERE price > {p} * 2"
        )
        assert infos[0].column == "price"

    def test_unbound_placeholder_still_listed(self, catalog_db):
        infos = self.infer(catalog_db, "SELECT {p} FROM sales")
        assert infos[0].name == "p"
        assert infos[0].table is None

    def test_date_placeholder(self, catalog_db):
        infos = self.infer(catalog_db, "SELECT 1 FROM sales WHERE sold_on < {d}")
        assert infos[0].sql_type is SqlType.DATE
